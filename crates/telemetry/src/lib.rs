//! Unified telemetry for the Adapt-NoC reproduction: a metrics registry
//! (counters, gauges, log2-bucket histograms), span-style stage timers, a
//! bounded structured event log, and text exporters (Prometheus exposition
//! format and JSON-lines).
//!
//! # Design
//!
//! This crate is a **leaf**: it depends on nothing, and `adaptnoc-sim`,
//! `adaptnoc-faults`, `adaptnoc-core` and `adaptnoc-bench` all depend on
//! it. Instrumented code holds an `Option<Registry>` (or a wrapper around
//! one) — [`TelemetryMode::Off`] means the option is `None` and the hot
//! path pays exactly one branch per instrumentation site, which is what
//! "zero cost when disabled" means here (there is no compile-time feature
//! flag; the equivalence is proven behaviourally by
//! `crates/sim/tests/telemetry_equivalence.rs` and the overhead microbench
//! in `adaptnoc-bench`).
//!
//! All handles ([`CounterId`], [`GaugeId`], [`HistogramId`], [`SpanId`])
//! are interned once at registration and recorded against with a plain
//! array index — no hashing on the hot path. Values are not atomic: one
//! registry belongs to one simulation (campaigns merge per-point
//! registries with [`Registry::merge`] after the fact), which keeps
//! recording branch-plus-add cheap and the export deterministic.
//!
//! Span *durations* are passed in by the caller (as nanoseconds), so
//! wall-clock time never enters this crate — deterministic tests and
//! golden files record fixed durations, while the simulator records real
//! `Instant` deltas on sampled cycles only.
//!
//! See `docs/OBSERVABILITY.md` at the repository root for the full metric
//! catalog and exporter format documentation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod export;
pub mod mode;
pub mod registry;

pub use export::{json_lines, prometheus};
pub use mode::TelemetryMode;
pub use registry::{
    CounterId, Event, GaugeId, HistogramId, Labels, Registry, Snapshot, SpanId, HIST_BUCKETS,
};

/// Common imports: `use adaptnoc_telemetry::prelude::*;`.
pub mod prelude {
    pub use crate::export::{json_lines, prometheus};
    pub use crate::mode::TelemetryMode;
    pub use crate::registry::{
        CounterId, Event, GaugeId, HistogramId, Labels, Registry, Snapshot, SpanId,
    };
}

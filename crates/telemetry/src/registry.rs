//! The metrics registry: interned counters, gauges, log2-bucket
//! histograms, span accumulators, and a bounded structured event log.

use crate::mode::TelemetryMode;
use std::collections::HashMap;

/// Number of histogram buckets: upper bounds `2^0 .. 2^31` plus `+Inf`.
///
/// Every histogram in the workspace shares this fixed log2 layout, which
/// keeps observation branch-free (a `leading_zeros` and an add), makes
/// registries mergeable bucket-by-bucket, and spans the full useful range
/// of cycle-denominated values (1 cycle to ~2.1 billion cycles).
pub const HIST_BUCKETS: usize = 33;

/// A sorted, deduplicated label set (`key=value` pairs).
///
/// Labels are sorted by key at construction so that two label sets with
/// the same pairs in different orders intern to the same time series and
/// export identically.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Labels(Vec<(String, String)>);

impl Labels {
    /// Builds a label set from `(key, value)` pairs; order is normalized.
    pub fn new(pairs: &[(&str, &str)]) -> Self {
        let mut v: Vec<(String, String)> = pairs
            .iter()
            .map(|(k, val)| (k.to_string(), val.to_string()))
            .collect();
        v.sort();
        v.dedup_by(|a, b| a.0 == b.0);
        Labels(v)
    }

    /// The empty label set.
    pub fn empty() -> Self {
        Labels(Vec::new())
    }

    /// Whether the set has no labels.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// A canonical `k=v,k2=v2` string used for interning and sort order.
    pub fn key(&self) -> String {
        let mut s = String::new();
        for (i, (k, v)) in self.0.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(k);
            s.push('=');
            s.push_str(v);
        }
        s
    }
}

/// Handle to an interned counter. Copyable; recording is an array index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to an interned gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to an interned histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Handle to an interned span accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// Static metadata shared by every metric kind.
#[derive(Debug, Clone, PartialEq)]
struct Meta {
    name: String,
    help: String,
    unit: String,
    labels: Labels,
}

#[derive(Debug, Clone, PartialEq)]
struct HistData {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for HistData {
    fn default() -> Self {
        HistData {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct SpanData {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
}

/// One structured event: a name, the simulation cycle it happened on, and
/// free-form string fields. Events are the telemetry face of things that
/// are individually interesting (a fault fired, the escalation ladder
/// moved, a guard tripped) rather than statistically interesting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Dotted event name, e.g. `guard.escalated`.
    pub name: String,
    /// Simulation cycle the event was recorded at.
    pub cycle: u64,
    /// Sorted `(key, value)` detail fields.
    pub fields: Vec<(String, String)>,
}

/// The bucket index a value falls into: bucket `b` covers
/// `2^(b-1) < v <= 2^b` (bucket 0 covers `v <= 1`), bucket 32 is `+Inf`.
fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        ((64 - (v - 1).leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// The upper-bound label (`le`) of histogram bucket `b`.
pub(crate) fn bucket_bound(b: usize) -> String {
    if b >= HIST_BUCKETS - 1 {
        "+Inf".to_string()
    } else {
        (1u64 << b).to_string()
    }
}

/// Default cap on retained events; older events are kept, newer ones
/// counted as dropped (the earliest events usually explain a failure).
pub(crate) const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// The metrics registry. One per simulation; merge after the fact.
///
/// Values are plain (non-atomic) integers/floats: a registry is owned by
/// a single simulation thread, and parallel campaigns give every point its
/// own registry and [`merge`](Registry::merge) them when the campaign
/// completes. Registration interns by `(kind, name, label set)` — a
/// second registration of the same identity returns the existing handle.
#[derive(Debug, Clone, PartialEq)]
pub struct Registry {
    mode: TelemetryMode,
    counters: Vec<(Meta, u64)>,
    gauges: Vec<(Meta, f64)>,
    hists: Vec<(Meta, HistData)>,
    spans: Vec<(Meta, SpanData)>,
    events: Vec<Event>,
    event_capacity: usize,
    events_dropped: u64,
    index: HashMap<String, usize>,
}

impl Registry {
    /// Creates an empty registry collecting under `mode`.
    pub fn new(mode: TelemetryMode) -> Self {
        Registry {
            mode,
            counters: Vec::new(),
            gauges: Vec::new(),
            hists: Vec::new(),
            spans: Vec::new(),
            events: Vec::new(),
            event_capacity: DEFAULT_EVENT_CAPACITY,
            events_dropped: 0,
            index: HashMap::new(),
        }
    }

    /// The collection mode this registry was created with.
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Caps the retained event count (the first `cap` events are kept;
    /// later ones only increment the dropped counter).
    pub fn set_event_capacity(&mut self, cap: usize) {
        self.event_capacity = cap;
    }

    fn intern(&mut self, kind: char, name: &str, labels: &Labels) -> Option<usize> {
        let key = format!("{kind}|{name}|{}", labels.key());
        self.index.get(&key).copied().map_or_else(
            || {
                let next = match kind {
                    'c' => self.counters.len(),
                    'g' => self.gauges.len(),
                    'h' => self.hists.len(),
                    's' => self.spans.len(),
                    _ => unreachable!("unknown metric kind"),
                };
                self.index.insert(key, next);
                None
            },
            Some,
        )
    }

    /// Registers (or looks up) a counter time series.
    pub fn counter(
        &mut self,
        name: &str,
        help: &str,
        unit: &str,
        labels: &[(&str, &str)],
    ) -> CounterId {
        let labels = Labels::new(labels);
        if let Some(i) = self.intern('c', name, &labels) {
            return CounterId(i);
        }
        self.counters.push((
            Meta {
                name: name.to_string(),
                help: help.to_string(),
                unit: unit.to_string(),
                labels,
            },
            0,
        ));
        CounterId(self.counters.len() - 1)
    }

    /// Registers (or looks up) a gauge time series.
    pub fn gauge(
        &mut self,
        name: &str,
        help: &str,
        unit: &str,
        labels: &[(&str, &str)],
    ) -> GaugeId {
        let labels = Labels::new(labels);
        if let Some(i) = self.intern('g', name, &labels) {
            return GaugeId(i);
        }
        self.gauges.push((
            Meta {
                name: name.to_string(),
                help: help.to_string(),
                unit: unit.to_string(),
                labels,
            },
            0.0,
        ));
        GaugeId(self.gauges.len() - 1)
    }

    /// Registers (or looks up) a histogram with the fixed log2 buckets.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        unit: &str,
        labels: &[(&str, &str)],
    ) -> HistogramId {
        let labels = Labels::new(labels);
        if let Some(i) = self.intern('h', name, &labels) {
            return HistogramId(i);
        }
        self.hists.push((
            Meta {
                name: name.to_string(),
                help: help.to_string(),
                unit: unit.to_string(),
                labels,
            },
            HistData::default(),
        ));
        HistogramId(self.hists.len() - 1)
    }

    /// Registers (or looks up) a span accumulator (count/total/min/max of
    /// durations in nanoseconds).
    pub fn span(&mut self, name: &str, help: &str, labels: &[(&str, &str)]) -> SpanId {
        let labels = Labels::new(labels);
        if let Some(i) = self.intern('s', name, &labels) {
            return SpanId(i);
        }
        self.spans.push((
            Meta {
                name: name.to_string(),
                help: help.to_string(),
                unit: "seconds".to_string(),
                labels,
            },
            SpanData::default(),
        ));
        SpanId(self.spans.len() - 1)
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.counters[id.0].1 += n;
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// The current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Sets a gauge to `v` (gauges are last-write-wins).
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: f64) {
        self.gauges[id.0].1 = v;
    }

    /// The current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        let h = &mut self.hists[id.0].1;
        h.buckets[bucket_index(v)] += 1;
        h.count += 1;
        h.sum += v;
    }

    /// Records one span duration in nanoseconds.
    #[inline]
    pub fn record_span_ns(&mut self, id: SpanId, ns: u64) {
        let s = &mut self.spans[id.0].1;
        if s.count == 0 || ns < s.min_ns {
            s.min_ns = ns;
        }
        if ns > s.max_ns {
            s.max_ns = ns;
        }
        s.count += 1;
        s.total_ns += ns;
    }

    /// Records a structured event. Fields are sorted by key; events past
    /// the capacity only increment the dropped counter.
    pub fn event(&mut self, name: &str, cycle: u64, fields: &[(&str, &str)]) {
        if self.events.len() >= self.event_capacity {
            self.events_dropped += 1;
            return;
        }
        let mut fields: Vec<(String, String)> = fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        fields.sort();
        self.events.push(Event {
            name: name.to_string(),
            cycle,
            fields,
        });
    }

    /// Number of events recorded (retained, not counting dropped).
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Events dropped because the capacity was reached.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// Folds `other` into `self`: counters and histogram buckets add,
    /// span accumulators combine (count/total add, min/max extend),
    /// gauges take `other`'s value (last write wins), events append up to
    /// capacity. Metric identities missing from `self` are registered.
    pub fn merge(&mut self, other: &Registry) {
        for (m, v) in other.counters.clone() {
            let pairs: Vec<(&str, &str)> = m.labels.iter().collect();
            let id = self.counter(&m.name, &m.help, &m.unit, &pairs);
            self.add(id, v);
        }
        for (m, v) in other.gauges.clone() {
            let pairs: Vec<(&str, &str)> = m.labels.iter().collect();
            let id = self.gauge(&m.name, &m.help, &m.unit, &pairs);
            self.set(id, v);
        }
        for (m, h) in other.hists.clone() {
            let pairs: Vec<(&str, &str)> = m.labels.iter().collect();
            let id = self.histogram(&m.name, &m.help, &m.unit, &pairs);
            let mine = &mut self.hists[id.0].1;
            for (b, n) in h.buckets.iter().enumerate() {
                mine.buckets[b] += n;
            }
            mine.count += h.count;
            mine.sum += h.sum;
        }
        for (m, s) in other.spans.clone() {
            let pairs: Vec<(&str, &str)> = m.labels.iter().collect();
            let id = self.span(&m.name, &m.help, &pairs);
            let mine = &mut self.spans[id.0].1;
            if s.count > 0 {
                if mine.count == 0 || s.min_ns < mine.min_ns {
                    mine.min_ns = s.min_ns;
                }
                if s.max_ns > mine.max_ns {
                    mine.max_ns = s.max_ns;
                }
                mine.count += s.count;
                mine.total_ns += s.total_ns;
            }
        }
        self.events_dropped += other.events_dropped;
        for e in &other.events {
            if self.events.len() >= self.event_capacity {
                self.events_dropped += 1;
            } else {
                self.events.push(e.clone());
            }
        }
    }

    /// A deterministic, export-ready view: every metric kind sorted by
    /// `(name, label key)`, events in recording order.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<CounterSample> = self
            .counters
            .iter()
            .map(|(m, v)| CounterSample {
                name: m.name.clone(),
                help: m.help.clone(),
                unit: m.unit.clone(),
                labels: m.labels.clone(),
                value: *v,
            })
            .collect();
        counters.sort_by(|a, b| (&a.name, a.labels.key()).cmp(&(&b.name, b.labels.key())));

        let mut gauges: Vec<GaugeSample> = self
            .gauges
            .iter()
            .map(|(m, v)| GaugeSample {
                name: m.name.clone(),
                help: m.help.clone(),
                unit: m.unit.clone(),
                labels: m.labels.clone(),
                value: *v,
            })
            .collect();
        gauges.sort_by(|a, b| (&a.name, a.labels.key()).cmp(&(&b.name, b.labels.key())));

        let mut histograms: Vec<HistogramSample> = self
            .hists
            .iter()
            .map(|(m, h)| HistogramSample {
                name: m.name.clone(),
                help: m.help.clone(),
                unit: m.unit.clone(),
                labels: m.labels.clone(),
                buckets: h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(b, n)| (bucket_bound(b), *n))
                    .collect(),
                count: h.count,
                sum: h.sum,
            })
            .collect();
        histograms.sort_by(|a, b| (&a.name, a.labels.key()).cmp(&(&b.name, b.labels.key())));

        let mut spans: Vec<SpanSample> = self
            .spans
            .iter()
            .map(|(m, s)| SpanSample {
                name: m.name.clone(),
                help: m.help.clone(),
                labels: m.labels.clone(),
                count: s.count,
                total_ns: s.total_ns,
                min_ns: s.min_ns,
                max_ns: s.max_ns,
            })
            .collect();
        spans.sort_by(|a, b| (&a.name, a.labels.key()).cmp(&(&b.name, b.labels.key())));

        Snapshot {
            mode: self.mode.label(),
            counters,
            gauges,
            histograms,
            spans,
            events: self.events.clone(),
            events_dropped: self.events_dropped,
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new(TelemetryMode::Strict)
    }
}

/// One counter time series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Unit (e.g. `packets`, `cycles`).
    pub unit: String,
    /// Label set.
    pub labels: Labels,
    /// Current value.
    pub value: u64,
}

/// One gauge time series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Unit.
    pub unit: String,
    /// Label set.
    pub labels: Labels,
    /// Current value.
    pub value: f64,
}

/// One histogram time series in a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Unit of observed values.
    pub unit: String,
    /// Label set.
    pub labels: Labels,
    /// Non-cumulative per-bucket counts, as `(le bound, count)` with the
    /// fixed log2 bounds `1, 2, 4, …, 2^31, +Inf`.
    pub buckets: Vec<(String, u64)>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// One span accumulator in a [`Snapshot`]. Durations are nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSample {
    /// Span name.
    pub name: String,
    /// Help text.
    pub help: String,
    /// Label set.
    pub labels: Labels,
    /// Number of recorded spans.
    pub count: u64,
    /// Total duration.
    pub total_ns: u64,
    /// Shortest recorded span (0 if none).
    pub min_ns: u64,
    /// Longest recorded span (0 if none).
    pub max_ns: u64,
}

/// A deterministic point-in-time view of a [`Registry`], ready for the
/// exporters in [`crate::export`] or for direct inspection.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The registry's collection-mode label (`off`, `sampled:N`, `strict`).
    pub mode: String,
    /// Counters sorted by `(name, labels)`.
    pub counters: Vec<CounterSample>,
    /// Gauges sorted by `(name, labels)`.
    pub gauges: Vec<GaugeSample>,
    /// Histograms sorted by `(name, labels)`.
    pub histograms: Vec<HistogramSample>,
    /// Spans sorted by `(name, labels)`.
    pub spans: Vec<SpanSample>,
    /// Events in recording order.
    pub events: Vec<Event>,
    /// Events lost to the capacity bound.
    pub events_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_with_inf_tail() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1 << 31), 31);
        assert_eq!(bucket_index((1 << 31) + 1), 32);
        assert_eq!(bucket_index(u64::MAX), 32);
        assert_eq!(bucket_bound(0), "1");
        assert_eq!(bucket_bound(31), (1u64 << 31).to_string());
        assert_eq!(bucket_bound(32), "+Inf");
    }

    #[test]
    fn interning_dedupes_and_label_order_is_normalized() {
        let mut r = Registry::new(TelemetryMode::Strict);
        let a = r.counter("x_total", "h", "packets", &[("b", "2"), ("a", "1")]);
        let b = r.counter("x_total", "h", "packets", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
        assert_eq!(r.snapshot().counters.len(), 1);
        assert_eq!(r.snapshot().counters[0].labels.key(), "a=1,b=2");
    }

    #[test]
    fn histogram_counts_and_sum() {
        let mut r = Registry::new(TelemetryMode::Strict);
        let h = r.histogram("lat_cycles", "h", "cycles", &[]);
        for v in [1, 2, 3, 100] {
            r.observe(h, v);
        }
        let s = r.snapshot();
        let hs = &s.histograms[0];
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 106);
        assert_eq!(hs.buckets[0], ("1".to_string(), 1));
        assert_eq!(hs.buckets[1], ("2".to_string(), 1));
        assert_eq!(hs.buckets[2], ("4".to_string(), 1));
        assert_eq!(hs.buckets[7], ("128".to_string(), 1));
    }

    #[test]
    fn span_min_max_total() {
        let mut r = Registry::new(TelemetryMode::Strict);
        let s = r.span("stage_seconds", "h", &[]);
        r.record_span_ns(s, 50);
        r.record_span_ns(s, 10);
        r.record_span_ns(s, 90);
        let snap = r.snapshot();
        let ss = &snap.spans[0];
        assert_eq!(
            (ss.count, ss.total_ns, ss.min_ns, ss.max_ns),
            (3, 150, 10, 90)
        );
    }

    #[test]
    fn events_are_bounded_and_field_sorted() {
        let mut r = Registry::new(TelemetryMode::Strict);
        r.set_event_capacity(2);
        r.event("e", 1, &[("z", "9"), ("a", "0")]);
        r.event("e", 2, &[]);
        r.event("e", 3, &[]);
        assert_eq!(r.event_count(), 2);
        assert_eq!(r.events_dropped(), 1);
        assert_eq!(
            r.snapshot().events[0].fields,
            vec![
                ("a".to_string(), "0".to_string()),
                ("z".to_string(), "9".to_string())
            ]
        );
    }

    #[test]
    fn merge_adds_counters_histograms_and_combines_spans() {
        let mut a = Registry::new(TelemetryMode::Strict);
        let mut b = Registry::new(TelemetryMode::Strict);
        let ca = a.counter("c_total", "h", "u", &[("k", "v")]);
        a.add(ca, 5);
        let cb = b.counter("c_total", "h", "u", &[("k", "v")]);
        b.add(cb, 7);
        let gb = b.gauge("g", "h", "u", &[]);
        b.set(gb, 2.5);
        let hb = b.histogram("h", "h", "cycles", &[]);
        b.observe(hb, 3);
        let sa = a.span("s_seconds", "h", &[]);
        a.record_span_ns(sa, 100);
        let sb = b.span("s_seconds", "h", &[]);
        b.record_span_ns(sb, 10);
        b.event("ev", 9, &[]);

        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.counters[0].value, 12);
        assert_eq!(s.gauges[0].value, 2.5);
        assert_eq!(s.histograms[0].count, 1);
        assert_eq!(
            (s.spans[0].count, s.spans[0].min_ns, s.spans[0].max_ns),
            (2, 10, 100)
        );
        assert_eq!(s.events.len(), 1);
        assert_eq!(s.events[0].cycle, 9);
    }

    #[test]
    fn snapshot_ordering_is_deterministic() {
        let mut r = Registry::new(TelemetryMode::Strict);
        r.counter("b_total", "h", "u", &[]);
        r.counter("a_total", "h", "u", &[("k", "2")]);
        r.counter("a_total", "h", "u", &[("k", "1")]);
        let names: Vec<String> = r
            .snapshot()
            .counters
            .iter()
            .map(|c| format!("{}{{{}}}", c.name, c.labels.key()))
            .collect();
        assert_eq!(names, vec!["a_total{k=1}", "a_total{k=2}", "b_total{}"]);
    }
}

//! Text exporters: Prometheus exposition format and JSON-lines.
//!
//! Both exporters are deterministic: they render a
//! [`Snapshot`], whose metric kinds are sorted
//! by `(name, label set)` and whose events are in recording order, so the
//! same registry always produces byte-identical output. That property is
//! pinned by the golden-file tests in `tests/golden.rs` and is what lets
//! campaign telemetry snapshots sit next to checkpoint journals without
//! breaking the bench suite's byte-identity guarantees.

use crate::registry::{Registry, Snapshot};

/// Escapes a string for a JSON string literal (without the quotes).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders sorted `(k, v)` pairs as a JSON object body: `"k":"v",...`.
fn json_object(pairs: impl Iterator<Item = (String, String)>) -> String {
    let body: Vec<String> = pairs
        .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(&k), json_escape(&v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Serializes a registry snapshot as JSON-lines: one self-describing JSON
/// object per line, in the order *meta, counters, gauges, histograms,
/// spans, events*. Machine-diffable and safe to append to (each line is
/// independently parseable, like the checkpoint journals).
pub fn json_lines(reg: &Registry) -> String {
    json_lines_snapshot(&reg.snapshot())
}

/// [`json_lines`] on an already-taken [`Snapshot`].
pub fn json_lines_snapshot(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"type\":\"meta\",\"mode\":\"{}\",\"events_dropped\":{}}}\n",
        json_escape(&snap.mode),
        snap.events_dropped
    ));
    for c in &snap.counters {
        out.push_str(&format!(
            "{{\"type\":\"counter\",\"name\":\"{}\",\"unit\":\"{}\",\"labels\":{},\"value\":{}}}\n",
            json_escape(&c.name),
            json_escape(&c.unit),
            json_object(c.labels.iter().map(|(k, v)| (k.to_string(), v.to_string()))),
            c.value
        ));
    }
    for g in &snap.gauges {
        out.push_str(&format!(
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"unit\":\"{}\",\"labels\":{},\"value\":{}}}\n",
            json_escape(&g.name),
            json_escape(&g.unit),
            json_object(g.labels.iter().map(|(k, v)| (k.to_string(), v.to_string()))),
            g.value
        ));
    }
    for h in &snap.histograms {
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(le, n)| format!("\"{}\":{}", json_escape(le), n))
            .collect();
        out.push_str(&format!(
            "{{\"type\":\"histogram\",\"name\":\"{}\",\"unit\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\"buckets\":{{{}}}}}\n",
            json_escape(&h.name),
            json_escape(&h.unit),
            json_object(h.labels.iter().map(|(k, v)| (k.to_string(), v.to_string()))),
            h.count,
            h.sum,
            buckets.join(",")
        ));
    }
    for s in &snap.spans {
        out.push_str(&format!(
            "{{\"type\":\"span\",\"name\":\"{}\",\"labels\":{},\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{}}}\n",
            json_escape(&s.name),
            json_object(s.labels.iter().map(|(k, v)| (k.to_string(), v.to_string()))),
            s.count,
            s.total_ns,
            s.min_ns,
            s.max_ns
        ));
    }
    for e in &snap.events {
        out.push_str(&format!(
            "{{\"type\":\"event\",\"name\":\"{}\",\"cycle\":{},\"fields\":{}}}\n",
            json_escape(&e.name),
            e.cycle,
            json_object(e.fields.iter().map(|(k, v)| (k.clone(), v.clone())))
        ));
    }
    out
}

/// Escapes a Prometheus HELP string.
fn prom_help_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a Prometheus label value.
fn prom_label_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Renders a label set (optionally with one extra pair appended) as
/// `{k="v",...}`, or the empty string when there are no labels.
fn prom_labels(labels: &crate::registry::Labels, extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", prom_label_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", prom_label_escape(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Emits `# HELP` / `# TYPE` headers once per metric name.
fn prom_header(out: &mut String, last: &mut String, name: &str, help: &str, kind: &str) {
    if last != name {
        out.push_str(&format!("# HELP {name} {}\n", prom_help_escape(help)));
        out.push_str(&format!("# TYPE {name} {kind}\n"));
        *last = name.to_string();
    }
}

/// Serializes a registry snapshot in the Prometheus text exposition
/// format (version 0.0.4): counters and gauges as-is, histograms with
/// cumulative `_bucket{le=...}` series plus `_sum`/`_count`, spans as
/// summaries (`_count`, `_sum` in seconds) with `_min`/`_max` gauges.
/// Structured events have no Prometheus representation and are only in
/// the JSON-lines export.
pub fn prometheus(reg: &Registry) -> String {
    prometheus_snapshot(&reg.snapshot())
}

/// [`prometheus`] on an already-taken [`Snapshot`].
pub fn prometheus_snapshot(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("# HELP adaptnoc_telemetry_info Telemetry collection mode of this snapshot.\n");
    out.push_str("# TYPE adaptnoc_telemetry_info gauge\n");
    out.push_str(&format!(
        "adaptnoc_telemetry_info{{mode=\"{}\"}} 1\n",
        prom_label_escape(&snap.mode)
    ));
    out.push_str(
        "# HELP adaptnoc_telemetry_events_dropped_total Structured events lost to the event-log capacity bound.\n",
    );
    out.push_str("# TYPE adaptnoc_telemetry_events_dropped_total counter\n");
    out.push_str(&format!(
        "adaptnoc_telemetry_events_dropped_total {}\n",
        snap.events_dropped
    ));

    let mut last = String::new();
    for c in &snap.counters {
        prom_header(&mut out, &mut last, &c.name, &c.help, "counter");
        out.push_str(&format!(
            "{}{} {}\n",
            c.name,
            prom_labels(&c.labels, None),
            c.value
        ));
    }
    for g in &snap.gauges {
        prom_header(&mut out, &mut last, &g.name, &g.help, "gauge");
        out.push_str(&format!(
            "{}{} {}\n",
            g.name,
            prom_labels(&g.labels, None),
            g.value
        ));
    }
    for h in &snap.histograms {
        prom_header(&mut out, &mut last, &h.name, &h.help, "histogram");
        let mut cumulative = 0u64;
        for (le, n) in &h.buckets {
            cumulative += n;
            out.push_str(&format!(
                "{}_bucket{} {cumulative}\n",
                h.name,
                prom_labels(&h.labels, Some(("le", le)))
            ));
        }
        out.push_str(&format!(
            "{}_sum{} {}\n",
            h.name,
            prom_labels(&h.labels, None),
            h.sum
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            h.name,
            prom_labels(&h.labels, None),
            h.count
        ));
    }
    for s in &snap.spans {
        prom_header(&mut out, &mut last, &s.name, &s.help, "summary");
        let labels = prom_labels(&s.labels, None);
        out.push_str(&format!("{}_count{labels} {}\n", s.name, s.count));
        out.push_str(&format!(
            "{}_sum{labels} {}\n",
            s.name,
            s.total_ns as f64 / 1e9
        ));
        out.push_str(&format!(
            "{}_min{labels} {}\n",
            s.name,
            s.min_ns as f64 / 1e9
        ));
        out.push_str(&format!(
            "{}_max{labels} {}\n",
            s.name,
            s.max_ns as f64 / 1e9
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mode::TelemetryMode;

    fn sample_registry() -> Registry {
        let mut r = Registry::new(TelemetryMode::Strict);
        let c = r.counter(
            "adaptnoc_test_packets_total",
            "Packets.",
            "packets",
            &[("vnet", "0")],
        );
        r.add(c, 42);
        let g = r.gauge("adaptnoc_test_latency_cycles", "Latency.", "cycles", &[]);
        r.set(g, 12.5);
        let h = r.histogram("adaptnoc_test_hops", "Hops.", "hops", &[]);
        r.observe(h, 1);
        r.observe(h, 3);
        let s = r.span("adaptnoc_test_stage_seconds", "Stage time.", &[]);
        r.record_span_ns(s, 2_000_000_000);
        r.event("test.fired", 7, &[("why", "because")]);
        r
    }

    #[test]
    fn json_lines_are_each_parseable_shapes() {
        let text = json_lines(&sample_registry());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 6);
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert!(lines[1].contains("\"value\":42"));
        assert!(lines[2].contains("\"value\":12.5"));
        assert!(lines[3].contains("\"sum\":4"));
        assert!(lines[4].contains("\"total_ns\":2000000000"));
        assert!(lines[5].contains("\"cycle\":7"));
        for l in lines {
            assert!(
                l.starts_with('{') && l.ends_with('}'),
                "not a JSON object: {l}"
            );
        }
    }

    #[test]
    fn prometheus_emits_headers_and_cumulative_buckets() {
        let text = prometheus(&sample_registry());
        assert!(text.contains("# TYPE adaptnoc_test_packets_total counter"));
        assert!(text.contains("adaptnoc_test_packets_total{vnet=\"0\"} 42"));
        assert!(text.contains("# TYPE adaptnoc_test_hops histogram"));
        assert!(text.contains("adaptnoc_test_hops_bucket{le=\"1\"} 1"));
        assert!(text.contains("adaptnoc_test_hops_bucket{le=\"4\"} 2"));
        assert!(text.contains("adaptnoc_test_hops_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("adaptnoc_test_hops_count 2"));
        assert!(text.contains("# TYPE adaptnoc_test_stage_seconds summary"));
        assert!(text.contains("adaptnoc_test_stage_seconds_sum 2"));
        assert!(text.contains("adaptnoc_telemetry_info{mode=\"strict\"} 1"));
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        let mut r = Registry::new(TelemetryMode::Strict);
        let c = r.counter("x_total", "help \"quoted\"\nline", "u", &[("k", "a\"b\\c")]);
        r.inc(c);
        let prom = prometheus(&r);
        assert!(prom.contains("# HELP x_total help \"quoted\"\\nline"));
        assert!(prom.contains("x_total{k=\"a\\\"b\\\\c\"} 1"));
        let jl = json_lines(&r);
        assert!(jl.contains("\"k\":\"a\\\"b\\\\c\""));
    }

    #[test]
    fn export_is_deterministic() {
        let a = sample_registry();
        let b = sample_registry();
        assert_eq!(json_lines(&a), json_lines(&b));
        assert_eq!(prometheus(&a), prometheus(&b));
    }
}

//! Collection mode: how aggressively telemetry samples the hot path.
//!
//! [`TelemetryMode`] deliberately mirrors `adaptnoc_sim::health::GuardMode`
//! — same variants, same parse grammar, same environment-override pattern
//! — so operators learn one knob shape for both subsystems.

/// How much runtime telemetry is collected.
///
/// Resolved at `Network::new` from the `ADAPTNOC_TELEMETRY` environment
/// variable (which overrides `SimConfig::telemetry`): `off`/`0`/`none`,
/// `strict`/`full`, `sampled`, or `sampled:N`.
///
/// The mode governs only the *expensive* instrumentation — wall-clock
/// span timing of simulator stages, which is taken on every cycle under
/// [`Strict`](TelemetryMode::Strict) and on every `n`-th cycle under
/// [`Sampled(n)`](TelemetryMode::Sampled). Counters, gauges, histograms
/// and events are exact in every active mode (they are branch-plus-add
/// cheap and sampling them would make them lies). Under
/// [`Off`](TelemetryMode::Off) no registry exists at all and the hot path
/// pays one `Option` branch per site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TelemetryMode {
    /// No telemetry: no registry is allocated, nothing is recorded. The
    /// default — keeps the 145 Mc/s idle-stepping path intact.
    #[default]
    Off,
    /// Exact counters/gauges/histograms/events; stage spans timed every
    /// `n` cycles. The cheap always-on choice for long campaigns.
    Sampled(u32),
    /// Exact everything, stage spans timed every cycle. For deep dives
    /// and the telemetry CI checks; measurably slows stepping.
    Strict,
}

impl TelemetryMode {
    /// Parses a mode string: `off`/`0`/`none`, `strict`/`full`, `sampled`,
    /// or `sampled:N` (N = 0 means off). Returns `None` for anything else.
    pub fn parse(raw: &str) -> Option<TelemetryMode> {
        let s = raw.trim().to_ascii_lowercase();
        match s.as_str() {
            "off" | "0" | "none" => Some(TelemetryMode::Off),
            "strict" | "full" => Some(TelemetryMode::Strict),
            "sampled" => Some(TelemetryMode::Sampled(1024)),
            _ => {
                let n: u32 = s.strip_prefix("sampled:")?.parse().ok()?;
                Some(if n == 0 {
                    TelemetryMode::Off
                } else {
                    TelemetryMode::Sampled(n)
                })
            }
        }
    }

    /// The mode requested by the `ADAPTNOC_TELEMETRY` environment
    /// variable, if set and valid.
    pub fn from_env() -> Option<TelemetryMode> {
        std::env::var("ADAPTNOC_TELEMETRY")
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// Whether any collection happens in this mode.
    pub fn is_active(self) -> bool {
        !matches!(self, TelemetryMode::Off)
    }

    /// The span-sampling interval in cycles: `0` for off, `1` for strict,
    /// `n` for sampled. Exported as a gauge so consumers can tell exact
    /// span statistics from sampled ones.
    pub fn interval(self) -> u32 {
        match self {
            TelemetryMode::Off => 0,
            TelemetryMode::Strict => 1,
            TelemetryMode::Sampled(n) => n,
        }
    }

    /// A stable lowercase name for exports: `off`, `sampled:N`, `strict`.
    pub fn label(self) -> String {
        match self {
            TelemetryMode::Off => "off".to_string(),
            TelemetryMode::Strict => "strict".to_string(),
            TelemetryMode::Sampled(n) => format!("sampled:{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_grammar_mirrors_guard_mode() {
        assert_eq!(TelemetryMode::parse("off"), Some(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("0"), Some(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("none"), Some(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("strict"), Some(TelemetryMode::Strict));
        assert_eq!(TelemetryMode::parse("FULL"), Some(TelemetryMode::Strict));
        assert_eq!(
            TelemetryMode::parse("sampled"),
            Some(TelemetryMode::Sampled(1024))
        );
        assert_eq!(
            TelemetryMode::parse(" sampled:64 "),
            Some(TelemetryMode::Sampled(64))
        );
        assert_eq!(TelemetryMode::parse("sampled:0"), Some(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("bogus"), None);
        assert_eq!(TelemetryMode::parse("sampled:x"), None);
    }

    #[test]
    fn interval_and_activity() {
        assert_eq!(TelemetryMode::Off.interval(), 0);
        assert_eq!(TelemetryMode::Strict.interval(), 1);
        assert_eq!(TelemetryMode::Sampled(256).interval(), 256);
        assert!(!TelemetryMode::Off.is_active());
        assert!(TelemetryMode::Strict.is_active());
        assert!(TelemetryMode::Sampled(1).is_active());
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(TelemetryMode::Off.label(), "off");
        assert_eq!(TelemetryMode::Strict.label(), "strict");
        assert_eq!(TelemetryMode::Sampled(8).label(), "sampled:8");
    }

    #[test]
    fn default_is_off() {
        assert_eq!(TelemetryMode::default(), TelemetryMode::Off);
    }
}

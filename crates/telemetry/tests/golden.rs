//! Golden-file tests pinning the exact bytes of both exporters.
//!
//! The bench suite's byte-identity guarantees (serial vs parallel, resumed
//! vs uninterrupted) extend to telemetry snapshots, so the exporter output
//! format is a compatibility surface. Any intentional format change must
//! regenerate the goldens: `UPDATE_GOLDEN=1 cargo test -p adaptnoc-telemetry
//! --test golden` and review the diff.

use adaptnoc_telemetry::prelude::*;

/// A registry exercising every feature deterministically: span durations
/// are fixed nanosecond values, never wall-clock measurements.
fn golden_registry() -> Registry {
    let mut r = Registry::new(TelemetryMode::Sampled(64));
    let pkts = r.counter(
        "adaptnoc_sim_packets_total",
        "Packets delivered.",
        "packets",
        &[],
    );
    r.add(pkts, 128);
    for vnet in ["0", "1"] {
        let c = r.counter(
            "adaptnoc_sim_vnet_packets_total",
            "Packets delivered per virtual network.",
            "packets",
            &[("vnet", vnet)],
        );
        r.add(c, if vnet == "0" { 100 } else { 28 });
    }
    let esc = r.counter(
        "adaptnoc_guard_escalations_total",
        "Escalation-ladder transitions.",
        "transitions",
        &[("rung", "1")],
    );
    r.inc(esc);
    let g = r.gauge(
        "adaptnoc_rl_reward_power_watts",
        "Power component of the last epoch's reward.",
        "watts",
        &[("region", "0")],
    );
    r.set(g, 0.125);
    let lat = r.gauge(
        "adaptnoc_sim_epoch_network_latency_cycles",
        "Mean network latency over the last epoch.",
        "cycles",
        &[],
    );
    r.set(lat, 23.5);
    let h = r.histogram(
        "adaptnoc_sim_packet_latency_cycles",
        "Per-packet end-to-end latency.",
        "cycles",
        &[],
    );
    for v in [1, 2, 5, 9, 17, 900] {
        r.observe(h, v);
    }
    let s = r.span(
        "adaptnoc_sim_stage_rc_va_seconds",
        "Route-compute + VC-allocation stage time per sampled cycle.",
        &[],
    );
    r.record_span_ns(s, 1_500);
    r.record_span_ns(s, 2_500);
    r.record_span_ns(s, 2_000);
    r.event(
        "fault.injected",
        40,
        &[("kind", "permanent_link"), ("channel", "R5->R6")],
    );
    r.event("guard.escalated", 512, &[("rung", "1")]);
    r
}

fn check_or_update(golden_path: &str, golden: &str, actual: &str) {
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("tests")
            .join(golden_path);
        std::fs::write(&path, actual).expect("write golden");
        return;
    }
    assert_eq!(
        actual, golden,
        "exporter output drifted from tests/{golden_path}; if intentional, \
         regenerate with UPDATE_GOLDEN=1 and review the diff"
    );
}

#[test]
fn prometheus_matches_golden() {
    check_or_update(
        "golden/snapshot.prom",
        include_str!("golden/snapshot.prom"),
        &prometheus(&golden_registry()),
    );
}

#[test]
fn json_lines_match_golden() {
    check_or_update(
        "golden/snapshot.jsonl",
        include_str!("golden/snapshot.jsonl"),
        &json_lines(&golden_registry()),
    );
}

#[test]
fn merged_registry_of_identical_halves_doubles_the_golden_counts() {
    let mut a = golden_registry();
    a.merge(&golden_registry());
    let snap = a.snapshot();
    let pkts = snap
        .counters
        .iter()
        .find(|c| c.name == "adaptnoc_sim_packets_total")
        .expect("merged counter present");
    assert_eq!(pkts.value, 256);
    let h = &snap.histograms[0];
    assert_eq!(h.count, 12);
    assert_eq!(snap.events.len(), 4);
}

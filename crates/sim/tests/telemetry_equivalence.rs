//! Telemetry is observation-only: a network with telemetry attached (at
//! any sampling mode) must produce a byte-identical observable history —
//! trace events, delivered packets, aggregate statistics, in-flight
//! accounting — to a network with no telemetry at all, under identical
//! seeded workloads with faults, power gating and purges. Together with
//! `Network::telemetry()` returning `None` under `TelemetryMode::Off`
//! (no hooks even reachable), this is the zero-cost-when-disabled
//! guarantee stated in `docs/OBSERVABILITY.md`.

mod common;

use adaptnoc_sim::prelude::*;
use common::{mesh_spec, random_script, run_script};

/// Runs one seeded script on a plain network and on a telemetry-attached
/// clone, requiring identical observable histories.
fn check_observation_only(seed: u64, with_faults: bool, mode: TelemetryMode) {
    let mut rng = Rng::seed_from_u64(seed);
    let (w, h) = (rng.random_range(2, 5), rng.random_range(2, 5));
    let spec = mesh_spec(w, h);
    let channels = spec.channels.len();
    let script = random_script(&mut rng, w * h, channels, with_faults);

    let plain = Network::new(spec.clone(), SimConfig::baseline()).unwrap();
    let mut instrumented = Network::new(spec, SimConfig::baseline()).unwrap();
    // Attach explicitly (not via config) so an `ADAPTNOC_TELEMETRY`
    // override in the environment cannot skew either side.
    instrumented.set_telemetry_mode(mode);

    let cycles = 1_200;
    let (d_p, t_p, e_p, f_p) = run_script(plain, &script, cycles);
    let (d_i, t_i, e_i, f_i) = run_script(instrumented, &script, cycles);

    assert_eq!(
        e_p, e_i,
        "trace events diverged (seed {seed}, {w}x{h}, faults={with_faults}, {mode:?})"
    );
    assert_eq!(d_p, d_i, "delivered packets diverged (seed {seed})");
    assert_eq!(t_p, t_i, "aggregate report diverged (seed {seed})");
    assert_eq!(f_p, f_i, "in-flight count diverged (seed {seed})");
}

/// `Off` installs no harness at all: the hooks' `Option` is `None`, so
/// the instrumented network IS the plain network.
#[test]
fn off_mode_attaches_nothing() {
    let net = Network::new(mesh_spec(3, 3), SimConfig::baseline()).unwrap();
    assert_eq!(net.telemetry_mode(), TelemetryMode::Off);
    assert!(net.telemetry().is_none(), "no registry under Off");

    let mut net = Network::new(mesh_spec(3, 3), SimConfig::baseline()).unwrap();
    net.set_telemetry_mode(TelemetryMode::Strict);
    assert!(net.telemetry().is_some());
    net.set_telemetry_mode(TelemetryMode::Off);
    assert!(net.telemetry().is_none(), "Off discards the harness");
}

/// Explicitly-Off networks replay identically to never-attached ones
/// (the `Off` byte-identity property, healthy and faulted).
#[test]
fn off_matches_no_hooks() {
    for seed in 0..8u64 {
        check_observation_only(0x7E1E0FF0 + seed, seed % 2 == 0, TelemetryMode::Off);
    }
}

/// Strict (every-cycle) collection never perturbs simulation outcomes.
#[test]
fn strict_is_observation_only() {
    for seed in 0..12u64 {
        check_observation_only(0x7E1E5717 + seed, seed % 2 == 0, TelemetryMode::Strict);
    }
}

/// Sampled collection (spans every n-th cycle) never perturbs outcomes.
#[test]
fn sampled_is_observation_only() {
    for seed in 0..12u64 {
        check_observation_only(0x7E1E5A3D + seed, seed % 2 == 0, TelemetryMode::Sampled(64));
    }
}

/// A Strict run actually collects: delivered packets show up in the
/// counters and histograms after the epoch flush.
#[test]
fn strict_collects_the_catalog() {
    let mut rng = Rng::seed_from_u64(0xC0117EC7);
    let spec = mesh_spec(4, 4);
    let channels = spec.channels.len();
    let script = random_script(&mut rng, 16, channels, false);
    let mut net = Network::new(spec, SimConfig::baseline()).unwrap();
    net.set_telemetry_mode(TelemetryMode::Strict);
    let mut delivered = 0u64;
    let mut next = 0usize;
    let mut id = 0u64;
    for cycle in 0..1_200u64 {
        while next < script.len() && script[next].0 <= cycle {
            if let common::Action::Inject { src, dst, .. } = script[next].1 {
                id += 1;
                let _ = net.inject(Packet::request(id, NodeId(src), NodeId(dst), id));
            }
            next += 1;
        }
        net.step();
        delivered += net.drain_delivered().len() as u64;
    }
    assert!(delivered > 0, "script must deliver packets");
    let _ = net.take_epoch(); // flush into the registry
    let snap = net.telemetry().expect("strict registry").snapshot();
    let packets: u64 = snap
        .counters
        .iter()
        .filter(|c| c.name == "adaptnoc_sim_packets_total")
        .map(|c| c.value)
        .sum();
    assert_eq!(packets, delivered, "counter matches observed deliveries");
    assert!(
        snap.histograms
            .iter()
            .any(|h| h.name == "adaptnoc_sim_packet_hops" && h.count == delivered),
        "hop histogram observed every delivery"
    );
    assert!(
        snap.spans
            .iter()
            .any(|s| s.name == "adaptnoc_sim_stage_rc_va_seconds" && s.count > 0),
        "strict mode timed the router stages"
    );
}

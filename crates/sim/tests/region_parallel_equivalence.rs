//! Region-parallel stepping vs. the serial stepper: the observable history
//! — delivered packets, aggregate statistics, the full trace stream, and
//! the in-flight count — must be **byte-identical at every thread count**,
//! under power gating, channel faults, router failures, purges, and
//! mid-run structural reconfiguration.
//!
//! This is the determinism contract of [`adaptnoc_sim::par`]: bands defer
//! their side effects into per-band sinks and merge them in ascending band
//! order, so parallelism is an implementation detail that no observer can
//! detect.

mod common;

use adaptnoc_sim::prelude::*;
use common::{
    mesh_spec, mesh_spec_yx, random_script, run_script, run_script_parallel, run_script_stepped,
};

const W: usize = 4;
const H: usize = 4;
const CYCLES: u64 = 900;

fn net(spec: &NetworkSpec) -> Network {
    Network::new(spec.clone(), SimConfig::baseline()).expect("valid mesh spec")
}

#[test]
fn parallel_matches_serial_across_thread_counts() {
    let spec = mesh_spec(W, H);
    let mut rng = Rng::seed_from_u64(0xBA2D);
    for _case in 0..6 {
        let script = random_script(&mut rng, W * H, spec.channels.len(), true);
        let serial = run_script(net(&spec), &script, CYCLES);
        for threads in [1usize, 2, 4] {
            let parallel = run_script_parallel(net(&spec), &script, CYCLES, threads);
            assert_eq!(
                serial.0, parallel.0,
                "delivered packets diverged at {threads} threads"
            );
            assert_eq!(serial.1, parallel.1, "report diverged at {threads} threads");
            assert_eq!(serial.2, parallel.2, "trace diverged at {threads} threads");
            assert_eq!(
                serial.3, parallel.3,
                "in-flight count diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_matches_serial_with_midrun_reconfig() {
    let spec = mesh_spec(W, H);
    let target = mesh_spec_yx(W, H);
    let mut rng = Rng::seed_from_u64(0x51CA);
    for _case in 0..4 {
        let script = random_script(&mut rng, W * H, spec.channels.len(), true);
        let reconfig_at = 200 + 100 * (rng.random_below(4) as u64);
        let serial = run_script_stepped(
            net(&spec),
            &script,
            CYCLES,
            Some((reconfig_at, target.clone())),
            |n| n.step(),
        );
        for threads in [2usize, 4] {
            let mut pool = StepPool::new(threads);
            let parallel = run_script_stepped(
                net(&spec),
                &script,
                CYCLES,
                Some((reconfig_at, target.clone())),
                move |n| n.step_parallel(&mut pool),
            );
            assert_eq!(
                serial, parallel,
                "history diverged at {threads} threads with reconfig at {reconfig_at}"
            );
        }
    }
}

#[test]
fn custom_region_map_preserves_equivalence() {
    let spec = mesh_spec(W, H);
    let mut rng = Rng::seed_from_u64(0x4E61);
    let script = random_script(&mut rng, W * H, spec.channels.len(), true);
    let serial = run_script(net(&spec), &script, CYCLES);
    // A deliberately lopsided band split: 3 routers vs 13.
    let mut pool = StepPool::new(2);
    pool.set_regions(Some(RegionMap::from_bounds(vec![0, 3, W * H])));
    let parallel = run_script_stepped(net(&spec), &script, CYCLES, None, move |n| {
        n.step_parallel(&mut pool)
    });
    assert_eq!(serial, parallel, "lopsided band split changed the history");
}

#[test]
#[should_panic(expected = "full-sweep")]
fn step_parallel_rejects_full_sweep_mode() {
    let spec = mesh_spec(W, H);
    let mut n = net(&spec);
    n.set_full_sweep(true);
    let mut pool = StepPool::new(2);
    n.step_parallel(&mut pool);
}

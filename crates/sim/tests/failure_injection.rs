//! Failure-injection tests: the simulator must degrade predictably — never
//! silently — under stalled routers, paused NIs, missing routes, and
//! aggressive power gating.

use adaptnoc_sim::prelude::*;

/// Bidirectional 1xN row helper (same as the unit-test topology).
fn row_spec(n: usize) -> NetworkSpec {
    let mut s = NetworkSpec::new(n, n, 2);
    for i in 0..n - 1 {
        let east = PortRef::new(RouterId(i as u16), PortId(0));
        let west = PortRef::new(RouterId(i as u16 + 1), PortId(1));
        s.add_channel(mesh_channel(east, west));
        s.add_channel(mesh_channel(west, east));
    }
    for i in 0..n {
        s.add_ni(NiSpec::local(
            NodeId(i as u16),
            RouterId(i as u16),
            LOCAL_PORT,
        ));
    }
    for v in 0..2u8 {
        for r in 0..n {
            for d in 0..n {
                let port = if d == r {
                    LOCAL_PORT
                } else if d > r {
                    PortId(0)
                } else {
                    PortId(1)
                };
                s.tables
                    .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
            }
        }
    }
    s
}

#[test]
fn permanently_stalled_router_holds_but_never_drops() {
    let mut net = Network::new(row_spec(4), SimConfig::baseline()).unwrap();
    net.begin_router_config(RouterId(1), u32::MAX as u64);
    for i in 0..10 {
        net.inject(Packet::request(i, NodeId(0), NodeId(3), 0))
            .unwrap();
    }
    net.run(5_000);
    // Nothing delivered, nothing lost: all flits are somewhere.
    assert!(net.drain_delivered().is_empty());
    assert_eq!(net.in_flight(), 10);
}

#[test]
fn stall_release_recovers_all_traffic() {
    let mut net = Network::new(row_spec(4), SimConfig::baseline()).unwrap();
    net.begin_router_config(RouterId(1), 2_000);
    for i in 0..10 {
        net.inject(Packet::reply(i, NodeId(0), NodeId(3), 0))
            .unwrap();
    }
    net.run(1_000);
    assert!(net.drain_delivered().is_empty());
    net.run(3_000);
    assert_eq!(net.drain_delivered().len(), 10);
    assert_eq!(net.in_flight(), 0);
}

#[test]
fn paused_ni_queues_forever_and_resumes_cleanly() {
    let mut net = Network::new(row_spec(3), SimConfig::baseline()).unwrap();
    net.set_ni_paused(NodeId(0), true);
    for i in 0..25 {
        net.inject(Packet::request(i, NodeId(0), NodeId(2), 0))
            .unwrap();
    }
    net.run(2_000);
    assert_eq!(net.ni_queue_len(NodeId(0)), 25);
    assert!(net.drain_delivered().is_empty());
    net.set_ni_paused(NodeId(0), false);
    net.run(2_000);
    assert_eq!(net.drain_delivered().len(), 25);
}

#[test]
fn missing_route_counts_unroutable_but_other_traffic_flows() {
    let mut spec = row_spec(4);
    spec.tables.clear(Vnet::REQUEST, RouterId(0), NodeId(3));
    let mut net = Network::new(spec, SimConfig::baseline()).unwrap();
    net.inject(Packet::request(1, NodeId(0), NodeId(3), 0))
        .unwrap();
    net.inject(Packet::request(2, NodeId(0), NodeId(2), 0))
        .unwrap();
    net.run(200);
    let d = net.drain_delivered();
    assert_eq!(d.len(), 1, "routable packet still flows");
    assert_eq!(d[0].packet.id, 2);
    assert!(net.unroutable_events() > 0, "stranded packet is visible");
}

#[test]
fn sleep_wake_storm_is_lossless() {
    // Aggressively gate and wake routers while traffic runs.
    let mut net = Network::new(row_spec(5), SimConfig::baseline()).unwrap();
    let mut id = 0u64;
    for cycle in 0..20_000u64 {
        if cycle % 17 == 0 {
            id += 1;
            let s = NodeId((cycle % 5) as u16);
            let d = NodeId(((cycle + 2) % 5) as u16);
            if s != d {
                net.inject(Packet::request(id, s, d, 0)).unwrap();
            } else {
                id -= 1;
            }
        }
        if cycle % 31 == 0 {
            for r in 0..5u16 {
                let _ = net.try_sleep_router(RouterId(r));
            }
        }
        if cycle % 97 == 0 {
            for r in 0..5u16 {
                net.wake_router(RouterId(r));
            }
        }
        net.step();
    }
    let mut guard = 0;
    while net.in_flight() > 0 && guard < 50_000 {
        net.step();
        guard += 1;
    }
    assert_eq!(net.in_flight(), 0);
    assert_eq!(net.drain_delivered().len() as u64, id);
}

#[test]
fn reconfigure_error_paths_leave_network_usable() {
    let mut net = Network::new(row_spec(4), SimConfig::baseline()).unwrap();
    // Shape-change rejection.
    assert!(net.reconfigure(row_spec(5)).is_err());
    // Invalid spec rejection.
    let mut bad = row_spec(4);
    bad.nis.pop();
    assert!(net.reconfigure(bad).is_err());
    // The network still works after rejected reconfigurations.
    net.inject(Packet::request(1, NodeId(0), NodeId(3), 0))
        .unwrap();
    net.run(100);
    assert_eq!(net.drain_delivered().len(), 1);
}

#[test]
fn vc_mask_flapping_is_lossless() {
    let mut net = Network::new(row_spec(4), SimConfig::baseline()).unwrap();
    let mut id = 0u64;
    for cycle in 0..5_000u64 {
        if cycle % 11 == 0 {
            id += 1;
            net.inject(Packet::reply(id, NodeId(0), NodeId(3), 0))
                .unwrap();
        }
        if cycle % 50 == 0 {
            let mask = if (cycle / 50) % 2 == 0 { 0b001 } else { 0b111 };
            for r in 0..4u16 {
                net.set_vc_mask(RouterId(r), Vnet::REPLY, mask);
            }
        }
        net.step();
    }
    while net.in_flight() > 0 {
        net.step();
    }
    assert_eq!(net.drain_delivered().len() as u64, id);
}

#[test]
fn tracer_records_full_packet_journey() {
    use adaptnoc_sim::trace::{TraceBuffer, TraceFilter};
    let mut net = Network::new(row_spec(4), SimConfig::baseline()).unwrap();
    net.set_tracer(Some(TraceBuffer::new(64, TraceFilter::Packet(42))));
    net.inject(Packet::request(42, NodeId(0), NodeId(3), 0))
        .unwrap();
    net.inject(Packet::request(43, NodeId(1), NodeId(2), 0))
        .unwrap();
    net.run(100);
    let t = net.tracer().unwrap();
    // Inject + 4 router forwards (3 hops + final ejection SA) + eject.
    let events = t.packet_events(42);
    assert!(events.len() >= 5, "got {} events", events.len());
    assert!(t.packet_events(43).is_empty(), "filtered packet traced");
    let s = t.format_packet(42);
    assert!(s.contains("inject N0 -> N3"));
    assert!(s.contains("eject after 3 hops"));
}

//! Shared property-test harness: a parametric mesh, a scripted
//! disturbance language (traffic, power gating, faults, purges) and a
//! deterministic script runner that records every observable output.
//!
//! Used by `active_set_equivalence` (active-set scheduling vs full sweep),
//! `telemetry_equivalence` (telemetry attached vs absent) and
//! `region_parallel_equivalence` (parallel stepping vs serial across
//! thread counts) — all are "two configurations, identical observable
//! history" properties over the same workload generator.

#![allow(dead_code)] // each consumer uses a subset of the harness

use adaptnoc_sim::prelude::*;

/// Builds a W x H mesh with one node per router and XY routing.
/// Ports: 0 = east, 1 = west, 2 = north (y+1), 3 = south.
pub fn mesh_spec(w: usize, h: usize) -> NetworkSpec {
    let n = w * h;
    let mut s = NetworkSpec::new(n, n, 2);
    let rid = |x: usize, y: usize| RouterId((y * w + x) as u16);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                let e = PortRef::new(rid(x, y), PortId(0));
                let wp = PortRef::new(rid(x + 1, y), PortId(1));
                s.add_channel(mesh_channel(e, wp));
                s.add_channel(mesh_channel(wp, e));
            }
            if y + 1 < h {
                let np = PortRef::new(rid(x, y), PortId(2));
                let sp = PortRef::new(rid(x, y + 1), PortId(3));
                let mut up = mesh_channel(np, sp);
                let mut down = mesh_channel(sp, np);
                up.dim_y = true;
                down.dim_y = true;
                s.add_channel(up);
                s.add_channel(down);
            }
        }
    }
    for i in 0..n {
        s.add_ni(NiSpec::local(
            NodeId(i as u16),
            RouterId(i as u16),
            LOCAL_PORT,
        ));
    }
    for v in 0..2u8 {
        for r in 0..n {
            let (rx, ry) = (r % w, r / w);
            for d in 0..n {
                let (dx, dy) = (d % w, d / w);
                let port = if d == r {
                    LOCAL_PORT
                } else if dx > rx {
                    PortId(0)
                } else if dx < rx {
                    PortId(1)
                } else if dy > ry {
                    PortId(2)
                } else {
                    PortId(3)
                };
                s.tables
                    .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
            }
        }
    }
    s
}

/// The same mesh as [`mesh_spec`] with YX routing tables (Y first, then
/// X): a valid, deadlock-free alternative routing function used as a
/// mid-run reconfiguration target that changes behaviour without touching
/// the channel set.
pub fn mesh_spec_yx(w: usize, h: usize) -> NetworkSpec {
    let mut s = mesh_spec(w, h);
    for v in 0..2u8 {
        for r in 0..w * h {
            let (rx, ry) = (r % w, r / w);
            for d in 0..w * h {
                let (dx, dy) = (d % w, d / w);
                let port = if d == r {
                    LOCAL_PORT
                } else if dy > ry {
                    PortId(2)
                } else if dy < ry {
                    PortId(3)
                } else if dx > rx {
                    PortId(0)
                } else {
                    PortId(1)
                };
                s.tables
                    .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
            }
        }
    }
    s
}

/// Scripted disturbances applied identically to the compared networks.
#[derive(Debug, Clone, Copy)]
pub enum Action {
    /// Inject a request (or reply) packet.
    Inject { src: u16, dst: u16, reply: bool },
    /// Attempt to power-gate a router.
    TrySleep(u16),
    /// Wake a gated router.
    Wake(u16),
    /// Fault or heal a channel by spec index.
    ChannelFault { index: usize, faulted: bool },
    /// Permanently fail a router.
    FailRouter(u16),
    /// Reap blocked packets.
    PurgeBlocked,
}

/// Generates a seeded disturbance script over `n` nodes / `channels`
/// channels; `with_faults` adds channel faults, a router failure, and
/// purges.
pub fn random_script(
    rng: &mut Rng,
    n: usize,
    channels: usize,
    with_faults: bool,
) -> Vec<(u64, Action)> {
    let mut script = Vec::new();
    for _ in 0..rng.random_range(40, 120) {
        let cycle = rng.random_below(600) as u64;
        script.push((
            cycle,
            Action::Inject {
                src: rng.random_below(n) as u16,
                dst: rng.random_below(n) as u16,
                reply: rng.random_bool(0.5),
            },
        ));
    }
    for _ in 0..rng.random_range(2, 8) {
        let r = rng.random_below(n) as u16;
        let cycle = rng.random_below(700) as u64;
        script.push((cycle, Action::TrySleep(r)));
        script.push((cycle + rng.random_range(5, 120) as u64, Action::Wake(r)));
    }
    if with_faults {
        for _ in 0..rng.random_range(1, 4) {
            let index = rng.random_below(channels);
            let cycle = rng.random_range(100, 500) as u64;
            script.push((
                cycle,
                Action::ChannelFault {
                    index,
                    faulted: true,
                },
            ));
            if rng.random_bool(0.5) {
                script.push((
                    cycle + rng.random_range(20, 200) as u64,
                    Action::ChannelFault {
                        index,
                        faulted: false,
                    },
                ));
            }
        }
        if rng.random_bool(0.5) {
            script.push((
                rng.random_range(200, 500) as u64,
                Action::FailRouter(rng.random_below(n) as u16),
            ));
        }
        for _ in 0..2 {
            script.push((rng.random_range(400, 900) as u64, Action::PurgeBlocked));
        }
    }
    script.sort_by_key(|(c, _)| *c);
    script
}

/// The observable history of a scripted run: delivered packets, the
/// aggregate report, the full trace, and the final in-flight count.
pub type ScriptHistory = (Vec<Delivered>, EpochReport, Vec<TraceEvent>, u64);

/// Runs the script on one network with the serial stepper.
pub fn run_script(net: Network, script: &[(u64, Action)], cycles: u64) -> ScriptHistory {
    run_script_stepped(net, script, cycles, None, |net| net.step())
}

/// Runs the script on one network with the region-parallel stepper at
/// `threads` threads. Byte-identical history to [`run_script`] is exactly
/// the property the region-parallel tests pin.
pub fn run_script_parallel(
    net: Network,
    script: &[(u64, Action)],
    cycles: u64,
    threads: usize,
) -> ScriptHistory {
    let mut pool = StepPool::new(threads);
    run_script_stepped(net, script, cycles, None, move |net| {
        net.step_parallel(&mut pool)
    })
}

/// Runs the script on one network with a caller-provided stepper, applying
/// an optional mid-run structural reconfiguration at a given cycle.
pub fn run_script_stepped(
    mut net: Network,
    script: &[(u64, Action)],
    cycles: u64,
    mut reconfig: Option<(u64, NetworkSpec)>,
    mut step: impl FnMut(&mut Network),
) -> ScriptHistory {
    net.set_tracer(Some(TraceBuffer::all(1 << 16)));
    let keys: Vec<ChannelKey> = net.spec().channels.iter().map(|c| c.key()).collect();
    let mut delivered = Vec::new();
    let mut next = 0usize;
    let mut id = 0u64;
    for cycle in 0..cycles {
        while next < script.len() && script[next].0 <= cycle {
            match script[next].1 {
                Action::Inject { src, dst, reply } => {
                    id += 1;
                    let pkt = if reply {
                        Packet::reply(id, NodeId(src), NodeId(dst), id)
                    } else {
                        Packet::request(id, NodeId(src), NodeId(dst), id)
                    };
                    // Injection may be rejected (e.g. failed source
                    // router); both configurations must reject
                    // identically, which the delivered/stats comparison
                    // catches.
                    let _ = net.inject(pkt);
                }
                Action::TrySleep(r) => {
                    let _ = net.try_sleep_router(RouterId(r));
                }
                Action::Wake(r) => net.wake_router(RouterId(r)),
                Action::ChannelFault { index, faulted } => {
                    let _ = net.set_channel_fault(keys[index], faulted);
                }
                Action::FailRouter(r) => {
                    let _ = net.fail_router(RouterId(r));
                }
                Action::PurgeBlocked => {
                    let _ = net.purge_blocked();
                }
            }
            next += 1;
        }
        if let Some((at, _)) = &reconfig {
            if *at == cycle {
                let (_, spec) = reconfig.take().expect("checked above");
                net.reconfigure(spec)
                    .expect("scripted reconfiguration must be valid");
            }
        }
        step(&mut net);
        assert_eq!(
            net.in_flight(),
            net.in_flight_recount(),
            "incremental in-flight counter diverged from recount"
        );
        delivered.extend(net.drain_delivered());
    }
    let events: Vec<TraceEvent> = net
        .tracer()
        .expect("tracer installed")
        .events()
        .cloned()
        .collect();
    let in_flight = net.in_flight();
    (delivered, net.totals(), events, in_flight)
}

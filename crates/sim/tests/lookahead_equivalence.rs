//! Lookahead route computation vs. the classic per-router table walk: the
//! observable history — delivered packets, aggregate statistics, the full
//! trace stream, and the in-flight count — must be **byte-identical**,
//! with the table-walk reference serial and the lookahead run at any
//! thread count, under channel faults, router failures, purges, and a
//! mid-run structural reconfiguration that swaps the routing tables.
//!
//! This is the correctness contract of the lookahead RC fast path: a head
//! flit's output port is resolved one hop upstream and carried in the
//! header, tagged with the routing-table epoch it was resolved against.
//! The table swap inside `reconfigure` bumps the epoch, so every
//! in-flight lookahead decision is invalidated atomically and the
//! affected heads fall back to a table walk — if any stale port survived,
//! these histories would diverge.

mod common;

use adaptnoc_sim::prelude::*;
use common::{mesh_spec, mesh_spec_yx, random_script, run_script_stepped};

const W: usize = 4;
const H: usize = 4;
const CYCLES: u64 = 900;

fn net(spec: &NetworkSpec, lookahead: bool) -> Network {
    let mut n = Network::new(spec.clone(), SimConfig::baseline()).expect("valid mesh spec");
    n.set_lookahead_rc(lookahead);
    n
}

#[test]
fn lookahead_matches_table_walk_across_thread_counts() {
    let spec = mesh_spec(W, H);
    let mut rng = Rng::seed_from_u64(0x10CA);
    for _case in 0..6 {
        let script = random_script(&mut rng, W * H, spec.channels.len(), true);
        let reference = run_script_stepped(net(&spec, false), &script, CYCLES, None, |n| n.step());
        let serial = run_script_stepped(net(&spec, true), &script, CYCLES, None, |n| n.step());
        assert_eq!(reference, serial, "lookahead diverged from the table walk");
        for threads in [2usize, 4] {
            let mut pool = StepPool::new(threads);
            let parallel = run_script_stepped(net(&spec, true), &script, CYCLES, None, move |n| {
                n.step_parallel(&mut pool)
            });
            assert_eq!(
                reference, parallel,
                "lookahead at {threads} threads diverged from the serial table walk"
            );
        }
    }
}

#[test]
fn lookahead_matches_table_walk_with_midrun_reconfig() {
    let spec = mesh_spec(W, H);
    let target = mesh_spec_yx(W, H);
    let mut rng = Rng::seed_from_u64(0x10CB);
    for _case in 0..4 {
        let script = random_script(&mut rng, W * H, spec.channels.len(), true);
        let reconfig_at = 200 + 100 * (rng.random_below(4) as u64);
        let reference = run_script_stepped(
            net(&spec, false),
            &script,
            CYCLES,
            Some((reconfig_at, target.clone())),
            |n| n.step(),
        );
        for threads in [1usize, 2, 4] {
            let mut pool = (threads > 1).then(|| StepPool::new(threads));
            let lookahead = run_script_stepped(
                net(&spec, true),
                &script,
                CYCLES,
                Some((reconfig_at, target.clone())),
                move |n| match pool.as_mut() {
                    Some(pool) => n.step_parallel(pool),
                    None => n.step(),
                },
            );
            assert_eq!(
                reference, lookahead,
                "history diverged at {threads} threads with reconfig at {reconfig_at}"
            );
        }
    }
}

#[test]
fn table_walk_flag_roundtrips() {
    let spec = mesh_spec(W, H);
    let mut n = net(&spec, true);
    assert!(n.lookahead_rc());
    n.set_lookahead_rc(false);
    assert!(!n.lookahead_rc());
}

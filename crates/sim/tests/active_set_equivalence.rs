//! Active-set scheduling vs naive full sweep: cycle-for-cycle equivalence.
//!
//! `Network::step()` normally walks worklists of busy routers, channels
//! and NIs; `set_full_sweep(true)` restores the naive scan of every
//! component (and recomputes the static-power profile every cycle, so the
//! dirty-flag cache is validated too). These property tests drive both
//! modes with identical seeded workloads — random traffic plus power
//! gating, channel faults, router failures and blocked-packet purges —
//! and require identical trace events, delivered packets, aggregate
//! statistics, and in-flight accounting at every cycle.

mod common;

use adaptnoc_sim::prelude::*;
use common::{mesh_spec, random_script, run_script, Action};

fn check_equivalence(seed: u64, with_faults: bool) {
    let mut rng = Rng::seed_from_u64(seed);
    let (w, h) = (rng.random_range(2, 5), rng.random_range(2, 5));
    let spec = mesh_spec(w, h);
    let channels = spec.channels.len();
    let script = random_script(&mut rng, w * h, channels, with_faults);

    let active = Network::new(spec.clone(), SimConfig::baseline()).unwrap();
    let mut sweep = Network::new(spec, SimConfig::baseline()).unwrap();
    sweep.set_full_sweep(true);

    let cycles = 1_500;
    let (d_a, t_a, e_a, f_a) = run_script(active, &script, cycles);
    let (d_s, t_s, e_s, f_s) = run_script(sweep, &script, cycles);

    assert_eq!(
        e_a, e_s,
        "trace events diverged (seed {seed}, {w}x{h}, faults={with_faults})"
    );
    assert_eq!(d_a, d_s, "delivered packets diverged (seed {seed})");
    assert_eq!(t_a, t_s, "aggregate report diverged (seed {seed})");
    assert_eq!(f_a, f_s, "in-flight count diverged (seed {seed})");
}

/// Healthy networks: traffic plus power gating.
#[test]
fn active_set_matches_full_sweep_healthy() {
    for seed in 0..24u64 {
        check_equivalence(0xAC71FE00 + seed, false);
    }
}

/// Faulted networks: traffic, gating, channel faults, router failures and
/// purges.
#[test]
fn active_set_matches_full_sweep_with_faults() {
    for seed in 0..24u64 {
        check_equivalence(0xFA017ED0 + seed, true);
    }
}

/// A saturating all-to-all burst keeps every worklist busy at once.
#[test]
fn active_set_matches_full_sweep_under_saturation() {
    let spec = mesh_spec(4, 4);
    let mut script = Vec::new();
    for cycle in 0..64u64 {
        for s in 0..16u16 {
            script.push((
                cycle,
                Action::Inject {
                    src: s,
                    dst: (s + 7) % 16,
                    reply: s % 2 == 0,
                },
            ));
        }
    }
    let active = Network::new(spec.clone(), SimConfig::baseline()).unwrap();
    let mut sweep = Network::new(spec, SimConfig::baseline()).unwrap();
    sweep.set_full_sweep(true);
    let (d_a, t_a, e_a, f_a) = run_script(active, &script, 3_000);
    let (d_s, t_s, e_s, f_s) = run_script(sweep, &script, 3_000);
    assert_eq!(e_a, e_s);
    assert_eq!(d_a, d_s);
    assert_eq!(t_a, t_s);
    assert_eq!(f_a, f_s);
    assert_eq!(f_a, 0, "burst must fully drain");
}

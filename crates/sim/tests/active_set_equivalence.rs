//! Active-set scheduling vs naive full sweep: cycle-for-cycle equivalence.
//!
//! `Network::step()` normally walks worklists of busy routers, channels
//! and NIs; `set_full_sweep(true)` restores the naive scan of every
//! component (and recomputes the static-power profile every cycle, so the
//! dirty-flag cache is validated too). These property tests drive both
//! modes with identical seeded workloads — random traffic plus power
//! gating, channel faults, router failures and blocked-packet purges —
//! and require identical trace events, delivered packets, aggregate
//! statistics, and in-flight accounting at every cycle.

use adaptnoc_sim::prelude::*;

/// Builds a W x H mesh with one node per router and XY routing.
/// Ports: 0 = east, 1 = west, 2 = north (y+1), 3 = south.
fn mesh_spec(w: usize, h: usize) -> NetworkSpec {
    let n = w * h;
    let mut s = NetworkSpec::new(n, n, 2);
    let rid = |x: usize, y: usize| RouterId((y * w + x) as u16);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                let e = PortRef::new(rid(x, y), PortId(0));
                let wp = PortRef::new(rid(x + 1, y), PortId(1));
                s.add_channel(mesh_channel(e, wp));
                s.add_channel(mesh_channel(wp, e));
            }
            if y + 1 < h {
                let np = PortRef::new(rid(x, y), PortId(2));
                let sp = PortRef::new(rid(x, y + 1), PortId(3));
                let mut up = mesh_channel(np, sp);
                let mut down = mesh_channel(sp, np);
                up.dim_y = true;
                down.dim_y = true;
                s.add_channel(up);
                s.add_channel(down);
            }
        }
    }
    for i in 0..n {
        s.add_ni(NiSpec::local(
            NodeId(i as u16),
            RouterId(i as u16),
            LOCAL_PORT,
        ));
    }
    for v in 0..2u8 {
        for r in 0..n {
            let (rx, ry) = (r % w, r / w);
            for d in 0..n {
                let (dx, dy) = (d % w, d / w);
                let port = if d == r {
                    LOCAL_PORT
                } else if dx > rx {
                    PortId(0)
                } else if dx < rx {
                    PortId(1)
                } else if dy > ry {
                    PortId(2)
                } else {
                    PortId(3)
                };
                s.tables
                    .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
            }
        }
    }
    s
}

/// Scripted disturbances applied identically to both networks.
#[derive(Debug, Clone, Copy)]
enum Action {
    Inject { src: u16, dst: u16, reply: bool },
    TrySleep(u16),
    Wake(u16),
    ChannelFault { index: usize, faulted: bool },
    FailRouter(u16),
    PurgeBlocked,
}

fn random_script(
    rng: &mut Rng,
    n: usize,
    channels: usize,
    with_faults: bool,
) -> Vec<(u64, Action)> {
    let mut script = Vec::new();
    for _ in 0..rng.random_range(40, 120) {
        let cycle = rng.random_below(600) as u64;
        script.push((
            cycle,
            Action::Inject {
                src: rng.random_below(n) as u16,
                dst: rng.random_below(n) as u16,
                reply: rng.random_bool(0.5),
            },
        ));
    }
    for _ in 0..rng.random_range(2, 8) {
        let r = rng.random_below(n) as u16;
        let cycle = rng.random_below(700) as u64;
        script.push((cycle, Action::TrySleep(r)));
        script.push((cycle + rng.random_range(5, 120) as u64, Action::Wake(r)));
    }
    if with_faults {
        for _ in 0..rng.random_range(1, 4) {
            let index = rng.random_below(channels);
            let cycle = rng.random_range(100, 500) as u64;
            script.push((
                cycle,
                Action::ChannelFault {
                    index,
                    faulted: true,
                },
            ));
            if rng.random_bool(0.5) {
                script.push((
                    cycle + rng.random_range(20, 200) as u64,
                    Action::ChannelFault {
                        index,
                        faulted: false,
                    },
                ));
            }
        }
        if rng.random_bool(0.5) {
            script.push((
                rng.random_range(200, 500) as u64,
                Action::FailRouter(rng.random_below(n) as u16),
            ));
        }
        for _ in 0..2 {
            script.push((rng.random_range(400, 900) as u64, Action::PurgeBlocked));
        }
    }
    script.sort_by_key(|(c, _)| *c);
    script
}

/// Runs the script on one network and returns its observable history.
fn run_script(
    mut net: Network,
    script: &[(u64, Action)],
    cycles: u64,
) -> (Vec<Delivered>, EpochReport, Vec<TraceEvent>, u64) {
    net.set_tracer(Some(TraceBuffer::all(1 << 16)));
    let keys: Vec<ChannelKey> = net.spec().channels.iter().map(|c| c.key()).collect();
    let mut delivered = Vec::new();
    let mut next = 0usize;
    let mut id = 0u64;
    for cycle in 0..cycles {
        while next < script.len() && script[next].0 <= cycle {
            match script[next].1 {
                Action::Inject { src, dst, reply } => {
                    id += 1;
                    let pkt = if reply {
                        Packet::reply(id, NodeId(src), NodeId(dst), id)
                    } else {
                        Packet::request(id, NodeId(src), NodeId(dst), id)
                    };
                    // Injection may be rejected (e.g. failed source
                    // router); both modes must reject identically, which
                    // the delivered/stats comparison catches.
                    let _ = net.inject(pkt);
                }
                Action::TrySleep(r) => {
                    let _ = net.try_sleep_router(RouterId(r));
                }
                Action::Wake(r) => net.wake_router(RouterId(r)),
                Action::ChannelFault { index, faulted } => {
                    let _ = net.set_channel_fault(keys[index], faulted);
                }
                Action::FailRouter(r) => {
                    let _ = net.fail_router(RouterId(r));
                }
                Action::PurgeBlocked => {
                    let _ = net.purge_blocked();
                }
            }
            next += 1;
        }
        net.step();
        assert_eq!(
            net.in_flight(),
            net.in_flight_recount(),
            "incremental in-flight counter diverged from recount"
        );
        delivered.extend(net.drain_delivered());
    }
    let events: Vec<TraceEvent> = net
        .tracer()
        .expect("tracer installed")
        .events()
        .cloned()
        .collect();
    let in_flight = net.in_flight();
    (delivered, net.totals(), events, in_flight)
}

fn check_equivalence(seed: u64, with_faults: bool) {
    let mut rng = Rng::seed_from_u64(seed);
    let (w, h) = (rng.random_range(2, 5), rng.random_range(2, 5));
    let spec = mesh_spec(w, h);
    let channels = spec.channels.len();
    let script = random_script(&mut rng, w * h, channels, with_faults);

    let active = Network::new(spec.clone(), SimConfig::baseline()).unwrap();
    let mut sweep = Network::new(spec, SimConfig::baseline()).unwrap();
    sweep.set_full_sweep(true);

    let cycles = 1_500;
    let (d_a, t_a, e_a, f_a) = run_script(active, &script, cycles);
    let (d_s, t_s, e_s, f_s) = run_script(sweep, &script, cycles);

    assert_eq!(
        e_a, e_s,
        "trace events diverged (seed {seed}, {w}x{h}, faults={with_faults})"
    );
    assert_eq!(d_a, d_s, "delivered packets diverged (seed {seed})");
    assert_eq!(t_a, t_s, "aggregate report diverged (seed {seed})");
    assert_eq!(f_a, f_s, "in-flight count diverged (seed {seed})");
}

/// Healthy networks: traffic plus power gating.
#[test]
fn active_set_matches_full_sweep_healthy() {
    for seed in 0..24u64 {
        check_equivalence(0xAC71FE00 + seed, false);
    }
}

/// Faulted networks: traffic, gating, channel faults, router failures and
/// purges.
#[test]
fn active_set_matches_full_sweep_with_faults() {
    for seed in 0..24u64 {
        check_equivalence(0xFA017ED0 + seed, true);
    }
}

/// A saturating all-to-all burst keeps every worklist busy at once.
#[test]
fn active_set_matches_full_sweep_under_saturation() {
    let spec = mesh_spec(4, 4);
    let mut script = Vec::new();
    for cycle in 0..64u64 {
        for s in 0..16u16 {
            script.push((
                cycle,
                Action::Inject {
                    src: s,
                    dst: (s + 7) % 16,
                    reply: s % 2 == 0,
                },
            ));
        }
    }
    let active = Network::new(spec.clone(), SimConfig::baseline()).unwrap();
    let mut sweep = Network::new(spec, SimConfig::baseline()).unwrap();
    sweep.set_full_sweep(true);
    let (d_a, t_a, e_a, f_a) = run_script(active, &script, 3_000);
    let (d_s, t_s, e_s, f_s) = run_script(sweep, &script, 3_000);
    assert_eq!(e_a, e_s);
    assert_eq!(d_a, d_s);
    assert_eq!(t_a, t_s);
    assert_eq!(f_a, f_s);
    assert_eq!(f_a, 0, "burst must fully drain");
}

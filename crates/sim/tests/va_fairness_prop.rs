//! VC-allocation fairness under sustained hotspots: the round-robin
//! VA/SA arbiters must keep every persistently-requesting input VC
//! progressing — no source may starve while a contended output port is
//! being granted.
//!
//! This property guards the candidate-mask VA rewrite: the mask scan
//! changes *how* eligible VCs are found, but must not change *who* wins —
//! the round-robin pointers still rotate over the same grant order, so
//! per-port strong fairness is preserved.
//!
//! Two levels of guarantee are asserted, matching what the arbiters
//! actually promise:
//!
//! 1. **Per-port fairness** (tight bound): when the contenders meet at a
//!    *single* router — the hotspot's direct neighbors, one per input
//!    port — round-robin grants give every source a near-equal share.
//! 2. **No complete starvation** (floor only): when the whole mesh
//!    offers traffic, per-port RR shares compound multiplicatively along
//!    the merge tree (the parking-lot effect), so distant sources
//!    legitimately receive exponentially smaller shares; the arbiter
//!    still guarantees every queue drains. A fixed skew bound here would
//!    assert global max-min fairness that per-hop RR never promised.

mod common;

use adaptnoc_sim::prelude::*;
use common::mesh_spec;

const W: usize = 3;
const H: usize = 3;
const CYCLES: u64 = 6_000;
/// Offer a packet per source every this many cycles — above the
/// hotspot's single ejection port capacity, so the fabric saturates and
/// arbitration (not load) decides who progresses.
const INJECT_PERIOD: u64 = 4;

/// Runs a hotspot scenario with the given source set and returns
/// delivered packet counts per source node.
fn hotspot_deliveries(hotspot: u16, sources: &[u16], replies: bool) -> Vec<u64> {
    let spec = mesh_spec(W, H);
    let mut net = Network::new(spec, SimConfig::baseline()).expect("valid mesh spec");
    let mut delivered = vec![0u64; W * H];
    let mut id = 0u64;
    for cycle in 0..CYCLES {
        if cycle % INJECT_PERIOD == 0 {
            for &src in sources {
                id += 1;
                let pkt = if replies {
                    Packet::reply(id, NodeId(src), NodeId(hotspot), id)
                } else {
                    Packet::request(id, NodeId(src), NodeId(hotspot), id)
                };
                net.inject(pkt).expect("live source NI");
            }
        }
        net.step();
        for d in net.drain_delivered() {
            delivered[d.packet.src.index()] += 1;
        }
        if cycle % 1_000 == 0 {
            let violations = net.check_invariants();
            assert!(violations.is_empty(), "invariants violated: {violations:?}");
        }
    }
    delivered
}

fn source_counts(delivered: &[u64], sources: &[u16]) -> (u64, u64, u64) {
    let counts: Vec<u64> = sources.iter().map(|&s| delivered[s as usize]).collect();
    let min = *counts.iter().min().expect("at least one source");
    let max = *counts.iter().max().expect("at least one source");
    (min, max, counts.iter().sum())
}

/// Direct neighbors of the center router, one per input port: the pure
/// single-router arbitration case where round-robin means near-equal
/// shares.
const CENTER: u16 = 4;
const NEIGHBORS: [u16; 4] = [1, 3, 5, 7];

#[test]
fn neighbor_hotspot_shares_are_near_equal() {
    let delivered = hotspot_deliveries(CENTER, &NEIGHBORS, false);
    let (min, max, total) = source_counts(&delivered, &NEIGHBORS);
    assert!(total > 1_000, "not saturating ({delivered:?})");
    assert!(
        min * 2 >= max,
        "single-router RR shares skewed beyond 2x (min {min}, max {max}, all {delivered:?})"
    );
}

#[test]
fn neighbor_hotspot_shares_are_near_equal_multiflit() {
    // Multi-flit replies hold their VC allocation across several cycles,
    // which is where an allocation-mask desync or an unfair grant order
    // would show up as a wedged or starved VC.
    let delivered = hotspot_deliveries(CENTER, &NEIGHBORS, true);
    let (min, max, total) = source_counts(&delivered, &NEIGHBORS);
    assert!(total > 300, "not saturating ({delivered:?})");
    assert!(
        min * 2 >= max,
        "single-router RR shares skewed beyond 2x (min {min}, max {max}, all {delivered:?})"
    );
}

#[test]
fn full_mesh_center_hotspot_starves_no_source() {
    let sources: Vec<u16> = (0..(W * H) as u16).filter(|&s| s != CENTER).collect();
    let delivered = hotspot_deliveries(CENTER, &sources, false);
    let (min, _, total) = source_counts(&delivered, &sources);
    assert!(total > 1_000, "not saturating ({delivered:?})");
    assert!(
        min * 50 > total,
        "a source fell below 2% of hotspot service — starved (deliveries {delivered:?})"
    );
}

#[test]
fn full_mesh_corner_hotspot_starves_no_source() {
    let hotspot = 0u16;
    let sources: Vec<u16> = (0..(W * H) as u16).filter(|&s| s != hotspot).collect();
    let delivered = hotspot_deliveries(hotspot, &sources, false);
    let (min, _, total) = source_counts(&delivered, &sources);
    assert!(total > 1_000, "not saturating ({delivered:?})");
    // The deepest merge chain (corner-to-corner) compounds several RR
    // halvings, so only a completeness floor is meaningful here.
    assert!(
        min > 0,
        "a source starved completely (deliveries {delivered:?})"
    );
}

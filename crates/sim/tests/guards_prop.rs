//! Property tests for the runtime health guards.
//!
//! Two directions: (1) under seeded random chaos — traffic, power gating,
//! channel faults, router failures, purges, and mid-flight
//! reconfigurations — strict invariant checking never fires, i.e. the
//! guards have no false positives on legal executions; (2) a deliberately
//! corrupted network (an injected credit leak) must trip the guard, i.e.
//! the checks actually have teeth.
//!
//! Cases come from the in-tree seeded PRNG so every run exercises the
//! same inputs.

use adaptnoc_sim::prelude::*;
use adaptnoc_sim::rng::Rng;

/// Builds a W x H mesh with one node per router and XY routing.
/// Ports: 0 = east, 1 = west, 2 = north (y+1), 3 = south.
fn mesh_spec(w: usize, h: usize) -> NetworkSpec {
    let n = w * h;
    let mut s = NetworkSpec::new(n, n, 2);
    let rid = |x: usize, y: usize| RouterId((y * w + x) as u16);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                let e = PortRef::new(rid(x, y), PortId(0));
                let wp = PortRef::new(rid(x + 1, y), PortId(1));
                s.add_channel(mesh_channel(e, wp));
                s.add_channel(mesh_channel(wp, e));
            }
            if y + 1 < h {
                let np = PortRef::new(rid(x, y), PortId(2));
                let sp = PortRef::new(rid(x, y + 1), PortId(3));
                let mut up = mesh_channel(np, sp);
                let mut down = mesh_channel(sp, np);
                up.dim_y = true;
                down.dim_y = true;
                s.add_channel(up);
                s.add_channel(down);
            }
        }
    }
    for i in 0..n {
        s.add_ni(NiSpec::local(
            NodeId(i as u16),
            RouterId(i as u16),
            LOCAL_PORT,
        ));
    }
    for v in 0..2u8 {
        for r in 0..n {
            let (rx, ry) = (r % w, r / w);
            for d in 0..n {
                let (dx, dy) = (d % w, d / w);
                let port = if d == r {
                    LOCAL_PORT
                } else if dx > rx {
                    PortId(0)
                } else if dx < rx {
                    PortId(1)
                } else if dy > ry {
                    PortId(2)
                } else {
                    PortId(3)
                };
                s.tables
                    .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
            }
        }
    }
    s
}

/// One seeded chaos run with strict guards: every invariant family is
/// checked every cycle, and any violation panics the test.
fn chaos_run(seed: u64) {
    let (w, h) = (4usize, 4usize);
    let spec = mesh_spec(w, h);
    let keys: Vec<ChannelKey> = spec.channels.iter().map(|c| c.key()).collect();
    let mut net = Network::new(spec, SimConfig::baseline()).unwrap();
    net.set_guard_mode(GuardMode::Strict);
    let mut rng = Rng::seed_from_u64(seed);
    let n = w * h;

    let mut next_id = 1u64;
    let mut failed: Vec<u16> = Vec::new();
    for cycle in 0..1_500u64 {
        // Traffic: a burst of random flows most cycles early on.
        if cycle < 700 && rng.random_bool(0.7) {
            for _ in 0..rng.random_range(1, 4) {
                let src = rng.random_below(n) as u16;
                let dst = rng.random_below(n) as u16;
                if failed.contains(&src) || failed.contains(&dst) {
                    continue;
                }
                net.inject(Packet::request(next_id, NodeId(src), NodeId(dst), 0))
                    .unwrap();
                next_id += 1;
            }
        }
        // Power gating: opportunistic sleeps and wakes.
        if rng.random_bool(0.05) {
            let r = rng.random_below(n) as u16;
            net.try_sleep_router(RouterId(r));
        }
        if rng.random_bool(0.05) {
            let r = rng.random_below(n) as u16;
            if !failed.contains(&r) {
                net.wake_router(RouterId(r));
            }
        }
        // Transient channel faults; purged packets go back in as retries.
        if rng.random_bool(0.02) {
            let key = keys[rng.random_below(keys.len())];
            let purged = net.set_channel_fault(key, true).unwrap();
            for p in purged {
                if !failed.contains(&p.src.0) && !failed.contains(&p.dst.0) {
                    net.inject_retry(p, 1).unwrap();
                }
            }
        }
        if rng.random_bool(0.02) {
            let key = keys[rng.random_below(keys.len())];
            net.set_channel_fault(key, false).unwrap();
        }
        // A rare permanent router failure (at most one per run keeps the
        // mesh connected enough for traffic to keep flowing).
        if failed.is_empty() && cycle > 300 && rng.random_bool(0.002) {
            let r = rng.random_below(n) as u16;
            net.fail_router(RouterId(r));
            failed.push(r);
        }
        if rng.random_bool(0.01) {
            net.purge_blocked();
        }
        // Mid-flight reconfiguration: a same-shape spec swap exercises the
        // channel/credit state carry-over with traffic in the air.
        if rng.random_bool(0.005) && failed.is_empty() {
            net.reconfigure(mesh_spec(w, h)).unwrap();
        }
        net.step();
    }

    let health = net.totals().health;
    assert!(health.checks >= 1_500, "strict mode checks every cycle");
    assert_eq!(health.violations, 0, "no violations on a legal execution");
    assert!(net.guard_violations().is_empty());
    assert!(net.check_invariants().is_empty());
}

#[test]
fn random_chaos_under_strict_guards_is_violation_free() {
    for case in 0..8u64 {
        chaos_run(0x6A5D ^ (case * 0x9E37_79B9));
    }
}

/// A sampled guard must catch a deliberately corrupted network: leak one
/// credit and the per-VC credit-conservation sweep flags the channel.
#[test]
fn injected_credit_leak_trips_the_sampled_guard() {
    let mut net = Network::new(mesh_spec(4, 4), SimConfig::baseline()).unwrap();
    net.set_guard_mode(GuardMode::Sampled(64));
    for i in 0..8u64 {
        net.inject(Packet::request(i + 1, NodeId(0), NodeId(15), 0))
            .unwrap();
    }
    net.run(100);
    let key = net.spec().channels[0].key();
    net.chaos_leak_credit(key, 0).unwrap();
    net.run(128);
    let health = net.totals().health;
    assert!(health.violations > 0, "the leak must be detected");
    let hits = net.guard_violations();
    assert!(
        hits.iter()
            .any(|v| v.kind == InvariantKind::CreditConservation),
        "expected a credit-conservation violation, got: {hits:?}"
    );
}

/// In strict mode the same corruption panics immediately.
#[test]
#[should_panic(expected = "invariant violation")]
fn injected_credit_leak_panics_under_strict_guards() {
    let mut net = Network::new(mesh_spec(4, 4), SimConfig::baseline()).unwrap();
    net.set_guard_mode(GuardMode::Strict);
    for i in 0..8u64 {
        net.inject(Packet::request(i + 1, NodeId(0), NodeId(15), 0))
            .unwrap();
    }
    net.run(100);
    let key = net.spec().channels[0].key();
    net.chaos_leak_credit(key, 0).unwrap();
    net.run(4);
}

//! Randomized property tests for the simulator core invariants:
//! packet conservation, payload integrity, drain-to-empty, and
//! determinism, over seeded row networks and traffic loads.
//!
//! Cases are generated from the in-tree deterministic PRNG so every CI
//! run exercises exactly the same inputs (reproducible failures, no
//! registry dependencies).

use adaptnoc_sim::prelude::*;
use adaptnoc_sim::rng::Rng;

/// Builds a bidirectional 1xN row with one node per router and XY-trivial
/// routing tables.
fn row_spec(n: usize) -> NetworkSpec {
    let mut s = NetworkSpec::new(n, n, 2);
    for i in 0..n - 1 {
        let east = PortRef::new(RouterId(i as u16), PortId(0));
        let west = PortRef::new(RouterId(i as u16 + 1), PortId(1));
        s.add_channel(mesh_channel(east, west));
        s.add_channel(mesh_channel(west, east));
    }
    for i in 0..n {
        s.add_ni(NiSpec::local(
            NodeId(i as u16),
            RouterId(i as u16),
            LOCAL_PORT,
        ));
    }
    for v in 0..2u8 {
        for r in 0..n {
            for d in 0..n {
                let port = if d == r {
                    LOCAL_PORT
                } else if d > r {
                    PortId(0)
                } else {
                    PortId(1)
                };
                s.tables
                    .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
            }
        }
    }
    s
}

/// A randomly generated traffic plan: (inject_cycle, src, dst, reply?).
fn random_plan(rng: &mut Rng, n: usize, max_pkts: usize) -> Vec<(u64, u16, u16, bool)> {
    let count = rng.random_range(1, max_pkts);
    (0..count)
        .map(|_| {
            (
                rng.random_below(200) as u64,
                rng.random_below(n) as u16,
                rng.random_below(n) as u16,
                rng.random_bool(0.5),
            )
        })
        .collect()
}

/// Every injected packet is delivered exactly once, payload intact, and
/// the network drains to empty.
#[test]
fn packet_conservation() {
    let mut rng = Rng::seed_from_u64(0xC0FFEE);
    for _case in 0..64 {
        let n = rng.random_range(2, 7);
        let mut plan = random_plan(&mut rng, n, 60);
        let mut net = Network::new(row_spec(n), SimConfig::baseline()).unwrap();
        plan.sort_by_key(|p| p.0);
        let mut expected: Vec<(u64, u16, u16)> = Vec::new();
        let mut next = 0usize;
        let mut id = 0u64;
        for cycle in 0..10_000u64 {
            while next < plan.len() && plan[next].0 <= cycle {
                let (_, src, dst, reply) = plan[next];
                id += 1;
                let pkt = if reply {
                    Packet::reply(id, NodeId(src), NodeId(dst), id * 3)
                } else {
                    Packet::request(id, NodeId(src), NodeId(dst), id * 3)
                };
                expected.push((id, src, dst));
                net.inject(pkt).unwrap();
                next += 1;
            }
            net.step();
            if next == plan.len() && net.in_flight() == 0 {
                break;
            }
        }
        assert_eq!(net.in_flight(), 0, "network failed to drain");
        let mut got = net.drain_delivered();
        got.sort_by_key(|d| d.packet.id);
        assert_eq!(got.len(), expected.len());
        for (d, (id, src, dst)) in got.iter().zip(expected.iter()) {
            assert_eq!(d.packet.id, *id);
            assert_eq!(d.packet.src, NodeId(*src));
            assert_eq!(d.packet.dst, NodeId(*dst));
            assert_eq!(d.packet.tag, id * 3);
            assert!(d.ejected_at >= d.injected_at);
            assert!(d.injected_at >= d.packet.created_at);
        }
        assert_eq!(net.unroutable_events(), 0);
    }
}

/// Hop counts equal the source-destination distance in a row (minimal
/// routing, no livelock detours).
#[test]
fn hops_equal_manhattan_distance() {
    let mut rng = Rng::seed_from_u64(0xD15C0);
    for _case in 0..64 {
        let n = rng.random_range(2, 7);
        let src = rng.random_below(n) as u16;
        let dst = rng.random_below(n) as u16;
        let mut net = Network::new(row_spec(n), SimConfig::baseline()).unwrap();
        net.inject(Packet::request(1, NodeId(src), NodeId(dst), 0))
            .unwrap();
        net.run(200);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].hops as i32, (src as i32 - dst as i32).abs());
    }
}

/// The simulator is deterministic: the same plan yields identical
/// delivery timings.
#[test]
fn determinism() {
    let mut rng = Rng::seed_from_u64(0xDE7E12);
    for _case in 0..16 {
        let plan = random_plan(&mut rng, 4, 40);
        let run = |plan: &[(u64, u16, u16, bool)]| {
            let mut net = Network::new(row_spec(4), SimConfig::baseline()).unwrap();
            let mut plan = plan.to_vec();
            plan.sort_by_key(|p| p.0);
            let mut next = 0;
            let mut id = 0u64;
            for cycle in 0..5000u64 {
                while next < plan.len() && plan[next].0 <= cycle {
                    let (_, src, dst, reply) = plan[next];
                    id += 1;
                    let pkt = if reply {
                        Packet::reply(id, NodeId(src), NodeId(dst), 0)
                    } else {
                        Packet::request(id, NodeId(src), NodeId(dst), 0)
                    };
                    net.inject(pkt).unwrap();
                    next += 1;
                }
                net.step();
            }
            let mut d = net.drain_delivered();
            d.sort_by_key(|x| x.packet.id);
            d.iter()
                .map(|x| (x.packet.id, x.injected_at, x.ejected_at, x.hops))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(&plan), run(&plan));
    }
}

/// Event counters are consistent: buffer reads never exceed writes, and
/// every ejected flit was once injected.
#[test]
fn event_counter_sanity() {
    let mut rng = Rng::seed_from_u64(0xE7E27);
    for _case in 0..32 {
        let plan = random_plan(&mut rng, 5, 50);
        let mut net = Network::new(row_spec(5), SimConfig::baseline()).unwrap();
        let mut id = 0u64;
        for (_, src, dst, reply) in plan {
            id += 1;
            let pkt = if reply {
                Packet::reply(id, NodeId(src), NodeId(dst), 0)
            } else {
                Packet::request(id, NodeId(src), NodeId(dst), 0)
            };
            net.inject(pkt).unwrap();
        }
        net.run(8000);
        assert_eq!(net.in_flight(), 0);
        let ev = net.totals().events;
        assert!(ev.buffer_reads <= ev.buffer_writes);
        assert_eq!(
            ev.buffer_reads, ev.buffer_writes,
            "drained network read all writes"
        );
        assert_eq!(ev.crossbar_traversals, ev.sa_grants);
        assert!(ev.ni_ejections <= ev.ni_injections + ev.link_flit_hops);
        assert_eq!(ev.ni_injections, ev.ni_ejections, "all flits ejected");
    }
}

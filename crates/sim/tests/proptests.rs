//! Property-based tests for the simulator core invariants:
//! packet conservation, payload integrity, drain-to-empty, and
//! determinism, over randomized row networks and traffic loads.

use adaptnoc_sim::prelude::*;
use proptest::prelude::*;

/// Builds a bidirectional 1xN row with one node per router and XY-trivial
/// routing tables.
fn row_spec(n: usize) -> NetworkSpec {
    let mut s = NetworkSpec::new(n, n, 2);
    for i in 0..n - 1 {
        let east = PortRef::new(RouterId(i as u16), PortId(0));
        let west = PortRef::new(RouterId(i as u16 + 1), PortId(1));
        s.add_channel(mesh_channel(east, west));
        s.add_channel(mesh_channel(west, east));
    }
    for i in 0..n {
        s.add_ni(NiSpec::local(
            NodeId(i as u16),
            RouterId(i as u16),
            LOCAL_PORT,
        ));
    }
    for v in 0..2u8 {
        for r in 0..n {
            for d in 0..n {
                let port = if d == r {
                    LOCAL_PORT
                } else if d > r {
                    PortId(0)
                } else {
                    PortId(1)
                };
                s.tables
                    .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
            }
        }
    }
    s
}

/// A randomly generated traffic plan: (inject_cycle, src, dst, reply?).
fn traffic_strategy(n: usize, max_pkts: usize) -> impl Strategy<Value = Vec<(u64, u16, u16, bool)>> {
    prop::collection::vec(
        (
            0u64..200,
            0u16..(n as u16),
            0u16..(n as u16),
            prop::bool::ANY,
        ),
        1..max_pkts,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every injected packet is delivered exactly once, payload intact, and
    /// the network drains to empty.
    #[test]
    fn packet_conservation((n, plan) in (2usize..7).prop_flat_map(|n| {
        (Just(n), traffic_strategy(n, 60))
    })) {
        let mut net = Network::new(row_spec(n), SimConfig::baseline()).unwrap();
        let mut plan = plan;
        plan.sort_by_key(|p| p.0);
        let mut expected: Vec<(u64, u16, u16)> = Vec::new();
        let mut next = 0usize;
        let mut id = 0u64;
        for cycle in 0..10_000u64 {
            while next < plan.len() && plan[next].0 <= cycle {
                let (_, src, dst, reply) = plan[next];
                id += 1;
                let pkt = if reply {
                    Packet::reply(id, NodeId(src), NodeId(dst), id * 3)
                } else {
                    Packet::request(id, NodeId(src), NodeId(dst), id * 3)
                };
                expected.push((id, src, dst));
                net.inject(pkt).unwrap();
                next += 1;
            }
            net.step();
            if next == plan.len() && net.in_flight() == 0 {
                break;
            }
        }
        prop_assert_eq!(net.in_flight(), 0, "network failed to drain");
        let mut got = net.drain_delivered();
        got.sort_by_key(|d| d.packet.id);
        prop_assert_eq!(got.len(), expected.len());
        for (d, (id, src, dst)) in got.iter().zip(expected.iter()) {
            prop_assert_eq!(d.packet.id, *id);
            prop_assert_eq!(d.packet.src, NodeId(*src));
            prop_assert_eq!(d.packet.dst, NodeId(*dst));
            prop_assert_eq!(d.packet.tag, id * 3);
            prop_assert!(d.ejected_at >= d.injected_at);
            prop_assert!(d.injected_at >= d.packet.created_at);
        }
        prop_assert_eq!(net.unroutable_events(), 0);
    }

    /// Hop counts equal the source-destination distance in a row (minimal
    /// routing, no livelock detours).
    #[test]
    fn hops_equal_manhattan_distance(
        n in 2usize..7,
        src in 0u16..6,
        dst in 0u16..6,
    ) {
        let src = src % (n as u16);
        let dst = dst % (n as u16);
        let mut net = Network::new(row_spec(n), SimConfig::baseline()).unwrap();
        net.inject(Packet::request(1, NodeId(src), NodeId(dst), 0)).unwrap();
        net.run(200);
        let d = net.drain_delivered();
        prop_assert_eq!(d.len(), 1);
        prop_assert_eq!(d[0].hops as i32, (src as i32 - dst as i32).abs());
    }

    /// The simulator is deterministic: the same plan yields identical
    /// delivery timings.
    #[test]
    fn determinism(plan in traffic_strategy(4, 40)) {
        let run = |plan: &[(u64, u16, u16, bool)]| {
            let mut net = Network::new(row_spec(4), SimConfig::baseline()).unwrap();
            let mut plan = plan.to_vec();
            plan.sort_by_key(|p| p.0);
            let mut next = 0;
            let mut id = 0u64;
            for cycle in 0..5000u64 {
                while next < plan.len() && plan[next].0 <= cycle {
                    let (_, src, dst, reply) = plan[next];
                    id += 1;
                    let pkt = if reply {
                        Packet::reply(id, NodeId(src), NodeId(dst), 0)
                    } else {
                        Packet::request(id, NodeId(src), NodeId(dst), 0)
                    };
                    net.inject(pkt).unwrap();
                    next += 1;
                }
                net.step();
            }
            let mut d = net.drain_delivered();
            d.sort_by_key(|x| x.packet.id);
            d.iter()
                .map(|x| (x.packet.id, x.injected_at, x.ejected_at, x.hops))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(run(&plan), run(&plan));
    }

    /// Event counters are consistent: buffer reads never exceed writes, and
    /// every ejected flit was once injected.
    #[test]
    fn event_counter_sanity(plan in traffic_strategy(5, 50)) {
        let mut net = Network::new(row_spec(5), SimConfig::baseline()).unwrap();
        let mut id = 0u64;
        for (_, src, dst, reply) in plan {
            id += 1;
            let pkt = if reply {
                Packet::reply(id, NodeId(src), NodeId(dst), 0)
            } else {
                Packet::request(id, NodeId(src), NodeId(dst), 0)
            };
            net.inject(pkt).unwrap();
        }
        net.run(8000);
        prop_assert_eq!(net.in_flight(), 0);
        let ev = net.totals().events;
        prop_assert!(ev.buffer_reads <= ev.buffer_writes);
        prop_assert_eq!(ev.buffer_reads, ev.buffer_writes, "drained network read all writes");
        prop_assert_eq!(ev.crossbar_traversals, ev.sa_grants);
        prop_assert!(ev.ni_ejections <= ev.ni_injections + ev.link_flit_hops);
        prop_assert_eq!(ev.ni_injections, ev.ni_ejections, "all flits ejected");
    }
}

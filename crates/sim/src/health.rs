//! Runtime health monitoring: invariant guards, deadlock/livelock
//! watchdogs, and the post-mortem flight recorder.
//!
//! Adapt-NoC's safety story rests on deadlock-free reconfiguration and on
//! surviving degraded topologies. This module is the *runtime* verification
//! layer for those guarantees:
//!
//! * [`GuardMode`] — how aggressively [`Network::step`] re-checks its own
//!   invariants (credit conservation per VC, network-wide flit conservation
//!   reconciled against the incremental `in_flight()` counters, fault
//!   isolation, power-gating consistency, allocation cross-links, worklist
//!   coverage). `Strict` checks every cycle and panics on the first
//!   violation; `Sampled(n)` checks every `n` cycles and only counts.
//! * [`Watchdog`] — detects deadlock (no deliveries and no flit motion),
//!   livelock (motion without deliveries), and starvation (one ancient
//!   packet) from the outside, using only public counters, and produces a
//!   [`StallReport`] saying *where* progress stopped.
//! * [`FlightRecorder`] — a bounded ring of recent trace events plus a JSON
//!   snapshot of network state, dumped on unrecoverable violations so
//!   failures are diagnosable post-mortem (see [`write_dump`]).
//!
//! The escalation ladder that acts on watchdog fires lives in
//! `adaptnoc-faults`; this module only detects and reports.
//!
//! [`Network::step`]: crate::network::Network::step

use crate::ids::{NodeId, RouterId};
use crate::json::Value;
use crate::network::Network;
use crate::spec::ChannelKey;
use crate::trace::TraceBuffer;

/// How the simulator's always-on invariant guards run.
///
/// Resolved at [`Network::new`](crate::network::Network::new) from the
/// `ADAPTNOC_GUARDS` environment variable (which overrides
/// [`SimConfig::guards`](crate::config::SimConfig)): `off`/`0`/`none`,
/// `strict`/`debug`, `sampled`, or `sampled:N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardMode {
    /// No runtime invariant checking.
    Off,
    /// Check every `n` cycles; violations are counted in
    /// [`HealthCounts`] and recorded as trace events, but do not panic.
    /// This is the cheap release-mode default.
    Sampled(u32),
    /// Check every cycle and panic with full detail on the first
    /// violation — the debug-assert mode used by the `ADAPTNOC_GUARDS=strict`
    /// CI job.
    Strict,
}

impl Default for GuardMode {
    fn default() -> Self {
        GuardMode::Sampled(1024)
    }
}

impl GuardMode {
    /// Parses a mode string: `off`/`0`/`none`, `strict`/`debug`, `sampled`,
    /// or `sampled:N` (N = 0 means off). Returns `None` for anything else.
    pub fn parse(raw: &str) -> Option<GuardMode> {
        let s = raw.trim().to_ascii_lowercase();
        match s.as_str() {
            "off" | "0" | "none" => Some(GuardMode::Off),
            "strict" | "debug" => Some(GuardMode::Strict),
            "sampled" => Some(GuardMode::Sampled(1024)),
            _ => {
                let n: u32 = s.strip_prefix("sampled:")?.parse().ok()?;
                Some(if n == 0 {
                    GuardMode::Off
                } else {
                    GuardMode::Sampled(n)
                })
            }
        }
    }

    /// The mode requested by the `ADAPTNOC_GUARDS` environment variable,
    /// if set and valid.
    pub fn from_env() -> Option<GuardMode> {
        std::env::var("ADAPTNOC_GUARDS")
            .ok()
            .and_then(|v| Self::parse(&v))
    }

    /// Whether any checking happens in this mode.
    pub fn is_active(self) -> bool {
        !matches!(self, GuardMode::Off)
    }

    /// The sweep cadence in cycles: `0` for [`Off`](GuardMode::Off), `1`
    /// for [`Strict`](GuardMode::Strict), `n` for
    /// [`Sampled(n)`](GuardMode::Sampled). This is what
    /// [`HealthCounts::sample_interval`] carries alongside the counts.
    pub fn interval(self) -> u32 {
        match self {
            GuardMode::Off => 0,
            GuardMode::Strict => 1,
            GuardMode::Sampled(n) => n,
        }
    }
}

/// Invariant-guard counters carried per epoch in
/// [`EpochReport`](crate::stats::EpochReport).
///
/// The counts are only exhaustive under [`GuardMode::Strict`]: under
/// `Sampled(n)` the guards sweep every `n`-th cycle, so `violations` is a
/// *lower bound* — a transient breach that self-corrects between sweeps
/// is never observed. [`sample_interval`](Self::sample_interval) records
/// the cadence the counts were collected under so a consumer (or the
/// telemetry exporters, which emit it as
/// `adaptnoc_sim_health_sample_interval_cycles`) can tell exact counts
/// from sampled ones.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounts {
    /// Guard sweeps executed.
    pub checks: u64,
    /// Invariant violations detected (always 0 in a healthy run).
    ///
    /// Exhaustive only when [`sample_interval`](Self::sample_interval) is
    /// 1 (strict mode); a lower bound otherwise.
    pub violations: u64,
    /// The sweep cadence in cycles the counts were collected under:
    /// `0` = guards off (no sweeps ran), `1` = every cycle (strict),
    /// `n` = every `n`-th cycle (sampled). Stamped by the network when an
    /// epoch is taken; [`accumulate`](Self::accumulate) keeps the coarsest
    /// (largest) interval so merged windows report conservatively.
    pub sample_interval: u32,
}

impl HealthCounts {
    /// Adds `other` into `self`. The merged `sample_interval` is the
    /// coarser (larger) of the two, so accumulated counts are never
    /// presented as finer-grained than their sparsest window.
    pub fn accumulate(&mut self, other: &HealthCounts) {
        self.checks += other.checks;
        self.violations += other.violations;
        self.sample_interval = self.sample_interval.max(other.sample_interval);
    }

    /// Returns the counters and resets `self` to zero.
    pub fn take(&mut self) -> HealthCounts {
        std::mem::take(self)
    }
}

/// The invariant family a guard violation belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Network-wide flit/packet accounting disagrees with the incremental
    /// `in_flight()` counter or a router's cached flit count.
    FlitConservation,
    /// A buffer-occupancy summary bit disagrees with the buffer it
    /// summarizes, or a buffer exceeds its depth.
    BufferOccupancy,
    /// Credits + wire occupancy + downstream buffering along a channel do
    /// not sum to the VC depth.
    CreditConservation,
    /// Traffic observed on a faulted channel, or the fault registry is
    /// inconsistent with per-channel flags.
    FaultIsolation,
    /// A sleeping or failed router holds output allocations, or a failed
    /// router is not powered down.
    PowerGating,
    /// VC-allocation cross-links (input `out_vc` vs output `alloc`) are
    /// broken, or an allocated VC lost its route or owner.
    Allocation,
    /// An active-set worklist lost track of a busy component (the bug class
    /// that would silently freeze traffic under active-set stepping).
    Worklist,
    /// NI injection-lock state disagrees with the NIs sharing the port.
    NiLock,
}

impl std::fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One invariant violation found by a guard sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// Which invariant family tripped.
    pub kind: InvariantKind,
    /// Human-readable location and observed values.
    pub detail: String,
}

impl InvariantViolation {
    /// Creates a violation record.
    pub fn new(kind: InvariantKind, detail: impl Into<String>) -> Self {
        InvariantViolation {
            kind,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.detail)
    }
}

/// Configuration for a [`Watchdog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles without a packet delivery (or accounted drop) while traffic
    /// is in flight before the watchdog fires.
    pub window: u64,
    /// How often the watchdog samples the network's counters. Checks are
    /// keyed on the network's own cycle count, so observation cadence is
    /// deterministic regardless of caller structure.
    pub check_interval: u64,
    /// Optional starvation bound: fire if the oldest in-flight packet has
    /// been in the network longer than this many cycles, even while other
    /// traffic makes progress.
    pub max_packet_age: Option<u64>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            window: 10_000,
            check_interval: 256,
            max_packet_age: None,
        }
    }
}

/// The kind of progress failure a watchdog detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallKind {
    /// No deliveries and no flit motion at all: a cyclic or resource
    /// deadlock (or traffic wedged behind a dead component).
    Deadlock,
    /// Flits are moving but nothing completes: livelock.
    Livelock,
    /// The network is making progress, but one packet has been in flight
    /// longer than the configured bound.
    Starvation,
}

impl std::fmt::Display for StallKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StallKind::Deadlock => write!(f, "deadlock"),
            StallKind::Livelock => write!(f, "livelock"),
            StallKind::Starvation => write!(f, "starvation"),
        }
    }
}

/// A structured "where did progress stop" report produced when a
/// [`Watchdog`] fires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// What kind of stall was detected.
    pub kind: StallKind,
    /// Cycle of the last observed forward progress (or the stuck packet's
    /// creation cycle, for [`StallKind::Starvation`]).
    pub since: u64,
    /// Cycle the report was captured.
    pub now: u64,
    /// Packets in flight at capture time.
    pub in_flight: u64,
    /// Routers holding buffered flits, with their flit counts.
    pub stuck_routers: Vec<(RouterId, u32)>,
    /// Channels with flits on the wire, with their occupancy.
    pub stuck_channels: Vec<(ChannelKey, usize)>,
    /// NIs with queued packets, with their queue lengths.
    pub ni_backlogs: Vec<(NodeId, usize)>,
    /// `(packet id, created_at)` of the oldest in-flight packet.
    pub oldest_packet: Option<(u64, u64)>,
}

impl StallReport {
    /// Captures the current stuck-state of `net`.
    pub fn capture(net: &Network, kind: StallKind, since: u64) -> Self {
        let mut stuck_routers = Vec::new();
        for ri in 0..net.spec().routers.len() {
            let r = RouterId(ri as u16);
            let flits = net.router_flits(r);
            if flits > 0 {
                stuck_routers.push((r, flits));
            }
        }
        StallReport {
            kind,
            since,
            now: net.now(),
            in_flight: net.in_flight(),
            stuck_routers,
            stuck_channels: net.channel_backlogs(),
            ni_backlogs: net.ni_backlogs(),
            oldest_packet: net.oldest_in_flight(),
        }
    }
}

/// Formats a channel key as `R1:p0->R2:p1` for reports and violation
/// details.
pub fn channel_label(key: &ChannelKey) -> String {
    format!(
        "{}:{}->{}:{}",
        key.src.router, key.src.port, key.dst.router, key.dst.port
    )
}

fn fmt_list<T>(
    f: &mut std::fmt::Formatter<'_>,
    label: &str,
    items: &[T],
    mut one: impl FnMut(&T) -> String,
) -> std::fmt::Result {
    if items.is_empty() {
        return Ok(());
    }
    const LIMIT: usize = 8;
    let shown: Vec<String> = items.iter().take(LIMIT).map(&mut one).collect();
    write!(f, "\n  {label}: {}", shown.join(" "))?;
    if items.len() > LIMIT {
        write!(f, " (+{} more)", items.len() - LIMIT)?;
    }
    Ok(())
}

impl std::fmt::Display for StallReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: no forward progress since cycle {} (now {}), {} packet(s) in flight",
            self.kind, self.since, self.now, self.in_flight
        )?;
        fmt_list(f, "stuck routers", &self.stuck_routers, |(r, n)| {
            format!("{r}({n})")
        })?;
        fmt_list(f, "channel backlogs", &self.stuck_channels, |(k, n)| {
            format!("{}({n})", channel_label(k))
        })?;
        fmt_list(f, "NI backlogs", &self.ni_backlogs, |(node, n)| {
            format!("{node}({n})")
        })?;
        if let Some((id, created)) = self.oldest_packet {
            write!(f, "\n  oldest packet: #{id} created at cycle {created}")?;
        }
        Ok(())
    }
}

/// A deadlock/livelock/starvation watchdog observing a network from the
/// outside through its public counters.
///
/// Call [`Watchdog::observe`] after every `step()` (it early-exits between
/// its deterministic check points). Forward progress is a change in the
/// *delivery* signature (packets delivered + accounted drops); flit motion
/// without delivery classifies a stall as livelock rather than deadlock.
/// While a stall persists the watchdog keeps firing at every check point —
/// escalation logic relies on repeated reports — and [`Watchdog::stalled`]
/// stays `true` until a delivery happens or the network empties.
#[derive(Debug, Clone)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    next_check: u64,
    baseline: Option<(u64, u64)>,
    last_progress_at: u64,
    motion_since_stall: bool,
    stalled: bool,
}

impl Watchdog {
    /// Creates a watchdog.
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            next_check: 0,
            baseline: None,
            last_progress_at: 0,
            motion_since_stall: false,
            stalled: false,
        }
    }

    /// The configuration this watchdog runs with.
    pub fn config(&self) -> &WatchdogConfig {
        &self.cfg
    }

    /// Whether the last check found the network stalled (deadlock or
    /// livelock). Cleared by delivery progress or an empty network.
    pub fn stalled(&self) -> bool {
        self.stalled
    }

    /// Forgets all observed history (e.g. after an external recovery).
    pub fn reset(&mut self) {
        self.baseline = None;
        self.motion_since_stall = false;
        self.stalled = false;
    }

    /// Samples the network; returns a report if a stall or starvation is
    /// detected at this check point.
    pub fn observe(&mut self, net: &Network) -> Option<StallReport> {
        let now = net.now();
        if now < self.next_check {
            return None;
        }
        self.next_check = now + self.cfg.check_interval.max(1);

        if net.in_flight() == 0 {
            self.reset();
            self.last_progress_at = now;
            return None;
        }

        let totals = net.totals();
        let delivery = totals.stats.packets + totals.stats.drops;
        let motion = totals.stats.flits_forwarded
            + totals.stats.nacks
            + totals.stats.retries
            + totals.events.ni_injections;

        match self.baseline {
            Some((d, m)) if d == delivery => {
                if m != motion {
                    self.motion_since_stall = true;
                    self.baseline = Some((delivery, motion));
                }
            }
            _ => {
                // First observation, or delivery progress since the last one.
                self.baseline = Some((delivery, motion));
                self.motion_since_stall = false;
                self.stalled = false;
                self.last_progress_at = now;
                return self.check_age(net, now);
            }
        }

        if now - self.last_progress_at >= self.cfg.window {
            self.stalled = true;
            let kind = if self.motion_since_stall {
                StallKind::Livelock
            } else {
                StallKind::Deadlock
            };
            return Some(StallReport::capture(net, kind, self.last_progress_at));
        }
        self.check_age(net, now)
    }

    fn check_age(&self, net: &Network, now: u64) -> Option<StallReport> {
        let max_age = self.cfg.max_packet_age?;
        let (_, created) = net.oldest_in_flight()?;
        if now.saturating_sub(created) >= max_age {
            return Some(StallReport::capture(net, StallKind::Starvation, created));
        }
        None
    }
}

/// A post-mortem dump facility: keeps a bounded ring of recent trace
/// events inside the network's tracer and renders a JSON report combining
/// them with a structural state snapshot.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder keeping up to `capacity` recent events.
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(16),
        }
    }

    /// Attaches an all-packets ring tracer to `net` if it has none yet
    /// (an existing tracer — e.g. a test's — is left in place and its
    /// events are used instead).
    pub fn install(&self, net: &mut Network) {
        if net.tracer().is_none() {
            net.set_tracer(Some(TraceBuffer::all(self.capacity)));
        }
    }

    /// Renders the dump document: the reason, the capture cycle, a
    /// structural network snapshot, and the recent trace events.
    pub fn dump(&self, net: &Network, reason: &str) -> Value {
        let (recent, evicted) = match net.tracer() {
            Some(t) => (
                t.events()
                    .map(|e| Value::String(format!("{e:?}")))
                    .collect(),
                t.dropped(),
            ),
            None => (Vec::new(), 0),
        };
        Value::Object(vec![
            ("reason".into(), Value::String(reason.to_string())),
            ("cycle".into(), Value::Number(net.now() as f64)),
            ("in_flight".into(), Value::Number(net.in_flight() as f64)),
            ("snapshot".into(), net.snapshot()),
            ("recent_events".into(), Value::Array(recent)),
            ("events_evicted".into(), Value::Number(evicted as f64)),
        ])
    }
}

/// Writes a flight-recorder dump to `$ADAPTNOC_DUMP_DIR/flightrec-<tag>-c<cycle>.json`.
///
/// Best-effort and opt-in: returns `None` (writing nothing) when the
/// `ADAPTNOC_DUMP_DIR` environment variable is unset or the write fails,
/// so tests and campaigns stay hermetic by default.
pub fn write_dump(dump: &Value, tag: &str) -> Option<std::path::PathBuf> {
    let dir = std::env::var("ADAPTNOC_DUMP_DIR")
        .ok()
        .filter(|d| !d.trim().is_empty())?;
    let cycle = dump.get("cycle").and_then(Value::as_u64).unwrap_or(0);
    let dir = std::path::PathBuf::from(dir);
    std::fs::create_dir_all(&dir).ok()?;
    let path = dir.join(format!("flightrec-{tag}-c{cycle}.json"));
    std::fs::write(&path, dump.to_string_pretty()).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::flit::Packet;
    use crate::ids::{PortId, Vnet, LOCAL_PORT};
    use crate::spec::{mesh_channel, NetworkSpec, NiSpec, PortRef};

    /// A 1xN row of routers, bidirectionally chained, one node per router.
    fn row_spec(n: usize) -> NetworkSpec {
        let mut s = NetworkSpec::new(n, n, 2);
        for i in 0..n - 1 {
            let east = PortRef::new(RouterId(i as u16), PortId(0));
            let west = PortRef::new(RouterId(i as u16 + 1), PortId(1));
            s.add_channel(mesh_channel(east, west));
            s.add_channel(mesh_channel(west, east));
        }
        for i in 0..n {
            s.add_ni(NiSpec::local(
                NodeId(i as u16),
                RouterId(i as u16),
                LOCAL_PORT,
            ));
        }
        for v in 0..2u8 {
            for r in 0..n {
                for d in 0..n {
                    let port = if d == r {
                        LOCAL_PORT
                    } else if d > r {
                        PortId(0)
                    } else {
                        PortId(1)
                    };
                    s.tables
                        .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
                }
            }
        }
        s
    }

    fn net(n: usize) -> Network {
        Network::new(row_spec(n), SimConfig::baseline()).unwrap()
    }

    #[test]
    fn guard_mode_parsing() {
        assert_eq!(GuardMode::parse("off"), Some(GuardMode::Off));
        assert_eq!(GuardMode::parse("0"), Some(GuardMode::Off));
        assert_eq!(GuardMode::parse(" none "), Some(GuardMode::Off));
        assert_eq!(GuardMode::parse("STRICT"), Some(GuardMode::Strict));
        assert_eq!(GuardMode::parse("debug"), Some(GuardMode::Strict));
        assert_eq!(GuardMode::parse("sampled"), Some(GuardMode::Sampled(1024)));
        assert_eq!(GuardMode::parse("sampled:64"), Some(GuardMode::Sampled(64)));
        assert_eq!(GuardMode::parse("sampled:0"), Some(GuardMode::Off));
        assert_eq!(GuardMode::parse("bogus"), None);
        assert!(GuardMode::Strict.is_active());
        assert!(!GuardMode::Off.is_active());
        assert_eq!(GuardMode::default(), GuardMode::Sampled(1024));
    }

    #[test]
    fn health_counts_accumulate_and_take() {
        let mut a = HealthCounts {
            checks: 2,
            violations: 1,
            sample_interval: 1,
        };
        let b = HealthCounts {
            checks: 3,
            violations: 0,
            sample_interval: 1024,
        };
        a.accumulate(&b);
        assert_eq!(a.checks, 5);
        assert_eq!(a.violations, 1);
        assert_eq!(a.sample_interval, 1024, "coarsest interval wins");
        let taken = a.take();
        assert_eq!(taken.checks, 5);
        assert_eq!(a, HealthCounts::default());
    }

    #[test]
    fn watchdog_classifies_deadlock_fires_repeatedly_and_recovers() {
        let mut net = net(2);
        // Wedge: the source NI never gets to send its queued packet.
        net.set_ni_paused(NodeId(0), true);
        net.inject(Packet::request(1, NodeId(0), NodeId(1), 0))
            .unwrap();
        let mut wd = Watchdog::new(WatchdogConfig {
            window: 50,
            check_interval: 8,
            max_packet_age: None,
        });
        let mut report = None;
        for _ in 0..200 {
            net.step();
            if let Some(r) = wd.observe(&net) {
                report = Some(r);
                break;
            }
        }
        let r = report.expect("watchdog must fire on a wedged network");
        assert_eq!(r.kind, StallKind::Deadlock);
        assert!(wd.stalled());
        assert!(r.in_flight >= 1);
        assert!(
            r.ni_backlogs
                .iter()
                .any(|(node, q)| *node == NodeId(0) && *q >= 1),
            "report should name the backlogged NI: {r}"
        );
        let text = r.to_string();
        assert!(text.contains("deadlock"), "{text}");
        assert!(text.contains("N0"), "{text}");

        // Still stalled: the watchdog keeps firing at later check points.
        let mut fired_again = false;
        for _ in 0..50 {
            net.step();
            if wd.observe(&net).is_some() {
                fired_again = true;
                break;
            }
        }
        assert!(fired_again, "watchdog must keep firing while stalled");

        // Heal the wedge; delivery progress clears the stall latch.
        net.set_ni_paused(NodeId(0), false);
        for _ in 0..100 {
            net.step();
            wd.observe(&net);
        }
        assert_eq!(net.in_flight(), 0);
        assert!(!wd.stalled());
    }

    #[test]
    fn watchdog_classifies_livelock_when_flits_moved() {
        let mut net = net(4);
        // Traffic flows for a few hops, then piles up inside the failed
        // router: motion without delivery = livelock classification.
        let purged = net.fail_router(RouterId(3));
        assert!(purged.is_empty());
        net.inject(Packet::request(1, NodeId(0), NodeId(3), 0))
            .unwrap();
        let mut wd = Watchdog::new(WatchdogConfig {
            window: 60,
            check_interval: 4,
            max_packet_age: None,
        });
        let mut report = None;
        for _ in 0..400 {
            net.step();
            if let Some(r) = wd.observe(&net) {
                report = Some(r);
                break;
            }
        }
        let r = report.expect("watchdog must fire");
        assert_eq!(r.kind, StallKind::Livelock);
        assert!(!r.stuck_routers.is_empty());
    }

    #[test]
    fn watchdog_flags_starvation_by_packet_age() {
        let mut net = net(2);
        net.set_ni_paused(NodeId(0), true);
        net.inject(Packet::request(7, NodeId(0), NodeId(1), 0))
            .unwrap();
        let mut wd = Watchdog::new(WatchdogConfig {
            window: 100_000,
            check_interval: 8,
            max_packet_age: Some(30),
        });
        let mut report = None;
        for _ in 0..100 {
            net.step();
            if let Some(r) = wd.observe(&net) {
                report = Some(r);
                break;
            }
        }
        let r = report.expect("starvation bound must fire");
        assert_eq!(r.kind, StallKind::Starvation);
        assert_eq!(r.oldest_packet.map(|(id, _)| id), Some(7));
        // Starvation is not a delivery stall; the latch stays clear.
        assert!(!wd.stalled());
    }

    #[test]
    fn flight_recorder_dump_roundtrips_and_names_events() {
        let mut net = net(2);
        let rec = FlightRecorder::new(32);
        rec.install(&mut net);
        net.inject(Packet::request(1, NodeId(0), NodeId(1), 0))
            .unwrap();
        net.run(40);
        let dump = rec.dump(&net, "test dump");
        assert_eq!(
            dump.get("reason").and_then(Value::as_str),
            Some("test dump")
        );
        assert!(dump.get("snapshot").is_some());
        let events = dump
            .get("recent_events")
            .and_then(Value::as_array)
            .expect("events array");
        assert!(!events.is_empty());
        let text = dump.to_string_pretty();
        assert_eq!(crate::json::parse(&text).unwrap(), dump);
        // No dump dir configured in tests: writing is a silent no-op.
        if std::env::var("ADAPTNOC_DUMP_DIR").is_err() {
            assert!(write_dump(&dump, "unit").is_none());
        }
    }
}

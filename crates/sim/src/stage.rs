//! The router-stage hot loop (RC + VA + SA + ST) over a *band* of routers.
//!
//! [`BandView`] borrows a contiguous router range plus the matching
//! sub-slices of every [`crate::soa::VcLanes`] array, and runs the
//! allocation kernels over it. The serial stepper uses one band covering
//! the whole network; the region-parallel stepper
//! ([`crate::par::StepPool`]) splits the view at router boundaries with
//! [`split_band`] and runs one band per worker.
//!
//! Within one cycle's router stage there is **no cross-router
//! interaction**: forwarded flits enter channel queues (delivered next
//! cycle at the earliest), credits are returned through the
//! `pending_credits` list (applied next cycle), and VA/SA only read
//! channels *sourced* at the router being allocated. The only shared state
//! is global counters, the trace stream, and the delivered list — all of
//! which the kernels defer into a per-band [`StageSink`]. The network
//! applies sinks in ascending band order, which reproduces the serial
//! ascending-router order byte for byte; this is what makes
//! region-parallel output identical to serial at any thread count (pinned
//! by `tests/region_parallel_equivalence.rs`).

use crate::events::EventCounts;
use crate::flit::Flit;
use crate::ids::{ChannelId, RouterId, Vnet};
use crate::network::{ChannelRt, RouterRt};
use crate::soa;
use crate::spec::{ChannelKind, NetworkSpec};
use crate::stats::Delivered;
use crate::trace::TraceEvent;

/// Side effects of one band's router stage, deferred so bands can run
/// concurrently and merge deterministically (in band order).
#[derive(Debug, Clone, Default)]
pub(crate) struct StageSink {
    /// Event counters accumulated by this band.
    pub(crate) events: EventCounts,
    /// Flits forwarded (added to both epoch and total stats).
    pub(crate) flits_forwarded: u64,
    /// Packets that hit a missing routing entry.
    pub(crate) unroutable: u64,
    /// Flits removed from input buffers (decrements `occupied_flits`).
    pub(crate) removed: u64,
    /// Flits pushed onto wires (increments `wire_flits`).
    pub(crate) wire_pushed: u64,
    /// Credits to return upstream next cycle.
    pub(crate) pending_credits: Vec<(ChannelId, u8)>,
    /// Channels that left the idle state (busy-worklist additions).
    pub(crate) busy_channels: Vec<usize>,
    /// Trace events in intra-band order (only filled when `trace_on`).
    pub(crate) trace: Vec<TraceEvent>,
    /// Whether a tracer is attached this cycle.
    pub(crate) trace_on: bool,
    /// Delivered packets in intra-band order.
    pub(crate) delivered: Vec<Delivered>,
}

impl StageSink {
    /// Whether the sink carries nothing (cheap pre-check before applying).
    pub(crate) fn is_empty(&self) -> bool {
        self.events == EventCounts::default()
            && self.flits_forwarded == 0
            && self.unroutable == 0
            && self.removed == 0
            && self.wire_pushed == 0
            && self.pending_credits.is_empty()
            && self.busy_channels.is_empty()
            && self.trace.is_empty()
            && self.delivered.is_empty()
    }
}

/// Reusable per-output-port candidate lists (sized to the network's
/// maximum port count, mirroring the pre-SoA scratch behaviour exactly).
/// `per_port` holds VA requesters, `sa_port` SA requesters; both are
/// gathered by one fused scan over the occupied-VC bitmasks.
#[derive(Debug, Clone, Default)]
pub(crate) struct StageScratch {
    pub(crate) per_port: Vec<Vec<usize>>,
    pub(crate) sa_port: Vec<Vec<usize>>,
}

/// Mutable access to the channel array from inside a band.
///
/// Channels are indexed globally and not contiguous per band, so they
/// cannot be sliced like the lane arrays. Instead each band gets a shard
/// holding raw pointers to the full arrays, under the contract that a band
/// only ever touches channels whose **source router lies inside the band**
/// (VA/SA/ST only read or write channels leaving the router being
/// allocated). Bands partition routers, so concurrent shard accesses are
/// disjoint; debug assertions in [`BandView`] check the ownership rule on
/// every access.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChannelShard {
    channels: *mut ChannelRt,
    flits: *mut u64,
    n: usize,
}

// SAFETY: the shard is only sent to a worker as part of a `BandJob`, and
// the band-ownership contract above makes all cross-thread accesses
// disjoint. Synchronization is provided by the step barrier (workers
// finish before the main thread reads the results).
#[allow(unsafe_code)]
unsafe impl Send for ChannelShard {}

#[allow(unsafe_code)]
impl ChannelShard {
    pub(crate) fn new(channels: &mut [ChannelRt], flits: &mut [u64]) -> Self {
        debug_assert_eq!(channels.len(), flits.len());
        ChannelShard {
            n: channels.len(),
            channels: channels.as_mut_ptr(),
            flits: flits.as_mut_ptr(),
        }
    }

    #[inline]
    fn get(&self, ci: usize) -> &ChannelRt {
        debug_assert!(ci < self.n);
        // SAFETY: in-bounds; disjointness per the band-ownership contract.
        unsafe { &*self.channels.add(ci) }
    }

    #[inline]
    fn get_mut(&mut self, ci: usize) -> &mut ChannelRt {
        debug_assert!(ci < self.n);
        // SAFETY: in-bounds; disjointness per the band-ownership contract.
        unsafe { &mut *self.channels.add(ci) }
    }

    #[inline]
    fn count_traversal(&mut self, ci: usize) {
        debug_assert!(ci < self.n);
        // SAFETY: in-bounds; disjointness per the band-ownership contract.
        unsafe { *self.flits.add(ci) += 1 };
    }
}

/// A contiguous band of routers with the matching lane sub-slices.
///
/// All indices passed to the kernel methods are *global*; the `ri0` /
/// `gp0` / `gv0` offsets translate them into the borrowed slices.
pub(crate) struct BandView<'a> {
    /// First router of the band.
    pub(crate) ri0: usize,
    pub(crate) routers: &'a mut [RouterRt],
    /// Global port index of the band's first port.
    pub(crate) gp0: usize,
    pub(crate) occ: &'a mut [u32],
    pub(crate) va_rr: &'a mut [crate::arbiter::RoundRobin],
    pub(crate) sa_rr: &'a mut [crate::arbiter::RoundRobin],
    /// Global VC index of the band's first VC.
    pub(crate) gv0: usize,
    pub(crate) route: &'a mut [Option<crate::ids::PortId>],
    pub(crate) out_vc: &'a mut [Option<u8>],
    pub(crate) owner: &'a mut [Option<u64>],
    pub(crate) credits: &'a mut [u8],
    pub(crate) alloc: &'a mut [Option<(u8, u8)>],
    pub(crate) head: &'a mut [u8],
    pub(crate) len: &'a mut [u8],
    pub(crate) front_ready: &'a mut [u64],
    pub(crate) slots: &'a mut [Flit],
    pub(crate) router_forwarded: &'a mut [u64],
    pub(crate) channels: ChannelShard,
    pub(crate) spec: &'a NetworkSpec,
    /// Full (network-wide) port prefix sums.
    pub(crate) port_base: &'a [u32],
    /// Full per-global-port output-channel cache (read-only, so bands share
    /// the whole array and index it globally).
    pub(crate) out_channel: &'a [Option<ChannelId>],
    /// Full per-global-port input-feeder cache (read-only).
    pub(crate) feeder: &'a [Option<ChannelId>],
    pub(crate) total_vcs: usize,
    pub(crate) vcs_per_vnet: usize,
    pub(crate) depth: usize,
    /// Maximum port count over all routers (scratch sizing).
    pub(crate) max_ports: usize,
}

/// Splits `view` into `[ri0, mid)` and `[mid, end)` bands at a router
/// boundary. All lane arrays split at the matching port/VC offsets, so
/// both halves are fully disjoint safe borrows; only the channel shard is
/// duplicated (see [`ChannelShard`] for why that is sound).
pub(crate) fn split_band(view: BandView<'_>, mid: usize) -> (BandView<'_>, BandView<'_>) {
    let n_r = mid - view.ri0;
    let mid_gp = view.port_base[mid] as usize;
    let n_p = mid_gp - view.gp0;
    let n_v = n_p * view.total_vcs;
    let (r_a, r_b) = view.routers.split_at_mut(n_r);
    let (occ_a, occ_b) = view.occ.split_at_mut(n_p);
    let (vrr_a, vrr_b) = view.va_rr.split_at_mut(n_p);
    let (srr_a, srr_b) = view.sa_rr.split_at_mut(n_p);
    let (route_a, route_b) = view.route.split_at_mut(n_v);
    let (ovc_a, ovc_b) = view.out_vc.split_at_mut(n_v);
    let (own_a, own_b) = view.owner.split_at_mut(n_v);
    let (cr_a, cr_b) = view.credits.split_at_mut(n_v);
    let (al_a, al_b) = view.alloc.split_at_mut(n_v);
    let (hd_a, hd_b) = view.head.split_at_mut(n_v);
    let (ln_a, ln_b) = view.len.split_at_mut(n_v);
    let (fr_a, fr_b) = view.front_ready.split_at_mut(n_v);
    let (sl_a, sl_b) = view.slots.split_at_mut(n_v * view.depth);
    let (fw_a, fw_b) = view.router_forwarded.split_at_mut(n_r);
    let a = BandView {
        ri0: view.ri0,
        routers: r_a,
        gp0: view.gp0,
        occ: occ_a,
        va_rr: vrr_a,
        sa_rr: srr_a,
        gv0: view.gv0,
        route: route_a,
        out_vc: ovc_a,
        owner: own_a,
        credits: cr_a,
        alloc: al_a,
        head: hd_a,
        len: ln_a,
        front_ready: fr_a,
        slots: sl_a,
        router_forwarded: fw_a,
        channels: view.channels,
        spec: view.spec,
        port_base: view.port_base,
        out_channel: view.out_channel,
        feeder: view.feeder,
        total_vcs: view.total_vcs,
        vcs_per_vnet: view.vcs_per_vnet,
        depth: view.depth,
        max_ports: view.max_ports,
    };
    let b = BandView {
        ri0: mid,
        routers: r_b,
        gp0: mid_gp,
        occ: occ_b,
        va_rr: vrr_b,
        sa_rr: srr_b,
        gv0: mid_gp * view.total_vcs,
        route: route_b,
        out_vc: ovc_b,
        owner: own_b,
        credits: cr_b,
        alloc: al_b,
        head: hd_b,
        len: ln_b,
        front_ready: fr_b,
        slots: sl_b,
        router_forwarded: fw_b,
        channels: view.channels,
        spec: view.spec,
        port_base: view.port_base,
        out_channel: view.out_channel,
        feeder: view.feeder,
        total_vcs: view.total_vcs,
        vcs_per_vnet: view.vcs_per_vnet,
        depth: view.depth,
        max_ports: view.max_ports,
    };
    (a, b)
}

impl BandView<'_> {
    /// Local VC index for global `gv`.
    #[inline]
    fn lv(&self, gv: usize) -> usize {
        gv - self.gv0
    }

    #[inline]
    fn ring_front(&self, lv: usize) -> Option<&Flit> {
        soa::ring_front(self.head, self.len, self.slots, self.depth, lv)
    }

    #[inline]
    fn n_ports(&self, ri: usize) -> usize {
        (self.port_base[ri + 1] - self.port_base[ri]) as usize
    }

    /// Asserts the channel-ownership contract: `ci` leaves a band router.
    #[inline]
    fn assert_owned(&self, ci: usize) {
        debug_assert!(
            {
                let src = self.channels.get(ci).spec.src.router.index();
                src >= self.ri0 && src < self.ri0 + self.routers.len()
            },
            "band touched a channel sourced outside it"
        );
    }

    /// Runs the active-set router stage over this band's slice of the
    /// sorted busy-router worklist, compacting survivors into `kept` and
    /// clearing the busy flag of routers that drained (mirroring the
    /// serial worklist walk exactly).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_band(
        &mut self,
        busy: &[usize],
        kept: &mut Vec<usize>,
        now: u64,
        timed: bool,
        sink: &mut StageSink,
        scratch: &mut StageScratch,
        rc_va_ns: &mut u64,
        sa_st_ns: &mut u64,
    ) {
        if scratch.per_port.len() < self.max_ports {
            scratch.per_port.resize_with(self.max_ports, Vec::new);
            scratch.sa_port.resize_with(self.max_ports, Vec::new);
        }
        for &ri in busy {
            let lr = ri - self.ri0;
            if self.routers[lr].flits == 0 {
                self.routers[lr].in_busy_list = false;
                continue;
            }
            let runnable = {
                let r = &self.routers[lr];
                r.active && !r.sleeping && !r.failed && r.config_until <= now
            };
            if runnable {
                self.alloc_router(ri, now, timed, sink, scratch, rc_va_ns, sa_st_ns);
            }
            if self.routers[lr].flits > 0 {
                kept.push(ri);
            } else {
                self.routers[lr].in_busy_list = false;
            }
        }
    }

    /// Runs the full-sweep router stage over every router of the band
    /// (reference mode; worklist retention happens in the caller).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_band_sweep(
        &mut self,
        now: u64,
        timed: bool,
        sink: &mut StageSink,
        scratch: &mut StageScratch,
        rc_va_ns: &mut u64,
        sa_st_ns: &mut u64,
    ) {
        if scratch.per_port.len() < self.max_ports {
            scratch.per_port.resize_with(self.max_ports, Vec::new);
            scratch.sa_port.resize_with(self.max_ports, Vec::new);
        }
        for lr in 0..self.routers.len() {
            {
                let r = &self.routers[lr];
                if !r.active || r.sleeping || r.failed || r.config_until > now || r.flits == 0 {
                    continue;
                }
            }
            self.alloc_router(self.ri0 + lr, now, timed, sink, scratch, rc_va_ns, sa_st_ns);
        }
    }

    /// Runs RC+VA then SA+ST on one router, accumulating per-stage
    /// wall-clock time when `timed` (telemetry span sampling).
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn alloc_router(
        &mut self,
        ri: usize,
        now: u64,
        timed: bool,
        sink: &mut StageSink,
        scratch: &mut StageScratch,
        rc_va_ns: &mut u64,
        sa_st_ns: &mut u64,
    ) {
        if timed {
            let t0 = std::time::Instant::now();
            self.vc_allocate(ri, now, sink, scratch);
            *rc_va_ns += t0.elapsed().as_nanos() as u64;
            let t1 = std::time::Instant::now();
            self.switch_allocate(ri, now, sink, scratch);
            *sa_st_ns += t1.elapsed().as_nanos() as u64;
        } else {
            self.vc_allocate(ri, now, sink, scratch);
            self.switch_allocate(ri, now, sink, scratch);
        }
    }

    /// Route computation + output-VC allocation for one router, fused with
    /// switch-allocation candidate gathering: a single pass over occupied
    /// input VCs gathers VA requesters (VCs without an output VC yet) into
    /// `scratch.per_port` and switch-ready requesters (allocated VCs with
    /// a ready, creditable head flit) into `scratch.sa_port`, both in
    /// ascending `(port, vc)` order by construction. Each output port's VA
    /// round-robin then picks a winner under the virtual-cut-through rule;
    /// a freshly granted winner that is already switch-ready is inserted
    /// into its SA candidate list at its sorted position — exactly where a
    /// separate post-VA rescan would have found it — so the fusion is
    /// byte-identical to the classic two-scan pipeline at half the scan
    /// cost.
    fn vc_allocate(
        &mut self,
        ri: usize,
        now: u64,
        sink: &mut StageSink,
        scratch: &mut StageScratch,
    ) {
        let lr = ri - self.ri0;
        let n_ports = self.n_ports(ri);
        let total_vcs = self.total_vcs;
        let split = self.routers[lr].vc_split;
        let depth = self.depth as u8;
        let base_gp = self.port_base[ri] as usize;
        let faulted_out = self.routers[lr].faulted_out;
        let eject_out = self.routers[lr].eject_out;

        let mut any_port = false;
        for pi in 0..n_ports {
            let gp = base_gp + pi;
            let mut occ = self.occ[gp - self.gp0];
            while occ != 0 {
                let vi = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let lv = self.lv(gp * total_vcs + vi);
                if let Some(gvc) = self.out_vc[lv] {
                    // Streaming VC: qualify directly for switch allocation.
                    // The front-readiness cache keeps the common "flit still
                    // in the router pipeline" case off the flit slab.
                    if self.front_ready[lv] > now {
                        continue;
                    }
                    let Some(route) = self.route[lv] else {
                        continue;
                    };
                    debug_assert!(self.ring_front(lv).is_some(), "occupied VC without a front");
                    let po = route.index();
                    // Never drive flits onto a faulted channel.
                    if faulted_out & (1 << po) != 0 {
                        continue;
                    }
                    let lv_out = self.lv((base_gp + po) * total_vcs + gvc as usize);
                    if eject_out & (1 << po) == 0 && self.credits[lv_out] == 0 {
                        continue;
                    }
                    scratch.sa_port[po].push(pi * total_vcs + vi);
                    continue;
                }
                // Route computation for a fresh head flit.
                if self.route[lv].is_none() {
                    let Some(front) = self.ring_front(lv) else {
                        continue;
                    };
                    debug_assert!(front.pos.is_head(), "non-head at route-less VC front");
                    let (id, dst, vnet) = (front.packet, front.dst, front.vnet);
                    match self.spec.tables.lookup(vnet, RouterId(ri as u16), dst) {
                        Some(port) => {
                            self.route[lv] = Some(port);
                            self.owner[lv] = Some(id);
                        }
                        None => {
                            sink.unroutable += 1;
                            continue;
                        }
                    }
                }
                let route = self.route[lv].expect("just computed");
                if !self.ring_front(lv).is_some_and(|f| f.pos.is_head()) {
                    continue;
                }
                let po = route.index();
                // A faulted output channel accepts no new packets.
                if faulted_out & (1 << po) != 0 {
                    continue;
                }
                if po < scratch.per_port.len() {
                    scratch.per_port[po].push(pi * total_vcs + vi);
                    any_port = true;
                }
            }
        }
        if any_port {
            for po in 0..n_ports {
                if scratch.per_port[po].is_empty() {
                    continue;
                }
                let winner =
                    self.va_rr[base_gp + po - self.gp0].grant_sparse(&scratch.per_port[po]);
                if let Some(winner) = winner {
                    let (pi, vi) = (winner / total_vcs, winner % total_vcs);
                    let lv_in = self.lv((base_gp + pi) * total_vcs + vi);
                    let (vnet, class, pkt_len, ready_at) = {
                        let Some(f) = self.ring_front(lv_in) else {
                            continue; // candidate list guarantees a flit; defensive
                        };
                        // The class that matters is the one the packet will
                        // carry on the *output* channel.
                        let class = match self.out_channel[base_gp + po] {
                            Some(ch) => self
                                .channels
                                .get(ch.index())
                                .spec
                                .class_after(f.vc_class, f.last_dim),
                            None => f.vc_class,
                        };
                        (f.vnet, class, f.pkt_len, f.ready_at)
                    };
                    let mask = self.routers[lr].vc_mask[vnet.index()];
                    let out_eject = eject_out & (1 << po) != 0;
                    let out_base = (base_gp + po) * total_vcs;
                    // Virtual cut-through: output VC must be unallocated and
                    // its downstream buffer must have room for the entire
                    // packet. The VC must also be in the packet's dateline
                    // class and usable per the (OSCAR) mask.
                    let start = self.vnet_vcs_start(vnet);
                    let mut free = None;
                    for off in 0..self.vcs_per_vnet {
                        let gvc = start + off;
                        let off = off as u8;
                        if mask & (1 << off) == 0 {
                            continue;
                        }
                        // Ejection consumes packets; the dateline split
                        // only protects ring channels.
                        let class_ok = match split {
                            _ if out_eject => true,
                            None => true,
                            Some(k) => {
                                if class == 0 {
                                    off < k
                                } else {
                                    off >= k
                                }
                            }
                        };
                        if !class_ok {
                            continue;
                        }
                        let lv_out = self.lv(out_base + gvc);
                        if self.alloc[lv_out].is_none()
                            && (out_eject || self.credits[lv_out] >= pkt_len.min(depth))
                        {
                            free = Some(gvc);
                            break;
                        }
                    }
                    if let Some(gvc) = free {
                        let lv_out = self.lv(out_base + gvc);
                        self.alloc[lv_out] = Some((pi as u8, vi as u8));
                        self.out_vc[lv_in] = Some(gvc as u8);
                        sink.events.va_grants += 1;
                        // A winner whose head is already ready joins this
                        // cycle's SA candidates. Credits need no re-check:
                        // the cut-through rule just guaranteed at least a
                        // full packet of room (and ejection ignores
                        // credits), and the faulted mask was checked at
                        // gather time.
                        if ready_at <= now {
                            let key = pi * total_vcs + vi;
                            let list = &mut scratch.sa_port[po];
                            let at = list.partition_point(|&c| c < key);
                            list.insert(at, key);
                        }
                    }
                }
            }
        }
        for l in scratch.per_port.iter_mut() {
            l.clear();
        }
    }

    /// First global VC of `vnet` within a port's VC range.
    #[inline]
    fn vnet_vcs_start(&self, vnet: Vnet) -> usize {
        vnet.index() * self.vcs_per_vnet
    }

    /// Switch allocation + traversal for one router over the candidate
    /// lists gathered by [`Self::vc_allocate`]'s fused scan: round-robin
    /// per output port among requesters whose input port is still free
    /// this cycle, forward the winners.
    fn switch_allocate(
        &mut self,
        ri: usize,
        now: u64,
        sink: &mut StageSink,
        scratch: &mut StageScratch,
    ) {
        let n_ports = self.n_ports(ri);
        let total_vcs = self.total_vcs;
        let base_lp = self.port_base[ri] as usize - self.gp0;

        let mut in_port_used = [false; 32];
        for po in 0..n_ports {
            if scratch.sa_port[po].is_empty() {
                continue;
            }
            // Round-robin among candidates whose input port is still
            // free this cycle (crossbar input constraint), without
            // allocating.
            let winner = self.sa_rr[base_lp + po]
                .grant_sparse_filtered(&scratch.sa_port[po], |c| !in_port_used[c / total_vcs]);
            if let Some(winner) = winner {
                let (pi, vi) = (winner / total_vcs, winner % total_vcs);
                in_port_used[pi] = true;
                self.forward_flit(ri, pi, vi, po, now, sink);
            }
            scratch.sa_port[po].clear();
        }
    }

    /// Switch traversal for one granted flit: pop it from its input VC and
    /// push it onto the output channel (or eject it).
    fn forward_flit(
        &mut self,
        ri: usize,
        pi: usize,
        vi: usize,
        po: usize,
        now: u64,
        sink: &mut StageSink,
    ) {
        let lr = ri - self.ri0;
        let base_gp = self.port_base[ri] as usize;
        let total_vcs = self.total_vcs;
        let lv_in = self.lv((base_gp + pi) * total_vcs + vi);
        let Some(gvc) = self.out_vc[lv_in] else {
            return; // SA only grants allocated VCs; defensive
        };
        let Some(mut flit) = soa::ring_pop(
            self.head,
            self.len,
            self.slots,
            self.front_ready,
            self.depth,
            lv_in,
        ) else {
            return; // SA only grants occupied VCs; defensive
        };
        if self.len[lv_in] == 0 {
            self.occ[base_gp + pi - self.gp0] &= !(1 << vi);
        }
        self.routers[lr].flits -= 1;
        sink.removed += 1;
        sink.events.buffer_reads += 1;
        sink.events.crossbar_traversals += 1;
        sink.events.sa_grants += 1;
        sink.flits_forwarded += 1;
        self.router_forwarded[lr] += 1;
        if sink.trace_on {
            sink.trace.push(TraceEvent::Forwarded {
                packet: flit.packet,
                cycle: now,
                router: RouterId(ri as u16),
                seq: flit.seq,
            });
        }

        // Credit back to the upstream feeder, applied next cycle.
        if let Some(feeder) = self.feeder[base_gp + pi] {
            sink.pending_credits.push((feeder, vi as u8));
            sink.events.credits_sent += 1;
        }

        let is_tail = flit.pos.is_tail();
        let lv_out = self.lv((base_gp + po) * total_vcs + gvc as usize);
        if is_tail {
            self.route[lv_in] = None;
            self.out_vc[lv_in] = None;
            self.owner[lv_in] = None;
            self.alloc[lv_out] = None;
        }

        if let Some(ch) = self.out_channel[base_gp + po] {
            let ci = ch.index();
            self.assert_owned(ci);
            self.credits[lv_out] -= 1;
            let spec = self.channels.get(ci).spec;
            flit.assigned_vc = gvc;
            flit.vc_class = spec.class_after(flit.vc_class, flit.last_dim);
            flit.last_dim = spec.dim();
            flit.hops += 1;
            sink.events.link_flit_hops += 1;
            sink.events.link_flit_mm += spec.length_mm as f64;
            if spec.kind.is_adaptable() || spec.kind == ChannelKind::Concentration {
                sink.events.mux_traversals += 1;
            }
            if spec.kind == ChannelKind::InterChip {
                sink.events.interchip_crossings += 1;
            }
            self.channels.count_traversal(ci);
            let c = self.channels.get_mut(ci);
            c.q.push_back((now + spec.latency as u64, flit));
            sink.wire_pushed += 1;
            if !c.in_busy_list {
                c.in_busy_list = true;
                sink.busy_channels.push(ci);
            }
        } else {
            // Ejection.
            debug_assert!(
                self.routers[lr].eject_out & (1 << po) != 0,
                "SA winner routed to unwired port"
            );
            sink.events.ni_ejections += 1;
            if is_tail {
                if sink.trace_on {
                    sink.trace.push(TraceEvent::Ejected {
                        packet: flit.packet,
                        cycle: now,
                        hops: flit.hops,
                    });
                }
                sink.delivered.push(Delivered {
                    injected_at: flit.injected_at,
                    ejected_at: now,
                    hops: flit.hops,
                    packet: flit.to_packet(),
                });
            }
        }
    }
}

/// One band's worth of router-stage work, with lifetime-erased borrows so
/// a persistent worker pool can hold it across the spawn boundary. Created
/// only by `Network::router_stage_parallel`, which keeps the borrowed
/// network alive and blocked until every job completes.
pub(crate) struct BandJob {
    pub(crate) view: BandView<'static>,
    pub(crate) busy: &'static [usize],
    pub(crate) now: u64,
    pub(crate) timed: bool,
    pub(crate) trace_on: bool,
}

// SAFETY: the job's borrows point into a `Network` that is exclusively
// borrowed for the whole parallel step; bands are disjoint by
// construction (`split_band`), and the step barrier orders all worker
// writes before the main thread's merge reads.
#[allow(unsafe_code)]
unsafe impl Send for BandJob {}

/// Per-band worker-side state, persisted across cycles so the hot loop
/// never allocates (sinks, scratch and the kept-list keep their capacity).
#[derive(Debug, Default)]
pub(crate) struct WorkerState {
    pub(crate) sink: StageSink,
    pub(crate) scratch: StageScratch,
    pub(crate) kept: Vec<usize>,
    pub(crate) rc_va_ns: u64,
    pub(crate) sa_st_ns: u64,
}

/// Runs one band job into its worker state.
pub(crate) fn run_band_job(mut job: BandJob, state: &mut WorkerState) {
    state.kept.clear();
    state.rc_va_ns = 0;
    state.sa_st_ns = 0;
    state.sink.trace_on = job.trace_on;
    job.view.run_band(
        job.busy,
        &mut state.kept,
        job.now,
        job.timed,
        &mut state.sink,
        &mut state.scratch,
        &mut state.rc_va_ns,
        &mut state.sa_st_ns,
    );
}

//! The router-stage hot loop (RC + VA + SA + ST) over a *band* of routers.
//!
//! [`BandView`] borrows a contiguous router range plus the matching
//! sub-slices of every [`crate::soa::VcLanes`] array, and runs the
//! allocation kernels over it. The serial stepper uses one band covering
//! the whole network; the region-parallel stepper
//! ([`crate::par::StepPool`]) splits the view at router boundaries with
//! [`split_band`] and runs one band per worker.
//!
//! Route computation is **lookahead**: when switch traversal pushes a
//! head flit onto a channel it also resolves, from the shared read-only
//! routing tables, the output port the flit will request at the channel's
//! *destination* router, and carries it in the flit header stamped with
//! the current table epoch. RC at the receiving router is then a
//! pre-resolved load; it re-walks the tables only when the carried epoch
//! is stale (the tables were swapped mid-flight) or lookahead is disabled
//! ([`BandView::lookahead`]). VC allocation is likewise mask-driven: the
//! candidate set per (output port, VC class) is a precomputed bitmask
//! (`RouterRt::va_cand`) intersected with the live output-VC occupancy
//! mask, iterated via `trailing_zeros` in the same ascending order the
//! classic probe loop used. Both fast paths are byte-identical to the
//! classic pipeline (pinned by `tests/lookahead_equivalence.rs`).
//!
//! Within one cycle's router stage there is **no cross-router
//! interaction**: forwarded flits enter channel queues (delivered next
//! cycle at the earliest), credits are returned through the
//! `pending_credits` list (applied next cycle), and VA/SA only read
//! channels *sourced* at the router being allocated. The only shared state
//! is global counters, the trace stream, and the delivered list — all of
//! which the kernels defer into a per-band [`StageSink`]. The network
//! applies sinks in ascending band order, which reproduces the serial
//! ascending-router order byte for byte; this is what makes
//! region-parallel output identical to serial at any thread count (pinned
//! by `tests/region_parallel_equivalence.rs`).

use crate::events::EventCounts;
use crate::flit::Flit;
use crate::ids::{ChannelId, RouterId, Vnet};
use crate::network::{ChannelRt, RouterRt};
use crate::soa;
use crate::spec::{ChannelKind, NetworkSpec};
use crate::stats::Delivered;
use crate::trace::TraceEvent;

/// Side effects of one band's router stage, deferred so bands can run
/// concurrently and merge deterministically (in band order).
#[derive(Debug, Clone, Default)]
pub(crate) struct StageSink {
    /// Event counters accumulated by this band.
    pub(crate) events: EventCounts,
    /// Flits forwarded (added to both epoch and total stats).
    pub(crate) flits_forwarded: u64,
    /// Packets that hit a missing routing entry.
    pub(crate) unroutable: u64,
    /// Flits removed from input buffers (decrements `occupied_flits`).
    pub(crate) removed: u64,
    /// Flits pushed onto wires (increments `wire_flits`).
    pub(crate) wire_pushed: u64,
    /// Credits to return upstream next cycle.
    pub(crate) pending_credits: Vec<(ChannelId, u8)>,
    /// Channels that left the idle state (busy-worklist additions).
    pub(crate) busy_channels: Vec<usize>,
    /// Trace events in intra-band order (only filled when `trace_on`).
    pub(crate) trace: Vec<TraceEvent>,
    /// Whether a tracer is attached this cycle.
    pub(crate) trace_on: bool,
    /// Delivered packets in intra-band order.
    pub(crate) delivered: Vec<Delivered>,
}

impl StageSink {
    /// Whether the sink carries nothing (cheap pre-check before applying).
    pub(crate) fn is_empty(&self) -> bool {
        self.events == EventCounts::default()
            && self.flits_forwarded == 0
            && self.unroutable == 0
            && self.removed == 0
            && self.wire_pushed == 0
            && self.pending_credits.is_empty()
            && self.busy_channels.is_empty()
            && self.trace.is_empty()
            && self.delivered.is_empty()
    }
}

/// Reusable per-output-port candidate lists (sized to the network's
/// maximum port count, mirroring the pre-SoA scratch behaviour exactly).
/// `per_port` holds VA requesters, `sa_port` SA requesters; both are
/// gathered by one fused scan over the occupied-VC bitmasks.
///
/// On span-sampled cycles the band walk runs in two phases — RC+VA over
/// every busy router, then SA+ST over the same routers in the same
/// order — so each router's SA candidates are compacted out of
/// `sa_port` into the flat pool (`sa_flat` + per-router
/// `sa_ranges`/`sa_masks`) at the end of its RC+VA pass, and
/// `alive`/`processed` record the walk for the SA phase. On untimed
/// cycles the walk is fused (SA runs straight off `sa_port`, no
/// compaction); `alive` still records worklist retention.
#[derive(Debug, Clone, Default)]
pub(crate) struct StageScratch {
    pub(crate) per_port: Vec<Vec<usize>>,
    pub(crate) sa_port: Vec<Vec<usize>>,
    /// Flat SA candidate pool: each processed router appends its per-port
    /// candidate lists (ascending port order) during RC+VA.
    pub(crate) sa_flat: Vec<usize>,
    /// Per processed router × local output port: `(start, len)` into
    /// `sa_flat`, in processing order.
    pub(crate) sa_ranges: Vec<(u32, u32)>,
    /// Per processed router: bitmask of output ports with SA candidates.
    pub(crate) sa_masks: Vec<u32>,
    /// Busy routers that passed the flits-remaining pre-check this cycle
    /// (worklist retention re-checks them after the SA phase).
    pub(crate) alive: Vec<u32>,
    /// Routers that ran RC+VA this cycle, in walk order (the SA phase
    /// replays exactly this sequence).
    pub(crate) processed: Vec<u32>,
}

/// Mutable access to the channel array from inside a band.
///
/// Channels are indexed globally and not contiguous per band, so they
/// cannot be sliced like the lane arrays. Instead each band gets a shard
/// holding raw pointers to the full arrays, under the contract that a band
/// only ever touches channels whose **source router lies inside the band**
/// (VA/SA/ST only read or write channels leaving the router being
/// allocated). Bands partition routers, so concurrent shard accesses are
/// disjoint; debug assertions in [`BandView`] check the ownership rule on
/// every access.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ChannelShard {
    channels: *mut ChannelRt,
    flits: *mut u64,
    n: usize,
}

// SAFETY: the shard is only sent to a worker as part of a `BandJob`, and
// the band-ownership contract above makes all cross-thread accesses
// disjoint. Synchronization is provided by the step barrier (workers
// finish before the main thread reads the results).
#[allow(unsafe_code)]
unsafe impl Send for ChannelShard {}

#[allow(unsafe_code)]
impl ChannelShard {
    pub(crate) fn new(channels: &mut [ChannelRt], flits: &mut [u64]) -> Self {
        debug_assert_eq!(channels.len(), flits.len());
        ChannelShard {
            n: channels.len(),
            channels: channels.as_mut_ptr(),
            flits: flits.as_mut_ptr(),
        }
    }

    #[inline]
    fn get(&self, ci: usize) -> &ChannelRt {
        debug_assert!(ci < self.n);
        // SAFETY: in-bounds; disjointness per the band-ownership contract.
        unsafe { &*self.channels.add(ci) }
    }

    #[inline]
    fn get_mut(&mut self, ci: usize) -> &mut ChannelRt {
        debug_assert!(ci < self.n);
        // SAFETY: in-bounds; disjointness per the band-ownership contract.
        unsafe { &mut *self.channels.add(ci) }
    }

    #[inline]
    fn count_traversal(&mut self, ci: usize) {
        debug_assert!(ci < self.n);
        // SAFETY: in-bounds; disjointness per the band-ownership contract.
        unsafe { *self.flits.add(ci) += 1 };
    }
}

/// A contiguous band of routers with the matching lane sub-slices.
///
/// All indices passed to the kernel methods are *global*; the `ri0` /
/// `gp0` / `gv0` offsets translate them into the borrowed slices.
pub(crate) struct BandView<'a> {
    /// First router of the band.
    pub(crate) ri0: usize,
    pub(crate) routers: &'a mut [RouterRt],
    /// Global port index of the band's first port.
    pub(crate) gp0: usize,
    pub(crate) occ: &'a mut [u32],
    /// Per-port visit masks: `occ & scan` is the set the allocation scan
    /// walks; `occ & !scan` is the credit-parked set (see [`crate::soa`]).
    pub(crate) scan: &'a mut [u32],
    pub(crate) va_rr: &'a mut [crate::arbiter::RoundRobin],
    pub(crate) sa_rr: &'a mut [crate::arbiter::RoundRobin],
    /// Global VC index of the band's first VC.
    pub(crate) gv0: usize,
    /// Per-VC hot-lane words (route + output VC + front readiness; see
    /// [`crate::soa`]'s `LANE_*` layout).
    pub(crate) lane: &'a mut [u64],
    /// Per-VC packed VA digest of the front head flit (see
    /// [`crate::soa::VcLanes::va_meta`]).
    pub(crate) va_meta: &'a mut [u32],
    pub(crate) owner: &'a mut [Option<u64>],
    pub(crate) credits: &'a mut [u8],
    pub(crate) alloc: &'a mut [Option<(u8, u8)>],
    /// Per-port allocated-output-VC bitmask (kept in sync with `alloc`).
    pub(crate) alloc_mask: &'a mut [u32],
    /// Per-port zero-credit output-VC bitmask (kept in sync with
    /// `credits`).
    pub(crate) credit_zero: &'a mut [u32],
    pub(crate) head: &'a mut [u8],
    pub(crate) len: &'a mut [u8],
    pub(crate) slots: &'a mut [Flit],
    pub(crate) router_forwarded: &'a mut [u64],
    pub(crate) channels: ChannelShard,
    pub(crate) spec: &'a NetworkSpec,
    /// Full (network-wide) port prefix sums.
    pub(crate) port_base: &'a [u32],
    /// Full per-global-port output-channel cache (read-only, so bands share
    /// the whole array and index it globally).
    pub(crate) out_channel: &'a [Option<ChannelId>],
    /// Full per-global-port input-feeder cache (read-only).
    pub(crate) feeder: &'a [Option<ChannelId>],
    pub(crate) total_vcs: usize,
    pub(crate) vcs_per_vnet: usize,
    pub(crate) depth: usize,
    /// Maximum port count over all routers (scratch sizing).
    pub(crate) max_ports: usize,
    /// The network's current routing-table epoch; a head flit's carried
    /// lookahead port is honoured only when its `la_epoch` matches.
    pub(crate) table_epoch: u32,
    /// Whether RC consumes carried lookahead ports (and ST resolves them
    /// one hop ahead). Off = the classic per-router table walk, kept as a
    /// debug reference path for the equivalence suites.
    pub(crate) lookahead: bool,
}

/// Splits `view` into `[ri0, mid)` and `[mid, end)` bands at a router
/// boundary. All lane arrays split at the matching port/VC offsets, so
/// both halves are fully disjoint safe borrows; only the channel shard is
/// duplicated (see [`ChannelShard`] for why that is sound).
pub(crate) fn split_band(view: BandView<'_>, mid: usize) -> (BandView<'_>, BandView<'_>) {
    let n_r = mid - view.ri0;
    let mid_gp = view.port_base[mid] as usize;
    let n_p = mid_gp - view.gp0;
    let n_v = n_p * view.total_vcs;
    let (r_a, r_b) = view.routers.split_at_mut(n_r);
    let (occ_a, occ_b) = view.occ.split_at_mut(n_p);
    let (scan_a, scan_b) = view.scan.split_at_mut(n_p);
    let (vrr_a, vrr_b) = view.va_rr.split_at_mut(n_p);
    let (srr_a, srr_b) = view.sa_rr.split_at_mut(n_p);
    let (lane_a, lane_b) = view.lane.split_at_mut(n_v);
    let (vm_a, vm_b) = view.va_meta.split_at_mut(n_v);
    let (own_a, own_b) = view.owner.split_at_mut(n_v);
    let (cr_a, cr_b) = view.credits.split_at_mut(n_v);
    let (al_a, al_b) = view.alloc.split_at_mut(n_v);
    let (am_a, am_b) = view.alloc_mask.split_at_mut(n_p);
    let (cz_a, cz_b) = view.credit_zero.split_at_mut(n_p);
    let (hd_a, hd_b) = view.head.split_at_mut(n_v);
    let (ln_a, ln_b) = view.len.split_at_mut(n_v);
    let (sl_a, sl_b) = view.slots.split_at_mut(n_v * view.depth);
    let (fw_a, fw_b) = view.router_forwarded.split_at_mut(n_r);
    let a = BandView {
        ri0: view.ri0,
        routers: r_a,
        gp0: view.gp0,
        occ: occ_a,
        scan: scan_a,
        va_rr: vrr_a,
        sa_rr: srr_a,
        gv0: view.gv0,
        lane: lane_a,
        va_meta: vm_a,
        owner: own_a,
        credits: cr_a,
        alloc: al_a,
        alloc_mask: am_a,
        credit_zero: cz_a,
        head: hd_a,
        len: ln_a,
        slots: sl_a,
        router_forwarded: fw_a,
        channels: view.channels,
        spec: view.spec,
        port_base: view.port_base,
        out_channel: view.out_channel,
        feeder: view.feeder,
        total_vcs: view.total_vcs,
        vcs_per_vnet: view.vcs_per_vnet,
        depth: view.depth,
        max_ports: view.max_ports,
        table_epoch: view.table_epoch,
        lookahead: view.lookahead,
    };
    let b = BandView {
        ri0: mid,
        routers: r_b,
        gp0: mid_gp,
        occ: occ_b,
        scan: scan_b,
        va_rr: vrr_b,
        sa_rr: srr_b,
        gv0: mid_gp * view.total_vcs,
        lane: lane_b,
        va_meta: vm_b,
        owner: own_b,
        credits: cr_b,
        alloc: al_b,
        alloc_mask: am_b,
        credit_zero: cz_b,
        head: hd_b,
        len: ln_b,
        slots: sl_b,
        router_forwarded: fw_b,
        channels: view.channels,
        spec: view.spec,
        port_base: view.port_base,
        out_channel: view.out_channel,
        feeder: view.feeder,
        total_vcs: view.total_vcs,
        vcs_per_vnet: view.vcs_per_vnet,
        depth: view.depth,
        max_ports: view.max_ports,
        table_epoch: view.table_epoch,
        lookahead: view.lookahead,
    };
    (a, b)
}

impl BandView<'_> {
    /// Local VC index for global `gv`.
    #[inline]
    fn lv(&self, gv: usize) -> usize {
        gv - self.gv0
    }

    #[inline]
    fn ring_front(&self, lv: usize) -> Option<&Flit> {
        soa::ring_front(self.head, self.len, self.slots, self.depth, lv)
    }

    #[inline]
    fn n_ports(&self, ri: usize) -> usize {
        (self.port_base[ri + 1] - self.port_base[ri]) as usize
    }

    /// Asserts the channel-ownership contract: `ci` leaves a band router.
    #[inline]
    fn assert_owned(&self, ci: usize) {
        debug_assert!(
            {
                let src = self.channels.get(ci).spec.src.router.index();
                src >= self.ri0 && src < self.ri0 + self.routers.len()
            },
            "band touched a channel sourced outside it"
        );
    }

    /// Resets the per-cycle scratch for a band walk.
    fn prep_scratch(&self, scratch: &mut StageScratch) {
        if scratch.per_port.len() < self.max_ports {
            scratch.per_port.resize_with(self.max_ports, Vec::new);
            scratch.sa_port.resize_with(self.max_ports, Vec::new);
        }
        scratch.sa_flat.clear();
        scratch.sa_ranges.clear();
        scratch.sa_masks.clear();
        scratch.alive.clear();
        scratch.processed.clear();
    }

    /// Runs the active-set router stage over this band's slice of the
    /// sorted busy-router worklist, compacting survivors into `kept` and
    /// clearing the busy flag of routers that drained (mirroring the
    /// serial worklist walk exactly).
    ///
    /// On an untimed cycle (the overwhelmingly common case) the walk is
    /// fused: each router runs RC+VA and then immediately SA+ST off the
    /// still-warm `scratch.sa_port` lists, with no cross-phase compaction.
    /// On a span-timed cycle the walk is two-phase instead: RC+VA for
    /// every runnable router first, then SA+ST over the same routers in
    /// the same order. The phases commute across routers — SA+ST only
    /// mutates the forwarding router's own lanes plus the deferred sink
    /// queues (credits apply next cycle, channel pushes deliver after the
    /// link latency), none of which a later router's RC+VA reads — so
    /// both walks produce byte-identical state (pinned by the telemetry
    /// observation-only suite), and the phase split lets the stage spans
    /// be taken once per band instead of twice per router (a clock read
    /// costs more than a small router's whole scan; see DESIGN.md §13).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_band(
        &mut self,
        busy: &[usize],
        kept: &mut Vec<usize>,
        now: u64,
        timed: bool,
        sink: &mut StageSink,
        scratch: &mut StageScratch,
        rc_va_ns: &mut u64,
        sa_st_ns: &mut u64,
    ) {
        self.prep_scratch(scratch);
        let t0 = timed.then(std::time::Instant::now);
        for &ri in busy {
            let lr = ri - self.ri0;
            if self.routers[lr].flits == 0 {
                self.routers[lr].in_busy_list = false;
                continue;
            }
            scratch.alive.push(ri as u32);
            let runnable = {
                let r = &self.routers[lr];
                r.active && !r.sleeping && !r.failed && r.config_until <= now
            };
            if runnable {
                if timed {
                    scratch.processed.push(ri as u32);
                }
                self.vc_allocate(ri, now, sink, scratch, !timed);
            }
        }
        if timed {
            let t1 = std::time::Instant::now();
            self.switch_band(now, sink, scratch);
            if let Some(t0) = t0 {
                *rc_va_ns += (t1 - t0).as_nanos() as u64;
                *sa_st_ns += t1.elapsed().as_nanos() as u64;
            }
        }
        for k in 0..scratch.alive.len() {
            let ri = scratch.alive[k] as usize;
            let lr = ri - self.ri0;
            if self.routers[lr].flits > 0 {
                kept.push(ri);
            } else {
                self.routers[lr].in_busy_list = false;
            }
        }
    }

    /// Runs the full-sweep router stage over every router of the band
    /// (reference mode; worklist retention happens in the caller). Same
    /// fused-unless-timed walk as [`Self::run_band`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_band_sweep(
        &mut self,
        now: u64,
        timed: bool,
        sink: &mut StageSink,
        scratch: &mut StageScratch,
        rc_va_ns: &mut u64,
        sa_st_ns: &mut u64,
    ) {
        self.prep_scratch(scratch);
        let t0 = timed.then(std::time::Instant::now);
        for lr in 0..self.routers.len() {
            {
                let r = &self.routers[lr];
                if !r.active || r.sleeping || r.failed || r.config_until > now || r.flits == 0 {
                    continue;
                }
            }
            if timed {
                scratch.processed.push((self.ri0 + lr) as u32);
            }
            self.vc_allocate(self.ri0 + lr, now, sink, scratch, !timed);
        }
        if timed {
            let t1 = std::time::Instant::now();
            self.switch_band(now, sink, scratch);
            if let Some(t0) = t0 {
                *rc_va_ns += (t1 - t0).as_nanos() as u64;
                *sa_st_ns += t1.elapsed().as_nanos() as u64;
            }
        }
    }

    /// The SA+ST phase of a band walk: replays the RC+VA walk order over
    /// the compacted candidate pool.
    fn switch_band(&mut self, now: u64, sink: &mut StageSink, scratch: &StageScratch) {
        let mut cursor = 0usize;
        for k in 0..scratch.processed.len() {
            let ri = scratch.processed[k] as usize;
            let n_ports = self.n_ports(ri);
            let mask = scratch.sa_masks[k];
            if mask != 0 {
                let ranges = &scratch.sa_ranges[cursor..cursor + n_ports];
                let flat = &scratch.sa_flat;
                self.switch_allocate(
                    ri,
                    now,
                    sink,
                    |po| {
                        let (start, len) = ranges[po];
                        &flat[start as usize..(start + len) as usize]
                    },
                    mask,
                );
            }
            cursor += n_ports;
        }
    }

    /// Route computation + output-VC allocation for one router, fused with
    /// switch-allocation candidate gathering: a single pass over occupied
    /// input VCs gathers VA requesters (VCs without an output VC yet) into
    /// `scratch.per_port` and switch-ready requesters (allocated VCs with
    /// a ready, creditable head flit) into `scratch.sa_port`, both in
    /// ascending `(port, vc)` order by construction. Head-flit routes come
    /// from the carried lookahead port when fresh (see the module docs),
    /// falling back to a table walk. Each output port's VA round-robin
    /// then picks a winner under the virtual-cut-through rule, with the
    /// eligible-VC set computed as candidate-mask ∧ ¬allocated bit
    /// arithmetic; a freshly granted winner that is already switch-ready is inserted
    /// into its SA candidate list at its sorted position — exactly where a
    /// separate post-VA rescan would have found it — so the fusion is
    /// byte-identical to the classic two-scan pipeline at half the scan
    /// cost.
    fn vc_allocate(
        &mut self,
        ri: usize,
        now: u64,
        sink: &mut StageSink,
        scratch: &mut StageScratch,
        fuse: bool,
    ) {
        let lr = ri - self.ri0;
        let n_ports = self.n_ports(ri);
        let total_vcs = self.total_vcs;
        let depth = self.depth as u8;
        let base_gp = self.port_base[ri] as usize;
        let faulted_out = self.routers[lr].faulted_out;
        let eject_out = self.routers[lr].eject_out;

        // Bitmask of output ports with VA requesters this cycle; drives
        // both the arbitration walk and the scratch-list clearing so
        // request-free ports cost nothing.
        let mut used_ports: u32 = 0;
        for pi in 0..n_ports {
            let gp = base_gp + pi;
            // Visit only awake occupied VCs: a VC parked on an exhausted
            // downstream credit is skipped wholesale until the credit
            // return wakes it (`Network::step_credits`), turning the
            // saturated steady state — where most occupied VCs are
            // credit-blocked — from a rescan-everything walk into a walk
            // of the VCs that can actually act.
            let mut occ = self.occ[gp - self.gp0] & self.scan[gp - self.gp0];
            while occ != 0 {
                let vi = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let lv = self.lv(gp * total_vcs + vi);
                // One hot-lane load answers every question the scan asks of
                // this VC: streaming or not, routed or not, front ready or
                // not, and toward which port/VC.
                let s = self.lane[lv];
                if s & soa::LANE_HAS_OUT != 0 {
                    // Streaming VC: qualify directly for switch allocation.
                    // The lane's front-readiness field keeps the common
                    // "flit still in the router pipeline" case off the flit
                    // slab.
                    if (s >> soa::LANE_READY_SHIFT) > now {
                        continue;
                    }
                    if s & soa::LANE_HAS_ROUTE == 0 {
                        continue; // allocation without a route; defensive
                    }
                    debug_assert!(self.ring_front(lv).is_some(), "occupied VC without a front");
                    let po = ((s >> soa::LANE_PO_SHIFT) & 0x3F) as usize;
                    // Never drive flits onto a faulted channel.
                    if faulted_out & (1 << po) != 0 {
                        continue;
                    }
                    let gvc = (s & soa::LANE_GVC) as usize;
                    // Port-local zero-credit mask instead of the other
                    // port's per-VC credit byte: same verdict, no stray
                    // cache line. Park the VC off the visit mask while
                    // blocked; the credit return wakes it (and an
                    // interleaving buffer push wakes it spuriously but
                    // harmlessly — it just re-parks here).
                    if eject_out & (1 << po) == 0
                        && self.credit_zero[base_gp + po - self.gp0] & (1 << gvc) != 0
                    {
                        self.scan[gp - self.gp0] &= !(1 << vi);
                        continue;
                    }
                    scratch.sa_port[po].push(pi * total_vcs + vi);
                    continue;
                }
                // Route computation for a fresh head flit, or a head still
                // waiting for VA. A VC with a route but no output VC can
                // only hold the head that computed the route at its front
                // (flits drain in FIFO order and nothing pops without an
                // output VC), so the waiting case needs no slab probe.
                let route = match soa::lane_route(s) {
                    Some(r) => {
                        debug_assert!(
                            self.ring_front(lv).is_some_and(|f| f.pos.is_head()),
                            "non-head at routed VA-waiting VC front"
                        );
                        r
                    }
                    None => {
                        let Some(&front) = self.ring_front(lv) else {
                            continue;
                        };
                        debug_assert!(front.pos.is_head(), "non-head at route-less VC front");
                        // Lookahead RC: the upstream router (or the NI, for
                        // the first hop) resolved this head's output port
                        // already; honour it iff it was resolved against
                        // the tables currently installed. A stale epoch —
                        // the tables were swapped while the flit was in
                        // flight — falls back to the classic table walk.
                        let port = if self.lookahead
                            && front.la_epoch == self.table_epoch
                            && front.la_port != crate::flit::LA_NONE
                        {
                            debug_assert_eq!(
                                self.spec
                                    .tables
                                    .lookup(front.vnet, RouterId(ri as u16), front.dst),
                                Some(crate::ids::PortId(front.la_port)),
                                "carried lookahead port diverged from the live tables"
                            );
                            crate::ids::PortId(front.la_port)
                        } else {
                            match self.spec.tables.lookup(
                                front.vnet,
                                RouterId(ri as u16),
                                front.dst,
                            ) {
                                Some(port) => port,
                                None => {
                                    sink.unroutable += 1;
                                    continue;
                                }
                            }
                        };
                        soa::lane_set_route(&mut self.lane[lv], port.0);
                        // Cache the head's VA digest while the flit is in
                        // hand; the arbitration loop below reads this word
                        // (plus the lane's readiness field) instead of
                        // re-loading the head from the slab every cycle the
                        // winner fails the availability or credit probe. A
                        // routed-but-unallocated VC cannot pop, so the
                        // digest stays valid exactly as long as the route.
                        self.va_meta[lv] = soa::pack_va_meta(
                            front.vnet.0,
                            front.vc_class,
                            front.last_dim,
                            front.pkt_len,
                        );
                        self.owner[lv] = Some(front.packet);
                        port
                    }
                };
                let po = route.index();
                // A faulted output channel accepts no new packets.
                if faulted_out & (1 << po) != 0 {
                    continue;
                }
                if po < scratch.per_port.len() {
                    scratch.per_port[po].push(pi * total_vcs + vi);
                    used_ports |= 1 << po;
                }
            }
        }
        if used_ports != 0 {
            // Ascending set-bit order matches the old 0..n_ports walk over
            // non-empty lists exactly. Ports at or past `n_ports` (possible
            // only with a corrupt route) gather but never arbitrate, as
            // before; their lists are still cleared below.
            let port_lim = if n_ports >= 32 {
                u32::MAX
            } else {
                (1u32 << n_ports) - 1
            };
            let mut m = used_ports & port_lim;
            while m != 0 {
                let po = m.trailing_zeros() as usize;
                m &= m - 1;
                let winner =
                    self.va_rr[base_gp + po - self.gp0].grant_sparse(&scratch.per_port[po]);
                if let Some(winner) = winner {
                    let (pi, vi) = (winner / total_vcs, winner % total_vcs);
                    let lv_in = self.lv((base_gp + pi) * total_vcs + vi);
                    // The gather loop proved this VC routed, so its RC-time
                    // VA digest is current (see `soa::VcLanes::va_meta`) and
                    // the lane word carries the head's readiness — no flit
                    // slab load for the arbitration winner, which in
                    // saturation usually just fails the credit probe below.
                    let meta = self.va_meta[lv_in];
                    let (vnet, vc_class, last_dim, pkt_len) = soa::unpack_va_meta(meta);
                    let vnet = crate::ids::Vnet(vnet);
                    let ready_at = self.lane[lv_in] >> soa::LANE_READY_SHIFT;
                    debug_assert!(
                        self.ring_front(lv_in).is_some_and(|f| f.vnet == vnet
                            && f.vc_class == vc_class
                            && f.last_dim == last_dim
                            && f.pkt_len == pkt_len
                            && f.ready_at == ready_at),
                        "stale VA digest at arbitration winner"
                    );
                    // The class that matters is the one the packet will
                    // carry on the *output* channel.
                    let class = match self.out_channel[base_gp + po] {
                        Some(ch) => self
                            .channels
                            .get(ch.index())
                            .spec
                            .class_after(vc_class, last_dim),
                        None => vc_class,
                    };
                    let out_eject = eject_out & (1 << po) != 0;
                    let out_base = (base_gp + po) * total_vcs;
                    // Virtual cut-through: output VC must be unallocated and
                    // its downstream buffer must have room for the entire
                    // packet. The VC must also be in the packet's dateline
                    // class and usable per the (OSCAR) mask — both folded
                    // into the precomputed per-(vnet, class) candidate
                    // masks (ejection consumes packets, so it bypasses the
                    // dateline split). Intersecting with the allocated-VC
                    // bitmask leaves only the credit check per candidate;
                    // `trailing_zeros` iteration visits VCs in the same
                    // ascending-offset order the probe loop used.
                    let cand = {
                        let c = &self.routers[lr].va_cand[vnet.index()];
                        if out_eject {
                            c[2]
                        } else {
                            c[(class != 0) as usize]
                        }
                    };
                    let start = self.vnet_vcs_start(vnet);
                    let lp_out = base_gp + po - self.gp0;
                    let mut avail = ((cand as u32) << start) & !self.alloc_mask[lp_out];
                    let need = pkt_len.min(depth);
                    let mut free = None;
                    while avail != 0 {
                        let gvc = avail.trailing_zeros() as usize;
                        avail &= avail - 1;
                        if out_eject || self.credits[self.lv(out_base + gvc)] >= need {
                            free = Some(gvc);
                            break;
                        }
                    }
                    if let Some(gvc) = free {
                        let lv_out = self.lv(out_base + gvc);
                        self.alloc[lv_out] = Some((pi as u8, vi as u8));
                        self.alloc_mask[lp_out] |= 1 << gvc;
                        soa::lane_set_out_vc(&mut self.lane[lv_in], gvc as u8);
                        sink.events.va_grants += 1;
                        // A winner whose head is already ready joins this
                        // cycle's SA candidates. Credits need no re-check:
                        // the cut-through rule just guaranteed at least a
                        // full packet of room (and ejection ignores
                        // credits), and the faulted mask was checked at
                        // gather time.
                        if ready_at <= now {
                            let key = pi * total_vcs + vi;
                            let list = &mut scratch.sa_port[po];
                            let at = list.partition_point(|&c| c < key);
                            list.insert(at, key);
                        }
                    }
                }
            }
            let mut m = used_ports;
            while m != 0 {
                let po = m.trailing_zeros() as usize;
                m &= m - 1;
                scratch.per_port[po].clear();
            }
        }
        if fuse {
            // Fused walk: switch-allocate straight off the per-port lists
            // while they (and this router's state) are still warm, then
            // reset them for the next router. No compaction copies.
            let mut sa_mask = 0u32;
            for (po, list) in scratch.sa_port.iter().enumerate().take(n_ports) {
                if !list.is_empty() {
                    sa_mask |= 1 << po;
                }
            }
            if sa_mask != 0 {
                let lists = &scratch.sa_port;
                self.switch_allocate(ri, now, sink, |po| lists[po].as_slice(), sa_mask);
            }
            let mut m = sa_mask;
            while m != 0 {
                let po = m.trailing_zeros() as usize;
                m &= m - 1;
                scratch.sa_port[po].clear();
            }
            return;
        }
        // Two-phase walk: compact this router's SA candidates into the
        // flat pool; the SA phase replays them after every router's RC+VA
        // has run.
        let mut sa_mask = 0u32;
        for po in 0..n_ports {
            let list = &mut scratch.sa_port[po];
            let start = scratch.sa_flat.len() as u32;
            let len = list.len() as u32;
            if len != 0 {
                sa_mask |= 1 << po;
                scratch.sa_flat.extend_from_slice(list);
                list.clear();
            }
            scratch.sa_ranges.push((start, len));
        }
        scratch.sa_masks.push(sa_mask);
    }

    /// First global VC of `vnet` within a port's VC range.
    #[inline]
    fn vnet_vcs_start(&self, vnet: Vnet) -> usize {
        vnet.index() * self.vcs_per_vnet
    }

    /// Switch allocation + traversal for one router: round-robin per
    /// output port among requesters whose input port is still free this
    /// cycle, forward the winners. The candidate lists come through the
    /// `cands` accessor (the warm per-port scratch lists in the fused
    /// walk, the compacted flat pool in the two-phase walk). `mask` has a
    /// bit set per output port with candidates; ascending set-bit order
    /// matches the old 0..n_ports walk over non-empty lists exactly.
    fn switch_allocate<'c>(
        &mut self,
        ri: usize,
        now: u64,
        sink: &mut StageSink,
        cands: impl Fn(usize) -> &'c [usize],
        mut mask: u32,
    ) {
        let total_vcs = self.total_vcs;
        let base_lp = self.port_base[ri] as usize - self.gp0;

        let mut in_port_used = [false; 32];
        while mask != 0 {
            let po = mask.trailing_zeros() as usize;
            mask &= mask - 1;
            let cands = cands(po);
            // Round-robin among candidates whose input port is still
            // free this cycle (crossbar input constraint), without
            // allocating.
            let winner = self.sa_rr[base_lp + po]
                .grant_sparse_filtered(cands, |c| !in_port_used[c / total_vcs]);
            if let Some(winner) = winner {
                let (pi, vi) = (winner / total_vcs, winner % total_vcs);
                in_port_used[pi] = true;
                self.forward_flit(ri, pi, vi, po, now, sink);
            }
        }
    }

    /// Switch traversal for one granted flit: pop it from its input VC and
    /// push it onto the output channel (or eject it).
    fn forward_flit(
        &mut self,
        ri: usize,
        pi: usize,
        vi: usize,
        po: usize,
        now: u64,
        sink: &mut StageSink,
    ) {
        let lr = ri - self.ri0;
        let base_gp = self.port_base[ri] as usize;
        let total_vcs = self.total_vcs;
        let lv_in = self.lv((base_gp + pi) * total_vcs + vi);
        let Some(gvc) = soa::lane_out_vc(self.lane[lv_in]) else {
            return; // SA only grants allocated VCs; defensive
        };
        let Some(mut flit) = soa::ring_pop(
            self.head, self.len, self.slots, self.lane, self.depth, lv_in,
        ) else {
            return; // SA only grants occupied VCs; defensive
        };
        if self.len[lv_in] == 0 {
            self.occ[base_gp + pi - self.gp0] &= !(1 << vi);
        }
        self.routers[lr].flits -= 1;
        sink.removed += 1;
        sink.events.buffer_reads += 1;
        sink.events.crossbar_traversals += 1;
        sink.events.sa_grants += 1;
        sink.flits_forwarded += 1;
        self.router_forwarded[lr] += 1;
        if sink.trace_on {
            sink.trace.push(TraceEvent::Forwarded {
                packet: flit.packet,
                cycle: now,
                router: RouterId(ri as u16),
                seq: flit.seq,
            });
        }

        // Credit back to the upstream feeder, applied next cycle.
        if let Some(feeder) = self.feeder[base_gp + pi] {
            sink.pending_credits.push((feeder, vi as u8));
            sink.events.credits_sent += 1;
        }

        let is_tail = flit.pos.is_tail();
        let lv_out = self.lv((base_gp + po) * total_vcs + gvc as usize);
        if is_tail {
            soa::lane_clear_alloc(&mut self.lane[lv_in]);
            self.owner[lv_in] = None;
            self.alloc[lv_out] = None;
            self.alloc_mask[base_gp + po - self.gp0] &= !(1 << gvc);
        }

        if let Some(ch) = self.out_channel[base_gp + po] {
            let ci = ch.index();
            self.assert_owned(ci);
            self.credits[lv_out] -= 1;
            if self.credits[lv_out] == 0 {
                self.credit_zero[base_gp + po - self.gp0] |= 1 << gvc;
            }
            let spec = self.channels.get(ci).spec;
            if self.lookahead && flit.pos.is_head() {
                // Lookahead RC: resolve the head's *next-hop* output port
                // against the current tables while the flit is in hand, so
                // RC at the downstream router is a pre-resolved load. The
                // cross-router table read is safe under region-parallel
                // stepping (the shared spec is read-only during the stage).
                flit.la_port = match self
                    .spec
                    .tables
                    .lookup(flit.vnet, spec.dst.router, flit.dst)
                {
                    Some(p) => p.0,
                    None => crate::flit::LA_NONE,
                };
                flit.la_epoch = self.table_epoch;
            }
            flit.assigned_vc = gvc;
            flit.vc_class = spec.class_after(flit.vc_class, flit.last_dim);
            flit.last_dim = spec.dim();
            flit.hops += 1;
            sink.events.link_flit_hops += 1;
            sink.events.link_flit_mm += spec.length_mm as f64;
            if spec.kind.is_adaptable() || spec.kind == ChannelKind::Concentration {
                sink.events.mux_traversals += 1;
            }
            if spec.kind == ChannelKind::InterChip {
                sink.events.interchip_crossings += 1;
            }
            self.channels.count_traversal(ci);
            let c = self.channels.get_mut(ci);
            c.q.push_back((now + spec.latency as u64, flit));
            sink.wire_pushed += 1;
            if !c.in_busy_list {
                c.in_busy_list = true;
                sink.busy_channels.push(ci);
            }
        } else {
            // Ejection.
            debug_assert!(
                self.routers[lr].eject_out & (1 << po) != 0,
                "SA winner routed to unwired port"
            );
            sink.events.ni_ejections += 1;
            if is_tail {
                if sink.trace_on {
                    sink.trace.push(TraceEvent::Ejected {
                        packet: flit.packet,
                        cycle: now,
                        hops: flit.hops,
                    });
                }
                sink.delivered.push(Delivered {
                    injected_at: flit.injected_at,
                    ejected_at: now,
                    hops: flit.hops,
                    packet: flit.to_packet(),
                });
            }
        }
    }
}

/// One band's worth of router-stage work, with lifetime-erased borrows so
/// a persistent worker pool can hold it across the spawn boundary. Created
/// only by `Network::router_stage_parallel`, which keeps the borrowed
/// network alive and blocked until every job completes.
pub(crate) struct BandJob {
    pub(crate) view: BandView<'static>,
    pub(crate) busy: &'static [usize],
    pub(crate) now: u64,
    pub(crate) timed: bool,
    pub(crate) trace_on: bool,
}

// SAFETY: the job's borrows point into a `Network` that is exclusively
// borrowed for the whole parallel step; bands are disjoint by
// construction (`split_band`), and the step barrier orders all worker
// writes before the main thread's merge reads.
#[allow(unsafe_code)]
unsafe impl Send for BandJob {}

/// Per-band worker-side state, persisted across cycles so the hot loop
/// never allocates (sinks, scratch and the kept-list keep their capacity).
#[derive(Debug, Default)]
pub(crate) struct WorkerState {
    pub(crate) sink: StageSink,
    pub(crate) scratch: StageScratch,
    pub(crate) kept: Vec<usize>,
    pub(crate) rc_va_ns: u64,
    pub(crate) sa_st_ns: u64,
}

/// Runs one band job into its worker state.
pub(crate) fn run_band_job(mut job: BandJob, state: &mut WorkerState) {
    state.kept.clear();
    state.rc_va_ns = 0;
    state.sa_st_ns = 0;
    state.sink.trace_on = job.trace_on;
    job.view.run_band(
        job.busy,
        &mut state.kept,
        job.now,
        job.timed,
        &mut state.sink,
        &mut state.scratch,
        &mut state.rc_va_ns,
        &mut state.sa_st_ns,
    );
}

//! Data-oriented (structure-of-arrays) storage for per-VC router state.
//!
//! The router hot loop (RC/VA/SA/ST in [`crate::stage`]) used to chase
//! pointers through `routers[ri].in_ports[pi].vcs[vi]` — three `Vec`
//! indirections plus a heap-allocated `VecDeque` per VC. [`VcLanes`] flattens
//! all of that into contiguous arrays indexed by a *global VC index*
//!
//! ```text
//! gp = port_base[ri] + pi          // global port index
//! gv = gp * total_vcs + vi         // global VC index
//! ```
//!
//! so one loaded cycle touches a handful of dense arrays instead of
//! thousands of small heap objects. Input-side state (the hot `lane` word
//! packing route + output VC + front readiness, plus `owner`, `ni_lock`,
//! buffers, `occ`) is indexed by input port; output-side state (`credits`,
//! `alloc`, and the port-level `alloc_mask`/`credit_zero` bitmasks) by
//! output port. Routers always have matching input/output port counts, so
//! both sides share the same index space.
//!
//! Flit buffers are fixed-capacity ring buffers living in one shared
//! `slots` slab, `vc_depth` slots per VC. That bound is sound: every input
//! VC buffer is limited to `vc_depth` flits by construction — the credit
//! loop bounds wire + downstream occupancy per VC at `vc_depth`, NI
//! injection checks `buf_len < vc_depth`, and purges only remove flits.
//! The always-on buffer-occupancy invariant guard treats `len > depth` as a
//! violation, so the capacity assumption is continuously checked.
//!
//! The arrays are plain `Vec`s (not nested) precisely so the region-parallel
//! stepper (see [`crate::par`]) can hand disjoint `&mut` sub-slices of every
//! array to worker threads with safe `split_at_mut` calls.

use crate::flit::{Flit, Packet};
use crate::ids::NodeId;

/// Flat per-VC state for every router in the network. See the module docs
/// for the index scheme.
#[derive(Debug, Clone)]
pub(crate) struct VcLanes {
    /// VCs per port (`SimConfig::total_vcs()`); immutable for the network's
    /// life (reconfiguration cannot change it).
    pub(crate) total_vcs: usize,
    /// Ring capacity per VC (`SimConfig::vc_depth`).
    pub(crate) depth: usize,
    /// Prefix sums of per-router port counts; `port_base[ri]` is router
    /// `ri`'s first global port, `port_base[n_routers]` the total port
    /// count. Immutable for the network's life (reconfiguration rejects
    /// port-count changes).
    pub(crate) port_base: Vec<u32>,
    /// Per global port: bitmask of VCs with buffered flits.
    pub(crate) occ: Vec<u32>,
    /// Per global port (input side): bitmask of VCs the allocation scan
    /// must visit. A streaming VC blocked on an exhausted downstream VC
    /// contributes nothing until a credit returns, so the scan *parks* it
    /// (clears its bit) and `Network::step_credits` wakes it O(1) when
    /// the blocking credit transitions away from zero — the output VC's
    /// `alloc` back-link names the unique parked lane. Every buffer push
    /// and every wholesale rebuild (reconfigure, purge) also wakes, so
    /// `occ & !scan` is exactly the credit-parked set (checked by the
    /// Allocation invariant guard). Stale set bits on drained VCs are
    /// harmless: the scan masks with `occ`.
    pub(crate) scan: Vec<u32>,
    /// Per global port: the channel leaving this output port (hot-loop cache
    /// of `OutPort::channel`; see `Network::refresh_port_caches`).
    pub(crate) out_channel: Vec<Option<crate::ids::ChannelId>>,
    /// Per global port: the channel feeding this input port (hot-loop cache
    /// of `InPort::feeder`).
    pub(crate) feeder: Vec<Option<crate::ids::ChannelId>>,
    /// Per global port: output-VC allocation round-robin pointer. Lives here
    /// (not in the per-port structs) so the hot loop arbitrates without
    /// chasing `routers[ri].out_ports[pi]`; persistence across
    /// reconfiguration is automatic because port counts are immutable.
    pub(crate) va_rr: Vec<crate::arbiter::RoundRobin>,
    /// Per global port: switch allocation round-robin pointer.
    pub(crate) sa_rr: Vec<crate::arbiter::RoundRobin>,
    /// Per global VC (input side): the dense hot-lane word packing the
    /// route (output port), allocated output VC, and front-flit readiness
    /// the allocation scan reads every cycle — one load where three
    /// separate arrays (`route`, `out_vc`, `front_ready`) used to cost
    /// three cache touches. See the `LANE_*` constants for the layout.
    pub(crate) lane: Vec<u64>,
    /// Per global VC (input side): VA metadata of the front head flit,
    /// packed `vnet | vc_class << 8 | last_dim << 16 | pkt_len << 24`.
    /// Written at route computation (the one scan visit that loads the
    /// head from the slab anyway) and valid until the route clears: a
    /// routed-but-unallocated VC cannot pop (nothing forwards without an
    /// output VC), so its front — and this digest of it — is frozen. VA
    /// arbitration reads this word instead of re-loading the winner's
    /// head flit from the slab every cycle it fails the availability or
    /// credit probe.
    pub(crate) va_meta: Vec<u32>,
    /// Per global VC (input side): id of the packet that owns the lane's
    /// route/output-VC allocation.
    pub(crate) owner: Vec<Option<u64>>,
    /// Per global VC (input side): set while an NI streams a packet in.
    pub(crate) ni_lock: Vec<bool>,
    /// Per global VC (output side): credits for the downstream VC.
    pub(crate) credits: Vec<u8>,
    /// Per global VC (output side): which local input VC holds this output
    /// VC, as `(in_port, in_vc)`.
    pub(crate) alloc: Vec<Option<(u8, u8)>>,
    /// Per global port (output side): bitmask of allocated output VCs —
    /// bit `v` mirrors `alloc[gp * total_vcs + v].is_some()`. The VA scan
    /// intersects this with the precomputed candidate masks so picking a
    /// free output VC is mask arithmetic instead of per-lane `Option`
    /// probing; every `alloc` write keeps the two in sync (checked by the
    /// Allocation invariant guard).
    pub(crate) alloc_mask: Vec<u32>,
    /// Per global port (output side): bitmask of output VCs with zero
    /// credits — bit `v` mirrors `credits[gp * total_vcs + v] == 0`. The
    /// streaming-VC scan tests this port-local mask instead of loading the
    /// per-VC credit byte of a *different* port's row (a cache line the
    /// scan otherwise never touches); every credit transition through zero
    /// keeps the two in sync (checked by the Allocation invariant guard).
    pub(crate) credit_zero: Vec<u32>,
    /// Per global VC: ring-buffer head slot (< `depth`).
    pub(crate) head: Vec<u8>,
    /// Per global VC: ring-buffer length (<= `depth`).
    pub(crate) len: Vec<u8>,
    /// The flit slab: slot `k` of VC `gv` lives at
    /// `slots[gv * depth + (head[gv] + k) % depth]`.
    pub(crate) slots: Vec<Flit>,
}

/// Placeholder flit for unoccupied slab slots.
fn filler() -> Flit {
    Flit::of_packet(&Packet::request(0, NodeId(0), NodeId(0), 0), 0)
}

// Layout of the per-VC hot-lane word (`VcLanes::lane`), low to high:
//
// ```text
// bits  0..6   allocated output VC (valid iff LANE_HAS_OUT)
// bits  6..12  route: chosen output port (valid iff LANE_HAS_ROUTE)
// bit   12     LANE_HAS_OUT   — an output VC is allocated
// bit   13     LANE_HAS_ROUTE — a route is computed
// bits 16..64  `ready_at` of the front flit (stale when the ring is
//              empty); 48 bits bound simulated time at ~2.8e14 cycles
// ```
//
// Ports and VCs are bounded by the `u32` port/VC bitmasks used throughout
// the hot loop, so six bits each always suffice.

/// Mask of the allocated-output-VC field.
pub(crate) const LANE_GVC: u64 = 0x3F;
/// Shift of the route (output port) field.
pub(crate) const LANE_PO_SHIFT: u32 = 6;
/// Mask of the route field (in place).
pub(crate) const LANE_PO: u64 = 0x3F << LANE_PO_SHIFT;
/// Set when the lane holds an allocated output VC.
pub(crate) const LANE_HAS_OUT: u64 = 1 << 12;
/// Set when the lane holds a computed route.
pub(crate) const LANE_HAS_ROUTE: u64 = 1 << 13;
/// The whole allocation state (route + output VC + both flags).
pub(crate) const LANE_ALLOC: u64 = 0xFFFF;
/// Shift of the front-flit `ready_at` field.
pub(crate) const LANE_READY_SHIFT: u32 = 16;

/// The lane's route, decoded.
#[inline]
pub(crate) fn lane_route(s: u64) -> Option<crate::ids::PortId> {
    if s & LANE_HAS_ROUTE != 0 {
        Some(crate::ids::PortId(((s >> LANE_PO_SHIFT) & 0x3F) as u8))
    } else {
        None
    }
}

/// The lane's allocated output VC, decoded.
#[inline]
pub(crate) fn lane_out_vc(s: u64) -> Option<u8> {
    if s & LANE_HAS_OUT != 0 {
        Some((s & LANE_GVC) as u8)
    } else {
        None
    }
}

/// Stores a computed route in the lane.
#[inline]
pub(crate) fn lane_set_route(s: &mut u64, po: u8) {
    debug_assert!(po < 64);
    *s = (*s & !LANE_PO) | ((po as u64) << LANE_PO_SHIFT) | LANE_HAS_ROUTE;
}

/// Stores an allocated output VC in the lane.
#[inline]
pub(crate) fn lane_set_out_vc(s: &mut u64, gvc: u8) {
    debug_assert!((gvc as u64) <= LANE_GVC);
    *s = (*s & !LANE_GVC) | gvc as u64 | LANE_HAS_OUT;
}

/// Clears the lane's allocation state (route + output VC), keeping the
/// front-readiness field.
#[inline]
pub(crate) fn lane_clear_alloc(s: &mut u64) {
    *s &= !LANE_ALLOC;
}

/// Refreshes the lane's front-readiness field, keeping the allocation
/// state.
#[inline]
pub(crate) fn lane_set_ready(s: &mut u64, ready_at: u64) {
    debug_assert!(ready_at < 1 << 48, "simulated time outside the lane field");
    *s = (*s & LANE_ALLOC) | (ready_at << LANE_READY_SHIFT);
}

/// Packs a head flit's VA-relevant fields into a `va_meta` word:
/// `vnet | vc_class << 8 | last_dim << 16 | pkt_len << 24`.
#[inline]
pub(crate) fn pack_va_meta(vnet: u8, vc_class: u8, last_dim: u8, pkt_len: u8) -> u32 {
    vnet as u32 | (vc_class as u32) << 8 | (last_dim as u32) << 16 | (pkt_len as u32) << 24
}

/// Unpacks a `va_meta` word into `(vnet, vc_class, last_dim, pkt_len)`.
#[inline]
pub(crate) fn unpack_va_meta(m: u32) -> (u8, u8, u8, u8) {
    (m as u8, (m >> 8) as u8, (m >> 16) as u8, (m >> 24) as u8)
}

impl VcLanes {
    /// Builds empty lanes for routers with the given per-router port counts.
    pub(crate) fn new(port_counts: &[usize], total_vcs: usize, depth: usize) -> Self {
        let mut port_base = Vec::with_capacity(port_counts.len() + 1);
        let mut acc = 0u32;
        port_base.push(0);
        for &n in port_counts {
            acc += n as u32;
            port_base.push(acc);
        }
        let n_ports = acc as usize;
        let n_vcs = n_ports * total_vcs;
        VcLanes {
            total_vcs,
            depth,
            port_base,
            occ: vec![0; n_ports],
            scan: vec![0; n_ports],
            out_channel: vec![None; n_ports],
            feeder: vec![None; n_ports],
            va_rr: vec![crate::arbiter::RoundRobin::new(); n_ports],
            sa_rr: vec![crate::arbiter::RoundRobin::new(); n_ports],
            lane: vec![0; n_vcs],
            va_meta: vec![0; n_vcs],
            owner: vec![None; n_vcs],
            ni_lock: vec![false; n_vcs],
            credits: vec![depth as u8; n_vcs],
            alloc: vec![None; n_vcs],
            alloc_mask: vec![0; n_ports],
            credit_zero: vec![
                // All VCs start with `depth` credits; only a zero-depth
                // configuration (rejected upstream) would start exhausted.
                if depth == 0 {
                    u32::MAX >> (32 - total_vcs.clamp(1, 32))
                } else {
                    0
                };
                n_ports
            ],
            head: vec![0; n_vcs],
            len: vec![0; n_vcs],
            slots: vec![filler(); n_vcs * depth],
        }
    }

    /// Global port index of `(router, port)`.
    #[inline]
    pub(crate) fn gp(&self, ri: usize, pi: usize) -> usize {
        self.port_base[ri] as usize + pi
    }

    /// Global VC index of `(router, port, vc)`.
    #[inline]
    pub(crate) fn gv(&self, ri: usize, pi: usize, vi: usize) -> usize {
        (self.port_base[ri] as usize + pi) * self.total_vcs + vi
    }

    /// Number of ports on router `ri`.
    #[inline]
    pub(crate) fn n_ports(&self, ri: usize) -> usize {
        (self.port_base[ri + 1] - self.port_base[ri]) as usize
    }

    /// Buffered flits in VC `gv`.
    #[inline]
    pub(crate) fn buf_len(&self, gv: usize) -> usize {
        self.len[gv] as usize
    }

    /// The flit at the front of VC `gv`, if any.
    #[inline]
    pub(crate) fn front(&self, gv: usize) -> Option<&Flit> {
        ring_front(&self.head, &self.len, &self.slots, self.depth, gv)
    }

    /// The `k`-th buffered flit of VC `gv` (0 = front).
    ///
    /// # Panics
    ///
    /// Panics (in debug) if `k >= buf_len(gv)`.
    #[inline]
    pub(crate) fn flit_at(&self, gv: usize, k: usize) -> &Flit {
        debug_assert!(k < self.buf_len(gv));
        &self.slots[slot_index(&self.head, self.depth, gv, k)]
    }

    /// The route stored in VC `gv`'s lane, if any.
    #[inline]
    pub(crate) fn route(&self, gv: usize) -> Option<crate::ids::PortId> {
        lane_route(self.lane[gv])
    }

    /// The output VC allocated to VC `gv`'s lane, if any.
    #[inline]
    pub(crate) fn out_vc(&self, gv: usize) -> Option<u8> {
        lane_out_vc(self.lane[gv])
    }

    /// Clears VC `gv`'s route + output-VC allocation.
    #[inline]
    pub(crate) fn clear_alloc(&mut self, gv: usize) {
        lane_clear_alloc(&mut self.lane[gv]);
    }

    /// Recomputes every port's zero-credit mask from `credits` and wakes
    /// every parked VC (any blocking credit may just have changed).
    ///
    /// Used after wholesale credit recomputation (reconfigure, purge) where
    /// incremental bit maintenance would be error-prone for no gain.
    pub(crate) fn rebuild_credit_zero(&mut self) {
        for gp in 0..self.credit_zero.len() {
            let mut m = 0u32;
            for v in 0..self.total_vcs {
                if self.credits[gp * self.total_vcs + v] == 0 {
                    m |= 1 << v;
                }
            }
            self.credit_zero[gp] = m;
        }
        self.scan.fill(u32::MAX);
    }

    /// Appends a flit to VC `gv`.
    ///
    /// # Panics
    ///
    /// Panics (in debug) on ring overflow; release builds rely on the
    /// credit/NI bounds (see module docs) and the occupancy guard.
    #[inline]
    pub(crate) fn push_back(&mut self, gv: usize, f: Flit) {
        ring_push(
            &self.head,
            &mut self.len,
            &mut self.slots,
            &mut self.lane,
            self.depth,
            gv,
            f,
        );
    }

    /// Pops the front flit of VC `gv`.
    #[inline]
    pub(crate) fn pop_front(&mut self, gv: usize) -> Option<Flit> {
        ring_pop(
            &mut self.head,
            &mut self.len,
            &self.slots,
            &mut self.lane,
            self.depth,
            gv,
        )
    }

    /// Empties VC `gv` (the slots keep their stale contents).
    #[inline]
    pub(crate) fn clear_buf(&mut self, gv: usize) {
        self.head[gv] = 0;
        self.len[gv] = 0;
    }
}

/// Slab index of buffered flit `k` of VC `v` (head-relative).
#[inline]
pub(crate) fn slot_index(head: &[u8], depth: usize, v: usize, k: usize) -> usize {
    let mut p = head[v] as usize + k;
    // head < depth and k < depth, so one conditional subtract replaces `%`.
    if p >= depth {
        p -= depth;
    }
    v * depth + p
}

/// Front flit of VC `v`, if any. Operates on raw lane components so the
/// band views in [`crate::stage`] can reuse it on sub-slices.
#[inline]
pub(crate) fn ring_front<'s>(
    head: &[u8],
    len: &[u8],
    slots: &'s [Flit],
    depth: usize,
    v: usize,
) -> Option<&'s Flit> {
    if len[v] == 0 {
        None
    } else {
        Some(&slots[v * depth + head[v] as usize])
    }
}

/// Appends a flit to VC `v`, refreshing the lane's front-readiness field
/// when the ring was empty.
#[inline]
pub(crate) fn ring_push(
    head: &[u8],
    len: &mut [u8],
    slots: &mut [Flit],
    lane: &mut [u64],
    depth: usize,
    v: usize,
    f: Flit,
) {
    let n = len[v] as usize;
    debug_assert!(n < depth, "VC ring overflow (depth {depth})");
    if n == 0 {
        lane_set_ready(&mut lane[v], f.ready_at);
    }
    slots[slot_index(head, depth, v, n)] = f;
    len[v] = n as u8 + 1;
}

/// Pops the front flit of VC `v`, refreshing the lane's front-readiness
/// field from the new front.
#[inline]
pub(crate) fn ring_pop(
    head: &mut [u8],
    len: &mut [u8],
    slots: &[Flit],
    lane: &mut [u64],
    depth: usize,
    v: usize,
) -> Option<Flit> {
    if len[v] == 0 {
        return None;
    }
    let f = slots[v * depth + head[v] as usize];
    let h = head[v] as usize + 1;
    head[v] = if h == depth { 0 } else { h as u8 };
    len[v] -= 1;
    if len[v] > 0 {
        lane_set_ready(&mut lane[v], slots[v * depth + head[v] as usize].ready_at);
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(id: u64) -> Flit {
        Flit::of_packet(&Packet::request(id, NodeId(0), NodeId(1), 0), 0)
    }

    #[test]
    fn ring_push_pop_wraps_around() {
        let mut lanes = VcLanes::new(&[2], 3, 4);
        let gv = lanes.gv(0, 1, 2);
        for round in 0..3u64 {
            for i in 0..4 {
                lanes.push_back(gv, flit(round * 10 + i));
            }
            assert_eq!(lanes.buf_len(gv), 4);
            for i in 0..4 {
                assert_eq!(lanes.front(gv).unwrap().packet, round * 10 + i);
                assert_eq!(lanes.pop_front(gv).unwrap().packet, round * 10 + i);
            }
            assert!(lanes.pop_front(gv).is_none());
        }
    }

    #[test]
    fn global_indices_follow_port_prefix_sums() {
        let lanes = VcLanes::new(&[5, 3, 5], 6, 4);
        assert_eq!(lanes.port_base, vec![0, 5, 8, 13]);
        assert_eq!(lanes.n_ports(1), 3);
        assert_eq!(lanes.gp(1, 2), 7);
        assert_eq!(lanes.gv(2, 0, 5), 8 * 6 + 5);
        assert_eq!(lanes.occ.len(), 13);
        assert_eq!(lanes.lane.len(), 13 * 6);
        assert_eq!(lanes.slots.len(), 13 * 6 * 4);
    }

    #[test]
    fn flit_at_indexes_from_the_front() {
        let mut lanes = VcLanes::new(&[1], 1, 4);
        // Force a wrapped ring: push 3, pop 2, push 2.
        for i in 0..3 {
            lanes.push_back(0, flit(i));
        }
        lanes.pop_front(0);
        lanes.pop_front(0);
        lanes.push_back(0, flit(3));
        lanes.push_back(0, flit(4));
        let got: Vec<u64> = (0..lanes.buf_len(0))
            .map(|k| lanes.flit_at(0, k).packet)
            .collect();
        assert_eq!(got, vec![2, 3, 4]);
    }
}

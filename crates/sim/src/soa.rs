//! Data-oriented (structure-of-arrays) storage for per-VC router state.
//!
//! The router hot loop (RC/VA/SA/ST in [`crate::stage`]) used to chase
//! pointers through `routers[ri].in_ports[pi].vcs[vi]` — three `Vec`
//! indirections plus a heap-allocated `VecDeque` per VC. [`VcLanes`] flattens
//! all of that into contiguous arrays indexed by a *global VC index*
//!
//! ```text
//! gp = port_base[ri] + pi          // global port index
//! gv = gp * total_vcs + vi         // global VC index
//! ```
//!
//! so one loaded cycle touches a handful of dense arrays instead of
//! thousands of small heap objects. Input-side state (`route`, `out_vc`,
//! `owner`, `ni_lock`, buffers, `occ`) is indexed by input port; output-side
//! state (`credits`, `alloc`) by output port. Routers always have matching
//! input/output port counts, so both sides share the same index space.
//!
//! Flit buffers are fixed-capacity ring buffers living in one shared
//! `slots` slab, `vc_depth` slots per VC. That bound is sound: every input
//! VC buffer is limited to `vc_depth` flits by construction — the credit
//! loop bounds wire + downstream occupancy per VC at `vc_depth`, NI
//! injection checks `buf_len < vc_depth`, and purges only remove flits.
//! The always-on buffer-occupancy invariant guard treats `len > depth` as a
//! violation, so the capacity assumption is continuously checked.
//!
//! The arrays are plain `Vec`s (not nested) precisely so the region-parallel
//! stepper (see [`crate::par`]) can hand disjoint `&mut` sub-slices of every
//! array to worker threads with safe `split_at_mut` calls.

use crate::flit::{Flit, Packet};
use crate::ids::NodeId;

/// Flat per-VC state for every router in the network. See the module docs
/// for the index scheme.
#[derive(Debug, Clone)]
pub(crate) struct VcLanes {
    /// VCs per port (`SimConfig::total_vcs()`); immutable for the network's
    /// life (reconfiguration cannot change it).
    pub(crate) total_vcs: usize,
    /// Ring capacity per VC (`SimConfig::vc_depth`).
    pub(crate) depth: usize,
    /// Prefix sums of per-router port counts; `port_base[ri]` is router
    /// `ri`'s first global port, `port_base[n_routers]` the total port
    /// count. Immutable for the network's life (reconfiguration rejects
    /// port-count changes).
    pub(crate) port_base: Vec<u32>,
    /// Per global port: bitmask of VCs with buffered flits.
    pub(crate) occ: Vec<u32>,
    /// Per global port: the channel leaving this output port (hot-loop cache
    /// of `OutPort::channel`; see `Network::refresh_port_caches`).
    pub(crate) out_channel: Vec<Option<crate::ids::ChannelId>>,
    /// Per global port: the channel feeding this input port (hot-loop cache
    /// of `InPort::feeder`).
    pub(crate) feeder: Vec<Option<crate::ids::ChannelId>>,
    /// Per global port: output-VC allocation round-robin pointer. Lives here
    /// (not in the per-port structs) so the hot loop arbitrates without
    /// chasing `routers[ri].out_ports[pi]`; persistence across
    /// reconfiguration is automatic because port counts are immutable.
    pub(crate) va_rr: Vec<crate::arbiter::RoundRobin>,
    /// Per global port: switch allocation round-robin pointer.
    pub(crate) sa_rr: Vec<crate::arbiter::RoundRobin>,
    /// Per global VC (input side): output port chosen for the packet at the
    /// head of the VC.
    pub(crate) route: Vec<Option<crate::ids::PortId>>,
    /// Per global VC (input side): allocated output VC (global index) at
    /// `route`.
    pub(crate) out_vc: Vec<Option<u8>>,
    /// Per global VC (input side): id of the packet that owns
    /// `route`/`out_vc`.
    pub(crate) owner: Vec<Option<u64>>,
    /// Per global VC (input side): set while an NI streams a packet in.
    pub(crate) ni_lock: Vec<bool>,
    /// Per global VC (output side): credits for the downstream VC.
    pub(crate) credits: Vec<u8>,
    /// Per global VC (output side): which local input VC holds this output
    /// VC, as `(in_port, in_vc)`.
    pub(crate) alloc: Vec<Option<(u8, u8)>>,
    /// Per global VC: ring-buffer head slot (< `depth`).
    pub(crate) head: Vec<u8>,
    /// Per global VC: ring-buffer length (<= `depth`).
    pub(crate) len: Vec<u8>,
    /// Per global VC: `ready_at` of the front flit (stale when `len == 0`).
    /// Maintained by the ring push/pop helpers so the allocation scan can
    /// skip not-yet-ready VCs without touching the (much colder) flit slab.
    pub(crate) front_ready: Vec<u64>,
    /// The flit slab: slot `k` of VC `gv` lives at
    /// `slots[gv * depth + (head[gv] + k) % depth]`.
    pub(crate) slots: Vec<Flit>,
}

/// Placeholder flit for unoccupied slab slots.
fn filler() -> Flit {
    Flit::of_packet(&Packet::request(0, NodeId(0), NodeId(0), 0), 0)
}

impl VcLanes {
    /// Builds empty lanes for routers with the given per-router port counts.
    pub(crate) fn new(port_counts: &[usize], total_vcs: usize, depth: usize) -> Self {
        let mut port_base = Vec::with_capacity(port_counts.len() + 1);
        let mut acc = 0u32;
        port_base.push(0);
        for &n in port_counts {
            acc += n as u32;
            port_base.push(acc);
        }
        let n_ports = acc as usize;
        let n_vcs = n_ports * total_vcs;
        VcLanes {
            total_vcs,
            depth,
            port_base,
            occ: vec![0; n_ports],
            out_channel: vec![None; n_ports],
            feeder: vec![None; n_ports],
            va_rr: vec![crate::arbiter::RoundRobin::new(); n_ports],
            sa_rr: vec![crate::arbiter::RoundRobin::new(); n_ports],
            route: vec![None; n_vcs],
            out_vc: vec![None; n_vcs],
            owner: vec![None; n_vcs],
            ni_lock: vec![false; n_vcs],
            credits: vec![depth as u8; n_vcs],
            alloc: vec![None; n_vcs],
            head: vec![0; n_vcs],
            len: vec![0; n_vcs],
            front_ready: vec![0; n_vcs],
            slots: vec![filler(); n_vcs * depth],
        }
    }

    /// Global port index of `(router, port)`.
    #[inline]
    pub(crate) fn gp(&self, ri: usize, pi: usize) -> usize {
        self.port_base[ri] as usize + pi
    }

    /// Global VC index of `(router, port, vc)`.
    #[inline]
    pub(crate) fn gv(&self, ri: usize, pi: usize, vi: usize) -> usize {
        (self.port_base[ri] as usize + pi) * self.total_vcs + vi
    }

    /// Number of ports on router `ri`.
    #[inline]
    pub(crate) fn n_ports(&self, ri: usize) -> usize {
        (self.port_base[ri + 1] - self.port_base[ri]) as usize
    }

    /// Buffered flits in VC `gv`.
    #[inline]
    pub(crate) fn buf_len(&self, gv: usize) -> usize {
        self.len[gv] as usize
    }

    /// The flit at the front of VC `gv`, if any.
    #[inline]
    pub(crate) fn front(&self, gv: usize) -> Option<&Flit> {
        ring_front(&self.head, &self.len, &self.slots, self.depth, gv)
    }

    /// The `k`-th buffered flit of VC `gv` (0 = front).
    ///
    /// # Panics
    ///
    /// Panics (in debug) if `k >= buf_len(gv)`.
    #[inline]
    pub(crate) fn flit_at(&self, gv: usize, k: usize) -> &Flit {
        debug_assert!(k < self.buf_len(gv));
        &self.slots[slot_index(&self.head, self.depth, gv, k)]
    }

    /// Appends a flit to VC `gv`.
    ///
    /// # Panics
    ///
    /// Panics (in debug) on ring overflow; release builds rely on the
    /// credit/NI bounds (see module docs) and the occupancy guard.
    #[inline]
    pub(crate) fn push_back(&mut self, gv: usize, f: Flit) {
        ring_push(
            &self.head,
            &mut self.len,
            &mut self.slots,
            &mut self.front_ready,
            self.depth,
            gv,
            f,
        );
    }

    /// Pops the front flit of VC `gv`.
    #[inline]
    pub(crate) fn pop_front(&mut self, gv: usize) -> Option<Flit> {
        ring_pop(
            &mut self.head,
            &mut self.len,
            &self.slots,
            &mut self.front_ready,
            self.depth,
            gv,
        )
    }

    /// Empties VC `gv` (the slots keep their stale contents).
    #[inline]
    pub(crate) fn clear_buf(&mut self, gv: usize) {
        self.head[gv] = 0;
        self.len[gv] = 0;
    }
}

/// Slab index of buffered flit `k` of VC `v` (head-relative).
#[inline]
pub(crate) fn slot_index(head: &[u8], depth: usize, v: usize, k: usize) -> usize {
    let mut p = head[v] as usize + k;
    // head < depth and k < depth, so one conditional subtract replaces `%`.
    if p >= depth {
        p -= depth;
    }
    v * depth + p
}

/// Front flit of VC `v`, if any. Operates on raw lane components so the
/// band views in [`crate::stage`] can reuse it on sub-slices.
#[inline]
pub(crate) fn ring_front<'s>(
    head: &[u8],
    len: &[u8],
    slots: &'s [Flit],
    depth: usize,
    v: usize,
) -> Option<&'s Flit> {
    if len[v] == 0 {
        None
    } else {
        Some(&slots[v * depth + head[v] as usize])
    }
}

/// Appends a flit to VC `v`, refreshing the front-readiness cache when the
/// ring was empty.
#[inline]
pub(crate) fn ring_push(
    head: &[u8],
    len: &mut [u8],
    slots: &mut [Flit],
    front_ready: &mut [u64],
    depth: usize,
    v: usize,
    f: Flit,
) {
    let n = len[v] as usize;
    debug_assert!(n < depth, "VC ring overflow (depth {depth})");
    if n == 0 {
        front_ready[v] = f.ready_at;
    }
    slots[slot_index(head, depth, v, n)] = f;
    len[v] = n as u8 + 1;
}

/// Pops the front flit of VC `v`, refreshing the front-readiness cache from
/// the new front.
#[inline]
pub(crate) fn ring_pop(
    head: &mut [u8],
    len: &mut [u8],
    slots: &[Flit],
    front_ready: &mut [u64],
    depth: usize,
    v: usize,
) -> Option<Flit> {
    if len[v] == 0 {
        return None;
    }
    let f = slots[v * depth + head[v] as usize];
    let h = head[v] as usize + 1;
    head[v] = if h == depth { 0 } else { h as u8 };
    len[v] -= 1;
    if len[v] > 0 {
        front_ready[v] = slots[v * depth + head[v] as usize].ready_at;
    }
    Some(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(id: u64) -> Flit {
        Flit::of_packet(&Packet::request(id, NodeId(0), NodeId(1), 0), 0)
    }

    #[test]
    fn ring_push_pop_wraps_around() {
        let mut lanes = VcLanes::new(&[2], 3, 4);
        let gv = lanes.gv(0, 1, 2);
        for round in 0..3u64 {
            for i in 0..4 {
                lanes.push_back(gv, flit(round * 10 + i));
            }
            assert_eq!(lanes.buf_len(gv), 4);
            for i in 0..4 {
                assert_eq!(lanes.front(gv).unwrap().packet, round * 10 + i);
                assert_eq!(lanes.pop_front(gv).unwrap().packet, round * 10 + i);
            }
            assert!(lanes.pop_front(gv).is_none());
        }
    }

    #[test]
    fn global_indices_follow_port_prefix_sums() {
        let lanes = VcLanes::new(&[5, 3, 5], 6, 4);
        assert_eq!(lanes.port_base, vec![0, 5, 8, 13]);
        assert_eq!(lanes.n_ports(1), 3);
        assert_eq!(lanes.gp(1, 2), 7);
        assert_eq!(lanes.gv(2, 0, 5), 8 * 6 + 5);
        assert_eq!(lanes.occ.len(), 13);
        assert_eq!(lanes.route.len(), 13 * 6);
        assert_eq!(lanes.slots.len(), 13 * 6 * 4);
    }

    #[test]
    fn flit_at_indexes_from_the_front() {
        let mut lanes = VcLanes::new(&[1], 1, 4);
        // Force a wrapped ring: push 3, pop 2, push 2.
        for i in 0..3 {
            lanes.push_back(0, flit(i));
        }
        lanes.pop_front(0);
        lanes.pop_front(0);
        lanes.push_back(0, flit(3));
        lanes.push_back(0, flit(4));
        let got: Vec<u64> = (0..lanes.buf_len(0))
            .map(|k| lanes.flit_at(0, k).packet)
            .collect();
        assert_eq!(got, vec![2, 3, 4]);
    }
}

//! Small, deterministic, in-tree pseudo-random number generator.
//!
//! The simulator and every layer above it (workloads, RL, benches, fault
//! schedules) must be reproducible byte-for-byte from a seed, and the CI
//! environment has no registry access, so external PRNG crates are off the
//! table. This module provides a [SplitMix64] generator: tiny, fast,
//! well-distributed for simulation purposes, and trivially portable.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// A SplitMix64 pseudo-random number generator.
///
/// Deterministic: the same seed always produces the same stream, on every
/// platform. Not cryptographically secure (nor does anything here need
/// to be).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn random_f64(&mut self) -> f64 {
        // 53 high bits -> uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "random_below(0)");
        // Multiply-shift bounded generation (Lemire); bias is negligible
        // for the small ranges used here.
        let n = n as u64;
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn random_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.random_below(hi - lo)
    }

    /// A uniform `f64` in `[lo, hi)`.
    pub fn random_f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.random_f64() * (hi - lo)
    }

    /// A boolean that is `true` with probability `p`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        self.random_f64() < p
    }

    /// Forks an independent generator seeded from this one's stream.
    ///
    /// Useful for giving each component its own stream while keeping the
    /// whole system derivable from one root seed.
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference values from the canonical splitmix64.c with seed 1234567.
        let mut r = Rng::seed_from_u64(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.random_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = r.random_range(10, 15);
            assert!((10..15).contains(&x));
            seen[x - 10] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit in 200 draws");
    }

    #[test]
    fn forked_streams_are_independent_but_deterministic() {
        let mut root1 = Rng::seed_from_u64(5);
        let mut root2 = Rng::seed_from_u64(5);
        let mut f1 = root1.fork();
        let mut f2 = root2.fork();
        for _ in 0..16 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn bool_probability_rough_sanity() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}

//! Minimal in-tree JSON value, serializer, and parser.
//!
//! The bench harness writes `results/figures.json` and the RL crate
//! round-trips trained models through JSON; neither needs more than a
//! small, deterministic subset of the format, and the CI environment has
//! no registry access for an external JSON crate. Objects preserve
//! insertion order so serialized output is byte-stable across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`; integral values print without
    /// a fractional part).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object's fields, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Inserts (or replaces) a key in an object value.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn insert(&mut self, key: &str, value: Value) {
        let Value::Object(fields) = self else {
            panic!("insert on non-object JSON value");
        };
        if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            fields.push((key.to_string(), value));
        }
    }

    /// Compact single-line serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with 2-space indentation (insertion-ordered,
    /// byte-stable).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => write_number(out, *n),
            Value::String(s) => write_escaped(out, s),
            Value::Array(items) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.len(),
                    |out, i, ind, d| {
                        items[i].write(out, ind, d);
                    },
                );
            }
            Value::Object(fields) => {
                write_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    fields.len(),
                    |out, i, ind, d| {
                        write_escaped(out, &fields[i].0);
                        out.push(':');
                        if ind.is_some() {
                            out.push(' ');
                        }
                        fields[i].1.write(out, ind, d);
                    },
                );
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (depth + 1)));
        }
        item(out, i, indent, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> ParseError {
    ParseError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), ParseError> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", c as char)))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(err(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(err(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value, ParseError> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{lit}'")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed by anything in-tree;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().unwrap_or('\u{fffd}');
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, ParseError> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let doc = Value::Object(vec![
            ("name".into(), Value::String("mesh 4x4".into())),
            ("cycles".into(), Value::Number(20000.0)),
            ("ratio".into(), Value::Number(0.975)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "rows".into(),
                Value::Array(vec![Value::Number(1.0), Value::Number(-2.5)]),
            ),
        ]);
        let text = doc.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), doc);
        let compact = doc.to_string_compact();
        assert_eq!(parse(&compact).unwrap(), doc);
        assert!(!compact.contains('\n'));
    }

    #[test]
    fn pretty_output_is_stable_and_ordered() {
        let mut obj = Value::Object(vec![]);
        obj.insert("zebra", Value::Number(1.0));
        obj.insert("apple", Value::Number(2.0));
        let text = obj.to_string_pretty();
        assert!(text.find("zebra").unwrap() < text.find("apple").unwrap());
        assert_eq!(text, parse(&text).unwrap().to_string_pretty());
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut obj = Value::Object(vec![]);
        obj.insert("k", Value::Number(1.0));
        obj.insert("k", Value::Number(2.0));
        assert_eq!(obj.get("k").and_then(Value::as_f64), Some(2.0));
        assert_eq!(obj.as_object().unwrap().len(), 1);
    }

    #[test]
    fn escapes_roundtrip() {
        let doc = Value::String("line1\nline\\2 \"q\" \t end".into());
        assert_eq!(parse(&doc.to_string_compact()).unwrap(), doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Value::Number(42.0).to_string_compact(), "42");
        assert_eq!(Value::Number(0.5).to_string_compact(), "0.5");
        assert_eq!(Value::Number(-3.0).to_string_compact(), "-3");
    }

    #[test]
    fn parse_errors_carry_offsets() {
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"a": [1, "x"], "b": {"c": 3}}"#).unwrap();
        assert_eq!(doc.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_u64(), Some(3));
        assert_eq!(
            doc.get("a").unwrap().as_array().unwrap()[1].as_str(),
            Some("x")
        );
        assert!(doc.get("missing").is_none());
    }
}

//! # adaptnoc-sim
//!
//! A cycle-level network-on-chip simulator: the substrate on which the
//! Adapt-NoC reproduction (HPCA 2021, Zheng/Wang/Louri) is built.
//!
//! The simulator models input-buffered virtual-channel routers with a
//! four-stage (RC/VA/SA/ST) pipeline abstracted as a configurable per-hop
//! latency `T_r`, virtual-cut-through output-VC allocation, credit-based
//! flow control, two virtual networks (request/reply) for protocol-deadlock
//! freedom, dateline VC classes for torus rings, latency- and
//! length-accurate channels, and network interfaces with an optional
//! injection-VC bypass.
//!
//! Configurations are *declarative*: a [`spec::NetworkSpec`] lists routers,
//! channels, NI attachments and routing tables; [`network::Network`]
//! executes a spec and can be *reconfigured* to a new spec at runtime
//! without dropping in-flight traffic — the mechanism underlying Adapt-NoC's
//! dynamic subNoC topology switching.
//!
//! ## Quick start
//!
//! ```
//! use adaptnoc_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-router network with one endpoint on each router.
//! let mut spec = NetworkSpec::new(2, 2, 2);
//! let a = PortRef::new(RouterId(0), PortId(0));
//! let b = PortRef::new(RouterId(1), PortId(1));
//! spec.add_channel(mesh_channel(a, b));
//! spec.add_channel(mesh_channel(b, a));
//! spec.add_ni(NiSpec::local(NodeId(0), RouterId(0), LOCAL_PORT));
//! spec.add_ni(NiSpec::local(NodeId(1), RouterId(1), LOCAL_PORT));
//! for v in 0..2 {
//!     spec.tables.set(Vnet(v), RouterId(0), NodeId(0), LOCAL_PORT);
//!     spec.tables.set(Vnet(v), RouterId(0), NodeId(1), PortId(0));
//!     spec.tables.set(Vnet(v), RouterId(1), NodeId(1), LOCAL_PORT);
//!     spec.tables.set(Vnet(v), RouterId(1), NodeId(0), PortId(1));
//! }
//!
//! let mut net = Network::new(spec, SimConfig::baseline())?;
//! net.inject(Packet::request(1, NodeId(0), NodeId(1), 0))?;
//! net.run(32);
//! assert_eq!(net.drain_delivered().len(), 1);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the banded router stage (`stage`) and the
// region-parallel stepper carry a few audited `allow(unsafe_code)` islands —
// the channel shard handed to worker threads (see the safety contract on
// `stage::ChannelShard`), the `Send` impls for band jobs, and the
// lifetime-erasure in `Network::router_stage_parallel`. Everything else in
// the crate remains safe code and any new unsafe block is a hard error.
#![deny(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arbiter;
pub mod config;
pub mod events;
pub mod flit;
pub mod health;
pub mod ids;
pub mod json;
pub mod network;
pub mod par;
pub mod rng;
pub mod routing;
pub(crate) mod soa;
pub mod spec;
pub(crate) mod stage;
pub mod stats;
pub mod telem;
pub mod trace;

pub use adaptnoc_telemetry as telemetry;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::config::{SimConfig, CONTROL_PACKET_FLITS, DATA_PACKET_FLITS};
    pub use crate::events::{EventCounts, StaticCycles};
    pub use crate::flit::{Flit, FlitPos, Packet, PacketKind};
    pub use crate::health::{
        FlightRecorder, GuardMode, HealthCounts, InvariantKind, InvariantViolation, StallKind,
        StallReport, Watchdog, WatchdogConfig,
    };
    pub use crate::ids::{ChannelId, Direction, NodeId, PortId, RouterId, Vnet, LOCAL_PORT};
    pub use crate::network::{Network, NetworkError};
    pub use crate::par::{RegionMap, StepPool};
    pub use crate::rng::Rng;
    pub use crate::routing::RoutingTables;
    pub use crate::spec::{
        mesh_channel, ChannelKey, ChannelKind, ChannelSpec, NetworkSpec, NiSpec, PortRef,
        RouterSpec, SpecError,
    };
    pub use crate::stats::{CycleHistogram, Delivered, EpochReport, NetStats};
    pub use crate::telem::SimTelemetry;
    pub use crate::trace::{TraceBuffer, TraceEvent, TraceFilter};
    pub use adaptnoc_telemetry::{Registry, TelemetryMode};
}

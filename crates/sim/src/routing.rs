//! Table-based routing.
//!
//! Every router holds, per virtual network, a table mapping destination
//! *node* to output port. The adaptable router's "reconfigurable routing
//! table" (Sec. II-A1) is modeled by swapping these tables at runtime;
//! the deadlock-free reconfiguration protocol of Sec. II-C1 is built on the
//! guarantee that a table swap is atomic with respect to route computation
//! (in-flight packets re-resolve at every subsequent router they enter).

use crate::ids::{NodeId, PortId, RouterId, Vnet};
use std::sync::Arc;

/// Sentinel for "no route" entries.
const UNREACHABLE: u8 = u8::MAX;

/// Dense routing tables: `[vnet][router][destination node] -> output port`.
///
/// The backing storage is shared behind an [`Arc`], so cloning a table (or
/// a [`crate::spec::NetworkSpec`] that embeds one) is O(1); mutation uses
/// copy-on-write semantics and only copies when the storage is shared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutingTables {
    vnets: usize,
    routers: usize,
    nodes: usize,
    table: Arc<Vec<u8>>,
}

impl RoutingTables {
    /// Creates tables with every entry unreachable.
    pub fn new(vnets: usize, routers: usize, nodes: usize) -> Self {
        RoutingTables {
            vnets,
            routers,
            nodes,
            table: Arc::new(vec![UNREACHABLE; vnets * routers * nodes]),
        }
    }

    fn idx(&self, vnet: Vnet, router: RouterId, dst: NodeId) -> usize {
        debug_assert!(vnet.index() < self.vnets, "vnet out of range");
        debug_assert!(router.index() < self.routers, "router out of range");
        debug_assert!(dst.index() < self.nodes, "node out of range");
        (vnet.index() * self.routers + router.index()) * self.nodes + dst.index()
    }

    /// Sets the output port at `router` for packets of `vnet` headed to `dst`.
    pub fn set(&mut self, vnet: Vnet, router: RouterId, dst: NodeId, port: PortId) {
        let i = self.idx(vnet, router, dst);
        Arc::make_mut(&mut self.table)[i] = port.0;
    }

    /// Clears the route (marks unreachable).
    pub fn clear(&mut self, vnet: Vnet, router: RouterId, dst: NodeId) {
        let i = self.idx(vnet, router, dst);
        Arc::make_mut(&mut self.table)[i] = UNREACHABLE;
    }

    /// Looks up the output port, or `None` if the destination is unreachable
    /// from this router on this vnet.
    pub fn lookup(&self, vnet: Vnet, router: RouterId, dst: NodeId) -> Option<PortId> {
        let v = self.table[self.idx(vnet, router, dst)];
        if v == UNREACHABLE {
            None
        } else {
            Some(PortId(v))
        }
    }

    /// Number of virtual networks covered.
    pub fn vnets(&self) -> usize {
        self.vnets
    }

    /// Number of routers covered.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// Number of destination nodes covered.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Copies all routes of `vnet` from `other` (same dimensions required).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn copy_vnet_from(&mut self, other: &RoutingTables, vnet: Vnet) {
        assert_eq!(
            (self.vnets, self.routers, self.nodes),
            (other.vnets, other.routers, other.nodes),
            "routing table dimensions must match"
        );
        let per_vnet = self.routers * self.nodes;
        let start = vnet.index() * per_vnet;
        Arc::make_mut(&mut self.table)[start..start + per_vnet]
            .copy_from_slice(&other.table[start..start + per_vnet]);
    }

    /// Whether two tables share the same backing storage (O(1) clone check;
    /// exposed for tests of the copy-on-write behaviour).
    pub fn shares_storage_with(&self, other: &RoutingTables) -> bool {
        Arc::ptr_eq(&self.table, &other.table)
    }

    /// Iterates over all `(vnet, router, dst, port)` entries that have routes.
    pub fn iter(&self) -> impl Iterator<Item = (Vnet, RouterId, NodeId, PortId)> + '_ {
        (0..self.vnets).flat_map(move |v| {
            (0..self.routers).flat_map(move |r| {
                (0..self.nodes).filter_map(move |n| {
                    self.lookup(Vnet(v as u8), RouterId(r as u16), NodeId(n as u16))
                        .map(|p| (Vnet(v as u8), RouterId(r as u16), NodeId(n as u16), p))
                })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_lookup_clear_roundtrip() {
        let mut t = RoutingTables::new(2, 4, 6);
        assert_eq!(t.lookup(Vnet(0), RouterId(1), NodeId(2)), None);
        t.set(Vnet(0), RouterId(1), NodeId(2), PortId(3));
        assert_eq!(t.lookup(Vnet(0), RouterId(1), NodeId(2)), Some(PortId(3)));
        // Other vnet unaffected.
        assert_eq!(t.lookup(Vnet(1), RouterId(1), NodeId(2)), None);
        t.clear(Vnet(0), RouterId(1), NodeId(2));
        assert_eq!(t.lookup(Vnet(0), RouterId(1), NodeId(2)), None);
    }

    #[test]
    fn entries_are_independent() {
        let mut t = RoutingTables::new(2, 3, 3);
        t.set(Vnet(0), RouterId(0), NodeId(0), PortId(0));
        t.set(Vnet(1), RouterId(2), NodeId(2), PortId(4));
        assert_eq!(t.lookup(Vnet(0), RouterId(0), NodeId(0)), Some(PortId(0)));
        assert_eq!(t.lookup(Vnet(1), RouterId(2), NodeId(2)), Some(PortId(4)));
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn copy_vnet_from_copies_only_that_vnet() {
        let mut a = RoutingTables::new(2, 2, 2);
        let mut b = RoutingTables::new(2, 2, 2);
        b.set(Vnet(0), RouterId(0), NodeId(1), PortId(1));
        b.set(Vnet(1), RouterId(1), NodeId(0), PortId(2));
        a.copy_vnet_from(&b, Vnet(1));
        assert_eq!(a.lookup(Vnet(1), RouterId(1), NodeId(0)), Some(PortId(2)));
        assert_eq!(a.lookup(Vnet(0), RouterId(0), NodeId(1)), None);
    }

    #[test]
    fn clone_is_shared_until_written() {
        let mut a = RoutingTables::new(2, 2, 2);
        a.set(Vnet(0), RouterId(0), NodeId(1), PortId(1));
        let b = a.clone();
        assert!(a.shares_storage_with(&b), "clone must be O(1) shared");
        let mut c = b.clone();
        c.set(Vnet(1), RouterId(1), NodeId(0), PortId(2));
        assert!(!c.shares_storage_with(&a), "write must copy");
        // The original is unaffected by the copy-on-write mutation.
        assert_eq!(a.lookup(Vnet(1), RouterId(1), NodeId(0)), None);
        assert_eq!(c.lookup(Vnet(0), RouterId(0), NodeId(1)), Some(PortId(1)));
    }

    #[test]
    #[should_panic(expected = "dimensions must match")]
    fn copy_vnet_dimension_mismatch_panics() {
        let mut a = RoutingTables::new(2, 2, 2);
        let b = RoutingTables::new(2, 3, 2);
        a.copy_vnet_from(&b, Vnet(0));
    }
}

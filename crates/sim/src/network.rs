//! The cycle-level network simulation engine.
//!
//! [`Network`] executes a [`NetworkSpec`]: input-buffered virtual-channel
//! routers with route computation, virtual-cut-through output-VC allocation,
//! round-robin switch allocation, credit-based flow control, latency-accurate
//! channels, and network interfaces with optional injection bypass.
//!
//! The engine also supports the runtime controls Adapt-NoC needs: atomic
//! routing-table swaps, structural reconfiguration by spec diffing (with
//! quiescence checks so no flit is ever dropped), per-router configuration
//! stalls (`T_s`), router power gating with wake-up latency, and per-router
//! VC usage masks (for the OSCAR baseline's dynamic VC allocation).

use crate::arbiter::RoundRobin;
use crate::config::SimConfig;
use crate::events::{EventCounts, StaticCycles};
use crate::flit::{Flit, Packet};
use crate::health::{channel_label, GuardMode, HealthCounts, InvariantKind, InvariantViolation};
use crate::ids::{ChannelId, NodeId, PortId, RouterId, Vnet};
use crate::json::Value;
use crate::routing::RoutingTables;
use crate::soa::VcLanes;
use crate::spec::{ChannelKey, ChannelKind, NetworkSpec, SpecError};
use crate::stage::{BandView, ChannelShard, StageScratch, StageSink};
use crate::stats::{Delivered, EpochReport, NetStats};
use crate::telem::{SimTelemetry, Stage};
use adaptnoc_telemetry::{Registry, TelemetryMode};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Errors from building or reconfiguring a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The spec failed validation.
    Spec(SpecError),
    /// The simulator configuration failed validation.
    Config(String),
    /// Spec and config disagree (e.g. table vnet count).
    Mismatch(String),
    /// Reconfiguration would change an immutable shape property.
    Shape(String),
    /// A channel slated for removal still carries traffic.
    ChannelBusy(ChannelKey),
    /// A router slated for power-off or port change still buffers flits.
    RouterBusy(RouterId),
    /// An NI slated for reattachment is mid-packet.
    NiBusy(NodeId),
    /// A packet was injected for a node with no NI.
    NoSuchNode(NodeId),
    /// A fault operation named a channel the network does not have.
    NoSuchChannel(ChannelKey),
}

impl std::fmt::Display for NetworkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkError::Spec(e) => write!(f, "invalid network spec: {e}"),
            NetworkError::Config(m) => write!(f, "invalid sim config: {m}"),
            NetworkError::Mismatch(m) => write!(f, "spec/config mismatch: {m}"),
            NetworkError::Shape(m) => write!(f, "reconfiguration shape change: {m}"),
            NetworkError::ChannelBusy(k) => write!(
                f,
                "channel {}:{} -> {}:{} not quiescent",
                k.src.router, k.src.port, k.dst.router, k.dst.port
            ),
            NetworkError::RouterBusy(r) => write!(f, "router {r} not quiescent"),
            NetworkError::NiBusy(n) => write!(f, "network interface of {n} mid-packet"),
            NetworkError::NoSuchNode(n) => write!(f, "no network interface for node {n}"),
            NetworkError::NoSuchChannel(k) => write!(
                f,
                "no channel {}:{} -> {}:{}",
                k.src.router, k.src.port, k.dst.router, k.dst.port
            ),
        }
    }
}

impl std::error::Error for NetworkError {}

impl From<SpecError> for NetworkError {
    fn from(e: SpecError) -> Self {
        NetworkError::Spec(e)
    }
}

/// Per-VC flit/credit/occupancy state lives in [`VcLanes`]
/// (`Network::lanes`), not here: the router hot loop walks those flat
/// arrays, so the port structs only carry wiring and arbiter state.
#[derive(Debug, Clone)]
pub(crate) struct InPort {
    pub(crate) feeder: Option<ChannelId>,
    /// NIs (indices into `Network::nis`) injecting through this port.
    pub(crate) nis: Vec<usize>,
    pub(crate) inj_rr: RoundRobin,
    /// Membership flag for `Network::active_inj` (port has NI work).
    pub(crate) in_inj_list: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct OutPort {
    pub(crate) channel: Option<ChannelId>,
    /// Whether NIs eject through this port.
    pub(crate) eject: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct RouterRt {
    pub(crate) active: bool,
    pub(crate) sleeping: bool,
    /// Permanently failed (fault injection): force-slept, excluded from all
    /// stages, never wakes. Survives reconfiguration.
    pub(crate) failed: bool,
    pub(crate) wake_at: u64,
    /// Router stalls all stages until this cycle (the `T_s` setup window).
    pub(crate) config_until: u64,
    pub(crate) vc_split: Option<u8>,
    pub(crate) in_ports: Vec<InPort>,
    pub(crate) out_ports: Vec<OutPort>,
    /// Buffered flit count (fast skip).
    pub(crate) flits: u32,
    /// Ports that are wired (channel or NI); for static power.
    pub(crate) ports_on: u16,
    /// Per-vnet usable-VC bitmask (OSCAR dynamic VC allocation).
    pub(crate) vc_mask: Vec<u8>,
    /// Per-vnet precomputed VA candidate masks, indexed `[class 0,
    /// class != 0, ejection]`: the OSCAR `vc_mask` intersected with the
    /// dateline `vc_split` rule for each requester kind, so the hot-loop
    /// output-VC pick is pure mask arithmetic. Recomputed by
    /// [`recompute_va_cand`] whenever the mask or split changes.
    pub(crate) va_cand: Vec<[u8; 3]>,
    /// Membership flag for `Network::busy_routers` (router buffers flits).
    pub(crate) in_busy_list: bool,
    /// Membership flag for `Network::pending_wakes` (finite wake deadline).
    pub(crate) in_wake_list: bool,
    /// Bitmask of output ports whose channel is faulted (hot-loop cache of
    /// the per-channel `faulted` flags; see `refresh_faulted_out`).
    pub(crate) faulted_out: u32,
    /// Bitmask of output ports that eject to an NI (hot-loop cache of the
    /// per-port `eject` flags; see `refresh_port_caches`).
    pub(crate) eject_out: u32,
}

#[derive(Debug, Clone)]
pub(crate) struct ChannelRt {
    pub(crate) spec: crate::spec::ChannelSpec,
    pub(crate) q: VecDeque<(u64, Flit)>,
    /// A faulted channel accepts no new flits (VA and SA skip it).
    pub(crate) faulted: bool,
    /// Membership flag for `Network::busy_channels` (wire carries flits).
    pub(crate) in_busy_list: bool,
}

/// Recomputes a router's precomputed VA candidate masks (`va_cand`) from
/// its OSCAR `vc_mask` and dateline `vc_split`. Runs at construction and
/// whenever either input changes (`set_vc_mask`, reconfiguration) — i.e.
/// at spec/reconfig time, never on the hot path. Ejection candidates skip
/// the dateline split (consuming a packet cannot close a ring cycle).
fn recompute_va_cand(r: &mut RouterRt, vcs_per_vnet: u8) {
    let full = ((1u16 << vcs_per_vnet) - 1) as u8;
    for (v, cand) in r.va_cand.iter_mut().enumerate() {
        let m = r.vc_mask[v] & full;
        *cand = match r.vc_split {
            None => [m, m, m],
            Some(k) => {
                let lo = ((1u16 << k) - 1) as u8;
                [m & lo, m & !lo, m]
            }
        };
    }
}

/// Recomputes every router's `faulted_out` bitmask from the per-channel
/// fault flags (called whenever a fault flag flips or channels are rewired).
fn refresh_faulted_out(routers: &mut [RouterRt], channels: &[ChannelRt]) {
    for r in routers.iter_mut() {
        r.faulted_out = 0;
    }
    for c in channels {
        if c.faulted {
            routers[c.spec.src.router.index()].faulted_out |= 1 << c.spec.src.port.index();
        }
    }
}

/// Recomputes the dense hot-loop port caches — each router's `eject_out`
/// bitmask and the per-global-port `out_channel` / `feeder` arrays — from
/// the per-port runtime structs (called after construction and after a
/// reconfiguration rewires ports).
fn refresh_port_caches(routers: &mut [RouterRt], lanes: &mut crate::soa::VcLanes) {
    for (ri, r) in routers.iter_mut().enumerate() {
        let base = lanes.port_base[ri] as usize;
        let mut eject = 0u32;
        for (pi, op) in r.out_ports.iter().enumerate() {
            lanes.out_channel[base + pi] = op.channel;
            if op.eject {
                eject |= 1 << pi;
            }
        }
        for (pi, ip) in r.in_ports.iter().enumerate() {
            lanes.feeder[base + pi] = ip.feeder;
        }
        r.eject_out = eject;
    }
}

/// A packet mid-serialization into the router: flits are synthesized on
/// demand from the packet metadata ([`Flit::of_packet`] is pure), so
/// streaming holds no per-packet heap allocation.
#[derive(Debug, Clone)]
struct NiStream {
    /// Target input VC (global index within the port).
    vc: u8,
    pkt: Packet,
    /// Flits already injected (< `pkt.len`).
    sent: u8,
}

impl NiStream {
    fn remaining(&self) -> u64 {
        (self.pkt.len - self.sent) as u64
    }
}

#[derive(Debug, Clone)]
struct NiRt {
    spec: crate::spec::NiSpec,
    source_q: VecDeque<Packet>,
    /// The packet currently streaming into the router, if any.
    cur: Option<NiStream>,
    /// While paused the NI queues packets but injects nothing (used by the
    /// drain phase of cmesh reconfigurations).
    paused: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct StaticProfile {
    mesh_link_mm: f64,
    adapt_link_mm: f64,
    conc_link_mm: f64,
    interchip_link_mm: f64,
}

/// The cycle-level network simulator.
///
/// # Examples
///
/// ```
/// use adaptnoc_sim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Two routers connected by a pair of channels, one node on each.
/// let mut spec = NetworkSpec::new(2, 2, 2);
/// let a = PortRef::new(RouterId(0), PortId(0));
/// let b = PortRef::new(RouterId(1), PortId(1));
/// spec.add_channel(mesh_channel(a, b));
/// spec.add_channel(mesh_channel(b, a));
/// spec.add_ni(NiSpec::local(NodeId(0), RouterId(0), LOCAL_PORT));
/// spec.add_ni(NiSpec::local(NodeId(1), RouterId(1), LOCAL_PORT));
/// for v in 0..2 {
///     spec.tables.set(Vnet(v), RouterId(0), NodeId(0), LOCAL_PORT);
///     spec.tables.set(Vnet(v), RouterId(0), NodeId(1), PortId(0));
///     spec.tables.set(Vnet(v), RouterId(1), NodeId(1), LOCAL_PORT);
///     spec.tables.set(Vnet(v), RouterId(1), NodeId(0), PortId(1));
/// }
/// let mut net = Network::new(spec, SimConfig::baseline())?;
/// net.inject(Packet::request(1, NodeId(0), NodeId(1), 0))?;
/// for _ in 0..50 {
///     net.step();
/// }
/// let delivered = net.drain_delivered();
/// assert_eq!(delivered.len(), 1);
/// assert_eq!(delivered[0].hops, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Network {
    cfg: SimConfig,
    /// The live spec, shared behind an `Arc` so reconfiguration controllers
    /// can hand the network a prebuilt spec without deep-copying it.
    spec: Arc<NetworkSpec>,
    /// Routing-table epoch: bumped on every table swap
    /// ([`install_tables`](Self::install_tables) and reconfiguration), which
    /// atomically invalidates every lookahead port carried by in-flight
    /// flits — RC honours a carried port only when its stamped epoch
    /// matches. Starts at 1 so the zero epoch freshly built flits carry
    /// never validates. Wrapping `u32` arithmetic: a stale flit would need
    /// to survive 2^32 consecutive swaps to alias, and a swap drains
    /// through quiescence long before that.
    table_epoch: u32,
    /// Whether route computation consumes lookahead ports resolved one hop
    /// upstream (the default). Off = classic per-router table walk; kept as
    /// a debug reference path for the lookahead equivalence suites.
    lookahead_rc: bool,
    now: u64,
    routers: Vec<RouterRt>,
    /// Flat per-VC state (buffers, credits, routes, allocations); see
    /// [`crate::soa`] for the index scheme.
    lanes: VcLanes,
    channels: Vec<ChannelRt>,
    nis: Vec<NiRt>,
    node_ni: Vec<Option<usize>>,
    delivered: Vec<Delivered>,
    stats: NetStats,
    totals: NetStats,
    events: EventCounts,
    events_total: EventCounts,
    statics: StaticCycles,
    statics_total: StaticCycles,
    profile: StaticProfile,
    occupied_flits: u64,
    queued_packets: u64,
    buffer_capacity: u64,
    pending_credits: Vec<(ChannelId, u8)>,
    unroutable: u64,
    router_forwarded: Vec<u64>,
    router_occupancy_sum: Vec<u64>,
    channel_flits: Vec<u64>,
    /// Reusable router-stage sink and scratch (avoid per-cycle allocs).
    sink: StageSink,
    stage_scratch: StageScratch,
    /// Reusable compacted busy-router list for the router stage.
    kept_scratch: Vec<usize>,
    /// Double buffer for `pending_credits` (avoids a per-cycle alloc).
    credits_scratch: Vec<(ChannelId, u8)>,
    /// Maximum port count over all routers (stage scratch sizing).
    max_ports: usize,
    tracer: Option<crate::trace::TraceBuffer>,
    /// Fault state by channel identity; survives reconfiguration (flags are
    /// re-applied to kept channels when the spec is swapped).
    faulted_keys: HashSet<ChannelKey>,
    /// When set, `step()` sweeps every component every cycle instead of
    /// using the active-set worklists (reference mode for equivalence
    /// tests). The worklists are still maintained so the mode can be
    /// toggled at any time.
    full_sweep: bool,
    /// Channels with flits on the wire (invariant: non-empty queue implies
    /// membership; stale members are pruned lazily).
    busy_channels: Vec<usize>,
    /// Routers with buffered flits (invariant: `flits > 0` implies
    /// membership; stale members are pruned lazily).
    busy_routers: Vec<usize>,
    /// Sleeping routers with a finite wake deadline.
    pending_wakes: Vec<usize>,
    /// Injection ports (`ri << 8 | pi`) whose NIs hold queued or mid-stream
    /// packets.
    active_inj: Vec<usize>,
    /// Flits currently on wires (O(1) `in_flight`).
    wire_flits: u64,
    /// Flits of packets mid-stream inside NIs (O(1) `in_flight`).
    ni_stream_flits: u64,
    /// Static-power on/off/port counts need recomputing (power state or
    /// wiring changed since last cycle).
    statics_dirty: bool,
    static_on: u64,
    static_off: u64,
    static_ports_on: u64,
    /// Resolved invariant-guard mode (`ADAPTNOC_GUARDS` overrides the
    /// config; see [`crate::health`]).
    guard_mode: GuardMode,
    /// Guard counters for the current epoch window.
    health: HealthCounts,
    /// Guard counters accumulated across past epochs.
    health_total: HealthCounts,
    /// Violations from the most recent guard sweep that found any.
    last_violations: Vec<InvariantViolation>,
    /// Telemetry harness; `None` under [`TelemetryMode::Off`], so disabled
    /// telemetry costs one branch per instrumentation site (see
    /// [`crate::telem`]).
    telem: Option<Box<SimTelemetry>>,
}

impl Network {
    /// Builds a network from a validated spec and configuration.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the spec or configuration is invalid or
    /// they disagree (vnet counts, VC-split out of range).
    pub fn new(spec: NetworkSpec, cfg: SimConfig) -> Result<Self, NetworkError> {
        cfg.validate().map_err(NetworkError::Config)?;
        spec.validate()?;
        if spec.tables.vnets() != cfg.vnets as usize {
            return Err(NetworkError::Mismatch(format!(
                "tables cover {} vnets, config has {}",
                spec.tables.vnets(),
                cfg.vnets
            )));
        }
        for (i, r) in spec.routers.iter().enumerate() {
            if let Some(k) = r.vc_split {
                if k == 0 || k >= cfg.vcs_per_vnet {
                    return Err(NetworkError::Mismatch(format!(
                        "router {i} vc_split {k} out of range for {} VCs/vnet",
                        cfg.vcs_per_vnet
                    )));
                }
            }
        }

        let total_vcs = cfg.total_vcs();
        let port_counts: Vec<usize> = spec.routers.iter().map(|r| r.n_ports as usize).collect();
        let lanes = VcLanes::new(&port_counts, total_vcs, cfg.vc_depth as usize);
        let mut routers: Vec<RouterRt> = spec
            .routers
            .iter()
            .map(|r| RouterRt {
                active: r.active,
                sleeping: false,
                failed: false,
                wake_at: 0,
                config_until: 0,
                vc_split: r.vc_split,
                in_ports: (0..r.n_ports)
                    .map(|_| InPort {
                        feeder: None,
                        nis: Vec::new(),
                        inj_rr: RoundRobin::new(),
                        in_inj_list: false,
                    })
                    .collect(),
                out_ports: (0..r.n_ports)
                    .map(|_| OutPort {
                        channel: None,
                        eject: false,
                    })
                    .collect(),
                flits: 0,
                ports_on: 0,
                vc_mask: vec![u8::MAX; cfg.vnets as usize],
                va_cand: vec![[0; 3]; cfg.vnets as usize],
                in_busy_list: false,
                in_wake_list: false,
                faulted_out: 0,
                eject_out: 0,
            })
            .collect();
        for r in routers.iter_mut() {
            recompute_va_cand(r, cfg.vcs_per_vnet);
        }

        let channels: Vec<ChannelRt> = spec
            .channels
            .iter()
            .map(|c| ChannelRt {
                spec: *c,
                q: VecDeque::new(),
                faulted: false,
                in_busy_list: false,
            })
            .collect();
        for (i, c) in spec.channels.iter().enumerate() {
            routers[c.src.router.index()].out_ports[c.src.port.index()].channel =
                Some(ChannelId(i as u32));
            routers[c.dst.router.index()].in_ports[c.dst.port.index()].feeder =
                Some(ChannelId(i as u32));
        }

        let mut node_ni = vec![None; spec.num_nodes];
        let nis: Vec<NiRt> = spec
            .nis
            .iter()
            .map(|n| NiRt {
                spec: *n,
                source_q: VecDeque::new(),
                cur: None,
                paused: false,
            })
            .collect();
        for (i, n) in spec.nis.iter().enumerate() {
            node_ni[n.node.index()] = Some(i);
            routers[n.router.index()].in_ports[n.port.index()]
                .nis
                .push(i);
            routers[n.router.index()].out_ports[n.port.index()].eject = true;
        }

        let guard_mode = GuardMode::from_env().unwrap_or(cfg.guards);
        let telemetry_mode = TelemetryMode::from_env().unwrap_or(cfg.telemetry);
        let telem = telemetry_mode
            .is_active()
            .then(|| Box::new(SimTelemetry::new(telemetry_mode)));
        let mut net = Network {
            cfg,
            spec: Arc::new(spec),
            table_epoch: 1,
            lookahead_rc: true,
            now: 0,
            routers,
            lanes,
            channels,
            nis,
            node_ni,
            delivered: Vec::new(),
            stats: NetStats::default(),
            totals: NetStats::default(),
            events: EventCounts::default(),
            events_total: EventCounts::default(),
            statics: StaticCycles::default(),
            statics_total: StaticCycles::default(),
            profile: StaticProfile::default(),
            occupied_flits: 0,
            queued_packets: 0,
            buffer_capacity: 0,
            pending_credits: Vec::new(),
            unroutable: 0,
            router_forwarded: Vec::new(),
            router_occupancy_sum: Vec::new(),
            channel_flits: Vec::new(),
            sink: StageSink::default(),
            stage_scratch: StageScratch::default(),
            kept_scratch: Vec::new(),
            credits_scratch: Vec::new(),
            max_ports: 0,
            tracer: None,
            faulted_keys: HashSet::new(),
            full_sweep: false,
            busy_channels: Vec::new(),
            busy_routers: Vec::new(),
            pending_wakes: Vec::new(),
            active_inj: Vec::new(),
            wire_flits: 0,
            ni_stream_flits: 0,
            statics_dirty: true,
            static_on: 0,
            static_off: 0,
            static_ports_on: 0,
            guard_mode,
            health: HealthCounts::default(),
            health_total: HealthCounts::default(),
            last_violations: Vec::new(),
            telem,
        };
        net.router_forwarded = vec![0; net.routers.len()];
        net.router_occupancy_sum = vec![0; net.routers.len()];
        net.channel_flits = vec![0; net.channels.len()];
        net.max_ports = net
            .routers
            .iter()
            .map(|r| r.in_ports.len())
            .max()
            .unwrap_or(0);
        refresh_port_caches(&mut net.routers, &mut net.lanes);
        net.recompute_static_profile();
        net.buffer_capacity = net.compute_buffer_capacity();
        net.stats.buffer_capacity = net.buffer_capacity;
        net.totals.buffer_capacity = net.buffer_capacity;
        Ok(net)
    }

    fn compute_buffer_capacity(&self) -> u64 {
        let per_vc = self.cfg.vc_depth as u64;
        self.routers
            .iter()
            .filter(|r| r.active)
            .map(|r| r.in_ports.len() as u64 * self.cfg.total_vcs() as u64 * per_vc)
            .sum()
    }

    fn recompute_static_profile(&mut self) {
        let mut p = StaticProfile::default();
        for c in &self.spec.channels {
            let mm = c.length_mm as f64;
            match c.kind {
                ChannelKind::Mesh | ChannelKind::Express => p.mesh_link_mm += mm,
                ChannelKind::Adaptable | ChannelKind::AdaptableReversed => p.adapt_link_mm += mm,
                ChannelKind::Concentration => p.conc_link_mm += mm,
                ChannelKind::InterChip => p.interchip_link_mm += mm,
            }
        }
        for ni in &self.spec.nis {
            if ni.concentration {
                p.conc_link_mm += ni.link_mm as f64;
            }
        }
        self.profile = p;
        // Per-router wired-port counts.
        for r in self.routers.iter_mut() {
            let mut on = 0u16;
            for (i, ip) in r.in_ports.iter().enumerate() {
                let wired = ip.feeder.is_some()
                    || !ip.nis.is_empty()
                    || r.out_ports[i].channel.is_some()
                    || r.out_ports[i].eject;
                if wired {
                    on += 1;
                }
            }
            r.ports_on = if r.active { on } else { 0 };
        }
        self.statics_dirty = true;
    }

    /// Forces naive full-sweep stepping: every stage scans every component
    /// every cycle instead of consulting the active-set worklists. The two
    /// modes are cycle-for-cycle equivalent; full sweep exists as the
    /// reference implementation for the equivalence property tests.
    pub fn set_full_sweep(&mut self, on: bool) {
        self.full_sweep = on;
    }

    /// Current simulation cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The simulator configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The current network spec.
    pub fn spec(&self) -> &NetworkSpec {
        &self.spec
    }

    /// Number of packets that hit a missing routing entry (should stay 0 in
    /// a correct configuration; exposed for tests and assertions).
    pub fn unroutable_events(&self) -> u64 {
        self.unroutable
    }

    /// Hands a packet to the source node's network interface. The packet's
    /// `created_at` is stamped with the current cycle.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchNode`] if the source has no NI.
    pub fn inject(&mut self, mut packet: Packet) -> Result<(), NetworkError> {
        let ni = self.node_ni[packet.src.index().min(self.node_ni.len().saturating_sub(1))]
            .filter(|_| packet.src.index() < self.node_ni.len())
            .ok_or(NetworkError::NoSuchNode(packet.src))?;
        packet.created_at = self.now;
        self.nis[ni].source_q.push_back(packet);
        self.queued_packets += 1;
        self.stats.packets_offered += 1;
        self.totals.packets_offered += 1;
        self.mark_ni_port_active(ni);
        Ok(())
    }

    /// Flags the injection port an NI feeds as having pending work.
    fn mark_ni_port_active(&mut self, ni_id: usize) {
        let ri = self.nis[ni_id].spec.router.index();
        let pi = self.nis[ni_id].spec.port.index();
        let ip = &mut self.routers[ri].in_ports[pi];
        if !ip.in_inj_list {
            ip.in_inj_list = true;
            self.active_inj.push((ri << 8) | pi);
        }
    }

    /// Whether any NI on this injection port holds queued or mid-stream
    /// packets.
    fn port_has_ni_work(&self, ri: usize, pi: usize) -> bool {
        self.routers[ri].in_ports[pi].nis.iter().any(|&ni| {
            let n = &self.nis[ni];
            n.cur.is_some() || !n.source_q.is_empty()
        })
    }

    /// Flags a router as buffering flits (member of the router worklist).
    fn mark_router_busy(&mut self, ri: usize) {
        let r = &mut self.routers[ri];
        if !r.in_busy_list {
            r.in_busy_list = true;
            self.busy_routers.push(ri);
        }
    }

    /// Drains all packets delivered since the last call.
    pub fn drain_delivered(&mut self) -> Vec<Delivered> {
        std::mem::take(&mut self.delivered)
    }

    /// Total flits currently inside the network (buffers + channels), plus
    /// packets waiting in NI source queues. Zero means fully drained.
    /// O(1): maintained incrementally by the step and purge paths.
    pub fn in_flight(&self) -> u64 {
        self.occupied_flits + self.wire_flits + self.ni_stream_flits + self.queued_packets
    }

    /// Recounts `in_flight` from first principles (O(channels + NIs));
    /// exposed so equivalence tests can validate the incremental counters.
    pub fn in_flight_recount(&self) -> u64 {
        let channel_flits: u64 = self.channels.iter().map(|c| c.q.len() as u64).sum();
        let ni_flits: u64 = self
            .nis
            .iter()
            .map(|n| n.cur.as_ref().map_or(0, NiStream::remaining))
            .sum();
        self.occupied_flits + channel_flits + ni_flits + self.queued_packets
    }

    /// Replaces the routing tables atomically.
    ///
    /// # Panics
    ///
    /// Panics if the table dimensions do not match the network.
    pub fn install_tables(&mut self, tables: RoutingTables) {
        assert_eq!(tables.vnets(), self.cfg.vnets as usize, "vnet count");
        assert_eq!(tables.routers(), self.routers.len(), "router count");
        assert_eq!(tables.nodes(), self.spec.num_nodes, "node count");
        Arc::make_mut(&mut self.spec).tables = tables;
        // Invalidate every lookahead port resolved against the old tables.
        self.table_epoch = self.table_epoch.wrapping_add(1);
    }

    /// Enables or disables lookahead route computation (on by default).
    ///
    /// When on, a head flit's output port at the next router is resolved
    /// one hop upstream (at switch traversal, or at the NI for the first
    /// hop) and carried in the flit header, so the RC half of the fused
    /// RC+VA scan is a pre-resolved load; the carried port is invalidated
    /// by table swaps via the table epoch and re-walked when stale. When
    /// off, every head walks the routing tables at each router (the
    /// classic path). Both paths produce **byte-identical** simulations —
    /// pinned by the `lookahead_equivalence` suite — so the flag exists
    /// purely as the debug/reference side of that comparison.
    pub fn set_lookahead_rc(&mut self, on: bool) {
        self.lookahead_rc = on;
    }

    /// Whether lookahead route computation is enabled.
    pub fn lookahead_rc(&self) -> bool {
        self.lookahead_rc
    }

    /// Stalls a router's RC/VA/SA stages for `cycles` cycles, modeling the
    /// `T_s` connection-setup window during which the routing table is
    /// unavailable (Sec. IV-A).
    pub fn begin_router_config(&mut self, router: RouterId, cycles: u64) {
        let r = &mut self.routers[router.index()];
        r.config_until = r.config_until.max(self.now + cycles);
    }

    /// Sets the usable-VC bitmask for a router and vnet (OSCAR dynamic VC
    /// allocation). Bit `i` allows VC `i` of the vnet. At least one VC must
    /// remain usable.
    ///
    /// # Panics
    ///
    /// Panics if the mask would disable all VCs of the vnet.
    pub fn set_vc_mask(&mut self, router: RouterId, vnet: Vnet, mask: u8) {
        let usable = (0..self.cfg.vcs_per_vnet).any(|v| mask & (1 << v) != 0);
        assert!(usable, "vc mask must keep at least one VC usable");
        self.routers[router.index()].vc_mask[vnet.index()] = mask;
        recompute_va_cand(&mut self.routers[router.index()], self.cfg.vcs_per_vnet);
    }

    /// Attempts to power-gate a router (FTBY_PG). Fails if the router still
    /// buffers flits or holds output-VC allocations.
    pub fn try_sleep_router(&mut self, router: RouterId) -> bool {
        let ri = router.index();
        let gv_lo = self.lanes.gv(ri, 0, 0);
        let gv_hi = gv_lo + self.lanes.n_ports(ri) * self.cfg.total_vcs();
        let r = &mut self.routers[ri];
        if !r.active || r.sleeping {
            return false;
        }
        if r.flits > 0 || self.lanes.alloc[gv_lo..gv_hi].iter().any(|a| a.is_some()) {
            return false;
        }
        r.sleeping = true;
        r.wake_at = u64::MAX;
        self.statics_dirty = true;
        true
    }

    /// Whether the router is currently power-gated.
    pub fn is_sleeping(&self, router: RouterId) -> bool {
        self.routers[router.index()].sleeping
    }

    /// Begins waking a sleeping router; it resumes after the configured
    /// wake-up latency.
    pub fn wake_router(&mut self, router: RouterId) {
        let wake_latency = self.cfg.wake_latency as u64;
        let now = self.now;
        let r = &mut self.routers[router.index()];
        if r.sleeping {
            r.wake_at = r.wake_at.min(now + wake_latency);
            if !r.in_wake_list {
                r.in_wake_list = true;
                self.pending_wakes.push(router.index());
            }
        }
    }

    /// Number of flits buffered in a router.
    pub fn router_flits(&self, router: RouterId) -> u32 {
        self.routers[router.index()].flits
    }

    /// Pauses or resumes a node's NI. A paused NI still accepts and queues
    /// packets (and finishes the packet it is mid-way through) but starts no
    /// new injection — the drain mechanism for reconfigurations that move
    /// NI attachments (Sec. II-C1).
    ///
    /// # Panics
    ///
    /// Panics if the node has no NI.
    pub fn set_ni_paused(&mut self, node: NodeId, paused: bool) {
        let idx = self.node_ni[node.index()].expect("node has no NI");
        self.nis[idx].paused = paused;
    }

    /// Whether a node's NI is idle (not mid-packet).
    ///
    /// # Panics
    ///
    /// Panics if the node has no NI.
    pub fn ni_idle(&self, node: NodeId) -> bool {
        let idx = self.node_ni[node.index()].expect("node has no NI");
        self.nis[idx].cur.is_none()
    }

    /// Packets waiting in a node's NI source queue.
    ///
    /// # Panics
    ///
    /// Panics if the node has no NI.
    pub fn ni_queue_len(&self, node: NodeId) -> usize {
        let idx = self.node_ni[node.index()].expect("node has no NI");
        self.nis[idx].source_q.len()
    }

    /// Whether a channel (identified by endpoints) and its surrounding state
    /// are quiescent: nothing in flight on the wire, no upstream packet
    /// mid-stream across it, and the downstream input VCs it feeds are empty.
    /// This is the precondition for removing the channel during
    /// reconfiguration.
    pub fn channel_quiescent(&self, key: ChannelKey) -> bool {
        let Some(idx) = self.channels.iter().position(|c| c.spec.key() == key) else {
            return true; // not present: trivially quiescent
        };
        if !self.channels[idx].q.is_empty() {
            return false;
        }
        let total_vcs = self.cfg.total_vcs();
        let up_gv = self
            .lanes
            .gv(key.src.router.index(), key.src.port.index(), 0);
        if self.lanes.alloc[up_gv..up_gv + total_vcs]
            .iter()
            .any(|a| a.is_some())
        {
            return false;
        }
        let down_gv = self
            .lanes
            .gv(key.dst.router.index(), key.dst.port.index(), 0);
        self.lanes.len[down_gv..down_gv + total_vcs]
            .iter()
            .all(|&l| l == 0)
    }

    /// Takes the statistics, events, and static-power accumulators gathered
    /// since the previous call (or construction), resetting the epoch window.
    pub fn take_epoch(&mut self) -> EpochReport {
        let mut stats = std::mem::take(&mut self.stats);
        stats.buffer_capacity = self.buffer_capacity;
        self.stats.buffer_capacity = self.buffer_capacity;
        let events = self.events.take();
        let static_cycles = self.statics.take();
        self.events_total.accumulate(&events);
        self.statics_total.accumulate(&static_cycles);
        for v in self.router_forwarded.iter_mut() {
            *v = 0;
        }
        for v in self.router_occupancy_sum.iter_mut() {
            *v = 0;
        }
        for v in self.channel_flits.iter_mut() {
            *v = 0;
        }
        let mut health = self.health.take();
        health.sample_interval = self.guard_mode.interval();
        self.health_total.accumulate(&health);
        let report = EpochReport {
            stats,
            events,
            static_cycles,
            health,
        };
        let in_flight = self.in_flight();
        if let Some(t) = self.telem.as_mut() {
            t.flush_epoch(&report, in_flight);
        }
        report
    }

    /// Per-router flits forwarded in the current epoch window (reset by
    /// [`take_epoch`](Self::take_epoch)); used to build per-subNoC RL state.
    pub fn router_forwarded_epoch(&self) -> &[u64] {
        &self.router_forwarded
    }

    /// Per-router sum over cycles of buffered flits in the current epoch
    /// window (reset by [`take_epoch`](Self::take_epoch)).
    pub fn router_occupancy_epoch(&self) -> &[u64] {
        &self.router_occupancy_sum
    }

    /// Per-channel flit traversals in the current epoch window (reset by
    /// [`take_epoch`](Self::take_epoch)); index-aligned with
    /// [`spec().channels`](Self::spec). The link-heat view of congestion.
    pub fn channel_flits_epoch(&self) -> &[u64] {
        &self.channel_flits
    }

    /// Records one RL (DQN) inference in the event counters (the RL
    /// controller hardware is part of the NoC power envelope).
    pub fn count_rl_inference(&mut self) {
        self.events.rl_inferences += 1;
    }

    /// Attaches a packet tracer (see [`crate::trace`]). Pass `None` to
    /// disable tracing.
    pub fn set_tracer(&mut self, tracer: Option<crate::trace::TraceBuffer>) {
        self.tracer = tracer;
    }

    /// The attached tracer, if any.
    pub fn tracer(&self) -> Option<&crate::trace::TraceBuffer> {
        self.tracer.as_ref()
    }

    /// Replaces the telemetry harness with a fresh one collecting under
    /// `mode` ([`TelemetryMode::Off`] detaches it entirely). Discards any
    /// metrics collected so far; snapshot the registry first if you need
    /// them. Telemetry is observation-only, so switching modes never
    /// changes simulation behaviour (pinned by the
    /// `telemetry_equivalence` test suite).
    pub fn set_telemetry_mode(&mut self, mode: TelemetryMode) {
        self.telem = mode.is_active().then(|| Box::new(SimTelemetry::new(mode)));
    }

    /// The resolved telemetry mode ([`TelemetryMode::Off`] when no
    /// harness is attached).
    pub fn telemetry_mode(&self) -> TelemetryMode {
        self.telem.as_ref().map_or(TelemetryMode::Off, |t| t.mode())
    }

    /// The telemetry registry, if telemetry is active. Use with the
    /// exporters in [`adaptnoc_telemetry::export`].
    pub fn telemetry(&self) -> Option<&Registry> {
        self.telem.as_ref().map(|t| t.registry())
    }

    /// Mutable telemetry registry access: the fault, guard and RL layers
    /// use this to intern and record their own metrics into the same
    /// registry the simulator flushes epochs into.
    pub fn telemetry_mut(&mut self) -> Option<&mut Registry> {
        self.telem.as_mut().map(|t| t.registry_mut())
    }

    /// Cumulative statistics since construction (not reset by
    /// [`take_epoch`](Self::take_epoch)).
    pub fn totals(&self) -> EpochReport {
        let mut events = self.events_total;
        events.accumulate(&self.events);
        let mut static_cycles = self.statics_total;
        static_cycles.accumulate(&self.statics);
        let mut health = self.health_total;
        health.accumulate(&self.health);
        health.sample_interval = health.sample_interval.max(self.guard_mode.interval());
        EpochReport {
            stats: self.totals.clone(),
            events,
            static_cycles,
            health,
        }
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        self.now += 1;
        let now = self.now;

        // Telemetry sampling state for this cycle. `timed` means the
        // wall-clock stage spans are taken this cycle (every cycle under
        // Strict, every n-th under Sampled(n)); counters, gauges,
        // histograms and events are exact in every active mode.
        let timed = match self.telem.as_mut() {
            Some(t) => t.begin_cycle(now),
            None => false,
        };

        self.step_wake(now);
        self.step_credits();
        self.step_deliver(now, timed);
        self.step_inject(now, timed);

        // Router stages: RC + VA + SA (span-timed internally when `timed`,
        // split into RC+VA and SA+ST components).
        self.router_stage(now, timed);

        self.step_finish(now);
    }

    /// Wakes routers whose wake-up latency elapsed (failed routers never
    /// wake). Only routers with a finite wake deadline can wake, so the
    /// pending-wake worklist is exact; the full sweep re-derives the same
    /// set as a cross-check.
    fn step_wake(&mut self, now: u64) {
        let mut dirty = false;
        if self.full_sweep {
            for r in self.routers.iter_mut() {
                if r.sleeping && !r.failed && now >= r.wake_at {
                    r.sleeping = false;
                    r.wake_at = 0;
                    dirty = true;
                }
            }
            let routers = &mut self.routers;
            self.pending_wakes.retain(|&ri| {
                let r = &mut routers[ri];
                let keep = r.sleeping && !r.failed && r.wake_at != u64::MAX;
                if !keep {
                    r.in_wake_list = false;
                }
                keep
            });
        } else if !self.pending_wakes.is_empty() {
            let routers = &mut self.routers;
            self.pending_wakes.retain(|&ri| {
                let r = &mut routers[ri];
                if r.sleeping && !r.failed && now >= r.wake_at {
                    r.sleeping = false;
                    r.wake_at = 0;
                    dirty = true;
                }
                let keep = r.sleeping && !r.failed && r.wake_at != u64::MAX;
                if !keep {
                    r.in_wake_list = false;
                }
                keep
            });
        }
        if dirty {
            self.statics_dirty = true;
        }
    }

    /// Applies credits scheduled last cycle. The drained list is kept as a
    /// double buffer (`credits_scratch`) so no cycle allocates.
    fn step_credits(&mut self) {
        let mut pending = std::mem::replace(
            &mut self.pending_credits,
            std::mem::take(&mut self.credits_scratch),
        );
        for (ch, vc) in pending.drain(..) {
            let spec = self.channels[ch.index()].spec;
            let sri = spec.src.router.index();
            let gp = self.lanes.gp(sri, spec.src.port.index());
            let gv = gp * self.lanes.total_vcs + vc as usize;
            let c = &mut self.lanes.credits[gv];
            debug_assert!(*c < self.cfg.vc_depth, "credit overflow");
            *c = (*c + 1).min(self.cfg.vc_depth);
            // The credit left zero: clear its bit in the port-level
            // zero-credit mask and wake the one input VC (if any) parked
            // on it — this runs before the router stage, so the wake lands
            // the same cycle the scan would have seen the fresh credit.
            if self.lanes.credit_zero[gp] & (1 << vc) != 0 {
                self.lanes.credit_zero[gp] &= !(1 << vc);
                if let Some((pi, vi)) = self.lanes.alloc[gv] {
                    let in_gp = self.lanes.gp(sri, pi as usize);
                    self.lanes.scan[in_gp] |= 1 << vi;
                }
            }
        }
        self.credits_scratch = pending;
    }

    /// Channel deliveries. Cross-channel order is immaterial (each channel
    /// feeds exactly one input port and all shared-counter updates
    /// commute), but the worklist is still walked in ascending index order
    /// to mirror the full sweep exactly.
    fn step_deliver(&mut self, now: u64, timed: bool) {
        let t0 = if timed {
            Some(std::time::Instant::now())
        } else {
            None
        };
        if self.full_sweep {
            for ci in 0..self.channels.len() {
                self.deliver_channel(ci, now);
            }
            let channels = &mut self.channels;
            self.busy_channels.retain(|&ci| {
                let keep = !channels[ci].q.is_empty();
                if !keep {
                    channels[ci].in_busy_list = false;
                }
                keep
            });
        } else if !self.busy_channels.is_empty() {
            let mut busy = std::mem::take(&mut self.busy_channels);
            busy.sort_unstable();
            let mut w = 0;
            for k in 0..busy.len() {
                let ci = busy[k];
                self.deliver_channel(ci, now);
                if self.channels[ci].q.is_empty() {
                    self.channels[ci].in_busy_list = false;
                } else {
                    busy[w] = ci;
                    w += 1;
                }
            }
            busy.truncate(w);
            debug_assert!(self.busy_channels.is_empty(), "no marks during delivery");
            busy.append(&mut self.busy_channels);
            self.busy_channels = busy;
        }
        if let (Some(t0), Some(t)) = (t0, self.telem.as_mut()) {
            t.record_stage_ns(Stage::Link, t0.elapsed().as_nanos() as u64);
        }
    }

    /// NI injection (one flit per local port per cycle).
    fn step_inject(&mut self, now: u64, timed: bool) {
        let t0 = if timed {
            Some(std::time::Instant::now())
        } else {
            None
        };
        self.inject_stage(now);
        if let (Some(t0), Some(t)) = (t0, self.telem.as_mut()) {
            t.record_stage_ns(Stage::NiInject, t0.elapsed().as_nanos() as u64);
        }
    }

    /// Per-cycle statistics, static-power accumulation, and guards.
    fn step_finish(&mut self, now: u64) {
        self.stats.cycles += 1;
        self.stats.buffer_occupancy_sum += self.occupied_flits;
        self.stats.injection_queue_sum += self.queued_packets;
        self.totals.cycles += 1;
        self.totals.buffer_occupancy_sum += self.occupied_flits;
        self.totals.injection_queue_sum += self.queued_packets;

        // Routers with zero flits contribute nothing, so the busy worklist
        // (which contains every router with flits > 0) suffices.
        if self.full_sweep {
            for (i, r) in self.routers.iter().enumerate() {
                self.router_occupancy_sum[i] += r.flits as u64;
            }
        } else {
            for &ri in &self.busy_routers {
                self.router_occupancy_sum[ri] += self.routers[ri].flits as u64;
            }
        }

        // Static on/off/port counts only change on power/wiring transitions;
        // recompute lazily (always in full-sweep mode, so the equivalence
        // tests also validate the dirty-flag bookkeeping).
        if self.statics_dirty || self.full_sweep {
            let mut on = 0u64;
            let mut off = 0u64;
            let mut ports_on = 0u64;
            for r in &self.routers {
                if r.active && !r.sleeping && !r.failed {
                    on += 1;
                    ports_on += r.ports_on as u64;
                } else {
                    off += 1;
                }
            }
            self.static_on = on;
            self.static_off = off;
            self.static_ports_on = ports_on;
            self.statics_dirty = false;
        }
        let s = &mut self.statics;
        s.cycles += 1;
        s.router_on_cycles += self.static_on;
        s.router_off_cycles += self.static_off;
        s.port_on_cycles += self.static_ports_on;
        s.mesh_link_mm_cycles += self.profile.mesh_link_mm;
        s.adapt_link_mm_cycles += self.profile.adapt_link_mm;
        s.conc_link_mm_cycles += self.profile.conc_link_mm;
        s.interchip_link_mm_cycles += self.profile.interchip_link_mm;

        // 6. Invariant guards (see `crate::health`): strict mode sweeps
        // every cycle, sampled mode on a deterministic cycle-keyed cadence.
        let check = match self.guard_mode {
            GuardMode::Off => false,
            GuardMode::Strict => true,
            GuardMode::Sampled(n) => n != 0 && now.is_multiple_of(n as u64),
        };
        if check {
            self.run_guard_check();
        }
    }

    /// Delivers every flit whose wire latency elapsed on one channel.
    fn deliver_channel(&mut self, ci: usize, now: u64) {
        while let Some(&(arrive, _)) = self.channels[ci].q.front() {
            if arrive > now {
                break;
            }
            let Some((_, mut flit)) = self.channels[ci].q.pop_front() else {
                break; // unreachable: front() above was Some
            };
            self.wire_flits -= 1;
            let dst = self.channels[ci].spec.dst;
            flit.ready_at = now + self.cfg.router_latency as u64;
            let ri = dst.router.index();
            let router = &mut self.routers[ri];
            if router.sleeping && !router.failed {
                // Arrival triggers wake-up (drowsy buffers still latch).
                router.wake_at = router.wake_at.min(now + self.cfg.wake_latency as u64);
                if !router.in_wake_list {
                    router.in_wake_list = true;
                    self.pending_wakes.push(ri);
                }
            }
            let vc = flit.assigned_vc as usize;
            let gp = self.lanes.gp(ri, dst.port.index());
            self.lanes.push_back(gp * self.cfg.total_vcs() + vc, flit);
            self.lanes.occ[gp] |= 1 << vc;
            self.lanes.scan[gp] |= 1 << vc;
            router.flits += 1;
            if !router.in_busy_list {
                router.in_busy_list = true;
                self.busy_routers.push(ri);
            }
            self.occupied_flits += 1;
            self.events.buffer_writes += 1;
        }
    }

    /// Runs `cycles` steps.
    pub fn run(&mut self, cycles: u64) {
        for _ in 0..cycles {
            self.step();
        }
    }

    fn inject_stage(&mut self, now: u64) {
        // Ports whose NIs hold no packets grant nothing and leave the
        // round-robin pointer untouched, so skipping them is
        // state-equivalent to the full sweep. The worklist is walked in
        // ascending (router, port) order to match sweep order exactly.
        if self.full_sweep {
            for ri in 0..self.routers.len() {
                let n_ports = self.routers[ri].in_ports.len();
                for pi in 0..n_ports {
                    self.inject_port(ri, pi, now);
                }
            }
            let mut act = std::mem::take(&mut self.active_inj);
            act.retain(|&key| {
                let (ri, pi) = (key >> 8, key & 0xff);
                let keep = self.port_has_ni_work(ri, pi);
                if !keep {
                    self.routers[ri].in_ports[pi].in_inj_list = false;
                }
                keep
            });
            self.active_inj = act;
            return;
        }
        if self.active_inj.is_empty() {
            return;
        }
        let mut act = std::mem::take(&mut self.active_inj);
        act.sort_unstable();
        let mut w = 0;
        for k in 0..act.len() {
            let key = act[k];
            let (ri, pi) = (key >> 8, key & 0xff);
            self.inject_port(ri, pi, now);
            if self.port_has_ni_work(ri, pi) {
                act[w] = key;
                w += 1;
            } else {
                self.routers[ri].in_ports[pi].in_inj_list = false;
            }
        }
        act.truncate(w);
        debug_assert!(self.active_inj.is_empty(), "no marks during injection");
        act.append(&mut self.active_inj);
        self.active_inj = act;
    }

    /// Runs one injection port: round-robin among its NIs, at most one flit
    /// per cycle. Routers that are inactive or failed accept nothing.
    fn inject_port(&mut self, ri: usize, pi: usize, now: u64) {
        if !self.routers[ri].active || self.routers[ri].failed {
            return;
        }
        let n_nis = self.routers[ri].in_ports[pi].nis.len();
        if n_nis == 0 {
            return;
        }
        // Determine which NIs can send a flit this cycle (NIs per
        // port are bounded by the concentration factor, <= 8).
        let mut ready = [false; 8];
        let mut ids = [0usize; 8];
        let n = n_nis.min(8);
        for k in 0..n {
            let ni_id = self.routers[ri].in_ports[pi].nis[k];
            ids[k] = ni_id;
            ready[k] = self.ni_can_send(ni_id, ri, pi);
        }
        let grant = self.routers[ri].in_ports[pi].inj_rr.grant(&ready[..n]);
        if let Some(k) = grant {
            self.ni_send(ids[k], ri, pi, now);
        }
    }

    fn ni_can_send(&self, ni_id: usize, ri: usize, pi: usize) -> bool {
        let ni = &self.nis[ni_id];
        if ni.paused && ni.cur.is_none() {
            return false;
        }
        if let Some(cur) = &ni.cur {
            if cur.remaining() == 0 {
                return false;
            }
            let gv = self.lanes.gv(ri, pi, cur.vc as usize);
            return self.lanes.buf_len(gv) < self.cfg.vc_depth as usize;
        }
        let Some(pkt) = ni.source_q.front() else {
            return false;
        };
        self.pick_injection_vc(ri, pi, pkt.vnet).is_some()
    }

    fn pick_injection_vc(&self, ri: usize, pi: usize, vnet: Vnet) -> Option<u8> {
        let mask = self.routers[ri].vc_mask[vnet.index()];
        let gp = self.lanes.gp(ri, pi);
        for (off, gvc) in self.cfg.vnet_vcs(vnet).enumerate() {
            if mask & (1 << off) == 0 {
                continue;
            }
            let gv = gp * self.cfg.total_vcs() + gvc;
            if self.lanes.buf_len(gv) == 0
                && self.lanes.route(gv).is_none()
                && !self.lanes.ni_lock[gv]
            {
                return Some(gvc as u8);
            }
        }
        None
    }

    fn ni_send(&mut self, ni_id: usize, ri: usize, pi: usize, now: u64) {
        // Start a new packet if idle.
        if self.nis[ni_id].cur.is_none() {
            let pkt = self.nis[ni_id].source_q.front().copied();
            let Some(pkt) = pkt else { return };
            let Some(vc) = self.pick_injection_vc(ri, pi, pkt.vnet) else {
                return;
            };
            let _ = self.nis[ni_id].source_q.pop_front(); // front() was Some
            self.queued_packets -= 1;
            self.ni_stream_flits += pkt.len as u64;
            let gv = self.lanes.gv(ri, pi, vc as usize);
            self.lanes.ni_lock[gv] = true;
            self.nis[ni_id].cur = Some(NiStream { vc, pkt, sent: 0 });
        }

        // Synthesize the next flit straight from the packet metadata — no
        // staging buffer, no allocation.
        let (vc, mut flit) = {
            let Some(cur) = self.nis[ni_id].cur.as_mut() else {
                return; // set just above; defensive
            };
            if cur.remaining() == 0 {
                return;
            }
            let f = Flit::of_packet(&cur.pkt, cur.sent);
            cur.sent += 1;
            (cur.vc, f)
        };
        self.ni_stream_flits -= 1;
        if self.routers[ri].sleeping {
            let wake = now + self.cfg.wake_latency as u64;
            let r = &mut self.routers[ri];
            r.wake_at = r.wake_at.min(wake);
            if !r.in_wake_list {
                r.in_wake_list = true;
                self.pending_wakes.push(ri);
            }
        }
        let gp = self.lanes.gp(ri, pi);
        let gv = gp * self.cfg.total_vcs() + vc as usize;
        debug_assert!(self.lanes.buf_len(gv) < self.cfg.vc_depth as usize);
        // Injection bypass: skip the router pipeline delay when the VC is
        // empty (Sec. II-A1: "bypass link at the virtual channels of input
        // port at the NI").
        let bypass = self.cfg.injection_bypass && self.lanes.buf_len(gv) == 0;
        flit.ready_at = if bypass {
            now
        } else {
            now + self.cfg.router_latency as u64
        };
        flit.assigned_vc = vc;
        flit.injected_at = now;
        if self.lookahead_rc && flit.pos.is_head() {
            // First-hop lookahead: resolve the output port at the source
            // router here, so RC at that router is a pre-resolved load.
            flit.la_port = match self
                .spec
                .tables
                .lookup(flit.vnet, RouterId(ri as u16), flit.dst)
            {
                Some(p) => p.0,
                None => crate::flit::LA_NONE,
            };
            flit.la_epoch = self.table_epoch;
        }
        if flit.pos.is_head() {
            if let Some(t) = self.tracer.as_mut() {
                t.record(crate::trace::TraceEvent::Injected {
                    packet: flit.packet,
                    cycle: now,
                    src: flit.src,
                    dst: flit.dst,
                });
            }
        }
        let is_tail = flit.pos.is_tail();
        self.lanes.push_back(gv, flit);
        self.lanes.occ[gp] |= 1 << vc;
        self.lanes.scan[gp] |= 1 << vc;
        self.routers[ri].flits += 1;
        self.mark_router_busy(ri);
        self.occupied_flits += 1;
        self.events.buffer_writes += 1;
        self.events.ni_injections += 1;
        if bypass {
            self.events.bypass_injections += 1;
        }
        if self.nis[ni_id].spec.concentration {
            self.events.mux_traversals += 1;
        }
        if is_tail {
            self.lanes.ni_lock[gv] = false;
            self.nis[ni_id].cur = None;
        }
    }

    /// A band view covering the whole network (the serial router stage is
    /// the one-band special case of the region-parallel path, so both run
    /// the same kernels and the same sink merge).
    fn full_band_view(&mut self) -> BandView<'_> {
        BandView {
            ri0: 0,
            routers: &mut self.routers,
            gp0: 0,
            occ: &mut self.lanes.occ,
            scan: &mut self.lanes.scan,
            va_rr: &mut self.lanes.va_rr,
            sa_rr: &mut self.lanes.sa_rr,
            gv0: 0,
            lane: &mut self.lanes.lane,
            va_meta: &mut self.lanes.va_meta,
            owner: &mut self.lanes.owner,
            credits: &mut self.lanes.credits,
            alloc: &mut self.lanes.alloc,
            alloc_mask: &mut self.lanes.alloc_mask,
            credit_zero: &mut self.lanes.credit_zero,
            head: &mut self.lanes.head,
            len: &mut self.lanes.len,
            slots: &mut self.lanes.slots,
            router_forwarded: &mut self.router_forwarded,
            channels: ChannelShard::new(&mut self.channels, &mut self.channel_flits),
            spec: &self.spec,
            port_base: &self.lanes.port_base,
            out_channel: &self.lanes.out_channel,
            feeder: &self.lanes.feeder,
            total_vcs: self.lanes.total_vcs,
            vcs_per_vnet: self.cfg.vcs_per_vnet as usize,
            depth: self.lanes.depth,
            max_ports: self.max_ports,
            table_epoch: self.table_epoch,
            lookahead: self.lookahead_rc,
        }
    }

    /// Applies one band's deferred side effects (see [`StageSink`]) in
    /// place. Called once per band in ascending band order, which makes
    /// counter totals, trace order, and delivery order identical to the
    /// serial ascending-router walk.
    fn apply_stage_sink(&mut self, sink: &mut StageSink) {
        if sink.is_empty() {
            return; // idle band; every apply below would be a no-op
        }
        self.events.accumulate(&sink.events);
        sink.events = EventCounts::default();
        self.stats.flits_forwarded += sink.flits_forwarded;
        self.totals.flits_forwarded += sink.flits_forwarded;
        sink.flits_forwarded = 0;
        self.unroutable += sink.unroutable;
        sink.unroutable = 0;
        self.occupied_flits -= sink.removed;
        sink.removed = 0;
        self.wire_flits += sink.wire_pushed;
        sink.wire_pushed = 0;
        self.pending_credits.append(&mut sink.pending_credits);
        self.busy_channels.append(&mut sink.busy_channels);
        // The tracer applies its filter and capacity limit here, so the
        // buffered-events detour preserves `dropped` counts exactly.
        if let Some(t) = self.tracer.as_mut() {
            for ev in sink.trace.drain(..) {
                t.record(ev);
            }
        } else {
            sink.trace.clear();
        }
        for d in sink.delivered.drain(..) {
            self.stats.record(&d);
            self.totals.record(&d);
            if let Some(t) = self.telem.as_mut() {
                t.on_delivered(&d);
            }
            self.delivered.push(d);
        }
    }

    fn router_stage(&mut self, now: u64, timed: bool) {
        if !self.full_sweep && self.busy_routers.is_empty() {
            // No router holds a flit: skip the sink/scratch shuffle entirely
            // so the idle fast path stays a handful of branch tests. The
            // zero-valued spans keep per-stage sample counts identical to a
            // loaded cycle's.
            if timed {
                if let Some(t) = self.telem.as_mut() {
                    t.record_stage_ns(Stage::RcVa, 0);
                    t.record_stage_ns(Stage::SaSt, 0);
                    t.record_stage_ns(Stage::Merge, 0);
                }
            }
            return;
        }
        let mut sink = std::mem::take(&mut self.sink);
        let mut scratch = std::mem::take(&mut self.stage_scratch);
        sink.trace_on = self.tracer.is_some();
        let mut rc_va_ns = 0u64;
        let mut sa_st_ns = 0u64;
        if self.full_sweep {
            let mut view = self.full_band_view();
            view.run_band_sweep(
                now,
                timed,
                &mut sink,
                &mut scratch,
                &mut rc_va_ns,
                &mut sa_st_ns,
            );
            let routers = &mut self.routers;
            self.busy_routers.retain(|&ri| {
                let keep = routers[ri].flits > 0;
                if !keep {
                    routers[ri].in_busy_list = false;
                }
                keep
            });
        } else if !self.busy_routers.is_empty() {
            // Every router with buffered flits is in the worklist (they were
            // marked when their flit count left zero); allocation only
            // drains flits, so no router joins the list mid-stage. Ascending
            // order mirrors the full sweep, keeping trace/delivery order
            // identical.
            let mut busy = std::mem::take(&mut self.busy_routers);
            busy.sort_unstable();
            let mut kept = std::mem::take(&mut self.kept_scratch);
            kept.clear();
            {
                let mut view = self.full_band_view();
                view.run_band(
                    &busy,
                    &mut kept,
                    now,
                    timed,
                    &mut sink,
                    &mut scratch,
                    &mut rc_va_ns,
                    &mut sa_st_ns,
                );
            }
            debug_assert!(self.busy_routers.is_empty(), "no marks during allocation");
            self.busy_routers = kept;
            busy.clear();
            self.kept_scratch = busy;
        }
        let t0 = if timed {
            Some(std::time::Instant::now())
        } else {
            None
        };
        self.apply_stage_sink(&mut sink);
        if timed {
            if let Some(t) = self.telem.as_mut() {
                t.record_stage_ns(Stage::RcVa, rc_va_ns);
                t.record_stage_ns(Stage::SaSt, sa_st_ns);
                if let Some(t0) = t0 {
                    t.record_stage_ns(Stage::Merge, t0.elapsed().as_nanos() as u64);
                }
            }
        }
        self.sink = sink;
        self.stage_scratch = scratch;
    }

    /// Advances the simulation by one cycle using region-parallel router
    /// stepping on `pool`.
    ///
    /// The cycle's router stage is split into contiguous router bands (one
    /// per pool thread, aligned to an installed
    /// [`RegionMap`](crate::par::RegionMap) when compatible) that run
    /// concurrently; their deferred side effects are merged in ascending
    /// band order at the cycle barrier, so delivered packets, statistics,
    /// traces and telemetry counters are **byte-identical to
    /// [`step`](Self::step)** at any thread count. With a single-threaded
    /// pool this *is* `step`.
    ///
    /// # Panics
    ///
    /// Panics if the network is in full-sweep reference mode
    /// ([`set_full_sweep`](Self::set_full_sweep)): the sweep is a serial
    /// validation baseline and intentionally has no parallel counterpart.
    pub fn step_parallel(&mut self, pool: &mut crate::par::StepPool) {
        if pool.threads() <= 1 {
            return self.step();
        }
        assert!(
            !self.full_sweep,
            "step_parallel does not support full-sweep reference mode; \
             use Network::step (serial) for full-sweep runs"
        );
        self.now += 1;
        let now = self.now;
        let timed = match self.telem.as_mut() {
            Some(t) => t.begin_cycle(now),
            None => false,
        };
        self.step_wake(now);
        self.step_credits();
        self.step_deliver(now, timed);
        self.step_inject(now, timed);
        self.router_stage_parallel(now, timed, pool);
        self.step_finish(now);
    }

    /// Runs `cycles` steps on `pool` (the parallel analogue of
    /// [`run`](Self::run)).
    pub fn run_parallel(&mut self, cycles: u64, pool: &mut crate::par::StepPool) {
        for _ in 0..cycles {
            self.step_parallel(pool);
        }
    }

    /// The region-parallel router stage: split the band view at region
    /// boundaries, run band 0 inline and the rest on the pool, then merge
    /// every band's sink in ascending band order (see [`crate::par`] for
    /// the determinism argument).
    fn router_stage_parallel(&mut self, now: u64, timed: bool, pool: &mut crate::par::StepPool) {
        use crate::stage::{run_band_job, split_band, BandJob};

        if self.busy_routers.is_empty() {
            // No router holds a flit; the serial path would also skip the
            // kernels and apply an empty sink.
            if timed {
                if let Some(t) = self.telem.as_mut() {
                    t.record_stage_ns(Stage::RcVa, 0);
                    t.record_stage_ns(Stage::SaSt, 0);
                    t.record_stage_ns(Stage::Merge, 0);
                }
            }
            return;
        }

        let mut busy = std::mem::take(&mut self.busy_routers);
        busy.sort_unstable();
        let trace_on = self.tracer.is_some();
        let bounds = pool.plan(self.routers.len());
        let bands = bounds.len() - 1;

        // Lifetime-erase the band views and busy slices so the persistent
        // worker pool can hold them across the spawn boundary. SAFETY: the
        // jobs borrow `self` and `busy`, both of which outlive the
        // dispatch/wait window below — `self` is exclusively borrowed for
        // the whole call and is not touched again until after `pool.wait()`,
        // and `busy` is neither moved nor mutated until after the wait.
        // Bands are disjoint by construction (`split_band`), and the wait
        // barrier orders all worker writes before the merge reads.
        let mut jobs: Vec<BandJob> = Vec::with_capacity(bands);
        {
            #[allow(unsafe_code)]
            let busy_view: &'static [usize] =
                unsafe { std::mem::transmute::<&[usize], &'static [usize]>(&busy[..]) };
            let view = self.full_band_view();
            #[allow(unsafe_code)]
            let mut rest = unsafe { std::mem::transmute::<BandView<'_>, BandView<'static>>(view) };
            for b in 0..bands {
                let (band_view, remainder) = if b + 1 < bands {
                    let (a, r) = split_band(rest, bounds[b + 1]);
                    (a, Some(r))
                } else {
                    (rest, None)
                };
                let lo = busy_view.partition_point(|&ri| ri < bounds[b]);
                let hi = busy_view.partition_point(|&ri| ri < bounds[b + 1]);
                jobs.push(BandJob {
                    view: band_view,
                    busy: &busy_view[lo..hi],
                    now,
                    timed,
                    trace_on,
                });
                match remainder {
                    Some(r) => rest = r,
                    None => break,
                }
            }
        }

        // Band 0 runs here; bands 1.. on the workers.
        let first = jobs.remove(0);
        pool.dispatch(jobs);
        run_band_job(first, pool.main_state());
        pool.wait();

        // Deterministic merge: ascending band order reproduces the serial
        // ascending-router walk byte for byte.
        let t0 = if timed {
            Some(std::time::Instant::now())
        } else {
            None
        };
        debug_assert!(self.busy_routers.is_empty(), "no marks during allocation");
        busy.clear();
        let mut rc_va_ns = 0u64;
        let mut sa_st_ns = 0u64;
        pool.merge_states(|state| {
            rc_va_ns += state.rc_va_ns;
            sa_st_ns += state.sa_st_ns;
            // Band kept-lists are each ascending and bands cover ascending
            // router ranges, so the concatenation is the serial kept order.
            busy.extend_from_slice(&state.kept);
            self.apply_stage_sink(&mut state.sink);
        });
        self.busy_routers = busy;
        if timed {
            if let Some(t) = self.telem.as_mut() {
                t.record_stage_ns(Stage::RcVa, rc_va_ns);
                t.record_stage_ns(Stage::SaSt, sa_st_ns);
                if let Some(t0) = t0 {
                    t.record_stage_ns(Stage::Merge, t0.elapsed().as_nanos() as u64);
                }
            }
        }
    }

    /// Structurally reconfigures the network to `new_spec`, preserving all
    /// in-flight traffic.
    ///
    /// Channels present in both specs (same endpoints) keep their in-flight
    /// flits and credit state. Channels being removed must be
    /// [quiescent](Self::channel_quiescent); routers being powered off must
    /// hold no flits; NIs being reattached must not be mid-packet (their
    /// source queues are preserved).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the new spec is invalid, changes the
    /// router/node shape, or a quiescence precondition fails.
    pub fn reconfigure(&mut self, new_spec: NetworkSpec) -> Result<(), NetworkError> {
        self.reconfigure_shared(Arc::new(new_spec))
    }

    /// [`reconfigure`](Self::reconfigure) with a shared spec: the network
    /// keeps a reference to `new_spec` instead of copying it, so a
    /// controller that prebuilt the target spec pays O(1) to install it.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] if the new spec is invalid, changes the
    /// router/node shape, or a quiescence precondition fails.
    pub fn reconfigure_shared(&mut self, new_spec: Arc<NetworkSpec>) -> Result<(), NetworkError> {
        new_spec.validate()?;
        if new_spec.routers.len() != self.routers.len() {
            return Err(NetworkError::Shape("router count changed".into()));
        }
        if new_spec.num_nodes != self.spec.num_nodes {
            return Err(NetworkError::Shape("node count changed".into()));
        }
        if new_spec.tables.vnets() != self.cfg.vnets as usize {
            return Err(NetworkError::Mismatch("vnet count changed".into()));
        }
        for (i, (old, new)) in self
            .spec
            .routers
            .iter()
            .zip(new_spec.routers.iter())
            .enumerate()
        {
            if old.n_ports != new.n_ports {
                return Err(NetworkError::Shape(format!(
                    "router {i} port count changed"
                )));
            }
            if let Some(k) = new.vc_split {
                if k == 0 || k >= self.cfg.vcs_per_vnet {
                    return Err(NetworkError::Mismatch(format!(
                        "router {i} vc_split {k} out of range"
                    )));
                }
            }
        }

        let old_keys: HashMap<ChannelKey, ChannelId> = self
            .spec
            .channels
            .iter()
            .enumerate()
            .map(|(i, c)| (c.key(), ChannelId(i as u32)))
            .collect();
        let new_keys: HashMap<ChannelKey, ()> =
            new_spec.channels.iter().map(|c| (c.key(), ())).collect();

        // Quiescence checks for removed channels.
        for c in &self.spec.channels {
            if !new_keys.contains_key(&c.key()) && !self.channel_quiescent(c.key()) {
                return Err(NetworkError::ChannelBusy(c.key()));
            }
        }
        // Routers being powered off must be empty.
        for (i, (old, new)) in self
            .spec
            .routers
            .iter()
            .zip(new_spec.routers.iter())
            .enumerate()
        {
            if old.active && !new.active && self.routers[i].flits > 0 {
                return Err(NetworkError::RouterBusy(RouterId(i as u16)));
            }
        }
        // NIs being moved must be idle mid-packet.
        for new_ni in &new_spec.nis {
            let old_ni = self.spec.ni_of(new_ni.node);
            let moved = old_ni.is_none_or(|o| o.router != new_ni.router || o.port != new_ni.port);
            if moved {
                if let Some(idx) = self.node_ni[new_ni.node.index()] {
                    if self.nis[idx].cur.is_some() {
                        return Err(NetworkError::NiBusy(new_ni.node));
                    }
                }
            }
        }

        // ---- Commit point: rebuild runtime structures. ----
        // Credit state is recomputed exactly from wire + buffer occupancy
        // below, so in-flight credit returns (which would double-count)
        // are dropped.
        self.pending_credits.clear();
        let total_vcs = self.cfg.total_vcs();
        let depth = self.cfg.vc_depth;

        // New channels, carrying over in-flight flits of kept channels.
        let mut new_channels: Vec<ChannelRt> = Vec::with_capacity(new_spec.channels.len());
        for c in &new_spec.channels {
            let q = match old_keys.get(&c.key()) {
                Some(old_id) => std::mem::take(&mut self.channels[old_id.index()].q),
                None => VecDeque::new(),
            };
            new_channels.push(ChannelRt {
                spec: *c,
                q,
                faulted: self.faulted_keys.contains(&c.key()),
                in_busy_list: false,
            });
        }

        // Rebuild routers (keeping input buffers in place). The VA/SA
        // round-robin pointers live in the dense lane arrays keyed by
        // global port, so they survive the rebuild unchanged — the same
        // per-(router, port) preservation the old per-port structs got via
        // an explicit save/restore map.
        for (ri, r) in self.routers.iter_mut().enumerate() {
            let rs = &new_spec.routers[ri];
            r.active = rs.active;
            r.vc_split = rs.vc_split;
            recompute_va_cand(r, self.cfg.vcs_per_vnet);
            if !rs.active {
                r.sleeping = false;
                r.wake_at = 0;
            }
            for ip in r.in_ports.iter_mut() {
                ip.feeder = None;
                ip.nis.clear();
            }
            r.out_ports = (0..rs.n_ports)
                .map(|_| OutPort {
                    channel: None,
                    eject: false,
                })
                .collect();
        }
        // Output-side lane state is rebuilt from scratch: full credits, no
        // allocations (both restored below from surviving occupancy).
        for c in self.lanes.credits.iter_mut() {
            *c = depth;
        }
        for a in self.lanes.alloc.iter_mut() {
            *a = None;
        }
        for m in self.lanes.alloc_mask.iter_mut() {
            *m = 0;
        }

        // Rewire channels; restore credit state for kept channels.
        for (i, c) in new_spec.channels.iter().enumerate() {
            self.routers[c.src.router.index()].out_ports[c.src.port.index()].channel =
                Some(ChannelId(i as u32));
            // Recompute credits exactly from downstream buffer occupancy
            // plus wire occupancy, which is always consistent regardless of
            // kept/new:
            let wire: Vec<u8> = {
                let mut per_vc = vec![0u8; total_vcs];
                for (_, f) in &new_channels[i].q {
                    per_vc[f.assigned_vc as usize] += 1;
                }
                per_vc
            };
            let down_gv = self.lanes.gv(c.dst.router.index(), c.dst.port.index(), 0);
            let up_gv = self.lanes.gv(c.src.router.index(), c.src.port.index(), 0);
            for (v, &w) in wire.iter().enumerate() {
                let down_occ = self.lanes.len[down_gv + v];
                self.lanes.credits[up_gv + v] = depth.saturating_sub(w + down_occ);
            }
            self.routers[c.dst.router.index()].in_ports[c.dst.port.index()].feeder =
                Some(ChannelId(i as u32));
        }
        self.lanes.rebuild_credit_zero();
        refresh_faulted_out(&mut self.routers, &new_channels);

        // Mid-stream allocations: any input VC with an out_vc still set must
        // re-own its output VC at the (possibly rebuilt) output port, and the
        // route must still exist. Quiescence checks above guarantee this only
        // happens across kept channels.
        for ri in 0..self.routers.len() {
            let n_in = self.routers[ri].in_ports.len();
            for pi in 0..n_in {
                let gv0 = self.lanes.gv(ri, pi, 0);
                for vi in 0..total_vcs {
                    let gv = gv0 + vi;
                    if let (Some(po), Some(gvc)) = (self.lanes.route(gv), self.lanes.out_vc(gv)) {
                        let has_conn = self.routers[ri].out_ports[po.index()].channel.is_some();
                        if has_conn || self.port_will_eject(&new_spec, ri, po) {
                            let out_gv = self.lanes.gv(ri, po.index(), gvc as usize);
                            let out_gp = self.lanes.gp(ri, po.index());
                            self.lanes.alloc[out_gv] = Some((pi as u8, vi as u8));
                            self.lanes.alloc_mask[out_gp] |= 1 << gvc;
                        } else {
                            // The connection vanished mid-packet: only
                            // possible if quiescence was bypassed; clear the
                            // stale route so the packet re-routes.
                            self.lanes.clear_alloc(gv);
                            self.lanes.owner[gv] = None;
                        }
                    }
                }
            }
        }

        // Reattach NIs (preserving source queues). The drain state is held
        // in flat slots indexed by node id — the node count is invariant
        // across reconfiguration (checked above) — giving deterministic
        // iteration order by construction and keeping the reconfig path off
        // the allocator's hash maps.
        type NiDrainState = (VecDeque<Packet>, Option<NiStream>, bool);
        let mut old_ni: Vec<Option<NiDrainState>> =
            (0..new_spec.num_nodes).map(|_| None).collect();
        for ni in self.nis.drain(..) {
            old_ni[ni.spec.node.index()] = Some((ni.source_q, ni.cur, ni.paused));
        }
        self.node_ni = vec![None; new_spec.num_nodes];
        for (i, n) in new_spec.nis.iter().enumerate() {
            let (source_q, cur, paused) = old_ni[n.node.index()].take().unwrap_or_default();
            self.nis.push(NiRt {
                spec: *n,
                source_q,
                cur,
                paused,
            });
            self.node_ni[n.node.index()] = Some(i);
            self.routers[n.router.index()].in_ports[n.port.index()]
                .nis
                .push(i);
            self.routers[n.router.index()].out_ports[n.port.index()].eject = true;
        }
        refresh_port_caches(&mut self.routers, &mut self.lanes);

        self.spec = new_spec;
        // The routing tables changed with the spec: invalidate every
        // in-flight lookahead port resolved against the old tables.
        self.table_epoch = self.table_epoch.wrapping_add(1);
        self.channels = new_channels;
        self.channel_flits = vec![0; self.channels.len()];
        // Channel indices changed: rebuild the wire worklist and counters.
        self.busy_channels.clear();
        self.wire_flits = 0;
        for ci in 0..self.channels.len() {
            let c = &mut self.channels[ci];
            self.wire_flits += c.q.len() as u64;
            if !c.q.is_empty() {
                c.in_busy_list = true;
                self.busy_channels.push(ci);
            }
        }
        // NI attachments may have moved ports: re-mark every port that now
        // hosts an NI with pending work (stale entries prune lazily).
        self.ni_stream_flits = 0;
        for ni_id in 0..self.nis.len() {
            let n = &self.nis[ni_id];
            self.ni_stream_flits += n.cur.as_ref().map_or(0, NiStream::remaining);
            if n.cur.is_some() || !n.source_q.is_empty() {
                self.mark_ni_port_active(ni_id);
            }
        }
        self.recompute_static_profile();
        self.buffer_capacity = self.compute_buffer_capacity();
        self.stats.buffer_capacity = self.buffer_capacity;
        Ok(())
    }

    fn port_will_eject(&self, spec: &NetworkSpec, ri: usize, port: PortId) -> bool {
        spec.nis
            .iter()
            .any(|n| n.router.index() == ri && n.port == port)
    }

    // ---- Fault injection & recovery ----------------------------------

    fn channel_index(&self, key: ChannelKey) -> Option<usize> {
        self.channels.iter().position(|c| c.spec.key() == key)
    }

    /// Whether the channel with the given endpoints is marked faulted.
    pub fn channel_faulted(&self, key: ChannelKey) -> bool {
        self.faulted_keys.contains(&key)
    }

    /// Channel keys currently marked faulted, in spec order.
    pub fn faulted_channels(&self) -> Vec<ChannelKey> {
        self.spec
            .channels
            .iter()
            .map(|c| c.key())
            .filter(|k| self.faulted_keys.contains(k))
            .collect()
    }

    /// Whether the router has permanently failed.
    pub fn router_failed(&self, router: RouterId) -> bool {
        self.routers[router.index()].failed
    }

    /// Marks a channel faulted (`true`) or healed (`false`).
    ///
    /// A faulted channel accepts no new flits: VC and switch allocation
    /// skip it, so upstream traffic routed across it stalls in place (and
    /// waits out a transient fault). Everything already committed to the
    /// channel — flits on the wire plus every packet holding an output-VC
    /// allocation across it — is NACKed: all of the packet's flits are
    /// purged from the network and the reconstructed packets are returned,
    /// oldest id first, for the caller's retry policy. Purged packets
    /// count as [`NetStats::nacks`]. The fault flag survives
    /// [`reconfigure`](Self::reconfigure) (keyed by channel endpoints).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchChannel`] if no channel has these
    /// endpoints.
    pub fn set_channel_fault(
        &mut self,
        key: ChannelKey,
        faulted: bool,
    ) -> Result<Vec<Packet>, NetworkError> {
        let idx = self
            .channel_index(key)
            .ok_or(NetworkError::NoSuchChannel(key))?;
        if !faulted {
            self.faulted_keys.remove(&key);
            self.channels[idx].faulted = false;
            refresh_faulted_out(&mut self.routers, &self.channels);
            return Ok(Vec::new());
        }
        if !self.faulted_keys.insert(key) {
            return Ok(Vec::new()); // already faulted
        }
        self.channels[idx].faulted = true;
        self.routers[key.src.router.index()].faulted_out |= 1 << key.src.port.index();
        let mut ids: HashSet<u64> = self.channels[idx].q.iter().map(|(_, f)| f.packet).collect();
        // Packets holding an allocation across the channel may have flits
        // spread over the wire and the upstream router; NACK them whole.
        let src = key.src;
        let sri = src.router.index();
        let up_gv = self.lanes.gv(sri, src.port.index(), 0);
        let total_vcs = self.cfg.total_vcs();
        for a in self.lanes.alloc[up_gv..up_gv + total_vcs].iter().flatten() {
            let (pi, vi) = (a.0 as usize, a.1 as usize);
            if let Some(owner) = self.lanes.owner[self.lanes.gv(sri, pi, vi)] {
                ids.insert(owner);
            }
        }
        Ok(self.purge_packets(&ids))
    }

    /// Permanently fails a router: it is force-slept (it never wakes and
    /// its static power counts as off), injection through it stops, and
    /// every packet with flits buffered inside it, in flight on a wire
    /// into it, or mid-stream from one of its NIs is NACKed and returned
    /// (oldest id first). Channels touching the router are *not* faulted
    /// here — callers decide (a fault controller typically faults them
    /// all so neighbours stop routing toward the dead router).
    pub fn fail_router(&mut self, router: RouterId) -> Vec<Packet> {
        let ri = router.index();
        if self.routers[ri].failed {
            return Vec::new();
        }
        self.routers[ri].failed = true;
        self.routers[ri].sleeping = true;
        self.routers[ri].wake_at = u64::MAX;
        self.statics_dirty = true;
        let mut ids: HashSet<u64> = HashSet::new();
        let gv_lo = self.lanes.gv(ri, 0, 0);
        let gv_hi = gv_lo + self.lanes.n_ports(ri) * self.cfg.total_vcs();
        for gv in gv_lo..gv_hi {
            for k in 0..self.lanes.buf_len(gv) {
                ids.insert(self.lanes.flit_at(gv, k).packet);
            }
            if let Some(owner) = self.lanes.owner[gv] {
                ids.insert(owner);
            }
        }
        for c in &self.channels {
            if c.spec.dst.router == router {
                for (_, f) in &c.q {
                    ids.insert(f.packet);
                }
            }
        }
        for ni in &self.nis {
            if ni.spec.router == router {
                if let Some(cur) = &ni.cur {
                    ids.insert(cur.pkt.id);
                }
            }
        }
        self.purge_packets(&ids)
    }

    /// NACKs every packet that can no longer make progress: packets whose
    /// allocated route leads into a faulted channel, and head flits whose
    /// routing lookup fails (destination disconnected under the current
    /// tables). Returns the purged packets, oldest id first.
    ///
    /// A fault controller calls this each cycle while a permanent-fault
    /// reconfiguration drains, so traffic already committed toward a dead
    /// link cannot wedge the drain. It must *not* be called for transient
    /// faults — there, upstream packets simply wait for the link to heal.
    pub fn purge_blocked(&mut self) -> Vec<Packet> {
        let mut ids: HashSet<u64> = HashSet::new();
        let total_vcs = self.cfg.total_vcs();
        for ri in 0..self.routers.len() {
            for pi in 0..self.routers[ri].in_ports.len() {
                let gv0 = self.lanes.gv(ri, pi, 0);
                for vi in 0..total_vcs {
                    let gv = gv0 + vi;
                    let Some(front) = self.lanes.front(gv) else {
                        continue;
                    };
                    let blocked = match self.lanes.route(gv) {
                        Some(po) => self.routers[ri].out_ports[po.index()]
                            .channel
                            .is_some_and(|ch| self.channels[ch.index()].faulted),
                        None => {
                            front.pos.is_head()
                                && self
                                    .spec
                                    .tables
                                    .lookup(front.vnet, RouterId(ri as u16), front.dst)
                                    .is_none()
                        }
                    };
                    if blocked {
                        for k in 0..self.lanes.buf_len(gv) {
                            ids.insert(self.lanes.flit_at(gv, k).packet);
                        }
                        if let Some(owner) = self.lanes.owner[gv] {
                            ids.insert(owner);
                        }
                    }
                }
            }
        }
        self.purge_packets(&ids)
    }

    /// Removes every flit of each packet in `ids` from the network (wires,
    /// router buffers, NI mid-stream state), releases the allocations those
    /// packets held, recomputes all channel credits from the surviving
    /// occupancy, and returns one reconstructed [`Packet`] per purged id,
    /// oldest first. Each purged packet counts as a NACK.
    fn purge_packets(&mut self, ids: &HashSet<u64>) -> Vec<Packet> {
        if ids.is_empty() {
            return Vec::new();
        }
        let now = self.now;
        // Reconstructed packets live in flat slots parallel to a sorted
        // copy of `ids`: `binary_search` replaces hashing, and the final
        // collection comes out id-ordered by construction (the old hash
        // map needed a sort).
        let mut id_list: Vec<u64> = ids.iter().copied().collect();
        id_list.sort_unstable();
        let mut found: Vec<Option<Packet>> = vec![None; id_list.len()];
        fn note(found: &mut [Option<Packet>], id_list: &[u64], p: Packet) {
            if let Ok(k) = id_list.binary_search(&p.id) {
                found[k].get_or_insert(p);
            }
        }

        // Wires.
        let mut wire_removed = 0u64;
        for c in self.channels.iter_mut() {
            if c.q.iter().any(|(_, f)| ids.contains(&f.packet)) {
                let mut keep = VecDeque::with_capacity(c.q.len());
                for (t, f) in c.q.drain(..) {
                    if ids.contains(&f.packet) {
                        note(&mut found, &id_list, f.to_packet());
                        wire_removed += 1;
                    } else {
                        keep.push_back((t, f));
                    }
                }
                c.q = keep;
            }
        }
        self.wire_flits -= wire_removed;

        // Router input buffers and the allocations the packets held.
        let total_vcs = self.cfg.total_vcs();
        let mut keep: Vec<Flit> = Vec::new();
        for ri in 0..self.routers.len() {
            for pi in 0..self.routers[ri].in_ports.len() {
                let gp = self.lanes.gp(ri, pi);
                for vi in 0..total_vcs {
                    let gv = gp * total_vcs + vi;
                    let owner_purged = self.lanes.owner[gv].is_some_and(|o| ids.contains(&o));
                    if owner_purged {
                        let (route, out_vc) = (self.lanes.route(gv), self.lanes.out_vc(gv));
                        self.lanes.clear_alloc(gv);
                        self.lanes.owner[gv] = None;
                        if let (Some(po), Some(gvc)) = (route, out_vc) {
                            let out_gv = self.lanes.gv(ri, po.index(), gvc as usize);
                            let out_gp = self.lanes.gp(ri, po.index());
                            self.lanes.alloc[out_gv] = None;
                            self.lanes.alloc_mask[out_gp] &= !(1 << gvc);
                        }
                    }
                    let has_flits = (0..self.lanes.buf_len(gv))
                        .any(|k| ids.contains(&self.lanes.flit_at(gv, k).packet));
                    if has_flits {
                        keep.clear();
                        let mut removed = 0u32;
                        while let Some(f) = self.lanes.pop_front(gv) {
                            if ids.contains(&f.packet) {
                                note(&mut found, &id_list, f.to_packet());
                                removed += 1;
                            } else {
                                keep.push(f);
                            }
                        }
                        self.lanes.clear_buf(gv);
                        for &f in &keep {
                            self.lanes.push_back(gv, f);
                        }
                        self.routers[ri].flits -= removed;
                        self.occupied_flits -= removed as u64;
                        if keep.is_empty() {
                            self.lanes.occ[gp] &= !(1 << vi);
                        }
                    }
                }
            }
        }

        // NI mid-stream state.
        for ni_id in 0..self.nis.len() {
            let purged = self.nis[ni_id]
                .cur
                .as_ref()
                .is_some_and(|cur| ids.contains(&cur.pkt.id));
            if purged {
                if let Some(cur) = self.nis[ni_id].cur.take() {
                    note(&mut found, &id_list, cur.pkt);
                    self.ni_stream_flits -= cur.remaining();
                    let ri = self.nis[ni_id].spec.router.index();
                    let pi = self.nis[ni_id].spec.port.index();
                    let gv = self.lanes.gv(ri, pi, cur.vc as usize);
                    self.lanes.ni_lock[gv] = false;
                }
            }
        }

        // Credits are recomputed exactly from surviving wire + downstream
        // occupancy (as in reconfigure); pending returns would double-count.
        self.pending_credits.clear();
        let depth = self.cfg.vc_depth;
        for i in 0..self.channels.len() {
            let (src, dst) = (self.channels[i].spec.src, self.channels[i].spec.dst);
            let mut wire = vec![0u8; total_vcs];
            for (_, f) in &self.channels[i].q {
                wire[f.assigned_vc as usize] += 1;
            }
            let down_gv = self.lanes.gv(dst.router.index(), dst.port.index(), 0);
            let up_gv = self.lanes.gv(src.router.index(), src.port.index(), 0);
            for (v, &w) in wire.iter().enumerate() {
                self.lanes.credits[up_gv + v] =
                    depth.saturating_sub(w + self.lanes.len[down_gv + v]);
            }
        }
        self.lanes.rebuild_credit_zero();

        // `found` is parallel to the sorted `id_list`, so this is already
        // ascending by packet id — no sort needed.
        let packets: Vec<Packet> = found.into_iter().flatten().collect();
        self.stats.nacks += packets.len() as u64;
        self.totals.nacks += packets.len() as u64;
        if let Some(t) = self.tracer.as_mut() {
            for p in &packets {
                t.record(crate::trace::TraceEvent::Nacked {
                    packet: p.id,
                    cycle: now,
                });
            }
        }
        packets
    }

    /// Re-hands a NACKed packet to its source NI. Unlike
    /// [`inject`](Self::inject) the packet keeps its original
    /// `created_at` and is *not* counted as newly offered, so a fully
    /// recovered run still reports a delivery ratio of 1.0; it does count
    /// as a retry.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchNode`] if the source has no NI.
    pub fn inject_retry(&mut self, packet: Packet, attempt: u32) -> Result<(), NetworkError> {
        let ni = self
            .node_ni
            .get(packet.src.index())
            .copied()
            .flatten()
            .ok_or(NetworkError::NoSuchNode(packet.src))?;
        if let Some(t) = self.tracer.as_mut() {
            t.record(crate::trace::TraceEvent::Retried {
                packet: packet.id,
                cycle: self.now,
                attempt,
            });
        }
        self.nis[ni].source_q.push_back(packet);
        self.queued_packets += 1;
        self.stats.retries += 1;
        self.totals.retries += 1;
        self.mark_ni_port_active(ni);
        Ok(())
    }

    /// Records a packet dropped by the retry policy (budget exhausted or
    /// destination permanently disconnected).
    pub fn count_dropped(&mut self, packet: u64) {
        self.stats.drops += 1;
        self.totals.drops += 1;
        if let Some(t) = self.tracer.as_mut() {
            t.record(crate::trace::TraceEvent::Dropped {
                packet,
                cycle: self.now,
            });
        }
    }

    /// Empties a node's NI source queue (used when the node's router
    /// failed permanently), returning the removed packets in queue order.
    /// Nodes without an NI yield an empty vec.
    pub fn purge_ni_queue(&mut self, node: NodeId) -> Vec<Packet> {
        let Some(idx) = self.node_ni.get(node.index()).copied().flatten() else {
            return Vec::new();
        };
        let drained: Vec<Packet> = self.nis[idx].source_q.drain(..).collect();
        self.queued_packets -= drained.len() as u64;
        drained
    }

    /// Mutable access to the attached tracer; fault controllers record
    /// [`crate::trace::TraceEvent::FaultInjected`] through this.
    pub fn tracer_mut(&mut self) -> Option<&mut crate::trace::TraceBuffer> {
        self.tracer.as_mut()
    }

    // ------------------------------------------------------------------
    // Runtime health: invariant guards, stall introspection, snapshots
    // (see `crate::health`).
    // ------------------------------------------------------------------

    /// The invariant-guard mode this network runs with (resolved at
    /// construction from `ADAPTNOC_GUARDS` / [`SimConfig::guards`]).
    ///
    /// [`SimConfig::guards`]: crate::config::SimConfig
    pub fn guard_mode(&self) -> GuardMode {
        self.guard_mode
    }

    /// Overrides the guard mode. Tests use this to force [`GuardMode::Strict`]
    /// or — for deliberate-corruption tests — to pin a non-panicking mode
    /// regardless of the `ADAPTNOC_GUARDS` environment.
    pub fn set_guard_mode(&mut self, mode: GuardMode) {
        self.guard_mode = mode;
    }

    /// Violations found by the most recent guard sweep that found any
    /// (empty while the network has always checked clean).
    pub fn guard_violations(&self) -> &[InvariantViolation] {
        &self.last_violations
    }

    /// The live spec behind its shared handle (cheap clone; reconfiguration
    /// controllers snapshot this as a rollback target).
    pub fn spec_shared(&self) -> Arc<NetworkSpec> {
        Arc::clone(&self.spec)
    }

    /// Channels currently carrying flits on the wire, with their occupancy.
    pub fn channel_backlogs(&self) -> Vec<(ChannelKey, usize)> {
        self.channels
            .iter()
            .filter(|c| !c.q.is_empty())
            .map(|c| (c.spec.key(), c.q.len()))
            .collect()
    }

    /// NIs holding undelivered packets (queued or mid-stream), with their
    /// packet counts.
    pub fn ni_backlogs(&self) -> Vec<(NodeId, usize)> {
        self.nis
            .iter()
            .filter_map(|n| {
                let count = n.source_q.len() + usize::from(n.cur.is_some());
                (count > 0).then_some((n.spec.node, count))
            })
            .collect()
    }

    /// `(id, created_at)` of the oldest packet still in the network
    /// (buffers, wires, or NI queues), ties broken by lowest id. `None`
    /// when fully drained.
    pub fn oldest_in_flight(&self) -> Option<(u64, u64)> {
        let mut best: Option<(u64, u64)> = None;
        let mut consider = |created: u64, id: u64| match best {
            Some((bc, bi)) if (bc, bi) <= (created, id) => {}
            _ => best = Some((created, id)),
        };
        for gv in 0..self.lanes.len.len() {
            for k in 0..self.lanes.buf_len(gv) {
                let f = self.lanes.flit_at(gv, k);
                consider(f.created_at, f.packet);
            }
        }
        for c in &self.channels {
            for (_, f) in &c.q {
                consider(f.created_at, f.packet);
            }
        }
        for n in &self.nis {
            if let Some(cur) = &n.cur {
                consider(cur.pkt.created_at, cur.pkt.id);
            }
            for p in &n.source_q {
                consider(p.created_at, p.id);
            }
        }
        best.map(|(created, id)| (id, created))
    }

    /// A structural JSON snapshot of the non-quiet parts of the network:
    /// routers holding flits or in a non-nominal power state, channels with
    /// wire traffic or faults, and NIs with pending packets. The flight
    /// recorder embeds this in post-mortem dumps.
    pub fn snapshot(&self) -> Value {
        let mut routers = Vec::new();
        for (ri, r) in self.routers.iter().enumerate() {
            if r.flits == 0 && r.active && !r.sleeping && !r.failed {
                continue;
            }
            routers.push(Value::Object(vec![
                ("router".into(), Value::Number(ri as f64)),
                ("flits".into(), Value::Number(r.flits as f64)),
                ("active".into(), Value::Bool(r.active)),
                ("sleeping".into(), Value::Bool(r.sleeping)),
                ("failed".into(), Value::Bool(r.failed)),
            ]));
        }
        let mut channels = Vec::new();
        for c in &self.channels {
            if c.q.is_empty() && !c.faulted {
                continue;
            }
            channels.push(Value::Object(vec![
                (
                    "channel".into(),
                    Value::String(channel_label(&c.spec.key())),
                ),
                ("flits".into(), Value::Number(c.q.len() as f64)),
                ("faulted".into(), Value::Bool(c.faulted)),
            ]));
        }
        let mut nis = Vec::new();
        for n in &self.nis {
            if n.source_q.is_empty() && n.cur.is_none() && !n.paused {
                continue;
            }
            nis.push(Value::Object(vec![
                ("node".into(), Value::Number(n.spec.node.index() as f64)),
                ("queued".into(), Value::Number(n.source_q.len() as f64)),
                ("streaming".into(), Value::Bool(n.cur.is_some())),
                ("paused".into(), Value::Bool(n.paused)),
            ]));
        }
        Value::Object(vec![
            ("cycle".into(), Value::Number(self.now as f64)),
            ("in_flight".into(), Value::Number(self.in_flight() as f64)),
            (
                "buffered_flits".into(),
                Value::Number(self.occupied_flits as f64),
            ),
            ("wire_flits".into(), Value::Number(self.wire_flits as f64)),
            (
                "queued_packets".into(),
                Value::Number(self.queued_packets as f64),
            ),
            ("routers".into(), Value::Array(routers)),
            ("channels".into(), Value::Array(channels)),
            ("nis".into(), Value::Array(nis)),
        ])
    }

    /// Deliberately leaks one upstream credit on `key`/`vc` — a corruption
    /// hook for tests that must see the credit-conservation guard trip.
    /// Never called by the simulator itself.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::NoSuchChannel`] if the channel is absent.
    ///
    /// # Panics
    ///
    /// Panics if `vc` is out of range for the configuration.
    pub fn chaos_leak_credit(&mut self, key: ChannelKey, vc: u8) -> Result<(), NetworkError> {
        let ch = self
            .channels
            .iter()
            .position(|c| c.spec.key() == key)
            .ok_or(NetworkError::NoSuchChannel(key))?;
        let src = self.channels[ch].spec.src;
        let gv = self
            .lanes
            .gv(src.router.index(), src.port.index(), vc as usize);
        let c = &mut self.lanes.credits[gv];
        *c = c.saturating_sub(1);
        if *c == 0 {
            self.lanes.credit_zero[gv / self.lanes.total_vcs] |= 1 << (gv % self.lanes.total_vcs);
        }
        Ok(())
    }

    /// One guard sweep: count it, collect violations, record them as trace
    /// events, and either panic (strict mode) or retain them for
    /// [`guard_violations`](Self::guard_violations).
    fn run_guard_check(&mut self) {
        self.health.checks += 1;
        let violations = self.check_invariants();
        if violations.is_empty() {
            return;
        }
        self.health.violations += violations.len() as u64;
        if let Some(t) = self.tracer.as_mut() {
            for v in &violations {
                t.record(crate::trace::TraceEvent::GuardViolation {
                    cycle: self.now,
                    detail: v.to_string(),
                });
            }
        }
        let now = self.now;
        if let Some(t) = self.telem.as_mut() {
            let reg = t.registry_mut();
            for v in &violations {
                reg.event(
                    "guard.violation",
                    now,
                    &[("kind", &v.kind.to_string()), ("detail", &v.detail)],
                );
            }
        }
        if self.guard_mode == GuardMode::Strict {
            let joined = violations
                .iter()
                .map(InvariantViolation::to_string)
                .collect::<Vec<_>>()
                .join("\n  ");
            panic!("invariant violation(s) at cycle {}:\n  {joined}", self.now);
        }
        self.last_violations = violations;
    }

    /// Sweeps every invariant family once and returns the violations found
    /// (empty in a healthy network). Read-only and callable at any cycle
    /// boundary; the in-step guards use it, and tests may call it directly.
    pub fn check_invariants(&self) -> Vec<InvariantViolation> {
        let mut out = Vec::new();
        let depth = self.cfg.vc_depth as usize;
        let total_vcs = self.cfg.total_vcs();

        // Flit conservation and buffer-occupancy summaries: the incremental
        // counters must agree with a from-scratch recount.
        let mut buffered = 0u64;
        for (ri, r) in self.routers.iter().enumerate() {
            let mut router_flits = 0u32;
            for pi in 0..r.in_ports.len() {
                let gp = self.lanes.gp(ri, pi);
                for vi in 0..total_vcs {
                    let len = self.lanes.buf_len(gp * total_vcs + vi);
                    router_flits += len as u32;
                    if len > depth {
                        out.push(InvariantViolation::new(
                            InvariantKind::BufferOccupancy,
                            format!("R{ri}:p{pi} vc{vi} holds {len} flits, depth {depth}"),
                        ));
                    }
                    let bit = self.lanes.occ[gp] & (1 << vi) != 0;
                    if bit == (len == 0) {
                        out.push(InvariantViolation::new(
                            InvariantKind::BufferOccupancy,
                            format!("R{ri}:p{pi} vc{vi} occ bit {bit} with {len} buffered flits"),
                        ));
                    }
                }
            }
            if router_flits != r.flits {
                out.push(InvariantViolation::new(
                    InvariantKind::FlitConservation,
                    format!(
                        "R{ri} caches {} flits but its buffers hold {router_flits}",
                        r.flits
                    ),
                ));
            }
            buffered += router_flits as u64;
        }
        if buffered != self.occupied_flits {
            out.push(InvariantViolation::new(
                InvariantKind::FlitConservation,
                format!(
                    "network caches {} buffered flits, buffers hold {buffered}",
                    self.occupied_flits
                ),
            ));
        }
        let wire: u64 = self.channels.iter().map(|c| c.q.len() as u64).sum();
        if wire != self.wire_flits {
            out.push(InvariantViolation::new(
                InvariantKind::FlitConservation,
                format!(
                    "network caches {} wire flits, channels hold {wire}",
                    self.wire_flits
                ),
            ));
        }
        let stream: u64 = self
            .nis
            .iter()
            .map(|n| n.cur.as_ref().map_or(0, NiStream::remaining))
            .sum();
        if stream != self.ni_stream_flits {
            out.push(InvariantViolation::new(
                InvariantKind::FlitConservation,
                format!(
                    "network caches {} NI stream flits, NIs hold {stream}",
                    self.ni_stream_flits
                ),
            ));
        }
        let queued: u64 = self.nis.iter().map(|n| n.source_q.len() as u64).sum();
        if queued != self.queued_packets {
            out.push(InvariantViolation::new(
                InvariantKind::FlitConservation,
                format!(
                    "network caches {} queued packets, NI queues hold {queued}",
                    self.queued_packets
                ),
            ));
        }

        // Credit conservation per (channel, VC): upstream credits plus flits
        // on the wire, in the downstream buffer, and in pending credit
        // returns must equal the VC depth. Ports shared with NIs have no
        // credit loop and are exempt.
        for (ci, c) in self.channels.iter().enumerate() {
            let dst = c.spec.dst;
            let down = &self.routers[dst.router.index()].in_ports[dst.port.index()];
            if !down.nis.is_empty() {
                continue;
            }
            let up_gv = self
                .lanes
                .gv(c.spec.src.router.index(), c.spec.src.port.index(), 0);
            let down_gv = self.lanes.gv(dst.router.index(), dst.port.index(), 0);
            let mut wire_occ = vec![0u32; total_vcs];
            for (_, f) in &c.q {
                wire_occ[f.assigned_vc as usize] += 1;
            }
            let mut pending = vec![0u32; total_vcs];
            for &(ch, vc) in &self.pending_credits {
                if ch.index() == ci {
                    pending[vc as usize] += 1;
                }
            }
            for v in 0..total_vcs {
                let down_len = self.lanes.buf_len(down_gv + v) as u32;
                let sum =
                    self.lanes.credits[up_gv + v] as u32 + wire_occ[v] + down_len + pending[v];
                if sum != depth as u32 {
                    out.push(InvariantViolation::new(
                        InvariantKind::CreditConservation,
                        format!(
                            "{} vc{v}: credits {} + wire {} + downstream {} + pending {} != depth {depth}",
                            channel_label(&c.spec.key()),
                            self.lanes.credits[up_gv + v],
                            wire_occ[v],
                            down_len,
                            pending[v]
                        ),
                    ));
                }
            }
        }

        // Fault isolation: per-channel flags mirror the registry, and a
        // faulted channel never carries traffic.
        for c in &self.channels {
            let registered = self.faulted_keys.contains(&c.spec.key());
            if c.faulted != registered {
                out.push(InvariantViolation::new(
                    InvariantKind::FaultIsolation,
                    format!(
                        "{} fault flag {} disagrees with registry {registered}",
                        channel_label(&c.spec.key()),
                        c.faulted
                    ),
                ));
            }
            if c.faulted && !c.q.is_empty() {
                out.push(InvariantViolation::new(
                    InvariantKind::FaultIsolation,
                    format!(
                        "faulted channel {} carries {} flits",
                        channel_label(&c.spec.key()),
                        c.q.len()
                    ),
                ));
            }
        }
        // The per-router faulted-output bitmask (hot-loop cache) must agree
        // with the per-channel flags.
        let mut expected_mask = vec![0u32; self.routers.len()];
        for c in &self.channels {
            if c.faulted {
                expected_mask[c.spec.src.router.index()] |= 1 << c.spec.src.port.index();
            }
        }
        for (ri, r) in self.routers.iter().enumerate() {
            if r.faulted_out != expected_mask[ri] {
                out.push(InvariantViolation::new(
                    InvariantKind::FaultIsolation,
                    format!(
                        "R{ri} faulted-out mask {:#x} disagrees with channel flags {:#x}",
                        r.faulted_out, expected_mask[ri]
                    ),
                ));
            }
        }

        // Power gating and VC-allocation cross-links.
        for (ri, r) in self.routers.iter().enumerate() {
            if r.failed && !r.sleeping {
                out.push(InvariantViolation::new(
                    InvariantKind::PowerGating,
                    format!("R{ri} failed but not powered down"),
                ));
            }
            let dark = r.sleeping || r.failed;
            for po in 0..r.out_ports.len() {
                let out_gv0 = self.lanes.gv(ri, po, 0);
                // The VA candidate-mask fast path keys off `alloc_mask`; a
                // desync from the `alloc` slots would silently grant or
                // withhold VCs.
                let gp = self.lanes.gp(ri, po);
                let expect: u32 = (0..total_vcs)
                    .filter(|&gvc| self.lanes.alloc[out_gv0 + gvc].is_some())
                    .fold(0, |m, gvc| m | 1 << gvc);
                if self.lanes.alloc_mask[gp] != expect {
                    out.push(InvariantViolation::new(
                        InvariantKind::Allocation,
                        format!(
                            "R{ri} output p{po} alloc_mask {:#x} disagrees with alloc slots {expect:#x}",
                            self.lanes.alloc_mask[gp]
                        ),
                    ));
                }
                // Same contract for the zero-credit fast-path mask.
                let expect_zero: u32 = (0..total_vcs)
                    .filter(|&gvc| self.lanes.credits[out_gv0 + gvc] == 0)
                    .fold(0, |m, gvc| m | 1 << gvc);
                if self.lanes.credit_zero[gp] != expect_zero {
                    out.push(InvariantViolation::new(
                        InvariantKind::Allocation,
                        format!(
                            "R{ri} output p{po} credit_zero {:#x} disagrees with credits {expect_zero:#x}",
                            self.lanes.credit_zero[gp]
                        ),
                    ));
                }
                for gvc in 0..total_vcs {
                    let Some((pi, vi)) = self.lanes.alloc[out_gv0 + gvc] else {
                        continue;
                    };
                    if dark {
                        out.push(InvariantViolation::new(
                            InvariantKind::PowerGating,
                            format!("R{ri} is dark but output p{po} vc{gvc} is allocated"),
                        ));
                    }
                    let in_gv = self.lanes.gv(ri, pi as usize, vi as usize);
                    if self.lanes.out_vc(in_gv) != Some(gvc as u8)
                        || self.lanes.route(in_gv) != Some(PortId(po as u8))
                        || self.lanes.owner[in_gv].is_none()
                    {
                        out.push(InvariantViolation::new(
                            InvariantKind::Allocation,
                            format!(
                                "R{ri} output p{po} vc{gvc} allocated to p{pi}/vc{vi}, which \
                                 holds route {:?} out_vc {:?} owner {:?}",
                                self.lanes.route(in_gv),
                                self.lanes.out_vc(in_gv),
                                self.lanes.owner[in_gv]
                            ),
                        ));
                    }
                }
            }
            for (pi, ip) in r.in_ports.iter().enumerate() {
                let gv0 = self.lanes.gv(ri, pi, 0);
                for vi in 0..total_vcs {
                    let gv = gv0 + vi;
                    if self.lanes.route(gv).is_some() && self.lanes.owner[gv].is_none() {
                        out.push(InvariantViolation::new(
                            InvariantKind::Allocation,
                            format!("R{ri}:p{pi} vc{vi} routed without an owner"),
                        ));
                    }
                    if let Some(gvc) = self.lanes.out_vc(gv) {
                        let Some(po) = self.lanes.route(gv) else {
                            out.push(InvariantViolation::new(
                                InvariantKind::Allocation,
                                format!("R{ri}:p{pi} vc{vi} holds out_vc {gvc} without a route"),
                            ));
                            continue;
                        };
                        let back = self.lanes.alloc[self.lanes.gv(ri, po.index(), gvc as usize)];
                        if back != Some((pi as u8, vi as u8)) {
                            out.push(InvariantViolation::new(
                                InvariantKind::Allocation,
                                format!(
                                    "R{ri}:p{pi} vc{vi} claims output {po} vc{gvc}, whose \
                                     allocation is {back:?}"
                                ),
                            ));
                        }
                    }
                    if self.lanes.ni_lock[gv] {
                        let held = ip
                            .nis
                            .iter()
                            .any(|&ni| matches!(&self.nis[ni].cur, Some(c) if c.vc as usize == vi));
                        if !held {
                            out.push(InvariantViolation::new(
                                InvariantKind::NiLock,
                                format!("R{ri}:p{pi} vc{vi} locked with no NI streaming into it"),
                            ));
                        }
                    }
                    // A VC parked off the scan mask must be exactly a
                    // credit-blocked streaming VC: allocated, and its
                    // (non-ejection) output VC out of credits. Anything
                    // else must stay visited or the scan would stall it.
                    let in_gp = self.lanes.gp(ri, pi);
                    let parked = self.lanes.occ[in_gp] & !self.lanes.scan[in_gp] & (1 << vi) != 0;
                    if parked {
                        let blocked = match (self.lanes.route(gv), self.lanes.out_vc(gv)) {
                            (Some(po), Some(gvc)) => {
                                let out_gp = self.lanes.gp(ri, po.index());
                                r.eject_out & (1 << po.index()) == 0
                                    && self.lanes.credit_zero[out_gp] & (1 << gvc) != 0
                            }
                            _ => false,
                        };
                        if !blocked {
                            out.push(InvariantViolation::new(
                                InvariantKind::Allocation,
                                format!(
                                    "R{ri}:p{pi} vc{vi} parked off the scan mask but not \
                                     credit-blocked (route {:?} out_vc {:?})",
                                    self.lanes.route(gv),
                                    self.lanes.out_vc(gv)
                                ),
                            ));
                        }
                    }
                }
            }
        }
        for n in &self.nis {
            if let Some(cur) = &n.cur {
                let gv = self
                    .lanes
                    .gv(n.spec.router.index(), n.spec.port.index(), cur.vc as usize);
                if !self.lanes.ni_lock[gv] {
                    out.push(InvariantViolation::new(
                        InvariantKind::NiLock,
                        format!(
                            "NI of {} streams into vc{} without holding the lock",
                            n.spec.node, cur.vc
                        ),
                    ));
                }
            }
        }

        // Worklist coverage: busy state implies membership, and flags agree
        // with list contents (stale members with a set flag are legal;
        // they are pruned lazily).
        let mut listed = vec![0u32; self.channels.len()];
        for &ci in &self.busy_channels {
            match listed.get_mut(ci) {
                Some(n) => *n += 1,
                None => out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!("busy-channel list names channel {ci}, out of range"),
                )),
            }
        }
        for (ci, c) in self.channels.iter().enumerate() {
            if c.in_busy_list != (listed[ci] == 1) {
                out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!(
                        "channel {ci} busy flag {} but listed {} time(s)",
                        c.in_busy_list, listed[ci]
                    ),
                ));
            }
            if !c.q.is_empty() && !c.in_busy_list {
                out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!(
                        "channel {} carries flits but is missing from the busy worklist",
                        channel_label(&c.spec.key())
                    ),
                ));
            }
        }
        let mut busy = vec![0u32; self.routers.len()];
        for &ri in &self.busy_routers {
            match busy.get_mut(ri) {
                Some(n) => *n += 1,
                None => out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!("busy-router list names router {ri}, out of range"),
                )),
            }
        }
        let mut waking = vec![0u32; self.routers.len()];
        for &ri in &self.pending_wakes {
            match waking.get_mut(ri) {
                Some(n) => *n += 1,
                None => out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!("wake list names router {ri}, out of range"),
                )),
            }
        }
        for (ri, r) in self.routers.iter().enumerate() {
            if r.in_busy_list != (busy[ri] == 1) {
                out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!(
                        "R{ri} busy flag {} but listed {} time(s)",
                        r.in_busy_list, busy[ri]
                    ),
                ));
            }
            if r.flits > 0 && !r.in_busy_list {
                out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!(
                        "R{ri} buffers {} flits but is missing from the busy worklist",
                        r.flits
                    ),
                ));
            }
            if r.in_wake_list != (waking[ri] == 1) {
                out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!(
                        "R{ri} wake flag {} but listed {} time(s)",
                        r.in_wake_list, waking[ri]
                    ),
                ));
            }
            if r.sleeping && !r.failed && r.wake_at != u64::MAX && !r.in_wake_list {
                out.push(InvariantViolation::new(
                    InvariantKind::Worklist,
                    format!(
                        "R{ri} wakes at {} but is missing from the wake list",
                        r.wake_at
                    ),
                ));
            }
            for (pi, ip) in r.in_ports.iter().enumerate() {
                if !ip.in_inj_list && self.port_has_ni_work(ri, pi) {
                    out.push(InvariantViolation::new(
                        InvariantKind::Worklist,
                        format!(
                            "R{ri}:p{pi} has pending NI work but is missing from the \
                             injection worklist"
                        ),
                    ));
                }
            }
        }
        let mut inj = std::collections::HashMap::new();
        for &key in &self.active_inj {
            *inj.entry(key).or_insert(0u32) += 1;
        }
        for (ri, r) in self.routers.iter().enumerate() {
            for (pi, ip) in r.in_ports.iter().enumerate() {
                let n = inj.remove(&((ri << 8) | pi)).unwrap_or(0);
                if ip.in_inj_list != (n == 1) {
                    out.push(InvariantViolation::new(
                        InvariantKind::Worklist,
                        format!(
                            "R{ri}:p{pi} injection flag {} but listed {n} time(s)",
                            ip.in_inj_list
                        ),
                    ));
                }
            }
        }
        for key in inj.keys() {
            out.push(InvariantViolation::new(
                InvariantKind::Worklist,
                format!("injection list entry {key:#x} names no port"),
            ));
        }

        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LOCAL_PORT;
    use crate::spec::{mesh_channel, NiSpec, PortRef};

    /// A 1xN row of routers, bidirectionally chained, one node per router.
    fn row_spec(n: usize) -> NetworkSpec {
        let mut s = NetworkSpec::new(n, n, 2);
        for i in 0..n - 1 {
            let east = PortRef::new(RouterId(i as u16), PortId(0));
            let west = PortRef::new(RouterId(i as u16 + 1), PortId(1));
            s.add_channel(mesh_channel(east, west));
            s.add_channel(mesh_channel(west, east));
        }
        for i in 0..n {
            s.add_ni(NiSpec::local(
                NodeId(i as u16),
                RouterId(i as u16),
                LOCAL_PORT,
            ));
        }
        for v in 0..2u8 {
            for r in 0..n {
                for d in 0..n {
                    let port = if d == r {
                        LOCAL_PORT
                    } else if d > r {
                        PortId(0)
                    } else {
                        PortId(1)
                    };
                    s.tables
                        .set(Vnet(v), RouterId(r as u16), NodeId(d as u16), port);
                }
            }
        }
        s
    }

    fn net(n: usize) -> Network {
        Network::new(row_spec(n), SimConfig::baseline()).unwrap()
    }

    #[test]
    fn single_packet_delivery_and_latency() {
        let mut net = net(4);
        net.inject(Packet::request(1, NodeId(0), NodeId(3), 7))
            .unwrap();
        net.run(60);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.id, 1);
        assert_eq!(d[0].packet.tag, 7);
        assert_eq!(d[0].hops, 3);
        // Zero-load: 3 hops * (Tr + Tl) + final router Tr + injection.
        assert!(
            d[0].network_latency() >= 9,
            "latency {}",
            d[0].network_latency()
        );
        assert!(
            d[0].network_latency() <= 16,
            "latency {}",
            d[0].network_latency()
        );
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.unroutable_events(), 0);
    }

    #[test]
    fn self_delivery_zero_hops() {
        let mut net = net(2);
        net.inject(Packet::request(1, NodeId(0), NodeId(0), 0))
            .unwrap();
        net.run(20);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].hops, 0);
    }

    #[test]
    fn multiflit_packet_arrives_intact() {
        let mut net = net(3);
        net.inject(Packet::reply(9, NodeId(0), NodeId(2), 5))
            .unwrap();
        net.run(60);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].packet.len, crate::config::DATA_PACKET_FLITS);
        assert_eq!(d[0].packet.kind, crate::flit::PacketKind::Reply);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn many_packets_all_delivered_exactly_once() {
        let mut net = net(5);
        let mut id = 0u64;
        for src in 0..5u16 {
            for dst in 0..5u16 {
                if src == dst {
                    continue;
                }
                id += 1;
                net.inject(Packet::request(id, NodeId(src), NodeId(dst), 0))
                    .unwrap();
            }
        }
        net.run(500);
        let d = net.drain_delivered();
        assert_eq!(d.len(), id as usize);
        let mut ids: Vec<u64> = d.iter().map(|x| x.packet.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), id as usize);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.unroutable_events(), 0);
    }

    #[test]
    fn bypass_reduces_injection_latency() {
        let base = {
            let mut n = Network::new(row_spec(2), SimConfig::baseline()).unwrap();
            n.inject(Packet::request(1, NodeId(0), NodeId(1), 0))
                .unwrap();
            n.run(40);
            n.drain_delivered()[0].network_latency()
        };
        let bypass = {
            let mut cfg = SimConfig::baseline();
            cfg.injection_bypass = true;
            let mut n = Network::new(row_spec(2), cfg).unwrap();
            n.inject(Packet::request(1, NodeId(0), NodeId(1), 0))
                .unwrap();
            n.run(40);
            assert!(n.totals().events.bypass_injections > 0);
            n.drain_delivered()[0].network_latency()
        };
        assert!(bypass < base, "bypass {bypass} should beat base {base}");
    }

    #[test]
    fn credits_are_conserved() {
        let mut net = net(4);
        for i in 0..20 {
            net.inject(Packet::reply(i, NodeId(0), NodeId(3), 0))
                .unwrap();
        }
        net.run(1000);
        assert_eq!(net.in_flight(), 0);
        // After drain, every output port's credits must be back at depth.
        let depth = net.cfg.vc_depth;
        let total_vcs = net.cfg.total_vcs();
        for (ri, r) in net.routers.iter().enumerate() {
            for (po, op) in r.out_ports.iter().enumerate() {
                let gv0 = net.lanes.gv(ri, po, 0);
                if op.channel.is_some() {
                    for &c in &net.lanes.credits[gv0..gv0 + total_vcs] {
                        assert_eq!(c, depth);
                    }
                }
                for a in &net.lanes.alloc[gv0..gv0 + total_vcs] {
                    assert!(a.is_none());
                }
            }
        }
    }

    #[test]
    fn contention_is_fair_and_lossless() {
        // Nodes 0 and 1 both hammer node 3 through the shared row.
        let mut net = net(4);
        let mut id = 0;
        for _ in 0..50 {
            id += 1;
            net.inject(Packet::request(id, NodeId(0), NodeId(3), 0))
                .unwrap();
            id += 1;
            net.inject(Packet::request(id, NodeId(1), NodeId(3), 0))
                .unwrap();
        }
        net.run(2000);
        assert_eq!(net.drain_delivered().len(), 100);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn epoch_report_resets_window() {
        let mut net = net(3);
        net.inject(Packet::request(1, NodeId(0), NodeId(2), 0))
            .unwrap();
        net.run(50);
        let e1 = net.take_epoch();
        assert_eq!(e1.stats.packets, 1);
        assert_eq!(e1.stats.cycles, 50);
        assert!(e1.events.buffer_writes > 0);
        net.run(10);
        let e2 = net.take_epoch();
        assert_eq!(e2.stats.packets, 0);
        assert_eq!(e2.stats.cycles, 10);
        // Totals keep accumulating.
        assert_eq!(net.totals().stats.packets, 1);
        assert_eq!(net.totals().stats.cycles, 60);
    }

    #[test]
    fn static_cycles_track_router_counts() {
        let mut net = net(3);
        net.run(10);
        let e = net.take_epoch();
        assert_eq!(e.static_cycles.cycles, 10);
        assert_eq!(e.static_cycles.router_on_cycles, 30);
        assert_eq!(e.static_cycles.router_off_cycles, 0);
        assert!(e.static_cycles.mesh_link_mm_cycles > 0.0);
    }

    #[test]
    fn sleeping_router_stalls_and_wakes_on_arrival() {
        let mut net = net(3);
        assert!(net.try_sleep_router(RouterId(1)));
        assert!(net.is_sleeping(RouterId(1)));
        net.inject(Packet::request(1, NodeId(0), NodeId(2), 0))
            .unwrap();
        net.run(200);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        assert!(!net.is_sleeping(RouterId(1)), "arrival should wake router");
        // Wake-up penalty should be visible vs a fully-on network.
        let mut net2 = net2_helper();
        net2.inject(Packet::request(1, NodeId(0), NodeId(2), 0))
            .unwrap();
        net2.run(200);
        let d2 = net2.drain_delivered();
        assert!(d[0].network_latency() > d2[0].network_latency());
    }

    fn net2_helper() -> Network {
        Network::new(row_spec(3), SimConfig::baseline()).unwrap()
    }

    #[test]
    fn sleep_refused_when_flits_buffered() {
        let mut net = net(3);
        net.inject(Packet::reply(1, NodeId(0), NodeId(2), 0))
            .unwrap();
        net.run(4);
        // Router 0 or 1 should be holding flits now.
        let holding: Vec<u16> = (0..3u16)
            .filter(|&r| net.router_flits(RouterId(r)) > 0)
            .collect();
        assert!(!holding.is_empty());
        for r in holding {
            assert!(!net.try_sleep_router(RouterId(r)));
        }
    }

    #[test]
    fn router_config_stall_delays_traffic() {
        let mut net = net(3);
        net.begin_router_config(RouterId(1), 50);
        net.inject(Packet::request(1, NodeId(0), NodeId(2), 0))
            .unwrap();
        net.run(40);
        assert!(
            net.drain_delivered().is_empty(),
            "stalled router should hold traffic"
        );
        net.run(60);
        assert_eq!(net.drain_delivered().len(), 1);
    }

    #[test]
    fn vc_mask_restricts_injection() {
        let mut net = net(2);
        // Restrict request vnet at router 0 to VC 0 only.
        net.set_vc_mask(RouterId(0), Vnet::REQUEST, 0b001);
        for i in 0..10 {
            net.inject(Packet::request(i, NodeId(0), NodeId(1), 0))
                .unwrap();
        }
        net.run(300);
        assert_eq!(net.drain_delivered().len(), 10);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one VC")]
    fn vc_mask_cannot_disable_all() {
        let mut net = net(2);
        net.set_vc_mask(RouterId(0), Vnet::REQUEST, 0);
    }

    #[test]
    fn inject_unknown_node_errors() {
        let mut net = net(2);
        let err = net.inject(Packet::request(1, NodeId(9), NodeId(0), 0));
        assert!(matches!(err, Err(NetworkError::NoSuchNode(_))));
    }

    #[test]
    fn install_tables_reroutes_future_packets() {
        let mut net = net(3);
        // Break the route 0 -> 2, then restore it.
        let mut broken = net.spec().tables.clone();
        broken.clear(Vnet::REQUEST, RouterId(0), NodeId(2));
        net.install_tables(broken);
        net.inject(Packet::request(1, NodeId(0), NodeId(2), 0))
            .unwrap();
        net.run(30);
        assert!(net.unroutable_events() > 0);
        assert!(net.drain_delivered().is_empty());
        let fixed = row_spec(3).tables;
        net.install_tables(fixed);
        net.run(30);
        assert_eq!(net.drain_delivered().len(), 1);
    }

    #[test]
    fn reconfigure_identity_is_noop() {
        let mut net = net(4);
        net.inject(Packet::request(1, NodeId(0), NodeId(3), 0))
            .unwrap();
        net.run(3);
        let spec = net.spec().clone();
        net.reconfigure(spec).unwrap();
        net.run(60);
        assert_eq!(net.drain_delivered().len(), 1);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn reconfigure_add_express_link_shortens_path() {
        let mut net = net(4);
        net.inject(Packet::request(1, NodeId(0), NodeId(3), 0))
            .unwrap();
        net.run(100);
        let base_hops = net.drain_delivered()[0].hops;
        assert_eq!(base_hops, 3);

        // Add an express channel R0 -> R3 on spare ports (2 = north used as
        // express here) and route through it.
        let mut spec = net.spec().clone();
        spec.add_channel(crate::spec::ChannelSpec {
            src: PortRef::new(RouterId(0), PortId(2)),
            dst: PortRef::new(RouterId(3), PortId(2)),
            latency: 1,
            length_mm: 3.0,
            dateline: false,
            dim_y: false,
            kind: ChannelKind::Adaptable,
        });
        spec.tables
            .set(Vnet::REQUEST, RouterId(0), NodeId(3), PortId(2));
        net.reconfigure(spec).unwrap();
        net.inject(Packet::request(2, NodeId(0), NodeId(3), 0))
            .unwrap();
        net.run(100);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].hops, 1, "express link should bypass routers");
        assert!(net.totals().events.mux_traversals > 0);
    }

    #[test]
    fn reconfigure_remove_busy_channel_rejected() {
        let mut net = net(4);
        // Saturate with traffic, then try to remove a middle channel.
        for i in 0..20 {
            net.inject(Packet::reply(i, NodeId(0), NodeId(3), 0))
                .unwrap();
        }
        net.run(6);
        let mut spec = net.spec().clone();
        // Remove channel R1->R2 (east out of router 1) and reroute via
        // nothing (break route so validation passes with cleared entries).
        let key = spec
            .channels
            .iter()
            .position(|c| {
                c.src == PortRef::new(RouterId(1), PortId(0))
                    && c.dst == PortRef::new(RouterId(2), PortId(1))
            })
            .unwrap();
        spec.channels.remove(key);
        for v in 0..2u8 {
            spec.tables.clear(Vnet(v), RouterId(0), NodeId(2));
            spec.tables.clear(Vnet(v), RouterId(0), NodeId(3));
            spec.tables.clear(Vnet(v), RouterId(1), NodeId(2));
            spec.tables.clear(Vnet(v), RouterId(1), NodeId(3));
        }
        let err = net.reconfigure(spec);
        assert!(
            matches!(err, Err(NetworkError::ChannelBusy(_))),
            "got {err:?}"
        );
    }

    #[test]
    fn reconfigure_preserves_source_queues() {
        let mut net = net(3);
        for i in 0..5 {
            net.inject(Packet::request(i, NodeId(0), NodeId(2), 0))
                .unwrap();
        }
        // Immediately reconfigure (identity) before anything injects.
        let spec = net.spec().clone();
        net.reconfigure(spec).unwrap();
        net.run(200);
        assert_eq!(net.drain_delivered().len(), 5);
    }

    #[test]
    fn reconfigure_rejects_shape_changes() {
        let mut net = net(3);
        let bad = row_spec(4);
        assert!(matches!(net.reconfigure(bad), Err(NetworkError::Shape(_))));
    }

    #[test]
    fn concentration_shared_port_arbitrates_fairly() {
        // Two nodes share router 0's local port; both send to node 2.
        let mut s = NetworkSpec::new(2, 3, 2);
        let r0e = PortRef::new(RouterId(0), PortId(0));
        let r1w = PortRef::new(RouterId(1), PortId(1));
        s.add_channel(mesh_channel(r0e, r1w));
        s.add_channel(mesh_channel(r1w, r0e));
        s.add_ni(NiSpec::local(NodeId(0), RouterId(0), LOCAL_PORT));
        s.add_ni(NiSpec::concentrated(
            NodeId(1),
            RouterId(0),
            LOCAL_PORT,
            1.0,
        ));
        s.add_ni(NiSpec::local(NodeId(2), RouterId(1), LOCAL_PORT));
        for v in 0..2u8 {
            s.tables.set(Vnet(v), RouterId(0), NodeId(0), LOCAL_PORT);
            s.tables.set(Vnet(v), RouterId(0), NodeId(1), LOCAL_PORT);
            s.tables.set(Vnet(v), RouterId(0), NodeId(2), PortId(0));
            s.tables.set(Vnet(v), RouterId(1), NodeId(2), LOCAL_PORT);
            s.tables.set(Vnet(v), RouterId(1), NodeId(0), PortId(1));
            s.tables.set(Vnet(v), RouterId(1), NodeId(1), PortId(1));
        }
        let mut net = Network::new(s, SimConfig::baseline()).unwrap();
        let mut id = 0;
        for _ in 0..25 {
            id += 1;
            net.inject(Packet::request(id, NodeId(0), NodeId(2), 0))
                .unwrap();
            id += 1;
            net.inject(Packet::request(id, NodeId(1), NodeId(2), 0))
                .unwrap();
        }
        net.run(1000);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 50);
        assert!(
            net.totals().events.mux_traversals > 0,
            "concentration counts mux events"
        );
    }

    #[test]
    fn dateline_switches_vc_class() {
        // Two routers with a dateline channel between them; verify traffic
        // still flows (class-1 VCs exist thanks to vc_split).
        let mut s = row_spec(2);
        s.channels[0].dateline = true;
        for r in s.routers.iter_mut() {
            r.vc_split = Some(1); // VC0 = class 0, VC1.. = class 1
        }
        let mut net = Network::new(s, SimConfig::baseline()).unwrap();
        for i in 0..10 {
            net.inject(Packet::request(i, NodeId(0), NodeId(1), 0))
                .unwrap();
        }
        net.run(300);
        assert_eq!(net.drain_delivered().len(), 10);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn queuing_latency_grows_under_overload() {
        let mut net = net(2);
        for i in 0..200 {
            net.inject(Packet::reply(i, NodeId(0), NodeId(1), 0))
                .unwrap();
        }
        net.run(4000);
        let d = net.drain_delivered();
        assert_eq!(d.len(), 200);
        // Later packets should have queued far longer than early ones.
        let early = d[..10].iter().map(|x| x.queuing_latency()).max().unwrap();
        let late = d[190..].iter().map(|x| x.queuing_latency()).min().unwrap();
        assert!(late > early, "late {late} early {early}");
    }

    fn key_between(net: &Network, src: RouterId, dst: RouterId) -> ChannelKey {
        net.spec()
            .channels
            .iter()
            .find(|c| c.src.router == src && c.dst.router == dst)
            .map(|c| c.key())
            .expect("row spec has this channel")
    }

    #[test]
    fn transient_link_fault_stalls_then_delivers() {
        let mut net = net(4);
        for i in 1..=6 {
            net.inject(Packet::reply(i, NodeId(0), NodeId(3), 0))
                .unwrap();
        }
        net.run(5);
        let key = key_between(&net, RouterId(1), RouterId(2));
        let nacked = net.set_channel_fault(key, true).unwrap();
        assert!(net.channel_faulted(key));
        // While the link is down, nothing crosses it; upstream traffic waits.
        net.run(100);
        assert_eq!(net.drain_delivered().len(), 0);
        assert!(net.in_flight() > 0);
        // Heal, re-inject the NACKed packets, and everything arrives.
        net.set_channel_fault(key, false).unwrap();
        assert!(!net.channel_faulted(key));
        for (a, p) in nacked.into_iter().enumerate() {
            net.inject_retry(p, a as u32 + 1).unwrap();
        }
        net.run(800);
        assert_eq!(net.drain_delivered().len(), 6);
        assert_eq!(net.in_flight(), 0);
        let t = net.totals().stats;
        assert_eq!(t.nacks, t.retries);
        assert_eq!(t.drops, 0);
        assert!((t.delivery_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn link_fault_nacks_whole_packets() {
        let mut net = net(3);
        // Multi-flit packets so some are mid-stream across the link.
        for i in 1..=4 {
            net.inject(Packet::reply(i, NodeId(0), NodeId(2), 0))
                .unwrap();
        }
        net.run(12);
        let key = key_between(&net, RouterId(0), RouterId(1));
        let nacked = net.set_channel_fault(key, true).unwrap();
        // Every NACKed packet comes back whole and exactly once.
        let mut ids: Vec<u64> = nacked.iter().map(|p| p.id).collect();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
        for p in &nacked {
            assert_eq!(p.len, crate::config::DATA_PACKET_FLITS);
            assert_eq!(p.src, NodeId(0));
        }
        // Faulting again is idempotent.
        assert_eq!(net.set_channel_fault(key, true).unwrap().len(), 0);
        // Flit conservation: remaining in-flight + delivered + NACKed
        // accounts for everything offered.
        net.run(400);
        let delivered = net.drain_delivered().len();
        let undeliverable = net.in_flight() > 0; // packets stuck behind the dead link
        assert!(delivered + n <= 4 + n);
        assert!(undeliverable || delivered + n >= 4);
    }

    #[test]
    fn failed_router_purges_and_goes_dark() {
        let mut net = net(4);
        for i in 1..=8 {
            net.inject(Packet::reply(i, NodeId(0), NodeId(3), 0))
                .unwrap();
        }
        net.run(10);
        let nacked = net.fail_router(RouterId(2));
        assert!(net.router_failed(RouterId(2)));
        assert!(net.is_sleeping(RouterId(2)));
        assert_eq!(net.router_flits(RouterId(2)), 0);
        // It never wakes, even if asked.
        net.wake_router(RouterId(2));
        net.run(50);
        assert!(net.is_sleeping(RouterId(2)));
        // Repeat fail is a no-op.
        assert_eq!(net.fail_router(RouterId(2)).len(), 0);
        let _ = nacked;
    }

    #[test]
    fn purge_blocked_reaps_traffic_stuck_at_dead_link() {
        let mut net = net(4);
        for i in 1..=10 {
            net.inject(Packet::reply(i, NodeId(0), NodeId(3), 0))
                .unwrap();
        }
        net.run(8);
        let key = key_between(&net, RouterId(2), RouterId(3));
        let mut nacked = net.set_channel_fault(key, true).unwrap();
        // Let upstream traffic pile up against the fault, then reap it.
        let mut guard = 0;
        while net.in_flight() > 0 {
            net.step();
            nacked.extend(net.purge_blocked());
            // Packets still queued at the source NI can't make progress
            // either once everything routed is reaped.
            if net.in_flight() == net.ni_queue_len(NodeId(0)) as u64 {
                nacked.extend(net.purge_ni_queue(NodeId(0)));
            }
            guard += 1;
            assert!(guard < 2_000, "purge_blocked failed to drain");
        }
        let delivered = net.drain_delivered().len();
        let mut ids: Vec<u64> = nacked.iter().map(|p| p.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            delivered + ids.len(),
            10,
            "every packet delivered or NACKed"
        );
        // All channels are quiescent after the reap.
        for c in net.spec().channels.clone() {
            assert!(net.channel_quiescent(c.key()));
        }
    }

    #[test]
    fn fault_flag_survives_reconfigure() {
        let mut net = net(3);
        let key = key_between(&net, RouterId(0), RouterId(1));
        net.set_channel_fault(key, true).unwrap();
        net.reconfigure(row_spec(3)).unwrap();
        assert!(net.channel_faulted(key));
        // The flag still blocks traffic after the swap.
        net.inject(Packet::request(1, NodeId(0), NodeId(2), 0))
            .unwrap();
        net.run(100);
        assert_eq!(net.drain_delivered().len(), 0);
        net.set_channel_fault(key, false).unwrap();
        net.run(100);
        assert_eq!(net.drain_delivered().len(), 1);
    }

    #[test]
    fn fault_on_unknown_channel_errors() {
        let mut net = net(2);
        let bogus = ChannelKey {
            src: PortRef::new(RouterId(0), PortId(7)),
            dst: PortRef::new(RouterId(1), PortId(7)),
        };
        assert_eq!(
            net.set_channel_fault(bogus, true),
            Err(NetworkError::NoSuchChannel(bogus))
        );
    }

    #[test]
    fn retry_preserves_delivery_ratio_accounting() {
        let mut net = net(2);
        net.inject(Packet::request(1, NodeId(0), NodeId(1), 0))
            .unwrap();
        net.run(3);
        let key = key_between(&net, RouterId(0), RouterId(1));
        let nacked = net.set_channel_fault(key, true).unwrap();
        net.set_channel_fault(key, false).unwrap();
        for p in nacked {
            net.inject_retry(p, 1).unwrap();
        }
        net.run(100);
        let t = net.totals().stats;
        assert_eq!(t.packets_offered, 1, "retries are not newly offered");
        assert_eq!(t.packets, 1);
        net.count_dropped(99);
        assert_eq!(net.totals().stats.drops, 1);
    }

    #[test]
    fn network_error_display_nonempty() {
        let errs: Vec<NetworkError> = vec![
            NetworkError::Config("x".into()),
            NetworkError::Mismatch("y".into()),
            NetworkError::Shape("z".into()),
            NetworkError::ChannelBusy(ChannelKey {
                src: PortRef::new(RouterId(0), PortId(0)),
                dst: PortRef::new(RouterId(1), PortId(1)),
            }),
            NetworkError::RouterBusy(RouterId(0)),
            NetworkError::NiBusy(NodeId(0)),
            NetworkError::NoSuchNode(NodeId(0)),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Packets and flits.
//!
//! Endpoints inject [`Packet`]s; the network interface serializes them into
//! [`Flit`]s which travel through routers and are reassembled at the
//! destination NI. Every flit carries a copy of the (small) packet metadata
//! so that routers can make routing decisions without a side table.

use crate::ids::{NodeId, Vnet};

/// Sentinel for [`Flit::la_port`]: no lookahead route is carried (the
/// upstream resolver found no table entry, or the flit predates the
/// lookahead pipeline). Route computation falls back to a table walk.
pub const LA_NONE: u8 = u8::MAX;

/// The semantic class of a packet; used for traffic accounting and for the
/// RL state's "number of coherence packets / data packets" attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PacketKind {
    /// A memory read/write request towards an MC or a cache slice (1 flit).
    Request,
    /// A data reply carrying a cache line (multi-flit).
    Reply,
    /// A coherence control message between cores (1 flit).
    Coherence,
}

impl PacketKind {
    /// Whether this packet carries data (multi-flit) as opposed to control.
    pub fn is_data(self) -> bool {
        matches!(self, PacketKind::Reply)
    }
}

/// A packet as injected by an endpoint node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Globally unique packet id (assigned by the caller; the workload layer
    /// uses a monotonically increasing counter).
    pub id: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Virtual network the packet travels on.
    pub vnet: Vnet,
    /// Packet length in flits (>= 1).
    pub len: u8,
    /// Semantic class for accounting.
    pub kind: PacketKind,
    /// Opaque correlation tag; the workload layer uses it to match replies
    /// to outstanding requests.
    pub tag: u64,
    /// Cycle at which the packet was handed to the NI (set by the network on
    /// injection via [`Network::inject`](crate::network::Network::inject)).
    pub created_at: u64,
}

impl Packet {
    /// Creates a request packet (1 flit, request vnet).
    pub fn request(id: u64, src: NodeId, dst: NodeId, tag: u64) -> Self {
        Packet {
            id,
            src,
            dst,
            vnet: Vnet::REQUEST,
            len: crate::config::CONTROL_PACKET_FLITS,
            kind: PacketKind::Request,
            tag,
            created_at: 0,
        }
    }

    /// Creates a data reply packet (multi-flit, reply vnet).
    pub fn reply(id: u64, src: NodeId, dst: NodeId, tag: u64) -> Self {
        Packet {
            id,
            src,
            dst,
            vnet: Vnet::REPLY,
            len: crate::config::DATA_PACKET_FLITS,
            kind: PacketKind::Reply,
            tag,
            created_at: 0,
        }
    }

    /// Creates a coherence control packet (1 flit, request vnet).
    pub fn coherence(id: u64, src: NodeId, dst: NodeId, tag: u64) -> Self {
        Packet {
            id,
            src,
            dst,
            vnet: Vnet::REQUEST,
            len: crate::config::CONTROL_PACKET_FLITS,
            kind: PacketKind::Coherence,
            tag,
            created_at: 0,
        }
    }
}

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitPos {
    /// First flit of a multi-flit packet; carries routing information.
    Head,
    /// Interior flit.
    Body,
    /// Last flit; releases VC allocations as it drains.
    Tail,
    /// Single-flit packet (head and tail at once).
    Single,
}

impl FlitPos {
    /// Whether this flit performs route computation / VC allocation.
    pub fn is_head(self) -> bool {
        matches!(self, FlitPos::Head | FlitPos::Single)
    }

    /// Whether this flit releases the VC when it drains.
    pub fn is_tail(self) -> bool {
        matches!(self, FlitPos::Tail | FlitPos::Single)
    }

    /// The flit position for flit `seq` of a packet of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= len` or `len == 0`.
    pub fn of(seq: u8, len: u8) -> FlitPos {
        assert!(len >= 1, "packet length must be >= 1");
        assert!(seq < len, "flit sequence out of range");
        match (seq, len) {
            (0, 1) => FlitPos::Single,
            (0, _) => FlitPos::Head,
            (s, l) if s + 1 == l => FlitPos::Tail,
            _ => FlitPos::Body,
        }
    }
}

/// A flow-control unit traversing the network. `Copy` so the simulator's
/// data-oriented buffer slab (see `crate::soa`) can move flits between
/// slots without clone calls on the hot path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flit {
    /// Id of the packet this flit belongs to.
    pub packet: u64,
    /// Position within the packet.
    pub pos: FlitPos,
    /// Sequence number within the packet (0-based).
    pub seq: u8,
    /// Packet length in flits.
    pub pkt_len: u8,
    /// Source endpoint of the packet.
    pub src: NodeId,
    /// Destination endpoint of the packet.
    pub dst: NodeId,
    /// Virtual network.
    pub vnet: Vnet,
    /// Semantic class of the packet.
    pub kind: PacketKind,
    /// Correlation tag copied from the packet.
    pub tag: u64,
    /// Dateline VC class: 0 before crossing a dateline channel, 1 after a
    /// torus wrap (Sec. II-C3, reset per dimension), or the sticky
    /// [`crate::spec::CLASS_INTERCHIP`] after a chip boundary crossing.
    pub vc_class: u8,
    /// Dimension of the last channel traversed (0 = X, 1 = Y,
    /// [`crate::spec::DIM_NONE`] before the first hop); used for the
    /// per-dimension dateline class reset.
    pub last_dim: u8,
    /// The downstream VC (global index) assigned by the upstream VA stage;
    /// meaningful while the flit is on a channel.
    pub assigned_vc: u8,
    /// Earliest cycle at which this flit may win switch allocation at the
    /// router currently buffering it (models the `T_r` pipeline).
    pub ready_at: u64,
    /// Number of router-to-router channel traversals so far.
    pub hops: u16,
    /// Cycle the packet was created (copied from the packet).
    pub created_at: u64,
    /// Cycle the head flit entered the source router's input buffer.
    pub injected_at: u64,
    /// Lookahead route: the output port this head flit will request at the
    /// router it is travelling toward, pre-resolved one hop upstream from
    /// the routing tables (or at the NI for the first hop). [`LA_NONE`]
    /// when no lookahead is carried; only meaningful on head flits (body
    /// and tail inherit the head's route decision). Valid only while
    /// `la_epoch` matches the network's current table epoch.
    pub la_port: u8,
    /// The routing-table epoch `la_port` was resolved against. The network
    /// bumps its epoch on every table swap (`install_tables`,
    /// `reconfigure`), which atomically invalidates every in-flight
    /// lookahead decision; a mismatch makes RC re-walk the tables.
    pub la_epoch: u32,
}

impl Flit {
    /// Builds the `seq`-th flit of `packet`.
    ///
    /// # Panics
    ///
    /// Panics if `seq >= packet.len`.
    pub fn of_packet(packet: &Packet, seq: u8) -> Flit {
        Flit {
            packet: packet.id,
            pos: FlitPos::of(seq, packet.len),
            seq,
            pkt_len: packet.len,
            src: packet.src,
            dst: packet.dst,
            vnet: packet.vnet,
            kind: packet.kind,
            tag: packet.tag,
            vc_class: 0,
            last_dim: crate::spec::DIM_NONE,
            assigned_vc: 0,
            ready_at: 0,
            hops: 0,
            created_at: packet.created_at,
            injected_at: 0,
            la_port: LA_NONE,
            la_epoch: 0,
        }
    }

    /// Reconstructs the packet metadata carried by this flit.
    pub fn to_packet(&self) -> Packet {
        Packet {
            id: self.packet,
            src: self.src,
            dst: self.dst,
            vnet: self.vnet,
            len: self.pkt_len,
            kind: self.kind,
            tag: self.tag,
            created_at: self.created_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_positions_for_multiflit_packet() {
        assert_eq!(FlitPos::of(0, 4), FlitPos::Head);
        assert_eq!(FlitPos::of(1, 4), FlitPos::Body);
        assert_eq!(FlitPos::of(2, 4), FlitPos::Body);
        assert_eq!(FlitPos::of(3, 4), FlitPos::Tail);
        assert_eq!(FlitPos::of(0, 1), FlitPos::Single);
    }

    #[test]
    #[should_panic(expected = "flit sequence out of range")]
    fn flit_position_out_of_range_panics() {
        let _ = FlitPos::of(4, 4);
    }

    #[test]
    fn head_and_tail_classification() {
        assert!(FlitPos::Head.is_head());
        assert!(FlitPos::Single.is_head());
        assert!(!FlitPos::Body.is_head());
        assert!(!FlitPos::Tail.is_head());
        assert!(FlitPos::Tail.is_tail());
        assert!(FlitPos::Single.is_tail());
        assert!(!FlitPos::Head.is_tail());
    }

    #[test]
    fn packet_constructors_use_expected_vnets() {
        let rq = Packet::request(1, NodeId(0), NodeId(5), 42);
        assert_eq!(rq.vnet, Vnet::REQUEST);
        assert_eq!(rq.len, 1);
        let rp = Packet::reply(2, NodeId(5), NodeId(0), 42);
        assert_eq!(rp.vnet, Vnet::REPLY);
        assert!(rp.len > 1);
        assert!(rp.kind.is_data());
        let co = Packet::coherence(3, NodeId(1), NodeId(2), 0);
        assert_eq!(co.vnet, Vnet::REQUEST);
        assert!(!co.kind.is_data());
    }

    #[test]
    fn flit_roundtrips_packet_metadata() {
        let mut p = Packet::reply(7, NodeId(3), NodeId(9), 11);
        p.created_at = 123;
        let f = Flit::of_packet(&p, p.len - 1);
        assert_eq!(f.pos, FlitPos::Tail);
        assert_eq!(f.to_packet(), p);
    }

    #[test]
    fn flits_of_a_packet_cover_all_positions_once() {
        let p = Packet::reply(1, NodeId(0), NodeId(1), 0);
        let flits: Vec<Flit> = (0..p.len).map(|s| Flit::of_packet(&p, s)).collect();
        assert_eq!(flits.len(), p.len as usize);
        assert_eq!(flits.iter().filter(|f| f.pos.is_head()).count(), 1);
        assert_eq!(flits.iter().filter(|f| f.pos.is_tail()).count(), 1);
    }
}

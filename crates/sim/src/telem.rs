//! The simulator's telemetry harness: pre-interned metric handles and the
//! per-cycle sampling state that [`Network`](crate::network::Network)
//! drives.
//!
//! The network holds an `Option<Box<SimTelemetry>>`: `None` under
//! [`TelemetryMode::Off`], so every hot-path instrumentation site costs
//! exactly one branch when telemetry is disabled (the property pinned by
//! `tests/telemetry_equivalence.rs` and the `telemetry_overhead`
//! microbench in `adaptnoc-bench`).
//!
//! Counters, gauges, histograms and events are *exact* in every active
//! mode. Only the wall-clock stage spans are sampled: every cycle under
//! [`TelemetryMode::Strict`], every `n`-th cycle under
//! [`TelemetryMode::Sampled`]. Span durations are wall-clock and thus
//! nondeterministic; everything else in the registry is a pure function
//! of the simulation and is byte-identical across runs.
//!
//! The full metric catalog (names, types, labels, units, flush cadence)
//! is documented in `docs/OBSERVABILITY.md` at the repository root.

use crate::stats::{Delivered, EpochReport};
use adaptnoc_telemetry::{CounterId, GaugeId, HistogramId, Registry, SpanId, TelemetryMode};

/// A hot simulator stage timed by a span (see
/// [`SimTelemetry::record_stage_ns`]). The stage structure follows
/// `Network::step`: route compute and VC allocation run fused (RC+VA),
/// as do switch allocation, switch traversal and ejection (SA+ST).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Channel deliveries: flits leaving wires into downstream buffers.
    Link,
    /// NI injection: flits entering the network from source queues.
    NiInject,
    /// Route compute + VC allocation across busy routers.
    RcVa,
    /// Switch allocation + traversal + ejection across busy routers.
    SaSt,
    /// Router-stage sink merge: applying deferred counters, credits, traces
    /// and deliveries after the banded RC/VA/SA/ST kernels finish.
    Merge,
}

/// Pre-interned metric handles plus sampling state. One per network.
#[derive(Debug, Clone)]
pub struct SimTelemetry {
    mode: TelemetryMode,
    interval: u32,
    sample_now: bool,
    reg: Registry,
    c_packets: CounterId,
    c_flits: CounterId,
    c_offered: CounterId,
    c_nacks: CounterId,
    c_retries: CounterId,
    c_drops: CounterId,
    c_by_kind: [CounterId; 3],
    c_health_checks: CounterId,
    c_health_violations: CounterId,
    c_epochs: CounterId,
    g_net_lat: GaugeId,
    g_queue_lat: GaugeId,
    g_throughput: GaugeId,
    g_buf_util: GaugeId,
    g_in_flight: GaugeId,
    g_health_interval: GaugeId,
    g_offered_rate: GaugeId,
    g_accepted_rate: GaugeId,
    g_source_queue: GaugeId,
    g_lat_p50: GaugeId,
    g_lat_p95: GaugeId,
    g_lat_p99: GaugeId,
    g_lat_p999: GaugeId,
    h_net_lat: HistogramId,
    h_queue_lat: HistogramId,
    h_hops: HistogramId,
    s_link: SpanId,
    s_inject: SpanId,
    s_rc_va: SpanId,
    s_sa_st: SpanId,
    s_merge: SpanId,
}

impl SimTelemetry {
    /// Creates the harness and interns the whole simulator metric catalog
    /// (so hot-path recording never touches the intern map).
    pub fn new(mode: TelemetryMode) -> Self {
        let mut reg = Registry::new(mode);
        let c_packets = reg.counter(
            "adaptnoc_sim_packets_total",
            "Packets delivered end-to-end.",
            "packets",
            &[],
        );
        let c_flits = reg.counter(
            "adaptnoc_sim_flits_total",
            "Flits delivered end-to-end.",
            "flits",
            &[],
        );
        let c_offered = reg.counter(
            "adaptnoc_sim_packets_offered_total",
            "Packets injected into NI source queues.",
            "packets",
            &[],
        );
        let c_nacks = reg.counter(
            "adaptnoc_sim_nacks_total",
            "Packets NACKed back to their source NI by a fault.",
            "packets",
            &[],
        );
        let c_retries = reg.counter(
            "adaptnoc_sim_retries_total",
            "Packet re-injections after a NACK.",
            "packets",
            &[],
        );
        let c_drops = reg.counter(
            "adaptnoc_sim_drops_total",
            "Packets dropped after exhausting their retry budget.",
            "packets",
            &[],
        );
        let kind_counter = |reg: &mut Registry, kind: &str| {
            reg.counter(
                "adaptnoc_sim_kind_packets_total",
                "Packets delivered by protocol kind.",
                "packets",
                &[("kind", kind)],
            )
        };
        let c_by_kind = [
            kind_counter(&mut reg, "request"),
            kind_counter(&mut reg, "reply"),
            kind_counter(&mut reg, "coherence"),
        ];
        let c_health_checks = reg.counter(
            "adaptnoc_sim_health_checks_total",
            "Invariant-guard sweeps executed.",
            "sweeps",
            &[],
        );
        let c_health_violations = reg.counter(
            "adaptnoc_sim_health_violations_total",
            "Invariant violations detected (see the paired sampling-interval gauge: under GuardMode::Sampled(n) only every n-th cycle is swept).",
            "violations",
            &[],
        );
        let c_epochs = reg.counter(
            "adaptnoc_sim_epochs_total",
            "Epoch windows flushed via take_epoch.",
            "epochs",
            &[],
        );
        let g_net_lat = reg.gauge(
            "adaptnoc_sim_epoch_network_latency_cycles",
            "Mean network latency over the last flushed epoch.",
            "cycles",
            &[],
        );
        let g_queue_lat = reg.gauge(
            "adaptnoc_sim_epoch_queuing_latency_cycles",
            "Mean NI queuing latency over the last flushed epoch.",
            "cycles",
            &[],
        );
        let g_throughput = reg.gauge(
            "adaptnoc_sim_epoch_throughput_flits_per_cycle",
            "Accepted throughput over the last flushed epoch.",
            "flits/cycle",
            &[],
        );
        let g_buf_util = reg.gauge(
            "adaptnoc_sim_epoch_buffer_utilization",
            "Mean input-buffer utilization over the last flushed epoch.",
            "ratio",
            &[],
        );
        let g_in_flight = reg.gauge(
            "adaptnoc_sim_in_flight_packets",
            "Packets in flight at the last epoch flush.",
            "packets",
            &[],
        );
        let g_health_interval = reg.gauge(
            "adaptnoc_sim_health_sample_interval_cycles",
            "Guard sweep cadence the violation counts were collected under (0 = guards off, 1 = every cycle).",
            "cycles",
            &[],
        );
        let g_offered_rate = reg.gauge(
            "adaptnoc_sim_epoch_offered_packets_per_cycle",
            "Offered load over the last flushed epoch (packets entering NI source queues per cycle).",
            "packets/cycle",
            &[],
        );
        let g_accepted_rate = reg.gauge(
            "adaptnoc_sim_epoch_accepted_packets_per_cycle",
            "Accepted load over the last flushed epoch (packets delivered end-to-end per cycle).",
            "packets/cycle",
            &[],
        );
        let g_source_queue = reg.gauge(
            "adaptnoc_sim_epoch_source_queue_packets",
            "Mean NI source-queue depth over the last flushed epoch (grows without bound past saturation in open-loop runs).",
            "packets",
            &[],
        );
        let quantile_gauge = |reg: &mut Registry, name: &str, which: &str| {
            reg.gauge(
                name,
                &format!(
                    "{which} total packet latency (creation to ejection) over the last flushed epoch, interpolated from the log2-bucket histogram."
                ),
                "cycles",
                &[],
            )
        };
        let g_lat_p50 = quantile_gauge(
            &mut reg,
            "adaptnoc_sim_epoch_packet_latency_p50_cycles",
            "Median",
        );
        let g_lat_p95 = quantile_gauge(
            &mut reg,
            "adaptnoc_sim_epoch_packet_latency_p95_cycles",
            "95th-percentile",
        );
        let g_lat_p99 = quantile_gauge(
            &mut reg,
            "adaptnoc_sim_epoch_packet_latency_p99_cycles",
            "99th-percentile",
        );
        let g_lat_p999 = quantile_gauge(
            &mut reg,
            "adaptnoc_sim_epoch_packet_latency_p999_cycles",
            "99.9th-percentile",
        );
        let h_net_lat = reg.histogram(
            "adaptnoc_sim_packet_network_latency_cycles",
            "Per-packet network latency (injection to ejection).",
            "cycles",
            &[],
        );
        let h_queue_lat = reg.histogram(
            "adaptnoc_sim_packet_queuing_latency_cycles",
            "Per-packet NI queuing latency (creation to injection).",
            "cycles",
            &[],
        );
        let h_hops = reg.histogram(
            "adaptnoc_sim_packet_hops",
            "Per-packet router-to-router channel traversals.",
            "hops",
            &[],
        );
        let s_link = reg.span(
            "adaptnoc_sim_stage_link_seconds",
            "Link-traversal stage (channel deliveries) time per sampled cycle.",
            &[],
        );
        let s_inject = reg.span(
            "adaptnoc_sim_stage_ni_inject_seconds",
            "NI injection stage (incl. first-hop lookahead route resolution) time per sampled cycle.",
            &[],
        );
        let s_rc_va = reg.span(
            "adaptnoc_sim_stage_rc_va_seconds",
            "Route-compute (lookahead consume) + candidate-mask VC-allocation stage time per sampled cycle.",
            &[],
        );
        let s_sa_st = reg.span(
            "adaptnoc_sim_stage_sa_st_seconds",
            "Switch-allocation + traversal + ejection stage (incl. next-hop lookahead route resolution) time per sampled cycle.",
            &[],
        );
        let s_merge = reg.span(
            "adaptnoc_sim_stage_merge_seconds",
            "Router-stage sink merge (deferred counters/credits/traces) time per sampled cycle.",
            &[],
        );
        SimTelemetry {
            mode,
            interval: mode.interval(),
            sample_now: false,
            reg,
            c_packets,
            c_flits,
            c_offered,
            c_nacks,
            c_retries,
            c_drops,
            c_by_kind,
            c_health_checks,
            c_health_violations,
            c_epochs,
            g_net_lat,
            g_queue_lat,
            g_throughput,
            g_buf_util,
            g_in_flight,
            g_health_interval,
            g_offered_rate,
            g_accepted_rate,
            g_source_queue,
            g_lat_p50,
            g_lat_p95,
            g_lat_p99,
            g_lat_p999,
            h_net_lat,
            h_queue_lat,
            h_hops,
            s_link,
            s_inject,
            s_rc_va,
            s_sa_st,
            s_merge,
        }
    }

    /// The collection mode.
    pub fn mode(&self) -> TelemetryMode {
        self.mode
    }

    /// Rolls the sampling state to `now` and reports whether this cycle's
    /// stage spans should be timed.
    #[inline]
    pub fn begin_cycle(&mut self, now: u64) -> bool {
        self.sample_now = match self.interval {
            0 => false,
            1 => true,
            n => now.is_multiple_of(n as u64),
        };
        self.sample_now
    }

    /// Whether the current cycle is being span-timed.
    #[inline]
    pub fn sampling_now(&self) -> bool {
        self.sample_now
    }

    /// The underlying registry (for export or ad-hoc reads).
    pub fn registry(&self) -> &Registry {
        &self.reg
    }

    /// Mutable registry access, used by the fault/guard/RL layers to
    /// intern and record their own metrics alongside the simulator's.
    pub fn registry_mut(&mut self) -> &mut Registry {
        &mut self.reg
    }

    /// Records a delivered packet into the latency/hop histograms.
    #[inline]
    pub fn on_delivered(&mut self, d: &Delivered) {
        self.reg.observe(self.h_net_lat, d.network_latency());
        self.reg.observe(self.h_queue_lat, d.queuing_latency());
        self.reg.observe(self.h_hops, d.hops as u64);
    }

    /// Records one timed stage duration for a sampled cycle.
    #[inline]
    pub fn record_stage_ns(&mut self, stage: Stage, ns: u64) {
        let id = match stage {
            Stage::Link => self.s_link,
            Stage::NiInject => self.s_inject,
            Stage::RcVa => self.s_rc_va,
            Stage::SaSt => self.s_sa_st,
            Stage::Merge => self.s_merge,
        };
        self.reg.record_span_ns(id, ns);
    }

    /// Folds one epoch report into the registry: counters advance by the
    /// epoch's deltas, gauges take the epoch's averages, and the health
    /// counters carry their sampling interval so exported violation counts
    /// are never misread as exhaustive.
    pub fn flush_epoch(&mut self, report: &EpochReport, in_flight: u64) {
        let s = &report.stats;
        self.reg.inc(self.c_epochs);
        self.reg.add(self.c_packets, s.packets);
        self.reg.add(self.c_flits, s.flits);
        self.reg.add(self.c_offered, s.packets_offered);
        self.reg.add(self.c_nacks, s.nacks);
        self.reg.add(self.c_retries, s.retries);
        self.reg.add(self.c_drops, s.drops);
        for (k, id) in self.c_by_kind.iter().enumerate() {
            self.reg.add(*id, s.by_kind[k]);
        }
        self.reg.add(self.c_health_checks, report.health.checks);
        self.reg
            .add(self.c_health_violations, report.health.violations);
        self.reg.set(self.g_net_lat, s.avg_network_latency());
        self.reg.set(self.g_queue_lat, s.avg_queuing_latency());
        self.reg
            .set(self.g_throughput, s.throughput_flits_per_cycle());
        self.reg.set(self.g_buf_util, s.avg_buffer_utilization());
        self.reg.set(self.g_in_flight, in_flight as f64);
        self.reg
            .set(self.g_health_interval, report.health.sample_interval as f64);
        let cycles = s.cycles.max(1) as f64;
        self.reg
            .set(self.g_offered_rate, s.packets_offered as f64 / cycles);
        self.reg
            .set(self.g_accepted_rate, s.packets as f64 / cycles);
        self.reg.set(self.g_source_queue, s.avg_injection_queue());
        self.reg.set(self.g_lat_p50, s.p50_latency());
        self.reg.set(self.g_lat_p95, s.p95_latency());
        self.reg.set(self.g_lat_p99, s.p99_latency());
        self.reg.set(self.g_lat_p999, s.p999_latency());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::health::HealthCounts;
    use crate::stats::NetStats;

    #[test]
    fn sampling_cadence_matches_mode() {
        let mut t = SimTelemetry::new(TelemetryMode::Strict);
        assert!(t.begin_cycle(1) && t.begin_cycle(2));
        let mut t = SimTelemetry::new(TelemetryMode::Sampled(4));
        let hits: Vec<bool> = (1..=8).map(|c| t.begin_cycle(c)).collect();
        assert_eq!(
            hits,
            vec![false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn flush_epoch_accumulates_counters_and_sets_gauges() {
        let mut t = SimTelemetry::new(TelemetryMode::Strict);
        let report = EpochReport {
            stats: NetStats {
                packets: 10,
                flits: 20,
                packets_offered: 12,
                network_latency_sum: 100,
                cycles: 50,
                ..Default::default()
            },
            health: HealthCounts {
                checks: 5,
                violations: 1,
                sample_interval: 1024,
            },
            ..Default::default()
        };
        t.flush_epoch(&report, 2);
        t.flush_epoch(&report, 3);
        let snap = t.registry().snapshot();
        let find_c = |name: &str| {
            snap.counters
                .iter()
                .find(|c| c.name == name)
                .map(|c| c.value)
                .unwrap_or_else(|| panic!("counter {name} missing"))
        };
        let find_g = |name: &str| {
            snap.gauges
                .iter()
                .find(|g| g.name == name)
                .map(|g| g.value)
                .unwrap_or_else(|| panic!("gauge {name} missing"))
        };
        assert_eq!(find_c("adaptnoc_sim_packets_total"), 20);
        assert_eq!(find_c("adaptnoc_sim_epochs_total"), 2);
        assert_eq!(find_c("adaptnoc_sim_health_violations_total"), 2);
        assert_eq!(find_g("adaptnoc_sim_in_flight_packets"), 3.0);
        assert_eq!(find_g("adaptnoc_sim_health_sample_interval_cycles"), 1024.0);
        assert_eq!(find_g("adaptnoc_sim_epoch_network_latency_cycles"), 10.0);
    }

    #[test]
    fn delivered_packets_land_in_histograms() {
        use crate::flit::Packet;
        use crate::ids::NodeId;
        let mut t = SimTelemetry::new(TelemetryMode::Sampled(8));
        let mut p = Packet::request(1, NodeId(0), NodeId(1), 0);
        p.created_at = 2;
        t.on_delivered(&Delivered {
            packet: p,
            injected_at: 4,
            ejected_at: 20,
            hops: 3,
        });
        let snap = t.registry().snapshot();
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "adaptnoc_sim_packet_network_latency_cycles")
            .expect("latency histogram");
        assert_eq!((h.count, h.sum), (1, 16));
    }
}

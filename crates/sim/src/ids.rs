//! Strongly-typed identifiers for simulator entities.
//!
//! Routers, endpoint nodes (cores / memory controllers), router ports,
//! channels, and virtual networks all get newtype ids so they can never be
//! confused with each other or with raw indices.

use std::fmt;

/// Identifier of a router in the network (dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouterId(pub u16);

/// Identifier of an endpoint node (core, memory controller, cache slice).
///
/// Nodes attach to routers through network interfaces; a node id is what
/// packets carry as source and destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

/// Index of a port on a particular router.
///
/// By convention ports `0..4` of a 5-port mesh router are the
/// `+x`, `-x`, `+y`, `-y` directions (see [`Direction`]) and port 4 is the
/// local injection/ejection port, but the simulator itself places no meaning
/// on port indices: connectivity is entirely described by the
/// [`NetworkSpec`](crate::spec::NetworkSpec).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PortId(pub u8);

/// Identifier of a channel (unidirectional link) in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

/// A virtual network. The evaluation uses two: requests and replies, which
/// breaks protocol (request/reply) deadlock as described in Sec. II-C3 of the
/// paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vnet(pub u8);

impl Vnet {
    /// The request virtual network (coherence requests, read/write requests).
    pub const REQUEST: Vnet = Vnet(0);
    /// The reply virtual network (data replies from MCs and caches).
    pub const REPLY: Vnet = Vnet(1);
}

/// Mesh port direction convention used by the topology builders.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// Towards increasing x (paper's `+x`).
    East,
    /// Towards decreasing x (paper's `-x`).
    West,
    /// Towards increasing y (paper's `+y`).
    North,
    /// Towards decreasing y (paper's `-y`).
    South,
}

impl Direction {
    /// All four directions in port-index order.
    pub const ALL: [Direction; 4] = [
        Direction::East,
        Direction::West,
        Direction::North,
        Direction::South,
    ];

    /// The conventional port index for this direction on a 5-port router.
    pub fn port(self) -> PortId {
        PortId(match self {
            Direction::East => 0,
            Direction::West => 1,
            Direction::North => 2,
            Direction::South => 3,
        })
    }

    /// The opposite direction.
    pub fn opposite(self) -> Direction {
        match self {
            Direction::East => Direction::West,
            Direction::West => Direction::East,
            Direction::North => Direction::South,
            Direction::South => Direction::North,
        }
    }

    /// Whether this direction moves along the x dimension.
    pub fn is_x(self) -> bool {
        matches!(self, Direction::East | Direction::West)
    }
}

/// The conventional local (injection/ejection) port on a 5-port router.
pub const LOCAL_PORT: PortId = PortId(4);

impl fmt::Display for RouterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl fmt::Display for Vnet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Vnet::REQUEST => write!(f, "vnet-req"),
            Vnet::REPLY => write!(f, "vnet-rep"),
            Vnet(n) => write!(f, "vnet{n}"),
        }
    }
}

impl From<u16> for RouterId {
    fn from(v: u16) -> Self {
        RouterId(v)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl RouterId {
    /// The router id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl NodeId {
    /// The node id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl PortId {
    /// The port id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ChannelId {
    /// The channel id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl Vnet {
    /// The vnet id as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_opposites_are_involutive() {
        for d in Direction::ALL {
            assert_eq!(d.opposite().opposite(), d);
            assert_ne!(d.opposite(), d);
        }
    }

    #[test]
    fn direction_ports_are_distinct_and_below_local() {
        let mut seen = std::collections::HashSet::new();
        for d in Direction::ALL {
            assert!(d.port().0 < LOCAL_PORT.0);
            assert!(seen.insert(d.port()));
        }
    }

    #[test]
    fn x_dimension_classification() {
        assert!(Direction::East.is_x());
        assert!(Direction::West.is_x());
        assert!(!Direction::North.is_x());
        assert!(!Direction::South.is_x());
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(RouterId(3).to_string(), "R3");
        assert_eq!(NodeId(7).to_string(), "N7");
        assert_eq!(PortId(2).to_string(), "p2");
        assert_eq!(ChannelId(9).to_string(), "ch9");
        assert_eq!(Vnet::REQUEST.to_string(), "vnet-req");
        assert_eq!(Vnet::REPLY.to_string(), "vnet-rep");
        assert_eq!(Vnet(5).to_string(), "vnet5");
    }
}

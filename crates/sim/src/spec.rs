//! Declarative network description.
//!
//! A [`NetworkSpec`] fully describes a network configuration: which routers
//! are powered, how ports are wired by channels, where network interfaces
//! attach, and the routing tables. Topology builders (crate
//! `adaptnoc-topology`) compile topologies into specs; the Adapt-NoC control
//! layer reconfigures a running [`Network`](crate::network::Network) by
//! diffing one spec against the next.

use crate::ids::{ChannelId, NodeId, PortId, RouterId};
use crate::routing::RoutingTables;
use std::collections::HashMap;

/// Physical class of a channel; used for power accounting and wiring-budget
/// analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelKind {
    /// A regular nearest-neighbour mesh link.
    Mesh,
    /// A segment of an adaptable link (Sec. II-A2): may span several tiles,
    /// placed on high metal layers.
    Adaptable,
    /// A reversed adaptable-link segment (its quad-state repeaters run
    /// backwards; used by the tree topology, Sec. II-B3).
    AdaptableReversed,
    /// A concentration link connecting a core to a non-adjacent router
    /// (Sec. II-A, Fig. 2b).
    Concentration,
    /// A dedicated express link (used by the Shortcut and Flattened
    /// Butterfly baselines, which do not use adaptable links).
    Express,
    /// A serialized inter-chip link of a chiplet fabric: crosses a chip
    /// boundary through SerDes + package substrate wires instead of on-chip
    /// metal. Its `latency` carries the serialization + flight time; the
    /// SerDes is pipelined, so sustained bandwidth stays one flit per cycle
    /// on the parallel side.
    InterChip,
}

impl ChannelKind {
    /// Whether this channel is realized on the adaptable-link wires.
    pub fn is_adaptable(self) -> bool {
        matches!(
            self,
            ChannelKind::Adaptable | ChannelKind::AdaptableReversed
        )
    }
}

/// One end of a channel: a (router, port) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The router.
    pub router: RouterId,
    /// The port on that router.
    pub port: PortId,
}

impl PortRef {
    /// Creates a port reference.
    pub fn new(router: RouterId, port: PortId) -> Self {
        PortRef { router, port }
    }
}

/// A unidirectional channel between two router ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelSpec {
    /// Source (upstream) end.
    pub src: PortRef,
    /// Destination (downstream) end.
    pub dst: PortRef,
    /// Traversal latency `T_l` in cycles (>= 1). Mesh links are 1 cycle;
    /// long adaptable segments take 1 cycle per 4 mm on high metal layers
    /// (Sec. IV-A).
    pub latency: u8,
    /// Physical wire length in millimeters (1 mm per tile hop by default).
    pub length_mm: f32,
    /// Dateline marker for torus deadlock avoidance: a head flit crossing
    /// this channel switches its VC class from 0 to 1 (Sec. II-C3).
    pub dateline: bool,
    /// Whether this channel runs along the Y dimension. A head flit whose
    /// previous channel was in the *other* dimension has its VC class reset
    /// to 0 before the dateline is applied, keeping the X-ring and Y-ring
    /// datelines independent under XY ordering.
    pub dim_y: bool,
    /// Physical class.
    pub kind: ChannelKind,
}

/// Sentinel for "no previous dimension" (fresh injection).
pub const DIM_NONE: u8 = u8::MAX;

/// The sticky escape class entered at the first inter-chip crossing of a
/// chiplet fabric. Unlike the per-dimension torus class 1, it is never
/// reset by a dimension change: the packet stays in the escape VC
/// partition for the rest of its route, which splits the channel
/// dependency graph between pre- and post-crossing legs (see
/// `adaptnoc-topology`'s chiplet builder for the deadlock argument).
pub const CLASS_INTERCHIP: u8 = 2;

impl ChannelSpec {
    /// This channel's dimension id (0 = X, 1 = Y).
    pub fn dim(&self) -> u8 {
        u8::from(self.dim_y)
    }

    /// The VC class a packet of class `class` (whose previous channel had
    /// dimension `last_dim`) will carry while traversing this channel:
    /// a dimension change resets the class to 0, then a dateline crossing
    /// switches it to 1. Dateline inter-chip channels instead switch to
    /// the sticky [`CLASS_INTERCHIP`], which no later hop resets. Any
    /// non-zero class allocates from the escape VC partition of a split
    /// router.
    pub fn class_after(&self, class: u8, last_dim: u8) -> u8 {
        if class == CLASS_INTERCHIP || (self.dateline && self.kind == ChannelKind::InterChip) {
            return CLASS_INTERCHIP;
        }
        let c = if last_dim != self.dim() { 0 } else { class };
        if self.dateline {
            1
        } else {
            c
        }
    }
}

/// The identity of a channel for reconfiguration diffing: its endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChannelKey {
    /// Source end.
    pub src: PortRef,
    /// Destination end.
    pub dst: PortRef,
}

impl ChannelSpec {
    /// The identity key of this channel (endpoints only).
    pub fn key(&self) -> ChannelKey {
        ChannelKey {
            src: self.src,
            dst: self.dst,
        }
    }
}

/// A router in the spec.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterSpec {
    /// Whether the router is powered on. Powered-off routers (cmesh idle
    /// routers, Sec. II-B1) may have no channels or NIs.
    pub active: bool,
    /// Number of physical ports. Adaptable routers have 5 (four directions
    /// plus local); the Flattened Butterfly's high-radix routers have more.
    pub n_ports: u8,
    /// Dateline VC-class split for output-VC allocation at this router:
    /// `Some(k)` restricts class-0 packets to VCs `[0, k)` of their vnet and
    /// class-1 packets to `[k, vcs)`. `None` lets any packet use any VC.
    /// Set by the torus builder on subNoC routers only.
    pub vc_split: Option<u8>,
}

impl Default for RouterSpec {
    fn default() -> Self {
        RouterSpec {
            active: true,
            n_ports: 5,
            vc_split: None,
        }
    }
}

/// A network-interface attachment: endpoint `node` injects/ejects through
/// `port` of `router`. Several NIs may share one port (external
/// concentration, Sec. II-B1); they then share the port's 1 flit/cycle
/// injection bandwidth, arbitrated round-robin.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NiSpec {
    /// The endpoint node.
    pub node: NodeId,
    /// Router the NI attaches to.
    pub router: RouterId,
    /// Port on that router (must carry no channels).
    pub port: PortId,
    /// Whether this NI reaches its router over a concentration link
    /// (for power accounting).
    pub concentration: bool,
    /// Physical length of the core-to-router wire in millimeters (0.5 mm
    /// for a core attached to its own tile's router; the Manhattan tile
    /// distance for concentration links).
    pub link_mm: f32,
}

impl NiSpec {
    /// A plain NI: `node` attached to the local port of its own tile's
    /// router (0.5 mm wire, no concentration).
    pub fn local(node: NodeId, router: RouterId, port: PortId) -> Self {
        NiSpec {
            node,
            router,
            port,
            concentration: false,
            link_mm: 0.5,
        }
    }

    /// A concentration-link NI: `node` attached to a shared router
    /// `tile_distance` tiles away (Sec. II-B1, external concentration).
    pub fn concentrated(node: NodeId, router: RouterId, port: PortId, tile_distance: f32) -> Self {
        NiSpec {
            node,
            router,
            port,
            concentration: true,
            link_mm: tile_distance.max(0.5),
        }
    }
}

/// A complete declarative network configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSpec {
    /// All routers (dense ids).
    pub routers: Vec<RouterSpec>,
    /// All channels.
    pub channels: Vec<ChannelSpec>,
    /// All NI attachments (one per node).
    pub nis: Vec<NiSpec>,
    /// Routing tables (`[vnet][router][dst node] -> port`).
    pub tables: RoutingTables,
    /// Number of endpoint nodes.
    pub num_nodes: usize,
}

/// Errors produced by [`NetworkSpec::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A channel references a router id out of range.
    BadRouter(RouterId),
    /// A channel or NI references a port out of range for its router.
    BadPort(PortRef),
    /// Two channels drive the same source port, or two channels feed the
    /// same destination port.
    PortConflict(PortRef),
    /// A channel endpoint or NI sits on an inactive router.
    InactiveRouter(RouterId),
    /// A channel has zero latency.
    ZeroLatency(ChannelKey),
    /// A node has no NI or more than one NI.
    NodeNiCount(NodeId, usize),
    /// An NI shares a port with a channel.
    NiPortConflict(PortRef),
    /// A routing entry points at a port with neither an outgoing channel nor
    /// an attached NI.
    DanglingRoute {
        /// Router holding the bad entry.
        router: RouterId,
        /// Destination node of the bad entry.
        dst: NodeId,
        /// The dangling port.
        port: PortId,
    },
    /// Routing table dimensions disagree with the spec.
    TableShape,
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::BadRouter(r) => write!(f, "channel references unknown router {r}"),
            SpecError::BadPort(p) => write!(f, "port {} out of range on {}", p.port, p.router),
            SpecError::PortConflict(p) => {
                write!(f, "two channels share port {} of {}", p.port, p.router)
            }
            SpecError::InactiveRouter(r) => {
                write!(f, "channel or NI attached to powered-off router {r}")
            }
            SpecError::ZeroLatency(k) => write!(
                f,
                "channel {}:{} -> {}:{} has zero latency",
                k.src.router, k.src.port, k.dst.router, k.dst.port
            ),
            SpecError::NodeNiCount(n, c) => {
                write!(f, "node {n} has {c} network interfaces (expected 1)")
            }
            SpecError::NiPortConflict(p) => {
                write!(
                    f,
                    "NI shares port {} of {} with a channel",
                    p.port, p.router
                )
            }
            SpecError::DanglingRoute { router, dst, port } => write!(
                f,
                "route at {router} for {dst} points to {port} which has no channel or NI"
            ),
            SpecError::TableShape => write!(f, "routing table dimensions disagree with spec"),
        }
    }
}

impl std::error::Error for SpecError {}

impl NetworkSpec {
    /// Creates an empty spec with `routers` default 5-port routers and
    /// `num_nodes` endpoints, with unreachable routing tables for `vnets`
    /// virtual networks.
    pub fn new(routers: usize, num_nodes: usize, vnets: usize) -> Self {
        NetworkSpec {
            routers: vec![RouterSpec::default(); routers],
            channels: Vec::new(),
            nis: Vec::new(),
            tables: RoutingTables::new(vnets, routers, num_nodes),
            num_nodes,
        }
    }

    /// Adds a channel and returns its id.
    pub fn add_channel(&mut self, ch: ChannelSpec) -> ChannelId {
        self.channels.push(ch);
        ChannelId(self.channels.len() as u32 - 1)
    }

    /// Adds an NI attachment.
    pub fn add_ni(&mut self, ni: NiSpec) {
        self.nis.push(ni);
    }

    /// Finds the channel between two port references, if any.
    pub fn channel_between(&self, src: PortRef, dst: PortRef) -> Option<ChannelId> {
        self.channels
            .iter()
            .position(|c| c.src == src && c.dst == dst)
            .map(|i| ChannelId(i as u32))
    }

    /// The NI of `node`, if attached.
    pub fn ni_of(&self, node: NodeId) -> Option<&NiSpec> {
        self.nis.iter().find(|ni| ni.node == node)
    }

    /// Number of active routers.
    pub fn active_routers(&self) -> usize {
        self.routers.iter().filter(|r| r.active).count()
    }

    /// Checks structural validity: port ranges, port exclusivity, NI
    /// placement, routing-entry sanity.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`SpecError`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.tables.routers() != self.routers.len() || self.tables.nodes() != self.num_nodes {
            return Err(SpecError::TableShape);
        }
        let port_ok = |p: PortRef| -> Result<(), SpecError> {
            let r = self
                .routers
                .get(p.router.index())
                .ok_or(SpecError::BadRouter(p.router))?;
            if p.port.0 >= r.n_ports {
                return Err(SpecError::BadPort(p));
            }
            if !r.active {
                return Err(SpecError::InactiveRouter(p.router));
            }
            Ok(())
        };

        let mut src_used: HashMap<PortRef, ()> = HashMap::new();
        let mut dst_used: HashMap<PortRef, ()> = HashMap::new();
        for ch in &self.channels {
            port_ok(ch.src)?;
            port_ok(ch.dst)?;
            if ch.latency == 0 {
                return Err(SpecError::ZeroLatency(ch.key()));
            }
            if src_used.insert(ch.src, ()).is_some() {
                return Err(SpecError::PortConflict(ch.src));
            }
            if dst_used.insert(ch.dst, ()).is_some() {
                return Err(SpecError::PortConflict(ch.dst));
            }
        }

        let mut ni_count = vec![0usize; self.num_nodes];
        let mut ni_ports: HashMap<PortRef, ()> = HashMap::new();
        for ni in &self.nis {
            if ni.node.index() >= self.num_nodes {
                return Err(SpecError::NodeNiCount(ni.node, 0));
            }
            let pr = PortRef::new(ni.router, ni.port);
            port_ok(pr)?;
            if src_used.contains_key(&pr) || dst_used.contains_key(&pr) {
                return Err(SpecError::NiPortConflict(pr));
            }
            ni_ports.insert(pr, ());
            ni_count[ni.node.index()] += 1;
        }
        for (n, &c) in ni_count.iter().enumerate() {
            if c != 1 {
                return Err(SpecError::NodeNiCount(NodeId(n as u16), c));
            }
        }

        // Every routing entry must lead to an outgoing channel or a local
        // (NI-bearing) port.
        for (_vnet, router, dst, port) in self.tables.iter() {
            let pr = PortRef::new(router, port);
            let r = self
                .routers
                .get(router.index())
                .ok_or(SpecError::BadRouter(router))?;
            if port.0 >= r.n_ports {
                return Err(SpecError::BadPort(pr));
            }
            let has_out_channel = src_used.contains_key(&pr);
            let has_ni = ni_ports.contains_key(&pr);
            if !has_out_channel && !has_ni {
                return Err(SpecError::DanglingRoute { router, dst, port });
            }
        }
        Ok(())
    }
}

/// Convenience constructor for a mesh-style channel of 1 cycle, 1 mm.
pub fn mesh_channel(src: PortRef, dst: PortRef) -> ChannelSpec {
    ChannelSpec {
        src,
        dst,
        latency: 1,
        length_mm: 1.0,
        dateline: false,
        dim_y: false,
        kind: ChannelKind::Mesh,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{Vnet, LOCAL_PORT};

    fn two_router_spec() -> NetworkSpec {
        // R0 <-> R1, node 0 on R0, node 1 on R1.
        let mut s = NetworkSpec::new(2, 2, 2);
        let r0e = PortRef::new(RouterId(0), PortId(0));
        let r1w = PortRef::new(RouterId(1), PortId(1));
        s.add_channel(mesh_channel(r0e, r1w));
        s.add_channel(mesh_channel(r1w, r0e));
        s.add_ni(NiSpec::local(NodeId(0), RouterId(0), LOCAL_PORT));
        s.add_ni(NiSpec::local(NodeId(1), RouterId(1), LOCAL_PORT));
        for v in 0..2u8 {
            s.tables.set(Vnet(v), RouterId(0), NodeId(0), LOCAL_PORT);
            s.tables.set(Vnet(v), RouterId(0), NodeId(1), PortId(0));
            s.tables.set(Vnet(v), RouterId(1), NodeId(1), LOCAL_PORT);
            s.tables.set(Vnet(v), RouterId(1), NodeId(0), PortId(1));
        }
        s
    }

    #[test]
    fn valid_two_router_spec_passes() {
        assert_eq!(two_router_spec().validate(), Ok(()));
    }

    #[test]
    fn duplicate_source_port_rejected() {
        let mut s = two_router_spec();
        // A second channel out of R0:p0.
        s.add_channel(mesh_channel(
            PortRef::new(RouterId(0), PortId(0)),
            PortRef::new(RouterId(1), PortId(2)),
        ));
        assert!(matches!(s.validate(), Err(SpecError::PortConflict(_))));
    }

    #[test]
    fn zero_latency_rejected() {
        let mut s = two_router_spec();
        s.channels[0].latency = 0;
        assert!(matches!(s.validate(), Err(SpecError::ZeroLatency(_))));
    }

    #[test]
    fn channel_on_inactive_router_rejected() {
        let mut s = two_router_spec();
        s.routers[1].active = false;
        assert!(matches!(s.validate(), Err(SpecError::InactiveRouter(_))));
    }

    #[test]
    fn missing_ni_rejected() {
        let mut s = two_router_spec();
        s.nis.pop();
        assert!(matches!(s.validate(), Err(SpecError::NodeNiCount(_, 0))));
    }

    #[test]
    fn duplicate_ni_rejected() {
        let mut s = two_router_spec();
        let ni = s.nis[0];
        s.add_ni(NiSpec {
            port: PortId(3),
            ..ni
        });
        assert!(matches!(s.validate(), Err(SpecError::NodeNiCount(_, 2))));
    }

    #[test]
    fn ni_sharing_channel_port_rejected() {
        let mut s = two_router_spec();
        s.nis[0].port = PortId(0); // same as channel source port
        assert!(matches!(s.validate(), Err(SpecError::NiPortConflict(_))));
    }

    #[test]
    fn dangling_route_rejected() {
        let mut s = two_router_spec();
        // Route to a port with no channel and no NI.
        s.tables.set(Vnet(0), RouterId(0), NodeId(1), PortId(3));
        assert!(matches!(s.validate(), Err(SpecError::DanglingRoute { .. })));
    }

    #[test]
    fn out_of_range_port_rejected() {
        let mut s = two_router_spec();
        s.channels[0].src.port = PortId(9);
        assert!(matches!(s.validate(), Err(SpecError::BadPort(_))));
    }

    #[test]
    fn channel_key_identity() {
        let s = two_router_spec();
        assert_eq!(
            s.channel_between(
                PortRef::new(RouterId(0), PortId(0)),
                PortRef::new(RouterId(1), PortId(1))
            ),
            Some(ChannelId(0))
        );
        assert_eq!(
            s.channel_between(
                PortRef::new(RouterId(0), PortId(2)),
                PortRef::new(RouterId(1), PortId(1))
            ),
            None
        );
    }

    #[test]
    fn spec_error_display_nonempty() {
        let errors: Vec<SpecError> = vec![
            SpecError::BadRouter(RouterId(1)),
            SpecError::BadPort(PortRef::new(RouterId(0), PortId(9))),
            SpecError::PortConflict(PortRef::new(RouterId(0), PortId(0))),
            SpecError::InactiveRouter(RouterId(2)),
            SpecError::NodeNiCount(NodeId(0), 2),
            SpecError::NiPortConflict(PortRef::new(RouterId(0), PortId(0))),
            SpecError::DanglingRoute {
                router: RouterId(0),
                dst: NodeId(0),
                port: PortId(0),
            },
            SpecError::TableShape,
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}

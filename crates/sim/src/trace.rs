//! Per-packet event tracing.
//!
//! A [`TraceBuffer`] records injection, per-hop forwarding, and ejection
//! events for selected packets — the debugging companion to the aggregate
//! statistics. Tracing is opt-in per packet-id predicate so full-speed runs
//! pay nothing.

use crate::ids::{NodeId, RouterId};
use std::collections::VecDeque;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// Head flit entered the source router's input buffer.
    Injected {
        /// Packet id.
        packet: u64,
        /// Cycle.
        cycle: u64,
        /// Source node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
    },
    /// A flit won switch allocation at a router.
    Forwarded {
        /// Packet id.
        packet: u64,
        /// Cycle.
        cycle: u64,
        /// Router granting the switch.
        router: RouterId,
        /// Flit sequence number within the packet.
        seq: u8,
    },
    /// The tail flit reached the destination NI.
    Ejected {
        /// Packet id.
        packet: u64,
        /// Cycle.
        cycle: u64,
        /// Total hops taken.
        hops: u16,
    },
    /// A fault was injected into the network (link or router).
    FaultInjected {
        /// Cycle.
        cycle: u64,
        /// Affected router (for link faults: the channel's source router).
        router: RouterId,
        /// `true` for a link fault, `false` for a router fault.
        link: bool,
        /// Whether the fault is transient (heals on its own).
        transient: bool,
    },
    /// A packet was NACKed back to its source NI by a fault.
    Nacked {
        /// Packet id.
        packet: u64,
        /// Cycle.
        cycle: u64,
    },
    /// A NACKed packet was re-injected after its backoff.
    Retried {
        /// Packet id.
        packet: u64,
        /// Cycle.
        cycle: u64,
        /// Retry attempt number (1-based).
        attempt: u32,
    },
    /// A packet exhausted its retry budget and was dropped.
    Dropped {
        /// Packet id.
        packet: u64,
        /// Cycle.
        cycle: u64,
    },
    /// An invariant guard detected a violation (health module).
    GuardViolation {
        /// Cycle.
        cycle: u64,
        /// The violation, rendered (`kind: detail`).
        detail: String,
    },
    /// The self-healing ladder escalated to a recovery rung.
    Escalated {
        /// Cycle.
        cycle: u64,
        /// The rung entered (1 = reroute, 2 = purge+retry, 3 = rollback).
        rung: u8,
    },
}

impl TraceEvent {
    /// The packet this event belongs to (0 for the network-level events —
    /// [`TraceEvent::FaultInjected`], [`TraceEvent::GuardViolation`],
    /// [`TraceEvent::Escalated`] — which have no associated packet).
    pub fn packet(&self) -> u64 {
        match self {
            TraceEvent::Injected { packet, .. }
            | TraceEvent::Forwarded { packet, .. }
            | TraceEvent::Ejected { packet, .. }
            | TraceEvent::Nacked { packet, .. }
            | TraceEvent::Retried { packet, .. }
            | TraceEvent::Dropped { packet, .. } => *packet,
            TraceEvent::FaultInjected { .. }
            | TraceEvent::GuardViolation { .. }
            | TraceEvent::Escalated { .. } => 0,
        }
    }

    /// The cycle the event occurred.
    pub fn cycle(&self) -> u64 {
        match self {
            TraceEvent::Injected { cycle, .. }
            | TraceEvent::Forwarded { cycle, .. }
            | TraceEvent::Ejected { cycle, .. }
            | TraceEvent::FaultInjected { cycle, .. }
            | TraceEvent::Nacked { cycle, .. }
            | TraceEvent::Retried { cycle, .. }
            | TraceEvent::Dropped { cycle, .. }
            | TraceEvent::GuardViolation { cycle, .. }
            | TraceEvent::Escalated { cycle, .. } => *cycle,
        }
    }
}

/// Packet-selection filters for the trace recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFilter {
    /// Trace every packet.
    All,
    /// Trace one packet id.
    Packet(u64),
    /// Trace a half-open id range `[start, end)`.
    IdRange(u64, u64),
    /// Trace every `n`-th packet id (sampling).
    Sampled(u64),
}

impl TraceFilter {
    /// Whether `packet` is selected.
    pub fn wants(&self, packet: u64) -> bool {
        match *self {
            TraceFilter::All => true,
            TraceFilter::Packet(p) => packet == p,
            TraceFilter::IdRange(a, b) => (a..b).contains(&packet),
            TraceFilter::Sampled(n) => n != 0 && packet.is_multiple_of(n),
        }
    }
}

/// A bounded trace recorder. Packets are selected by a [`TraceFilter`];
/// the buffer keeps the newest `capacity` events.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    filter: TraceFilter,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a recorder tracing packets accepted by `filter`.
    pub fn new(capacity: usize, filter: TraceFilter) -> Self {
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            filter,
            dropped: 0,
        }
    }

    /// Traces every packet.
    pub fn all(capacity: usize) -> Self {
        TraceBuffer::new(capacity, TraceFilter::All)
    }

    /// Whether `packet` is selected for tracing.
    pub fn wants(&self, packet: u64) -> bool {
        self.filter.wants(packet)
    }

    /// Records an event (if its packet is selected).
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.wants(ev.packet()) {
            return;
        }
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }

    /// Events recorded, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Events of one packet, oldest first.
    pub fn packet_events(&self, packet: u64) -> Vec<&TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.packet() == packet)
            .collect()
    }

    /// Events evicted due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Renders one packet's journey as a one-line-per-event string.
    pub fn format_packet(&self, packet: u64) -> String {
        self.packet_events(packet)
            .iter()
            .map(|e| match e {
                TraceEvent::Injected {
                    cycle, src, dst, ..
                } => {
                    format!("@{cycle} inject {src} -> {dst}")
                }
                TraceEvent::Forwarded {
                    cycle, router, seq, ..
                } => {
                    format!("@{cycle} {router} fwd flit {seq}")
                }
                TraceEvent::Ejected { cycle, hops, .. } => {
                    format!("@{cycle} eject after {hops} hops")
                }
                TraceEvent::FaultInjected {
                    cycle,
                    router,
                    link,
                    transient,
                } => {
                    let what = if *link { "link" } else { "router" };
                    let how = if *transient { "transient" } else { "permanent" };
                    format!("@{cycle} {how} {what} fault at {router}")
                }
                TraceEvent::Nacked { cycle, .. } => format!("@{cycle} nacked"),
                TraceEvent::Retried { cycle, attempt, .. } => {
                    format!("@{cycle} retry #{attempt}")
                }
                TraceEvent::Dropped { cycle, .. } => format!("@{cycle} dropped"),
                TraceEvent::GuardViolation { cycle, detail } => {
                    format!("@{cycle} guard violation: {detail}")
                }
                TraceEvent::Escalated { cycle, rung } => {
                    format!("@{cycle} escalated to rung {rung}")
                }
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(packet: u64, cycle: u64) -> TraceEvent {
        TraceEvent::Forwarded {
            packet,
            cycle,
            router: RouterId(1),
            seq: 0,
        }
    }

    #[test]
    fn filter_selects_packets() {
        let mut t = TraceBuffer::new(16, TraceFilter::Sampled(2));
        t.record(ev(1, 10));
        t.record(ev(2, 11));
        assert_eq!(t.events().count(), 1);
        assert!(t.wants(4));
        assert!(!t.wants(3));
        assert!(TraceFilter::Packet(5).wants(5));
        assert!(!TraceFilter::Packet(5).wants(6));
        assert!(TraceFilter::IdRange(2, 4).wants(3));
        assert!(!TraceFilter::IdRange(2, 4).wants(4));
        assert!(!TraceFilter::Sampled(0).wants(0));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut t = TraceBuffer::all(3);
        for i in 0..5 {
            t.record(ev(1, i));
        }
        assert_eq!(t.events().count(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.events().next().unwrap().cycle(), 2);
    }

    #[test]
    fn packet_journey_formatting() {
        let mut t = TraceBuffer::all(16);
        t.record(TraceEvent::Injected {
            packet: 7,
            cycle: 5,
            src: NodeId(0),
            dst: NodeId(3),
        });
        t.record(ev(7, 6));
        t.record(TraceEvent::Ejected {
            packet: 7,
            cycle: 9,
            hops: 3,
        });
        t.record(ev(8, 7)); // another packet, excluded from the journey
        let s = t.format_packet(7);
        assert!(s.contains("@5 inject N0 -> N3"));
        assert!(s.contains("@6 R1 fwd flit 0"));
        assert!(s.contains("@9 eject after 3 hops"));
        assert!(!s.contains("@7"));
        assert_eq!(t.packet_events(7).len(), 3);
    }
}

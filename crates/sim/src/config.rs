//! Global simulator configuration.
//!
//! The values here mirror the simulation setup in Sec. IV-A of the paper:
//! virtual-cut-through buffer organization, 256-bit links, a 2-cycle router
//! (`T_r`) for all designs except Flattened Butterfly (3 cycles), 1-cycle mesh
//! links (`T_l`), and per-design VC counts chosen to keep buffer area equal.

use crate::health::GuardMode;
use crate::ids::Vnet;
use adaptnoc_telemetry::TelemetryMode;

/// Number of flits in a data (reply) packet: a 64-byte cache line over
/// 256-bit links is 2 flits, and a whole packet fits in one 4-flit VC
/// (the virtual-cut-through property).
pub const DATA_PACKET_FLITS: u8 = 2;

/// Number of flits in a request or coherence control packet.
pub const CONTROL_PACKET_FLITS: u8 = 1;

/// Simulator-wide configuration knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Number of virtual networks (2: request + reply).
    pub vnets: u8,
    /// Virtual channels per virtual network.
    ///
    /// The paper keeps buffer area constant across designs: 3 VCs/vnet for
    /// baseline, OSCAR and Shortcut; 2 for Adapt-NoC; 4 for Flattened
    /// Butterfly.
    pub vcs_per_vnet: u8,
    /// Buffer depth of each VC in flits (4 in the paper).
    pub vc_depth: u8,
    /// Router pipeline latency `T_r` in cycles (2, or 3 for FTBY).
    pub router_latency: u8,
    /// Wake-up latency in cycles for a power-gated router (used by FTBY_PG;
    /// 14 cycles following Hu et al. \\[43\\] as in the paper's `T_s`).
    pub wake_latency: u16,
    /// Whether network interfaces use the Adapt-NoC injection-VC bypass,
    /// which lets a flit skip the injection buffering delay when its VC is
    /// empty (Sec. II-A1).
    pub injection_bypass: bool,
    /// Link width in bits (256 in the paper). Only used by the power model.
    pub link_width_bits: u16,
    /// Runtime invariant-guard mode. Overridden at network construction by
    /// the `ADAPTNOC_GUARDS` environment variable when that is set (see
    /// [`GuardMode::from_env`]).
    pub guards: GuardMode,
    /// Telemetry collection mode. Overridden at network construction by
    /// the `ADAPTNOC_TELEMETRY` environment variable when that is set
    /// (see [`TelemetryMode::from_env`]). Defaults to
    /// [`TelemetryMode::Off`]: no registry is allocated and stepping pays
    /// one branch per instrumentation site.
    pub telemetry: TelemetryMode,
}

impl SimConfig {
    /// Configuration of the baseline mesh / OSCAR / Shortcut designs:
    /// 3 VCs per vnet, 4-flit VCs, 2-cycle routers.
    pub fn baseline() -> Self {
        SimConfig {
            vnets: 2,
            vcs_per_vnet: 3,
            vc_depth: 4,
            router_latency: 2,
            wake_latency: 14,
            injection_bypass: false,
            link_width_bits: 256,
            guards: GuardMode::default(),
            telemetry: TelemetryMode::Off,
        }
    }

    /// Configuration of Adapt-NoC: 2 VCs per vnet (area kept equal to the
    /// baseline by trading buffers for muxes), injection bypass enabled.
    pub fn adapt_noc() -> Self {
        SimConfig {
            vcs_per_vnet: 2,
            injection_bypass: true,
            ..Self::baseline()
        }
    }

    /// Configuration of the Flattened Butterfly: 4 VCs per vnet and a
    /// 3-cycle router pipeline (`T_r` = 3) due to the high radix.
    pub fn flattened_butterfly() -> Self {
        SimConfig {
            vcs_per_vnet: 4,
            router_latency: 3,
            ..Self::baseline()
        }
    }

    /// Total number of VCs on each input port (`vnets * vcs_per_vnet`).
    pub fn total_vcs(&self) -> usize {
        self.vnets as usize * self.vcs_per_vnet as usize
    }

    /// The global VC index of `(vnet, vc-in-vnet)`.
    pub fn vc_index(&self, vnet: Vnet, vc: u8) -> usize {
        debug_assert!(vnet.0 < self.vnets);
        debug_assert!(vc < self.vcs_per_vnet);
        vnet.0 as usize * self.vcs_per_vnet as usize + vc as usize
    }

    /// The range of global VC indices belonging to `vnet`.
    pub fn vnet_vcs(&self, vnet: Vnet) -> std::ops::Range<usize> {
        let start = vnet.0 as usize * self.vcs_per_vnet as usize;
        start..start + self.vcs_per_vnet as usize
    }

    /// Buffer slots on one input port (all VCs).
    pub fn port_buffer_flits(&self) -> usize {
        self.total_vcs() * self.vc_depth as usize
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message if any field is zero or out of range.
    pub fn validate(&self) -> Result<(), String> {
        if self.vnets == 0 {
            return Err("vnets must be >= 1".into());
        }
        if self.vcs_per_vnet == 0 {
            return Err("vcs_per_vnet must be >= 1".into());
        }
        if self.vc_depth == 0 {
            return Err("vc_depth must be >= 1".into());
        }
        if self.router_latency == 0 {
            return Err("router_latency must be >= 1".into());
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_parameters() {
        let b = SimConfig::baseline();
        assert_eq!((b.vnets, b.vcs_per_vnet, b.vc_depth), (2, 3, 4));
        assert_eq!(b.router_latency, 2);
        assert!(!b.injection_bypass);

        let a = SimConfig::adapt_noc();
        assert_eq!(a.vcs_per_vnet, 2);
        assert!(a.injection_bypass);
        assert_eq!(a.router_latency, 2);

        let f = SimConfig::flattened_butterfly();
        assert_eq!(f.vcs_per_vnet, 4);
        assert_eq!(f.router_latency, 3);
    }

    #[test]
    fn vc_indexing_is_dense_and_disjoint() {
        let c = SimConfig::baseline();
        assert_eq!(c.total_vcs(), 6);
        assert_eq!(c.vc_index(Vnet::REQUEST, 0), 0);
        assert_eq!(c.vc_index(Vnet::REQUEST, 2), 2);
        assert_eq!(c.vc_index(Vnet::REPLY, 0), 3);
        assert_eq!(c.vnet_vcs(Vnet::REQUEST), 0..3);
        assert_eq!(c.vnet_vcs(Vnet::REPLY), 3..6);
    }

    #[test]
    fn buffer_area_equalization() {
        // Baseline: 3 VCs x 4 flits x 2 vnets = 24 flits/port.
        assert_eq!(SimConfig::baseline().port_buffer_flits(), 24);
        // Adapt-NoC trades a VC for mux/link logic: 16 flits/port.
        assert_eq!(SimConfig::adapt_noc().port_buffer_flits(), 16);
        // FTBY uses more VCs per port (but fewer routers).
        assert_eq!(SimConfig::flattened_butterfly().port_buffer_flits(), 32);
    }

    #[test]
    fn validation_rejects_zeroes() {
        let mut c = SimConfig::baseline();
        c.vnets = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::baseline();
        c.vcs_per_vnet = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::baseline();
        c.vc_depth = 0;
        assert!(c.validate().is_err());
        let mut c = SimConfig::baseline();
        c.router_latency = 0;
        assert!(c.validate().is_err());
        assert!(SimConfig::baseline().validate().is_ok());
    }
}

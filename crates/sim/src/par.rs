//! Deterministic region-parallel stepping.
//!
//! [`StepPool`] is a fixed pool of worker threads that splits the router
//! stage of one cycle into contiguous router *bands* (one per thread,
//! aligned to subNoC region boundaries when a [`RegionMap`] is installed)
//! and runs them concurrently. Everything the bands could race on is
//! deferred into per-band `StageSink`s and merged **in ascending band
//! order** at the cycle barrier, so the output — delivered packets,
//! statistics, trace events, telemetry counters — is byte-identical to the
//! serial stepper at any thread count (pinned by
//! `tests/region_parallel_equivalence.rs`).
//!
//! ## The boundary-channel exchange
//!
//! Bands partition *routers*; channels are owned by the band containing
//! their **source** router (see `crate::stage::ChannelShard`). A flit
//! crossing a band boundary is simply pushed onto its channel's queue by
//! the owning band and picked up by the destination band's router in the
//! *link* stage of a later cycle — the channel queues double as the
//! exchange buffers, and because a channel's wire latency is at least one
//! cycle, no band ever reads state another band writes within the same
//! cycle. Credits flow the other way through `pending_credits`, which is
//! also applied a cycle later; both lists are concatenated in band order at
//! the barrier so their apply order matches the serial walk exactly.
//!
//! The pool runs band 0 on the calling thread and bands 1.. on the
//! workers, then blocks until every worker acknowledges the cycle. Workers
//! park on a condvar between cycles; per-band scratch (candidate lists,
//! kept-lists, sinks) persists across cycles so the steady-state hot loop
//! performs no allocation.

use crate::stage::{BandJob, WorkerState};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// A partition of the router index space into contiguous bands, used to
/// align parallel bands with subNoC regions so cross-band traffic (and
/// with it merge pressure) stays low.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionMap {
    /// Band boundaries: `bounds[b]..bounds[b + 1]` is band `b`'s router
    /// range. Starts at 0, ends at the router count, strictly increasing.
    bounds: Vec<usize>,
}

impl RegionMap {
    /// An even split of `n_routers` routers into `bands` contiguous bands
    /// (clamped to at most one band per router, at least one band).
    pub fn even(n_routers: usize, bands: usize) -> RegionMap {
        let bands = bands.clamp(1, n_routers.max(1));
        let bounds = (0..=bands).map(|b| b * n_routers / bands).collect();
        RegionMap { bounds }
    }

    /// A custom split from explicit band boundaries.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` does not start at 0 or is not strictly
    /// increasing.
    pub fn from_bounds(bounds: Vec<usize>) -> RegionMap {
        assert!(bounds.len() >= 2, "a region map needs at least one band");
        assert_eq!(bounds[0], 0, "region bounds must start at router 0");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "region bounds must be strictly increasing"
        );
        RegionMap { bounds }
    }

    /// Number of bands.
    pub fn bands(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total routers covered.
    pub fn routers(&self) -> usize {
        *self.bounds.last().expect("bounds are non-empty")
    }

    /// The band boundaries (`bands() + 1` entries).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }
}

/// Synchronization state shared by the pool owner and all workers.
#[derive(Debug, Default)]
struct PoolShared {
    /// Cycle generation counter; bumping it (under the lock) releases the
    /// workers for one cycle.
    gen: Mutex<u64>,
    gen_cv: Condvar,
    /// Workers that finished the current generation.
    done: Mutex<usize>,
    done_cv: Condvar,
    shutdown: AtomicBool,
}

/// One worker's mailbox: the job slot filled by the dispatcher and the
/// persistent band state the worker runs it into.
#[derive(Default)]
struct WorkerShared {
    job: Mutex<Option<BandJob>>,
    state: Mutex<WorkerState>,
}

impl std::fmt::Debug for WorkerShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerShared").finish_non_exhaustive()
    }
}

/// A fixed pool of `threads - 1` worker threads (plus the calling thread)
/// for region-parallel [`Network::step_parallel`](crate::network::Network::step_parallel)
/// (see [`crate::network::Network::step_parallel`]).
///
/// The pool is created once and reused across cycles and across networks;
/// dropping it shuts the workers down. `StepPool::new(1)` creates no
/// threads and makes `step_parallel` equivalent to `step`.
pub struct StepPool {
    shared: Arc<PoolShared>,
    workers: Vec<Arc<WorkerShared>>,
    handles: Vec<JoinHandle<()>>,
    /// Band state for the band the calling thread runs itself.
    main_state: WorkerState,
    /// Optional custom band partition (aligned to subNoC regions).
    regions: Option<RegionMap>,
}

impl std::fmt::Debug for StepPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StepPool")
            .field("threads", &self.threads())
            .field("regions", &self.regions)
            .finish_non_exhaustive()
    }
}

impl StepPool {
    /// Creates a pool that steps with `threads` total threads (the calling
    /// thread plus `threads - 1` workers). `threads == 0` is treated as 1.
    pub fn new(threads: usize) -> StepPool {
        let shared = Arc::new(PoolShared::default());
        let n_workers = threads.max(1) - 1;
        let mut workers = Vec::with_capacity(n_workers);
        let mut handles = Vec::with_capacity(n_workers);
        for w in 0..n_workers {
            let mine = Arc::new(WorkerShared::default());
            workers.push(Arc::clone(&mine));
            let pool = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("adaptnoc-band-{}", w + 1))
                .spawn(move || worker_loop(&pool, &mine))
                .expect("spawning a step-pool worker");
            handles.push(handle);
        }
        StepPool {
            shared,
            workers,
            handles,
            main_state: WorkerState::default(),
            regions: None,
        }
    }

    /// Total threads participating in a parallel step (including the
    /// calling thread).
    pub fn threads(&self) -> usize {
        self.workers.len() + 1
    }

    /// Installs a custom band partition (e.g. subNoC region boundaries).
    /// The map is used whenever its router count matches the stepped
    /// network and its band count does not exceed [`threads`](Self::threads);
    /// otherwise the pool falls back to an even split.
    pub fn set_regions(&mut self, map: Option<RegionMap>) {
        self.regions = map;
    }

    /// Band boundaries for stepping a network of `n_routers` routers.
    pub(crate) fn plan(&self, n_routers: usize) -> Vec<usize> {
        if let Some(m) = &self.regions {
            if m.routers() == n_routers && m.bands() <= self.threads() {
                return m.bounds.clone();
            }
        }
        RegionMap::even(n_routers, self.threads()).bounds
    }

    /// Hands `jobs` to workers 0.. and releases them for one generation.
    /// Always paired with a following [`wait`](Self::wait).
    pub(crate) fn dispatch(&mut self, jobs: Vec<BandJob>) {
        debug_assert!(jobs.len() <= self.workers.len(), "more jobs than workers");
        for (w, job) in self.workers.iter().zip(jobs) {
            *w.job.lock().expect("job slot poisoned") = Some(job);
        }
        *self.shared.done.lock().expect("done counter poisoned") = 0;
        let mut gen = self.shared.gen.lock().expect("generation poisoned");
        *gen += 1;
        self.shared.gen_cv.notify_all();
    }

    /// Blocks until every worker acknowledged the current generation.
    pub(crate) fn wait(&self) {
        let mut done = self.shared.done.lock().expect("done counter poisoned");
        while *done < self.workers.len() {
            done = self
                .shared
                .done_cv
                .wait(done)
                .expect("done counter poisoned");
        }
    }

    /// The calling thread's band state (band 0).
    pub(crate) fn main_state(&mut self) -> &mut WorkerState {
        &mut self.main_state
    }

    /// Runs `f` over every band state in ascending band order (band 0 =
    /// the calling thread's state, then the workers). Must only be called
    /// after [`wait`](Self::wait) — the worker state locks are uncontended
    /// then.
    pub(crate) fn merge_states(&mut self, mut f: impl FnMut(&mut WorkerState)) {
        f(&mut self.main_state);
        for w in &self.workers {
            f(&mut w.state.lock().expect("worker state poisoned"));
        }
    }
}

impl Drop for StepPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _gen = self.shared.gen.lock().expect("generation poisoned");
            self.shared.gen_cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The worker body: park until a generation is published, run the job (if
/// any), acknowledge, repeat until shutdown.
fn worker_loop(pool: &PoolShared, mine: &WorkerShared) {
    let mut seen = 0u64;
    loop {
        {
            let mut gen = pool.gen.lock().expect("generation poisoned");
            while *gen == seen && !pool.shutdown.load(Ordering::SeqCst) {
                gen = pool.gen_cv.wait(gen).expect("generation poisoned");
            }
            if pool.shutdown.load(Ordering::SeqCst) {
                return;
            }
            seen = *gen;
        }
        let job = mine.job.lock().expect("job slot poisoned").take();
        if let Some(job) = job {
            let mut state = mine.state.lock().expect("worker state poisoned");
            crate::stage::run_band_job(job, &mut state);
        }
        let mut done = pool.done.lock().expect("done counter poisoned");
        *done += 1;
        pool.done_cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_region_map_covers_all_routers() {
        let m = RegionMap::even(64, 4);
        assert_eq!(m.bands(), 4);
        assert_eq!(m.bounds(), &[0, 16, 32, 48, 64]);
        let m = RegionMap::even(7, 3);
        assert_eq!(m.routers(), 7);
        assert_eq!(m.bounds()[0], 0);
        assert!(m.bounds().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn even_region_map_clamps_band_count() {
        assert_eq!(RegionMap::even(2, 8).bands(), 2);
        assert_eq!(RegionMap::even(5, 0).bands(), 1);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_bounds_rejects_non_monotonic() {
        let _ = RegionMap::from_bounds(vec![0, 4, 4, 8]);
    }

    #[test]
    fn pool_plan_prefers_matching_region_map() {
        let mut pool = StepPool::new(2);
        assert_eq!(pool.plan(8), vec![0, 4, 8]);
        pool.set_regions(Some(RegionMap::from_bounds(vec![0, 6, 8])));
        assert_eq!(pool.plan(8), vec![0, 6, 8]);
        // Mismatched router count falls back to the even split.
        assert_eq!(pool.plan(10), vec![0, 5, 10]);
    }

    #[test]
    fn pool_starts_and_shuts_down() {
        let pool = StepPool::new(4);
        assert_eq!(pool.threads(), 4);
        drop(pool); // joins workers; hangs here = shutdown bug
    }
}

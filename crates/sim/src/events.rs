//! Activity event counters consumed by the power model.
//!
//! The paper computes dynamic power by "profiling the number of buffer
//! writes, crossbar, VA/SA activities, and RL calculations" (Sec. IV-A,
//! DSENT methodology). The simulator counts exactly those events; the
//! `adaptnoc-power` crate converts counts to energy.

/// Dynamic-activity event counts accumulated by the simulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EventCounts {
    /// Flits written into input VC buffers.
    pub buffer_writes: u64,
    /// Flits read out of input VC buffers.
    pub buffer_reads: u64,
    /// Flits traversing a crossbar (switch traversal).
    pub crossbar_traversals: u64,
    /// Successful output-VC allocations (head flits).
    pub va_grants: u64,
    /// Successful switch allocations.
    pub sa_grants: u64,
    /// Flit-hops over router-to-router channels.
    pub link_flit_hops: u64,
    /// Flit-millimeters over router-to-router channels (for length-dependent
    /// link energy).
    pub link_flit_mm: f64,
    /// Flit traversals of adaptable-link or concentration muxes.
    pub mux_traversals: u64,
    /// Flit crossings of serialized inter-chip (chiplet) links; each
    /// crossing pays a SerDes + package-wire energy on top of the
    /// length-dependent link energy.
    pub interchip_crossings: u64,
    /// Flits injected by network interfaces.
    pub ni_injections: u64,
    /// Flits that used the injection-VC bypass.
    pub bypass_injections: u64,
    /// Flits ejected to network interfaces.
    pub ni_ejections: u64,
    /// Credits sent upstream.
    pub credits_sent: u64,
    /// RL (DQN) inference invocations (counted by the controller layer).
    pub rl_inferences: u64,
}

impl EventCounts {
    /// Adds `other` into `self`.
    pub fn accumulate(&mut self, other: &EventCounts) {
        self.buffer_writes += other.buffer_writes;
        self.buffer_reads += other.buffer_reads;
        self.crossbar_traversals += other.crossbar_traversals;
        self.va_grants += other.va_grants;
        self.sa_grants += other.sa_grants;
        self.link_flit_hops += other.link_flit_hops;
        self.link_flit_mm += other.link_flit_mm;
        self.mux_traversals += other.mux_traversals;
        self.interchip_crossings += other.interchip_crossings;
        self.ni_injections += other.ni_injections;
        self.bypass_injections += other.bypass_injections;
        self.ni_ejections += other.ni_ejections;
        self.credits_sent += other.credits_sent;
        self.rl_inferences += other.rl_inferences;
    }

    /// Takes the current counts, resetting `self` to zero.
    pub fn take(&mut self) -> EventCounts {
        std::mem::take(self)
    }
}

/// Static-power accounting: resource-on cycle counts.
///
/// Each simulated cycle, the network adds the currently-active resource
/// profile into these accumulators. Power gating (Sec. II-A1) shows up as a
/// smaller profile and hence fewer on-cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StaticCycles {
    /// Sum over cycles of the number of powered-on routers.
    pub router_on_cycles: u64,
    /// Sum over cycles of the number of power-gated (sleeping or inactive)
    /// routers.
    pub router_off_cycles: u64,
    /// Sum over cycles of the number of powered-on router ports
    /// (Adapt-NoC gates unused ports of peripheral routers).
    pub port_on_cycles: u64,
    /// Sum over cycles of powered-on mesh/express-link millimeters.
    pub mesh_link_mm_cycles: f64,
    /// Sum over cycles of active adaptable-link millimeters (the paper
    /// charges 11.5 mW per full-length adaptable link; the power model
    /// normalizes these mm to link-equivalents).
    pub adapt_link_mm_cycles: f64,
    /// Sum over cycles of active concentration-link millimeters.
    pub conc_link_mm_cycles: f64,
    /// Sum over cycles of powered-on inter-chip (chiplet) link millimeters;
    /// these links also keep their SerDes lanes powered, so they carry
    /// their own static-power coefficient.
    pub interchip_link_mm_cycles: f64,
    /// Total simulated cycles.
    pub cycles: u64,
}

impl StaticCycles {
    /// Adds `other` into `self`.
    pub fn accumulate(&mut self, other: &StaticCycles) {
        self.router_on_cycles += other.router_on_cycles;
        self.router_off_cycles += other.router_off_cycles;
        self.port_on_cycles += other.port_on_cycles;
        self.mesh_link_mm_cycles += other.mesh_link_mm_cycles;
        self.adapt_link_mm_cycles += other.adapt_link_mm_cycles;
        self.conc_link_mm_cycles += other.conc_link_mm_cycles;
        self.interchip_link_mm_cycles += other.interchip_link_mm_cycles;
        self.cycles += other.cycles;
    }

    /// Takes the current counts, resetting `self` to zero.
    pub fn take(&mut self) -> StaticCycles {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_sums_fields() {
        let mut a = EventCounts {
            buffer_writes: 1,
            link_flit_mm: 2.5,
            ..Default::default()
        };
        let b = EventCounts {
            buffer_writes: 2,
            link_flit_mm: 0.5,
            sa_grants: 7,
            ..Default::default()
        };
        a.accumulate(&b);
        assert_eq!(a.buffer_writes, 3);
        assert_eq!(a.sa_grants, 7);
        assert!((a.link_flit_mm - 3.0).abs() < 1e-12);
    }

    #[test]
    fn take_resets() {
        let mut a = EventCounts {
            crossbar_traversals: 5,
            ..Default::default()
        };
        let t = a.take();
        assert_eq!(t.crossbar_traversals, 5);
        assert_eq!(a, EventCounts::default());
    }

    #[test]
    fn static_cycles_accumulate_and_take() {
        let mut s = StaticCycles {
            router_on_cycles: 10,
            cycles: 1,
            ..Default::default()
        };
        s.accumulate(&StaticCycles {
            router_on_cycles: 5,
            router_off_cycles: 3,
            cycles: 1,
            ..Default::default()
        });
        assert_eq!(s.router_on_cycles, 15);
        assert_eq!(s.router_off_cycles, 3);
        assert_eq!(s.cycles, 2);
        let t = s.take();
        assert_eq!(t.cycles, 2);
        assert_eq!(s, StaticCycles::default());
    }
}

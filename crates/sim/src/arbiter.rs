//! Round-robin arbiters used by the VA and SA router stages.

/// A round-robin arbiter over a fixed-size candidate set.
///
/// The arbiter remembers the last granted index and gives lowest priority to
/// it on the next arbitration, guaranteeing strong fairness: any continuously
/// requesting candidate is granted within `n` arbitrations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundRobin {
    last: usize,
}

impl RoundRobin {
    /// Creates an arbiter whose first grant favours index 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }

    /// Grants one of the requesting candidates, or `None` if no candidate
    /// requests. `requests[i]` is true if candidate `i` requests.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        let n = requests.len();
        if n == 0 {
            return None;
        }
        for off in 1..=n {
            let i = (self.last + off) % n;
            if requests[i] {
                self.last = i;
                return Some(i);
            }
        }
        None
    }

    /// Grants among an explicit candidate list (indices need not be dense).
    /// Candidates must be sorted ascending for fairness to hold.
    pub fn grant_sparse(&mut self, candidates: &[usize]) -> Option<usize> {
        self.grant_sparse_filtered(candidates, |_| true)
    }

    /// Like [`grant_sparse`](Self::grant_sparse) but only considers
    /// candidates accepted by `eligible` (allocation-free filtering).
    pub fn grant_sparse_filtered(
        &mut self,
        candidates: &[usize],
        eligible: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        // Pick the first eligible candidate strictly after `last`, wrapping
        // around.
        let mut first_eligible = None;
        for &c in candidates {
            if !eligible(c) {
                continue;
            }
            if c > self.last {
                self.last = c;
                return Some(c);
            }
            if first_eligible.is_none() {
                first_eligible = Some(c);
            }
        }
        if let Some(c) = first_eligible {
            self.last = c;
            return Some(c);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_none_when_no_requests() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.grant(&[false, false, false]), None);
        assert_eq!(rr.grant(&[]), None);
        assert_eq!(rr.grant_sparse(&[]), None);
    }

    #[test]
    fn rotates_among_continuous_requesters() {
        let mut rr = RoundRobin::new();
        let reqs = [true, true, true];
        let seq: Vec<usize> = (0..6).map(|_| rr.grant(&reqs).unwrap()).collect();
        assert_eq!(seq, vec![1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn single_requester_always_wins() {
        let mut rr = RoundRobin::new();
        for _ in 0..5 {
            assert_eq!(rr.grant(&[false, true, false]), Some(1));
        }
    }

    #[test]
    fn fairness_over_window() {
        let mut rr = RoundRobin::new();
        let mut counts = [0usize; 4];
        for _ in 0..400 {
            let g = rr.grant(&[true, true, true, true]).unwrap();
            counts[g] += 1;
        }
        for c in counts {
            assert_eq!(c, 100);
        }
    }

    #[test]
    fn sparse_grant_rotates() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.grant_sparse(&[2, 5, 7]), Some(2));
        assert_eq!(rr.grant_sparse(&[2, 5, 7]), Some(5));
        assert_eq!(rr.grant_sparse(&[2, 5, 7]), Some(7));
        assert_eq!(rr.grant_sparse(&[2, 5, 7]), Some(2));
        // A new lower candidate is reachable after wrap.
        assert_eq!(rr.grant_sparse(&[0, 5]), Some(5));
        assert_eq!(rr.grant_sparse(&[0, 5]), Some(0));
    }
}

//! Performance statistics: packet latency, queuing latency, hop counts,
//! buffer utilization, throughput.
//!
//! Terminology follows the paper (Sec. III-D): *network latency* is the time
//! a packet traverses the NoC (head injection into the source router's buffer
//! until tail ejection at the destination NI); *queuing latency* is the time
//! a packet waits at the network interface before entering the network.

use crate::events::{EventCounts, StaticCycles};
use crate::flit::{Packet, PacketKind};

/// A delivered packet with its measured timing.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivered {
    /// The packet, as originally injected.
    pub packet: Packet,
    /// Cycle the head flit entered the source router input buffer.
    pub injected_at: u64,
    /// Cycle the tail flit was ejected at the destination NI.
    pub ejected_at: u64,
    /// Router-to-router channel traversals taken by the head flit.
    pub hops: u16,
}

impl Delivered {
    /// Network latency in cycles (injection to ejection).
    pub fn network_latency(&self) -> u64 {
        self.ejected_at.saturating_sub(self.injected_at)
    }

    /// Queuing latency in cycles (creation to injection).
    pub fn queuing_latency(&self) -> u64 {
        self.injected_at.saturating_sub(self.packet.created_at)
    }

    /// Total packet latency (creation to ejection), the paper's
    /// "packet latency" in Fig. 7.
    pub fn total_latency(&self) -> u64 {
        self.ejected_at.saturating_sub(self.packet.created_at)
    }
}

/// Aggregated network statistics over a measurement window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Number of packets delivered.
    pub packets: u64,
    /// Number of flits delivered.
    pub flits: u64,
    /// Sum of network latencies (cycles).
    pub network_latency_sum: u64,
    /// Sum of queuing latencies (cycles).
    pub queuing_latency_sum: u64,
    /// Sum of hop counts.
    pub hops_sum: u64,
    /// Delivered packets by kind: [Request, Reply, Coherence].
    pub by_kind: [u64; 3],
    /// Packets injected into NI source queues.
    pub packets_offered: u64,
    /// Sum over cycles of occupied input-buffer flit slots.
    pub buffer_occupancy_sum: u64,
    /// Total input-buffer flit slots (for utilization normalization).
    pub buffer_capacity: u64,
    /// Sum over cycles of packets waiting in NI source queues.
    pub injection_queue_sum: u64,
    /// Flits forwarded by routers (switch traversals), a throughput measure.
    pub flits_forwarded: u64,
    /// Cycles covered by this window.
    pub cycles: u64,
    /// Maximum observed network latency.
    pub max_network_latency: u64,
    /// Maximum observed queuing latency.
    pub max_queuing_latency: u64,
    /// Packets NACKed back to their source NI by a fault.
    pub nacks: u64,
    /// Packet re-injections after a NACK (each retry counts once).
    pub retries: u64,
    /// Packets dropped after exhausting their retry budget (or because
    /// their endpoint became disconnected).
    pub drops: u64,
}

impl NetStats {
    /// Records a delivered packet.
    pub fn record(&mut self, d: &Delivered) {
        self.packets += 1;
        self.flits += d.packet.len as u64;
        let nl = d.network_latency();
        let ql = d.queuing_latency();
        self.network_latency_sum += nl;
        self.queuing_latency_sum += ql;
        self.max_network_latency = self.max_network_latency.max(nl);
        self.max_queuing_latency = self.max_queuing_latency.max(ql);
        self.hops_sum += d.hops as u64;
        let k = match d.packet.kind {
            PacketKind::Request => 0,
            PacketKind::Reply => 1,
            PacketKind::Coherence => 2,
        };
        self.by_kind[k] += 1;
    }

    /// Mean network latency in cycles (0 if no packets).
    pub fn avg_network_latency(&self) -> f64 {
        ratio(self.network_latency_sum, self.packets)
    }

    /// Mean queuing latency in cycles (0 if no packets).
    pub fn avg_queuing_latency(&self) -> f64 {
        ratio(self.queuing_latency_sum, self.packets)
    }

    /// Mean total packet latency (network + queuing).
    pub fn avg_packet_latency(&self) -> f64 {
        self.avg_network_latency() + self.avg_queuing_latency()
    }

    /// Mean hop count (0 if no packets).
    pub fn avg_hops(&self) -> f64 {
        ratio(self.hops_sum, self.packets)
    }

    /// Mean input-buffer utilization in [0, 1].
    pub fn avg_buffer_utilization(&self) -> f64 {
        if self.cycles == 0 || self.buffer_capacity == 0 {
            0.0
        } else {
            self.buffer_occupancy_sum as f64 / (self.cycles as f64 * self.buffer_capacity as f64)
        }
    }

    /// Mean NI source-queue occupancy in packets.
    pub fn avg_injection_queue(&self) -> f64 {
        ratio(self.injection_queue_sum, self.cycles)
    }

    /// Delivered flits per cycle (accepted throughput).
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        ratio(self.flits, self.cycles)
    }

    /// Router-forwarded flits per cycle (the RL state's
    /// "average router throughput" before normalizing by router count).
    pub fn forwarded_flits_per_cycle(&self) -> f64 {
        ratio(self.flits_forwarded, self.cycles)
    }

    /// Fraction of offered packets that were delivered (1.0 when nothing
    /// was offered). Retries re-inject a packet already counted as offered,
    /// so a fully recovered run reports 1.0; drops pull the ratio below 1.
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_offered == 0 {
            1.0
        } else {
            self.packets as f64 / self.packets_offered as f64
        }
    }

    /// Adds `other` into `self`.
    pub fn accumulate(&mut self, other: &NetStats) {
        self.packets += other.packets;
        self.flits += other.flits;
        self.network_latency_sum += other.network_latency_sum;
        self.queuing_latency_sum += other.queuing_latency_sum;
        self.hops_sum += other.hops_sum;
        for k in 0..3 {
            self.by_kind[k] += other.by_kind[k];
        }
        self.packets_offered += other.packets_offered;
        self.buffer_occupancy_sum += other.buffer_occupancy_sum;
        self.buffer_capacity = self.buffer_capacity.max(other.buffer_capacity);
        self.injection_queue_sum += other.injection_queue_sum;
        self.flits_forwarded += other.flits_forwarded;
        self.cycles += other.cycles;
        self.max_network_latency = self.max_network_latency.max(other.max_network_latency);
        self.max_queuing_latency = self.max_queuing_latency.max(other.max_queuing_latency);
        self.nacks += other.nacks;
        self.retries += other.retries;
        self.drops += other.drops;
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A complete per-epoch report: performance stats plus power-model inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochReport {
    /// Performance statistics for the epoch.
    pub stats: NetStats,
    /// Dynamic-activity events for the epoch.
    pub events: EventCounts,
    /// Static-power resource-on cycles for the epoch.
    pub static_cycles: StaticCycles,
    /// Invariant-guard counters for the epoch (health module).
    ///
    /// Only exhaustive under `GuardMode::Strict`: under `Sampled(n)` the
    /// guards sweep every `n`-th cycle and the violation count is a lower
    /// bound. Check
    /// [`health.sample_interval`](crate::health::HealthCounts::sample_interval)
    /// (0 = off, 1 = strict, n = sampled) before reading the counts as
    /// complete.
    pub health: crate::health::HealthCounts,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn delivered(created: u64, injected: u64, ejected: u64, hops: u16) -> Delivered {
        let mut p = Packet::request(1, NodeId(0), NodeId(1), 0);
        p.created_at = created;
        Delivered {
            packet: p,
            injected_at: injected,
            ejected_at: ejected,
            hops,
        }
    }

    #[test]
    fn latency_decomposition() {
        let d = delivered(10, 15, 40, 3);
        assert_eq!(d.queuing_latency(), 5);
        assert_eq!(d.network_latency(), 25);
        assert_eq!(d.total_latency(), 30);
    }

    #[test]
    fn stats_averages() {
        let mut s = NetStats::default();
        s.record(&delivered(0, 2, 10, 2));
        s.record(&delivered(0, 6, 26, 4));
        assert_eq!(s.packets, 2);
        assert!((s.avg_queuing_latency() - 4.0).abs() < 1e-12);
        assert!((s.avg_network_latency() - 14.0).abs() < 1e-12);
        assert!((s.avg_packet_latency() - 18.0).abs() < 1e-12);
        assert!((s.avg_hops() - 3.0).abs() < 1e-12);
        assert_eq!(s.max_network_latency, 20);
        assert_eq!(s.max_queuing_latency, 6);
    }

    #[test]
    fn empty_stats_have_zero_averages() {
        let s = NetStats::default();
        assert_eq!(s.avg_network_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
        assert_eq!(s.avg_buffer_utilization(), 0.0);
        assert_eq!(s.throughput_flits_per_cycle(), 0.0);
    }

    #[test]
    fn utilization_normalization() {
        let s = NetStats {
            cycles: 100,
            buffer_capacity: 10,
            buffer_occupancy_sum: 500,
            ..Default::default()
        };
        assert!((s.avg_buffer_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accumulate_merges_windows() {
        let mut a = NetStats::default();
        a.record(&delivered(0, 1, 5, 1));
        a.cycles = 10;
        let mut b = NetStats::default();
        b.record(&delivered(0, 2, 8, 2));
        b.cycles = 20;
        a.accumulate(&b);
        assert_eq!(a.packets, 2);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.hops_sum, 3);
    }

    #[test]
    fn by_kind_accounting() {
        let mut s = NetStats::default();
        let mut p = Packet::coherence(1, NodeId(0), NodeId(1), 0);
        p.created_at = 0;
        s.record(&Delivered {
            packet: p,
            injected_at: 0,
            ejected_at: 1,
            hops: 1,
        });
        assert_eq!(s.by_kind, [0, 0, 1]);
    }
}

//! Performance statistics: packet latency, queuing latency, hop counts,
//! buffer utilization, throughput.
//!
//! Terminology follows the paper (Sec. III-D): *network latency* is the time
//! a packet traverses the NoC (head injection into the source router's buffer
//! until tail ejection at the destination NI); *queuing latency* is the time
//! a packet waits at the network interface before entering the network.

use crate::events::{EventCounts, StaticCycles};
use crate::flit::{Packet, PacketKind};

/// A delivered packet with its measured timing.
#[derive(Debug, Clone, PartialEq)]
pub struct Delivered {
    /// The packet, as originally injected.
    pub packet: Packet,
    /// Cycle the head flit entered the source router input buffer.
    pub injected_at: u64,
    /// Cycle the tail flit was ejected at the destination NI.
    pub ejected_at: u64,
    /// Router-to-router channel traversals taken by the head flit.
    pub hops: u16,
}

impl Delivered {
    /// Network latency in cycles (injection to ejection).
    pub fn network_latency(&self) -> u64 {
        self.ejected_at.saturating_sub(self.injected_at)
    }

    /// Queuing latency in cycles (creation to injection).
    pub fn queuing_latency(&self) -> u64 {
        self.injected_at.saturating_sub(self.packet.created_at)
    }

    /// Total packet latency (creation to ejection), the paper's
    /// "packet latency" in Fig. 7.
    pub fn total_latency(&self) -> u64 {
        self.ejected_at.saturating_sub(self.packet.created_at)
    }
}

/// Number of log2 buckets in a [`CycleHistogram`]: bucket `i < 32` counts
/// values in `(2^(i-1), 2^i]` (bucket 0 counts zeros and ones), bucket 32
/// is the overflow tail. Matches the telemetry crate's fixed bucket
/// layout so exported histograms and in-stats quantiles agree.
pub const CYCLE_HIST_BUCKETS: usize = 33;

/// A compact always-on log2-bucket histogram of cycle counts.
///
/// This is the quantile substrate for tail-latency reporting: recording
/// is one shift and two adds, the footprint is a fixed 33-slot array, and
/// quantiles come from log-linear interpolation inside the hit bucket —
/// exact enough to show a p99 blow-up at saturation while staying cheap
/// enough to live inside [`NetStats`] on every delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CycleHistogram {
    buckets: [u64; CYCLE_HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for CycleHistogram {
    fn default() -> Self {
        CycleHistogram {
            buckets: [0; CYCLE_HIST_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl CycleHistogram {
    fn bucket_index(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            ((64 - (v - 1).leading_zeros()) as usize).min(CYCLE_HIST_BUCKETS - 1)
        }
    }

    /// Upper bound of bucket `b` (`u64::MAX` for the overflow tail).
    fn bucket_upper(b: usize) -> u64 {
        if b >= CYCLE_HIST_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << b
        }
    }

    /// Records one value.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The raw bucket counts (log2 layout, see [`CYCLE_HIST_BUCKETS`]).
    pub fn buckets(&self) -> &[u64; CYCLE_HIST_BUCKETS] {
        &self.buckets
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &CycleHistogram) {
        for (b, n) in other.buckets.iter().enumerate() {
            self.buckets[b] += n;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The `q`-quantile (`q` in `[0, 1]`), linearly interpolated inside
    /// the hit bucket. Returns 0 for an empty histogram. The overflow
    /// tail reports its lower bound, so extreme quantiles are a lower
    /// bound rather than a fabrication.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = if b == 0 { 0 } else { Self::bucket_upper(b - 1) } as f64;
                if b == CYCLE_HIST_BUCKETS - 1 {
                    return lo;
                }
                let hi = Self::bucket_upper(b) as f64;
                let within = (rank - seen) as f64 / n as f64;
                return lo + (hi - lo) * within;
            }
            seen += n;
        }
        Self::bucket_upper(CYCLE_HIST_BUCKETS - 2) as f64
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }
}

/// Aggregated network statistics over a measurement window.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetStats {
    /// Number of packets delivered.
    pub packets: u64,
    /// Number of flits delivered.
    pub flits: u64,
    /// Sum of network latencies (cycles).
    pub network_latency_sum: u64,
    /// Sum of queuing latencies (cycles).
    pub queuing_latency_sum: u64,
    /// Sum of hop counts.
    pub hops_sum: u64,
    /// Delivered packets by kind: [Request, Reply, Coherence].
    pub by_kind: [u64; 3],
    /// Packets injected into NI source queues.
    pub packets_offered: u64,
    /// Sum over cycles of occupied input-buffer flit slots.
    pub buffer_occupancy_sum: u64,
    /// Total input-buffer flit slots (for utilization normalization).
    pub buffer_capacity: u64,
    /// Sum over cycles of packets waiting in NI source queues.
    pub injection_queue_sum: u64,
    /// Flits forwarded by routers (switch traversals), a throughput measure.
    pub flits_forwarded: u64,
    /// Cycles covered by this window.
    pub cycles: u64,
    /// Maximum observed network latency.
    pub max_network_latency: u64,
    /// Maximum observed queuing latency.
    pub max_queuing_latency: u64,
    /// Packets NACKed back to their source NI by a fault.
    pub nacks: u64,
    /// Packet re-injections after a NACK (each retry counts once).
    pub retries: u64,
    /// Packets dropped after exhausting their retry budget (or because
    /// their endpoint became disconnected).
    pub drops: u64,
    /// Log2-bucket histogram of total packet latency (creation to
    /// ejection) — the quantile substrate for p50/p95/p99/p999.
    pub latency_hist: CycleHistogram,
    /// Log2-bucket histogram of network latency (injection to ejection).
    pub network_latency_hist: CycleHistogram,
}

impl NetStats {
    /// Records a delivered packet.
    pub fn record(&mut self, d: &Delivered) {
        self.packets += 1;
        self.flits += d.packet.len as u64;
        let nl = d.network_latency();
        let ql = d.queuing_latency();
        self.network_latency_sum += nl;
        self.queuing_latency_sum += ql;
        self.max_network_latency = self.max_network_latency.max(nl);
        self.max_queuing_latency = self.max_queuing_latency.max(ql);
        self.latency_hist.observe(d.total_latency());
        self.network_latency_hist.observe(nl);
        self.hops_sum += d.hops as u64;
        let k = match d.packet.kind {
            PacketKind::Request => 0,
            PacketKind::Reply => 1,
            PacketKind::Coherence => 2,
        };
        self.by_kind[k] += 1;
    }

    /// Mean network latency in cycles (0 if no packets).
    pub fn avg_network_latency(&self) -> f64 {
        ratio(self.network_latency_sum, self.packets)
    }

    /// Mean queuing latency in cycles (0 if no packets).
    pub fn avg_queuing_latency(&self) -> f64 {
        ratio(self.queuing_latency_sum, self.packets)
    }

    /// Mean total packet latency (network + queuing).
    pub fn avg_packet_latency(&self) -> f64 {
        self.avg_network_latency() + self.avg_queuing_latency()
    }

    /// Mean hop count (0 if no packets).
    pub fn avg_hops(&self) -> f64 {
        ratio(self.hops_sum, self.packets)
    }

    /// Mean input-buffer utilization in [0, 1].
    pub fn avg_buffer_utilization(&self) -> f64 {
        if self.cycles == 0 || self.buffer_capacity == 0 {
            0.0
        } else {
            self.buffer_occupancy_sum as f64 / (self.cycles as f64 * self.buffer_capacity as f64)
        }
    }

    /// Mean NI source-queue occupancy in packets.
    pub fn avg_injection_queue(&self) -> f64 {
        ratio(self.injection_queue_sum, self.cycles)
    }

    /// Delivered flits per cycle (accepted throughput).
    pub fn throughput_flits_per_cycle(&self) -> f64 {
        ratio(self.flits, self.cycles)
    }

    /// Router-forwarded flits per cycle (the RL state's
    /// "average router throughput" before normalizing by router count).
    pub fn forwarded_flits_per_cycle(&self) -> f64 {
        ratio(self.flits_forwarded, self.cycles)
    }

    /// Fraction of offered packets that were delivered (1.0 when nothing
    /// was offered). Retries re-inject a packet already counted as offered,
    /// so a fully recovered run reports 1.0; drops pull the ratio below 1.
    pub fn delivery_ratio(&self) -> f64 {
        if self.packets_offered == 0 {
            1.0
        } else {
            self.packets as f64 / self.packets_offered as f64
        }
    }

    /// The `q`-quantile of total packet latency (creation to ejection)
    /// over the window, interpolated from the log2-bucket histogram.
    pub fn packet_latency_quantile(&self, q: f64) -> f64 {
        self.latency_hist.quantile(q)
    }

    /// Median total packet latency.
    pub fn p50_latency(&self) -> f64 {
        self.latency_hist.p50()
    }

    /// 95th-percentile total packet latency.
    pub fn p95_latency(&self) -> f64 {
        self.latency_hist.p95()
    }

    /// 99th-percentile total packet latency — the headline tail metric
    /// for open-loop overload runs.
    pub fn p99_latency(&self) -> f64 {
        self.latency_hist.p99()
    }

    /// 99.9th-percentile total packet latency.
    pub fn p999_latency(&self) -> f64 {
        self.latency_hist.p999()
    }

    /// Adds `other` into `self`.
    pub fn accumulate(&mut self, other: &NetStats) {
        self.packets += other.packets;
        self.flits += other.flits;
        self.network_latency_sum += other.network_latency_sum;
        self.queuing_latency_sum += other.queuing_latency_sum;
        self.hops_sum += other.hops_sum;
        for k in 0..3 {
            self.by_kind[k] += other.by_kind[k];
        }
        self.packets_offered += other.packets_offered;
        self.buffer_occupancy_sum += other.buffer_occupancy_sum;
        self.buffer_capacity = self.buffer_capacity.max(other.buffer_capacity);
        self.injection_queue_sum += other.injection_queue_sum;
        self.flits_forwarded += other.flits_forwarded;
        self.cycles += other.cycles;
        self.max_network_latency = self.max_network_latency.max(other.max_network_latency);
        self.max_queuing_latency = self.max_queuing_latency.max(other.max_queuing_latency);
        self.nacks += other.nacks;
        self.retries += other.retries;
        self.drops += other.drops;
        self.latency_hist.merge(&other.latency_hist);
        self.network_latency_hist.merge(&other.network_latency_hist);
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// A complete per-epoch report: performance stats plus power-model inputs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpochReport {
    /// Performance statistics for the epoch.
    pub stats: NetStats,
    /// Dynamic-activity events for the epoch.
    pub events: EventCounts,
    /// Static-power resource-on cycles for the epoch.
    pub static_cycles: StaticCycles,
    /// Invariant-guard counters for the epoch (health module).
    ///
    /// Only exhaustive under `GuardMode::Strict`: under `Sampled(n)` the
    /// guards sweep every `n`-th cycle and the violation count is a lower
    /// bound. Check
    /// [`health.sample_interval`](crate::health::HealthCounts::sample_interval)
    /// (0 = off, 1 = strict, n = sampled) before reading the counts as
    /// complete.
    pub health: crate::health::HealthCounts,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;

    fn delivered(created: u64, injected: u64, ejected: u64, hops: u16) -> Delivered {
        let mut p = Packet::request(1, NodeId(0), NodeId(1), 0);
        p.created_at = created;
        Delivered {
            packet: p,
            injected_at: injected,
            ejected_at: ejected,
            hops,
        }
    }

    #[test]
    fn latency_decomposition() {
        let d = delivered(10, 15, 40, 3);
        assert_eq!(d.queuing_latency(), 5);
        assert_eq!(d.network_latency(), 25);
        assert_eq!(d.total_latency(), 30);
    }

    #[test]
    fn stats_averages() {
        let mut s = NetStats::default();
        s.record(&delivered(0, 2, 10, 2));
        s.record(&delivered(0, 6, 26, 4));
        assert_eq!(s.packets, 2);
        assert!((s.avg_queuing_latency() - 4.0).abs() < 1e-12);
        assert!((s.avg_network_latency() - 14.0).abs() < 1e-12);
        assert!((s.avg_packet_latency() - 18.0).abs() < 1e-12);
        assert!((s.avg_hops() - 3.0).abs() < 1e-12);
        assert_eq!(s.max_network_latency, 20);
        assert_eq!(s.max_queuing_latency, 6);
    }

    #[test]
    fn empty_stats_have_zero_averages() {
        let s = NetStats::default();
        assert_eq!(s.avg_network_latency(), 0.0);
        assert_eq!(s.avg_hops(), 0.0);
        assert_eq!(s.avg_buffer_utilization(), 0.0);
        assert_eq!(s.throughput_flits_per_cycle(), 0.0);
    }

    #[test]
    fn utilization_normalization() {
        let s = NetStats {
            cycles: 100,
            buffer_capacity: 10,
            buffer_occupancy_sum: 500,
            ..Default::default()
        };
        assert!((s.avg_buffer_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn accumulate_merges_windows() {
        let mut a = NetStats::default();
        a.record(&delivered(0, 1, 5, 1));
        a.cycles = 10;
        let mut b = NetStats::default();
        b.record(&delivered(0, 2, 8, 2));
        b.cycles = 20;
        a.accumulate(&b);
        assert_eq!(a.packets, 2);
        assert_eq!(a.cycles, 30);
        assert_eq!(a.hops_sum, 3);
    }

    #[test]
    fn quantiles_track_the_latency_distribution() {
        let mut s = NetStats::default();
        // 99 fast packets (total latency 8) and one straggler (1000).
        for _ in 0..99 {
            s.record(&delivered(0, 2, 8, 2));
        }
        s.record(&delivered(0, 2, 1000, 2));
        let p50 = s.p50_latency();
        assert!((4.0..=8.0).contains(&p50), "p50 {p50} in the fast bucket");
        let p999 = s.p999_latency();
        assert!(
            (512.0..=1024.0).contains(&p999),
            "p999 {p999} lands in the straggler's bucket"
        );
        assert!(s.p99_latency() <= p999);
        assert!(s.p95_latency() <= s.p99_latency());
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = CycleHistogram::default();
        assert_eq!(h.quantile(0.99), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn histogram_merge_matches_combined_observation() {
        let mut a = CycleHistogram::default();
        let mut b = CycleHistogram::default();
        let mut both = CycleHistogram::default();
        for v in [0u64, 1, 3, 17, 200] {
            a.observe(v);
            both.observe(v);
        }
        for v in [5u64, 900, 900, 12_000] {
            b.observe(v);
            both.observe(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.sum(), 14_026);
    }

    #[test]
    fn accumulate_merges_latency_histograms() {
        let mut a = NetStats::default();
        a.record(&delivered(0, 1, 5, 1));
        let mut b = NetStats::default();
        b.record(&delivered(0, 2, 2000, 2));
        a.accumulate(&b);
        assert_eq!(a.latency_hist.count(), 2);
        assert!(a.p999_latency() >= 1024.0);
    }

    #[test]
    fn by_kind_accounting() {
        let mut s = NetStats::default();
        let mut p = Packet::coherence(1, NodeId(0), NodeId(1), 0);
        p.created_at = 0;
        s.record(&Delivered {
            packet: p,
            injected_at: 0,
            ejected_at: 1,
            hops: 1,
        });
        assert_eq!(s.by_kind, [0, 0, 1]);
    }
}

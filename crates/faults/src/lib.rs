//! # adaptnoc-faults
//!
//! Fault injection and resilience for the Adapt-NoC reproduction: survive
//! link and router failures by reconfiguring subNoCs.
//!
//! Adapt-NoC's reconfigurable substrate — regular links, adaptable links,
//! and per-region routing tables swapped at runtime — is exactly the
//! machinery needed for fault tolerance. This crate closes that loop:
//!
//! * [`schedule`] — deterministic, seeded fault schedules: transient link
//!   faults (the link heals after a duration), permanent link faults, and
//!   permanent router faults.
//! * [`controller`] — a [`FaultController`](controller::FaultController)
//!   that fires the schedule into a running
//!   [`Network`](adaptnoc_sim::network::Network). Packets caught by a
//!   fault are NACKed back to their source NI and retried with bounded
//!   exponential backoff; permanent faults trigger a recomputation of the
//!   region's routing tables over the degraded channel graph
//!   ([`adaptnoc_topology::degraded`]) — segmenting an adaptable twin
//!   where one exists — validated for connectivity and deadlock freedom,
//!   and swapped in live through the staged reconfiguration protocol
//!   ([`adaptnoc_core::reconfig`]).
//!
//! Everything is deterministic: the same seed produces the same schedule,
//! the same NACK/retry interleaving, and byte-identical metrics.
//!
//! ```
//! use adaptnoc_faults::prelude::*;
//! use adaptnoc_sim::prelude::*;
//! use adaptnoc_topology::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = Grid::new(4, 4);
//! let cfg = SimConfig::baseline();
//! let spec = mesh_chip(grid, &cfg)?;
//! let mut net = Network::new(spec, cfg.clone())?;
//!
//! // A transient fault on a known link at cycle 10, healing after 40.
//! let key = net.spec().channels[0].key();
//! let schedule = FaultSchedule::new(vec![FaultEvent {
//!     at: 10,
//!     kind: FaultKind::TransientLink { key, duration: 40 },
//! }]);
//! let mut ctl = FaultController::new(
//!     schedule,
//!     RetryPolicy::default(),
//!     grid,
//!     Rect::new(0, 0, 4, 4),
//!     cfg,
//!     ReconfigTiming::default(),
//! );
//! for _ in 0..200 {
//!     net.step();
//!     ctl.tick(&mut net)?;
//! }
//! assert!(ctl.settled());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;
pub mod escalation;
pub mod schedule;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::controller::{
        FaultController, FaultError, FaultStats, RecoveryOutcome, RetryPolicy,
    };
    pub use crate::escalation::{GuardConfig, GuardStats, HealthGuard};
    pub use crate::schedule::{FaultEvent, FaultKind, FaultSchedule, ScheduleParams};
    pub use adaptnoc_core::reconfig::ReconfigTiming;
}

//! The self-healing escalation ladder.
//!
//! A [`HealthGuard`] couples a [`Watchdog`] to a three-rung recovery
//! ladder. When the watchdog reports a stall (deadlock or livelock) the
//! guard escalates through progressively heavier interventions, giving
//! each rung a grace window to restore forward progress before trying the
//! next:
//!
//! 1. **Re-route** — install the mesh-fallback routing tables, recovering
//!    from routing-table corruption or a misrouted topology without
//!    touching in-flight traffic.
//! 2. **Purge and retry** — reap packets that cannot make progress
//!    ([`Network::purge_blocked`]) every tick; the caller re-injects them
//!    through the usual NACK/backoff machinery.
//! 3. **Roll back** — return the region to the last known-good spec
//!    captured by [`HealthGuard::record_last_good`], via
//!    [`RegionReconfig::rollback_to`]. Region NIs are unpaused first, so a
//!    crash-abandoned drain cannot wedge the rollback itself.
//!
//! If a full pass over the ladder (a *round*) still leaves the network
//! stalled, the guard declares the situation unrecoverable, renders a
//! [`FlightRecorder`] dump for post-mortem analysis, and stands down.
//! Delivery progress at any point resets the ladder to rung 0.
//!
//! [`Network::purge_blocked`]: adaptnoc_sim::network::Network::purge_blocked

use crate::controller::FaultError;
use adaptnoc_core::reconfig::{ReconfigTiming, RegionReconfig};
use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::health::{FlightRecorder, StallReport, Watchdog, WatchdogConfig};
use adaptnoc_sim::json::Value;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::routing::RoutingTables;
use adaptnoc_sim::spec::NetworkSpec;
use adaptnoc_sim::trace::TraceEvent;
use adaptnoc_topology::geom::{Grid, Rect};
use std::sync::Arc;

/// Tuning for a [`HealthGuard`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GuardConfig {
    /// The stall detector driving the ladder.
    pub watchdog: WatchdogConfig,
    /// Cycles each rung gets to restore forward progress before the
    /// ladder escalates further.
    pub grace: u64,
    /// Full ladder passes to attempt before declaring the stall
    /// unrecoverable.
    pub max_rounds: u32,
    /// Event capacity of the post-mortem flight recorder.
    pub recorder_capacity: usize,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            watchdog: WatchdogConfig::default(),
            grace: 600,
            max_rounds: 1,
            recorder_capacity: 256,
        }
    }
}

/// Counters for the escalation ladder, carried in
/// [`FaultStats`](crate::controller::FaultStats) when a guard is attached
/// to a [`FaultController`](crate::controller::FaultController).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardStats {
    /// Stall episodes the watchdog opened (not every repeated fire).
    pub watchdog_fires: u64,
    /// Rung-1 fallback-table installs.
    pub reroutes: u64,
    /// Packets reaped by rung-2 purging (handed back for retry).
    pub purged_packets: u64,
    /// Rung-3 rollbacks started.
    pub rollbacks: u64,
    /// Stall episodes that ended with delivery progress restored.
    pub recoveries: u64,
    /// Flight-recorder dumps rendered for unrecoverable stalls.
    pub dumps: u64,
}

impl GuardStats {
    /// Total self-healing interventions the ladder took: rung-1
    /// re-routes, rung-2 packet purges, and rung-3 rollbacks. A compact
    /// "did the ladder act at all" signal for supervisors that surface
    /// escalation activity as events (e.g. farm job reports).
    pub fn interventions(&self) -> u64 {
        self.reroutes + self.purged_packets + self.rollbacks
    }
}

/// Watchdog-driven self-healing for one region: detects stalls and walks
/// the re-route → purge → rollback escalation ladder. See the module docs.
#[derive(Debug)]
pub struct HealthGuard {
    cfg: GuardConfig,
    watchdog: Watchdog,
    rect: Rect,
    timing: ReconfigTiming,
    /// Rung-1 tables: the region's mesh-fallback routing function.
    fallback: RoutingTables,
    /// Rung-3 target: the last spec the guard saw the network healthy on.
    last_good: Arc<NetworkSpec>,
    /// Current ladder position; 0 = healthy.
    rung: u8,
    /// Cycle at which the current rung's grace window expires.
    deadline: u64,
    /// Completed ladder passes in the current stall episode.
    rounds: u32,
    rollback: Option<RegionReconfig>,
    unrecoverable: bool,
    recorder: FlightRecorder,
    stats: GuardStats,
    last_dump: Option<Value>,
}

impl HealthGuard {
    /// Creates a guard for `rect`, snapshotting the network's current spec
    /// as the rollback target and installing the flight recorder's tracer
    /// (unless the network already has one).
    pub fn new(
        net: &mut Network,
        rect: Rect,
        timing: ReconfigTiming,
        fallback: RoutingTables,
        cfg: GuardConfig,
    ) -> Self {
        let recorder = FlightRecorder::new(cfg.recorder_capacity);
        recorder.install(net);
        HealthGuard {
            cfg,
            watchdog: Watchdog::new(cfg.watchdog),
            rect,
            timing,
            fallback,
            last_good: net.spec_shared(),
            rung: 0,
            deadline: 0,
            rounds: 0,
            rollback: None,
            unrecoverable: false,
            recorder,
            stats: GuardStats::default(),
            last_dump: None,
        }
    }

    /// Re-captures the network's current spec as the rollback target.
    /// Call after every deliberate, completed reconfiguration.
    pub fn record_last_good(&mut self, net: &Network) {
        self.last_good = net.spec_shared();
    }

    /// Ladder counters so far.
    pub fn stats(&self) -> &GuardStats {
        &self.stats
    }

    /// The rung currently engaged (0 = healthy / recovered).
    pub fn rung(&self) -> u8 {
        self.rung
    }

    /// Whether the guard exhausted the ladder and stood down.
    pub fn unrecoverable(&self) -> bool {
        self.unrecoverable
    }

    /// The post-mortem dump rendered when the stall was declared
    /// unrecoverable (also written to `$ADAPTNOC_DUMP_DIR` if set).
    pub fn last_dump(&self) -> Option<&Value> {
        self.last_dump.as_ref()
    }

    /// The underlying stall detector (for inspecting `stalled()`).
    pub fn watchdog(&self) -> &Watchdog {
        &self.watchdog
    }

    /// Advances the guard by one cycle (call after `net.step()`). Returns
    /// packets reaped by rung-2 purging; the caller must hand them to its
    /// retry machinery (e.g.
    /// [`Network::inject_retry`](adaptnoc_sim::network::Network::inject_retry)
    /// or a [`FaultController`](crate::controller::FaultController)).
    ///
    /// # Errors
    ///
    /// Propagates [`FaultError::Net`] from a rung-3 rollback whose swap the
    /// simulator rejects (indicating a bug, not a survivable condition).
    pub fn tick(&mut self, net: &mut Network, grid: &Grid) -> Result<Vec<Packet>, FaultError> {
        if self.unrecoverable {
            return Ok(Vec::new());
        }
        let mut purged = Vec::new();
        // Rung 2 and above purge continuously: blocked traffic must keep
        // draining while the heavier rungs (and any rollback) proceed.
        if self.rung >= 2 {
            purged = net.purge_blocked();
            self.stats.purged_packets += purged.len() as u64;
            crate::controller::telem_count(
                net,
                "adaptnoc_guard_purged_packets_total",
                "Blocked packets reaped by rung-2 continuous purging.",
                "packets",
                &[],
                purged.len() as u64,
            );
        }
        if let Some(mut rc) = self.rollback.take() {
            if !rc.tick(net, grid)? {
                self.rollback = Some(rc);
            }
        }

        let report = self.watchdog.observe(net);
        if self.rung > 0 && !self.watchdog.stalled() {
            // Delivery progress (or a drained network): episode over.
            self.stats.recoveries += 1;
            self.rung = 0;
            self.rounds = 0;
            let now = net.now();
            if let Some(reg) = net.telemetry_mut() {
                let c = reg.counter(
                    "adaptnoc_guard_recoveries_total",
                    "Stall episodes resolved with delivery progress restored.",
                    "episodes",
                    &[],
                );
                reg.inc(c);
                reg.event("guard.recovered", now, &[]);
            }
            return Ok(purged);
        }
        if let Some(report) = report {
            if self.watchdog.stalled() {
                let now = net.now();
                if self.rung == 0 {
                    // A new stall episode opens the ladder.
                    self.stats.watchdog_fires += 1;
                    let kind = report.kind.to_string();
                    if let Some(reg) = net.telemetry_mut() {
                        let c = reg.counter(
                            "adaptnoc_guard_stalls_total",
                            "Stall episodes opened by the watchdog, by kind.",
                            "episodes",
                            &[("kind", &kind)],
                        );
                        reg.inc(c);
                        reg.event(
                            "guard.stall",
                            now,
                            &[
                                ("kind", &kind),
                                ("in_flight", &report.in_flight.to_string()),
                            ],
                        );
                    }
                    self.escalate(net, grid, &report)?;
                } else if now >= self.deadline && self.rollback.is_none() {
                    // The current rung had its grace window and failed.
                    self.escalate(net, grid, &report)?;
                }
            }
        }
        Ok(purged)
    }

    fn escalate(
        &mut self,
        net: &mut Network,
        grid: &Grid,
        report: &StallReport,
    ) -> Result<(), FaultError> {
        self.rung += 1;
        if self.rung > 3 {
            self.rounds += 1;
            if self.rounds >= self.cfg.max_rounds {
                self.unrecoverable = true;
                self.stats.dumps += 1;
                let reason = format!(
                    "unrecoverable {} after {} ladder round(s)",
                    report.kind, self.rounds
                );
                let dump = self.recorder.dump(net, &reason);
                adaptnoc_sim::health::write_dump(&dump, "unrecoverable");
                self.last_dump = Some(dump);
                let now = net.now();
                if let Some(reg) = net.telemetry_mut() {
                    let c = reg.counter(
                        "adaptnoc_guard_dumps_total",
                        "Flight-recorder dumps rendered for unrecoverable stalls.",
                        "dumps",
                        &[],
                    );
                    reg.inc(c);
                    reg.event("guard.unrecoverable", now, &[("reason", &reason)]);
                }
                return Ok(());
            }
            self.rung = 1;
        }
        let now = net.now();
        let rung = self.rung;
        if let Some(t) = net.tracer_mut() {
            t.record(TraceEvent::Escalated { cycle: now, rung });
        }
        if let Some(reg) = net.telemetry_mut() {
            let rung_s = rung.to_string();
            let c = reg.counter(
                "adaptnoc_guard_escalations_total",
                "Escalation-ladder rung engagements, by rung.",
                "transitions",
                &[("rung", &rung_s)],
            );
            reg.inc(c);
            reg.event("guard.escalated", now, &[("rung", &rung_s)]);
        }
        match rung {
            1 => {
                net.install_tables(self.fallback.clone());
                self.stats.reroutes += 1;
            }
            2 => {
                // Continuous purging is engaged by `tick` while rung >= 2.
            }
            _ => {
                // Rung 3: unpause the region's NIs (a crash-abandoned drain
                // may have left them paused), then roll the region back to
                // the last known-good spec.
                for c in self.rect.iter() {
                    let n = grid.node(c);
                    if net.spec().ni_of(n).is_some() {
                        net.set_ni_paused(n, false);
                    }
                }
                self.rollback = Some(RegionReconfig::rollback_to(
                    net,
                    grid,
                    self.rect,
                    Arc::clone(&self.last_good),
                    self.timing,
                ));
                self.stats.rollbacks += 1;
            }
        }
        self.deadline = now + self.cfg.grace;
        Ok(())
    }
}

//! The fault controller: fires scheduled faults, retries NACKed packets,
//! and drives permanent-fault recovery through the staged reconfiguration
//! protocol.
//!
//! Call [`FaultController::tick`] once per cycle, after `net.step()`.
//! On each tick the controller:
//!
//! 1. heals transient faults whose outage elapsed;
//! 2. fires schedule events that are due — faulting the channel/router in
//!    the simulator, which NACKs every packet caught by the fault;
//! 3. while a permanent fault is being recovered, reaps packets that can
//!    no longer make progress (`purge_blocked`) and advances the
//!    `RegionReconfig` protocol that installs the degraded configuration;
//! 4. re-injects NACKed packets whose exponential backoff expired,
//!    dropping packets that exhausted their retry budget or whose
//!    endpoints got disconnected.
//!
//! Transient faults never purge blocked traffic: upstream packets simply
//! wait out the outage, so with a sufficient retry budget a transient
//! campaign delivers 100% of offered packets. Permanent faults recompute
//! the region's routes over the degraded graph
//! ([`adaptnoc_topology::degraded`]), validate them, and swap them in with
//! the fast-path reconfiguration (the degraded tables act as the
//! transitional function, so surviving traffic keeps flowing).

use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};
use adaptnoc_core::reconfig::{ReconfigTiming, RegionReconfig};
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::ids::{NodeId, RouterId};
use adaptnoc_sim::network::{Network, NetworkError};
use adaptnoc_sim::spec::ChannelKey;
use adaptnoc_sim::trace::TraceEvent;
use adaptnoc_topology::degraded::degrade_region;
use adaptnoc_topology::geom::{Grid, Rect};
use adaptnoc_topology::plan::BuildError;
use adaptnoc_topology::validate::{all_pairs, check_routes_and_deadlock, ValidateError};
use std::collections::{HashMap, HashSet, VecDeque};

/// Errors surfaced by the controller.
#[derive(Debug)]
pub enum FaultError {
    /// Recomputing the degraded configuration failed.
    Build(BuildError),
    /// The recomputed tables failed route/deadlock validation.
    Validate(ValidateError),
    /// The simulator rejected an operation.
    Net(NetworkError),
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::Build(e) => write!(f, "degraded rebuild failed: {e}"),
            FaultError::Validate(e) => write!(f, "degraded tables invalid: {e}"),
            FaultError::Net(e) => write!(f, "network rejected fault operation: {e}"),
        }
    }
}

impl std::error::Error for FaultError {}

impl From<BuildError> for FaultError {
    fn from(e: BuildError) -> Self {
        FaultError::Build(e)
    }
}
impl From<ValidateError> for FaultError {
    fn from(e: ValidateError) -> Self {
        FaultError::Validate(e)
    }
}
impl From<NetworkError> for FaultError {
    fn from(e: NetworkError) -> Self {
        FaultError::Net(e)
    }
}

/// Bounded-exponential-backoff retry policy for NACKed packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Drop a packet after this many retries.
    pub max_retries: u32,
    /// First backoff in cycles; attempt `n` waits `base << (n-1)`.
    pub backoff_base: u64,
    /// Backoff ceiling in cycles.
    pub backoff_cap: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            backoff_base: 4,
            backoff_cap: 512,
        }
    }
}

/// Adds `n` to a counter in the network's telemetry registry, when
/// telemetry is active (and `n > 0`). The fault layer records into the
/// same registry the simulator flushes epochs into, so one snapshot
/// covers both; see `docs/OBSERVABILITY.md` for the catalog.
pub(crate) fn telem_count(
    net: &mut Network,
    name: &str,
    help: &str,
    unit: &str,
    labels: &[(&str, &str)],
    n: u64,
) {
    if n == 0 {
        return;
    }
    if let Some(reg) = net.telemetry_mut() {
        let c = reg.counter(name, help, unit, labels);
        reg.add(c, n);
    }
}

/// Records a fired fault as a counter increment plus a structured event.
fn record_fault_telemetry(net: &mut Network, now: u64, kind: &str, at: &str) {
    if let Some(reg) = net.telemetry_mut() {
        let c = reg.counter(
            "adaptnoc_faults_injected_total",
            "Scheduled faults fired, by kind.",
            "faults",
            &[("kind", kind)],
        );
        reg.inc(c);
        reg.event("fault.injected", now, &[("kind", kind), ("at", at)]);
    }
}

impl RetryPolicy {
    /// Backoff before retry `attempt` (1-based), capped. Saturates instead
    /// of overflowing for any attempt number: once the (unshifted) factor
    /// would exceed 64 bits the backoff is simply the cap.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shift = u64::from(attempt.saturating_sub(1));
        let factor = if shift >= 64 { u64::MAX } else { 1u64 << shift };
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_cap)
    }
}

/// One completed permanent-fault recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Cycle the (first pending) permanent fault struck.
    pub fault_at: u64,
    /// Cycle the degraded configuration was live (protocol finished).
    pub recovered_at: u64,
    /// Nodes left disconnected by this recovery.
    pub disconnected: Vec<NodeId>,
    /// Faulted channels re-established by segmenting an adaptable twin.
    pub reversed: Vec<ChannelKey>,
}

impl RecoveryOutcome {
    /// Cycles from fault strike to the recovered configuration being live.
    pub fn time_to_recover(&self) -> u64 {
        self.recovered_at.saturating_sub(self.fault_at)
    }
}

/// Aggregate controller counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient link faults fired.
    pub transients_fired: u64,
    /// Permanent link faults fired.
    pub permanent_links_fired: u64,
    /// Router faults fired.
    pub routers_fired: u64,
    /// Packets re-queued for retry.
    pub retries_queued: u64,
    /// Packets dropped (budget exhausted or endpoint disconnected).
    pub dropped: u64,
    /// Completed recoveries.
    pub recoveries: Vec<RecoveryOutcome>,
    /// Escalation-ladder counters (all zero unless a
    /// [`HealthGuard`](crate::escalation::HealthGuard) is attached).
    pub guard: crate::escalation::GuardStats,
}

/// Drives a [`FaultSchedule`] into a running [`Network`] and recovers
/// from it. See the module docs for the per-tick pipeline.
#[derive(Debug)]
pub struct FaultController {
    schedule: VecDeque<FaultEvent>,
    policy: RetryPolicy,
    grid: Grid,
    rect: Rect,
    cfg: SimConfig,
    timing: ReconfigTiming,
    /// `(due, attempt, packet)` — scanned in insertion order.
    retry_q: VecDeque<(u64, u32, Packet)>,
    attempts: HashMap<u64, u32>,
    /// `(heal_at, key)` for live transient faults.
    heals: Vec<(u64, ChannelKey)>,
    permanent_keys: Vec<ChannelKey>,
    failed_routers: Vec<RouterId>,
    disconnected: HashSet<NodeId>,
    recovery: Option<(RegionReconfig, u64)>,
    /// Strike cycle of the oldest unrecovered permanent fault.
    pending_since: Option<u64>,
    stats: FaultStats,
    guard: Option<crate::escalation::HealthGuard>,
}

impl FaultController {
    /// Creates a controller for faults inside `rect` (the subNoC whose
    /// routes get recomputed on permanent faults).
    pub fn new(
        schedule: FaultSchedule,
        policy: RetryPolicy,
        grid: Grid,
        rect: Rect,
        cfg: SimConfig,
        timing: ReconfigTiming,
    ) -> Self {
        FaultController {
            schedule: schedule.events().iter().copied().collect(),
            policy,
            grid,
            rect,
            cfg,
            timing,
            retry_q: VecDeque::new(),
            attempts: HashMap::new(),
            heals: Vec::new(),
            permanent_keys: Vec::new(),
            failed_routers: Vec::new(),
            disconnected: HashSet::new(),
            recovery: None,
            pending_since: None,
            stats: FaultStats::default(),
            guard: None,
        }
    }

    /// Attaches a self-healing [`HealthGuard`](crate::escalation::HealthGuard):
    /// each tick the guard runs after the retry queue, and packets it purges
    /// enter the same NACK/backoff retry machinery as fault-caught traffic.
    pub fn attach_guard(&mut self, guard: crate::escalation::HealthGuard) {
        self.guard = Some(guard);
    }

    /// The attached health guard, if any.
    pub fn guard(&self) -> Option<&crate::escalation::HealthGuard> {
        self.guard.as_ref()
    }

    /// Mutable access to the attached health guard (e.g. to re-capture the
    /// known-good spec after a deliberate reconfiguration).
    pub fn guard_mut(&mut self) -> Option<&mut crate::escalation::HealthGuard> {
        self.guard.as_mut()
    }

    /// Counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Nodes disconnected by permanent faults, ascending.
    pub fn disconnected(&self) -> Vec<NodeId> {
        let mut v: Vec<NodeId> = self.disconnected.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// Whether every scheduled fault fired, all transients healed, all
    /// permanent recoveries completed, and no retry is outstanding.
    pub fn settled(&self) -> bool {
        self.schedule.is_empty()
            && self.heals.is_empty()
            && self.recovery.is_none()
            && self.pending_since.is_none()
            && self.retry_q.is_empty()
    }

    /// Advances the controller by one cycle (call after `net.step()`).
    ///
    /// # Errors
    ///
    /// Returns [`FaultError`] if a degraded configuration cannot be built
    /// or validated, or the simulator rejects an operation — all
    /// indicating a bug rather than a survivable condition.
    pub fn tick(&mut self, net: &mut Network) -> Result<(), FaultError> {
        let now = net.now();

        // 1. Heal transient faults whose outage elapsed (unless a later
        // overlapping fault still holds the same link down).
        let due: Vec<ChannelKey> = self
            .heals
            .iter()
            .filter(|&&(t, _)| t <= now)
            .map(|&(_, k)| k)
            .collect();
        if !due.is_empty() {
            self.heals.retain(|&(t, _)| t > now);
            for key in due {
                let still_down =
                    self.heals.iter().any(|&(_, k)| k == key) || self.permanent_keys.contains(&key);
                if !still_down {
                    net.set_channel_fault(key, false)?;
                }
            }
        }

        // 2. Fire due schedule events.
        while self.schedule.front().is_some_and(|e| e.at <= now) {
            let ev = self.schedule.pop_front().expect("checked front");
            self.fire(net, ev)?;
        }

        // 3. Permanent-fault recovery. Keep reaping blocked packets while
        // any node is disconnected: a packet for a dead destination can
        // surface from a source NI queue long after recovery finished, and
        // would otherwise pin its VC forever.
        if self.recovery.is_some() || self.pending_since.is_some() || !self.disconnected.is_empty()
        {
            let reaped = net.purge_blocked();
            self.enqueue_retries(net, reaped);
        }
        if let Some((mut rc, fault_at)) = self.recovery.take() {
            if rc.tick(net, &self.grid)? {
                let last = self
                    .stats
                    .recoveries
                    .last_mut()
                    .expect("outcome pushed at recovery start");
                last.recovered_at = rc.finished_at.unwrap_or(now);
                let ttr = last.time_to_recover();
                if let Some(reg) = net.telemetry_mut() {
                    let h = reg.histogram(
                        "adaptnoc_faults_time_to_recover_cycles",
                        "Cycles from a permanent fault striking to the degraded \
                         configuration being live.",
                        "cycles",
                        &[],
                    );
                    reg.observe(h, ttr);
                    let c = reg.counter(
                        "adaptnoc_faults_recoveries_total",
                        "Completed permanent-fault recovery reconfigurations.",
                        "recoveries",
                        &[],
                    );
                    reg.inc(c);
                    reg.event("fault.recovered", now, &[("cycles", &ttr.to_string())]);
                }
            } else {
                self.recovery = Some((rc, fault_at));
            }
        } else if let Some(fault_at) = self.pending_since.take() {
            self.start_recovery(net, fault_at)?;
        }

        // 4. Retry queue: re-inject packets whose backoff expired.
        for _ in 0..self.retry_q.len() {
            let (due, attempt, packet) = self.retry_q.pop_front().expect("len checked");
            if due > now {
                self.retry_q.push_back((due, attempt, packet));
                continue;
            }
            if self.disconnected.contains(&packet.src) || self.disconnected.contains(&packet.dst) {
                // An endpoint vanished with its router since the NACK.
                net.count_dropped(packet.id);
                self.stats.dropped += 1;
                telem_count(
                    net,
                    "adaptnoc_faults_drops_total",
                    "Packets abandoned: retry budget exhausted or endpoint disconnected.",
                    "packets",
                    &[],
                    1,
                );
                continue;
            }
            net.inject_retry(packet, attempt)?;
        }

        // 5. Self-healing ladder, when attached: watchdog observation plus
        // any engaged recovery rung. Purged packets join the retry queue.
        if let Some(mut guard) = self.guard.take() {
            let purged = guard.tick(net, &self.grid)?;
            self.stats.guard = *guard.stats();
            self.guard = Some(guard);
            self.enqueue_retries(net, purged);
        }
        Ok(())
    }

    fn fire(&mut self, net: &mut Network, ev: FaultEvent) -> Result<(), FaultError> {
        let now = net.now();
        match ev.kind {
            FaultKind::TransientLink { key, duration } => {
                self.stats.transients_fired += 1;
                let nacked = net.set_channel_fault(key, true)?;
                self.heals.push((now + duration, key));
                if let Some(t) = net.tracer_mut() {
                    t.record(TraceEvent::FaultInjected {
                        cycle: now,
                        router: key.src.router,
                        link: true,
                        transient: true,
                    });
                }
                record_fault_telemetry(
                    net,
                    now,
                    "transient_link",
                    &format!("R{}->R{}", key.src.router.0, key.dst.router.0),
                );
                self.enqueue_retries(net, nacked);
            }
            FaultKind::PermanentLink { key } => {
                self.stats.permanent_links_fired += 1;
                let nacked = net.set_channel_fault(key, true)?;
                self.permanent_keys.push(key);
                self.pending_since.get_or_insert(now);
                if let Some(t) = net.tracer_mut() {
                    t.record(TraceEvent::FaultInjected {
                        cycle: now,
                        router: key.src.router,
                        link: false,
                        transient: false,
                    });
                }
                record_fault_telemetry(
                    net,
                    now,
                    "permanent_link",
                    &format!("R{}->R{}", key.src.router.0, key.dst.router.0),
                );
                self.enqueue_retries(net, nacked);
            }
            FaultKind::PermanentRouter { router } => {
                self.stats.routers_fired += 1;
                let mut nacked = net.fail_router(router);
                // Fault every adjacent channel so neighbours stop routing
                // toward the dead router immediately.
                let adjacent: Vec<ChannelKey> = net
                    .spec()
                    .channels
                    .iter()
                    .filter(|c| c.src.router == router || c.dst.router == router)
                    .map(|c| c.key())
                    .collect();
                for key in adjacent {
                    nacked.extend(net.set_channel_fault(key, true)?);
                }
                self.failed_routers.push(router);
                self.pending_since.get_or_insert(now);
                if let Some(t) = net.tracer_mut() {
                    t.record(TraceEvent::FaultInjected {
                        cycle: now,
                        router,
                        link: false,
                        transient: false,
                    });
                }
                record_fault_telemetry(net, now, "router", &format!("R{}", router.0));
                self.enqueue_retries(net, nacked);
            }
        }
        Ok(())
    }

    fn start_recovery(&mut self, net: &mut Network, fault_at: u64) -> Result<(), FaultError> {
        let plan = degrade_region(
            net.spec(),
            &self.grid,
            self.rect,
            &self.permanent_keys,
            &self.failed_routers,
            None,
            &self.cfg,
        )?;
        let survivors = adaptnoc_topology::degraded::surviving_nodes(&plan, &self.grid, self.rect);
        check_routes_and_deadlock(&plan.spec, &all_pairs(&survivors))?;

        // Channels re-established by segmentation are healthy again.
        for &key in &plan.reversed {
            net.set_channel_fault(key, false)?;
            self.permanent_keys.retain(|k| *k != key);
        }
        // Newly disconnected endpoints: abandon their queued traffic.
        for &n in &plan.disconnected {
            if self.disconnected.insert(n) {
                for p in net.purge_ni_queue(n) {
                    net.count_dropped(p.id);
                    self.stats.dropped += 1;
                }
            }
        }

        // The fallback tables double as the transitional tables; cloning
        // them is O(1) (Arc-backed) and the spec itself is moved, not
        // copied, into the reconfiguration's shared target.
        let transitional = plan.spec.tables.clone();
        let rc = RegionReconfig::start(
            net,
            &self.grid,
            self.rect,
            plan.spec,
            Some(transitional),
            self.timing,
        );
        self.stats.recoveries.push(RecoveryOutcome {
            fault_at,
            recovered_at: u64::MAX, // patched when the protocol finishes
            disconnected: plan.disconnected,
            reversed: plan.reversed,
        });
        self.recovery = Some((rc, fault_at));
        Ok(())
    }

    fn enqueue_retries(&mut self, net: &mut Network, nacked: Vec<Packet>) {
        let now = net.now();
        let (mut retried, mut dropped) = (0u64, 0u64);
        for p in nacked {
            if self.disconnected.contains(&p.dst) || self.disconnected.contains(&p.src) {
                net.count_dropped(p.id);
                self.stats.dropped += 1;
                dropped += 1;
                continue;
            }
            let attempt = self.attempts.entry(p.id).or_insert(0);
            *attempt += 1;
            if *attempt > self.policy.max_retries {
                net.count_dropped(p.id);
                self.stats.dropped += 1;
                dropped += 1;
                continue;
            }
            let due = now + self.policy.backoff(*attempt);
            self.stats.retries_queued += 1;
            retried += 1;
            self.retry_q.push_back((due, *attempt, p));
        }
        telem_count(
            net,
            "adaptnoc_faults_retries_total",
            "Packets queued for backoff retry after a fault NACK or purge.",
            "packets",
            &[],
            retried,
        );
        telem_count(
            net,
            "adaptnoc_faults_drops_total",
            "Packets abandoned: retry budget exhausted or endpoint disconnected.",
            "packets",
            &[],
            dropped,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_bounded_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(2), 8);
        assert_eq!(p.backoff(3), 16);
        assert_eq!(p.backoff(8), 512);
        assert_eq!(p.backoff(40), 512, "capped");
        assert_eq!(p.backoff(0), 4, "attempt 0 behaves like 1");
    }

    #[test]
    fn backoff_saturates_for_huge_attempt_numbers() {
        let p = RetryPolicy::default();
        // Shifts at and beyond the 64-bit boundary must saturate to the
        // cap, not overflow.
        assert_eq!(p.backoff(64), 512);
        assert_eq!(p.backoff(65), 512);
        assert_eq!(p.backoff(u32::MAX), 512);
        let zero = RetryPolicy {
            backoff_base: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(zero.backoff(u32::MAX), 0, "zero base stays zero");
        let uncapped = RetryPolicy {
            backoff_cap: u64::MAX,
            ..RetryPolicy::default()
        };
        assert_eq!(uncapped.backoff(u32::MAX), u64::MAX, "saturates, no panic");
    }

    #[test]
    fn outcome_time_to_recover() {
        let o = RecoveryOutcome {
            fault_at: 100,
            recovered_at: 187,
            disconnected: vec![],
            reversed: vec![],
        };
        assert_eq!(o.time_to_recover(), 87);
    }
}

//! Deterministic fault schedules.
//!
//! A [`FaultSchedule`] is an ordered list of [`FaultEvent`]s — transient
//! link faults (the link heals after a duration), permanent link faults,
//! and permanent router faults — fired into a running simulation by a
//! [`crate::controller::FaultController`]. Schedules are plain data:
//! hand-written for targeted experiments or drawn from the in-tree seeded
//! PRNG for campaigns, so the same seed always produces the same faults
//! and, downstream, byte-identical metrics.

use adaptnoc_sim::ids::RouterId;
use adaptnoc_sim::rng::Rng;
use adaptnoc_sim::spec::{ChannelKey, NetworkSpec};
use adaptnoc_topology::geom::{Grid, Rect};

/// One kind of injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A link stops accepting flits for `duration` cycles, then heals.
    TransientLink {
        /// The faulted channel's endpoints.
        key: ChannelKey,
        /// Cycles until the link heals.
        duration: u64,
    },
    /// A link dies permanently; the subNoC must reroute around it (or
    /// segment its adaptable twin).
    PermanentLink {
        /// The dead channel's endpoints.
        key: ChannelKey,
    },
    /// A router dies permanently, taking its node and all its links down.
    PermanentRouter {
        /// The dead router.
        router: RouterId,
    },
}

impl FaultKind {
    /// Whether the fault heals on its own.
    pub fn is_transient(&self) -> bool {
        matches!(self, FaultKind::TransientLink { .. })
    }
}

/// A fault firing at a simulation cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Cycle at which the fault strikes.
    pub at: u64,
    /// What breaks.
    pub kind: FaultKind,
}

/// An ordered fault schedule.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

/// Parameters for [`FaultSchedule::random`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleParams {
    /// Number of transient link faults.
    pub transients: usize,
    /// Number of permanent link faults.
    pub permanent_links: usize,
    /// Number of permanent router faults.
    pub router_faults: usize,
    /// Faults strike uniformly in `[window_start, window_end)`.
    pub window_start: u64,
    /// End of the strike window (exclusive).
    pub window_end: u64,
    /// Transient durations are uniform in `[min_duration, max_duration]`.
    pub min_duration: u64,
    /// Longest transient outage.
    pub max_duration: u64,
}

impl Default for ScheduleParams {
    fn default() -> Self {
        ScheduleParams {
            transients: 2,
            permanent_links: 1,
            router_faults: 0,
            window_start: 100,
            window_end: 1_000,
            min_duration: 20,
            max_duration: 200,
        }
    }
}

impl FaultSchedule {
    /// Builds a schedule from explicit events (sorted by strike cycle,
    /// stable for equal cycles).
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// The events, in firing order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Draws a random schedule over `rect`'s router-to-router channels and
    /// routers, deterministically from `seed`. Faulted channels are drawn
    /// without replacement; the region's origin router is never drawn as a
    /// router fault (it anchors the recovery spanning tree in campaigns
    /// that compare against a healthy baseline).
    pub fn random(
        spec: &NetworkSpec,
        grid: &Grid,
        rect: Rect,
        params: &ScheduleParams,
        seed: u64,
    ) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let region_router = |r: RouterId| {
            let x = (r.0 % grid.width as u16) as u8;
            let y = (r.0 / grid.width as u16) as u8;
            rect.contains(adaptnoc_topology::geom::Coord::new(x, y))
        };
        let mut keys: Vec<ChannelKey> = spec
            .channels
            .iter()
            .filter(|c| region_router(c.src.router) && region_router(c.dst.router))
            .map(|c| c.key())
            .collect();
        let mut routers: Vec<RouterId> = rect
            .iter()
            .skip(1) // keep the origin alive
            .map(|c| grid.router(c))
            .collect();

        let mut events = Vec::new();
        let strike = |rng: &mut Rng| {
            params.window_start
                + rng.random_below((params.window_end - params.window_start).max(1) as usize) as u64
        };
        for _ in 0..params.transients {
            if keys.is_empty() {
                break;
            }
            let key = keys.swap_remove(rng.random_below(keys.len()));
            let duration = params.min_duration
                + rng.random_below((params.max_duration - params.min_duration + 1).max(1) as usize)
                    as u64;
            events.push(FaultEvent {
                at: strike(&mut rng),
                kind: FaultKind::TransientLink { key, duration },
            });
        }
        for _ in 0..params.permanent_links {
            if keys.is_empty() {
                break;
            }
            let key = keys.swap_remove(rng.random_below(keys.len()));
            events.push(FaultEvent {
                at: strike(&mut rng),
                kind: FaultKind::PermanentLink { key },
            });
        }
        for _ in 0..params.router_faults {
            if routers.is_empty() {
                break;
            }
            let router = routers.swap_remove(rng.random_below(routers.len()));
            events.push(FaultEvent {
                at: strike(&mut rng),
                kind: FaultKind::PermanentRouter { router },
            });
        }
        FaultSchedule::new(events)
    }

    /// Draws a random schedule over the *inter-chip links* of a chiplet
    /// fabric: `transients` transient outages (SerDes glitches — lane
    /// retraining, substrate noise) and `permanent_links` dead lanes,
    /// deterministically from `seed`. Channels are drawn without
    /// replacement from the spec's [`ChannelKind::InterChip`] set; on-chip
    /// links and routers are never drawn.
    ///
    /// [`ChannelKind::InterChip`]: adaptnoc_sim::spec::ChannelKind::InterChip
    pub fn random_interchip(spec: &NetworkSpec, params: &ScheduleParams, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut keys: Vec<ChannelKey> = spec
            .channels
            .iter()
            .filter(|c| c.kind == adaptnoc_sim::spec::ChannelKind::InterChip)
            .map(|c| c.key())
            .collect();
        let mut events = Vec::new();
        let strike = |rng: &mut Rng| {
            params.window_start
                + rng.random_below((params.window_end - params.window_start).max(1) as usize) as u64
        };
        for _ in 0..params.transients {
            if keys.is_empty() {
                break;
            }
            let key = keys.swap_remove(rng.random_below(keys.len()));
            let duration = params.min_duration
                + rng.random_below((params.max_duration - params.min_duration + 1).max(1) as usize)
                    as u64;
            events.push(FaultEvent {
                at: strike(&mut rng),
                kind: FaultKind::TransientLink { key, duration },
            });
        }
        for _ in 0..params.permanent_links {
            if keys.is_empty() {
                break;
            }
            let key = keys.swap_remove(rng.random_below(keys.len()));
            events.push(FaultEvent {
                at: strike(&mut rng),
                kind: FaultKind::PermanentLink { key },
            });
        }
        FaultSchedule::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::config::SimConfig;
    use adaptnoc_topology::prelude::*;

    fn mesh() -> (NetworkSpec, Grid) {
        let grid = Grid::new(4, 4);
        (mesh_chip(grid, &SimConfig::baseline()).unwrap(), grid)
    }

    #[test]
    fn schedule_is_sorted_and_deterministic() {
        let (spec, grid) = mesh();
        let rect = Rect::new(0, 0, 4, 4);
        let p = ScheduleParams {
            transients: 3,
            permanent_links: 2,
            router_faults: 1,
            ..Default::default()
        };
        let a = FaultSchedule::random(&spec, &grid, rect, &p, 42);
        let b = FaultSchedule::random(&spec, &grid, rect, &p, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.events().windows(2).all(|w| w[0].at <= w[1].at));
        let c = FaultSchedule::random(&spec, &grid, rect, &p, 43);
        assert_ne!(a, c, "different seeds draw different faults");
    }

    #[test]
    fn faults_are_drawn_without_replacement() {
        let (spec, grid) = mesh();
        let p = ScheduleParams {
            transients: 10,
            permanent_links: 10,
            router_faults: 3,
            ..Default::default()
        };
        let s = FaultSchedule::random(&spec, &grid, Rect::new(0, 0, 4, 4), &p, 7);
        let mut keys: Vec<ChannelKey> = s
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::TransientLink { key, .. } | FaultKind::PermanentLink { key } => {
                    Some(key)
                }
                FaultKind::PermanentRouter { .. } => None,
            })
            .collect();
        let n = keys.len();
        keys.sort_by_key(|k| (k.src.router.0, k.src.port.0));
        keys.dedup();
        assert_eq!(keys.len(), n);
        // The origin router is never drawn.
        assert!(s.events().iter().all(|e| !matches!(
            e.kind,
            FaultKind::PermanentRouter { router } if router == grid.router(Coord::new(0, 0))
        )));
    }

    #[test]
    fn interchip_schedule_targets_only_serdes_links() {
        use adaptnoc_topology::chiplet::{chiplet_chip, ChipletConfig};
        let cc = ChipletConfig::new(2, 2, 4, 4);
        let spec = chiplet_chip(&cc, &SimConfig::baseline()).unwrap();
        let p = ScheduleParams {
            transients: 4,
            permanent_links: 2,
            router_faults: 3, // ignored: inter-chip schedules never kill routers
            ..Default::default()
        };
        let s = FaultSchedule::random_interchip(&spec, &p, 11);
        assert_eq!(s.len(), 6);
        let interchip: std::collections::HashSet<ChannelKey> = spec
            .channels
            .iter()
            .filter(|c| c.kind == adaptnoc_sim::spec::ChannelKind::InterChip)
            .map(|c| c.key())
            .collect();
        for e in s.events() {
            match e.kind {
                FaultKind::TransientLink { key, .. } | FaultKind::PermanentLink { key } => {
                    assert!(
                        interchip.contains(&key),
                        "{key:?} is not an inter-chip link"
                    );
                }
                FaultKind::PermanentRouter { .. } => panic!("router fault in link schedule"),
            }
        }
        assert_eq!(s, FaultSchedule::random_interchip(&spec, &p, 11));
    }

    #[test]
    fn window_bounds_respected() {
        let (spec, grid) = mesh();
        let p = ScheduleParams {
            transients: 8,
            permanent_links: 0,
            router_faults: 0,
            window_start: 50,
            window_end: 60,
            min_duration: 5,
            max_duration: 5,
        };
        let s = FaultSchedule::random(&spec, &grid, Rect::new(0, 0, 4, 4), &p, 1);
        for e in s.events() {
            assert!((50..60).contains(&e.at));
            if let FaultKind::TransientLink { duration, .. } = e.kind {
                assert_eq!(duration, 5);
            }
        }
    }
}

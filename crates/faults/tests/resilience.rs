//! End-to-end resilience tests: faults fired into a live 4x4 mesh with
//! closed-loop traffic, driven by the `FaultController`.

use adaptnoc_faults::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::spec::ChannelKey;
use adaptnoc_sim::stats::NetStats;
use adaptnoc_topology::prelude::*;

fn mesh_net() -> (Network, Grid) {
    let grid = Grid::new(4, 4);
    let cfg = SimConfig::baseline();
    let spec = mesh_chip(grid, &cfg).unwrap();
    (Network::new(spec, cfg).unwrap(), grid)
}

fn controller(net: &Network, grid: Grid, schedule: FaultSchedule) -> FaultController {
    FaultController::new(
        schedule,
        RetryPolicy::default(),
        grid,
        Rect::new(0, 0, 4, 4),
        net.config().clone(),
        ReconfigTiming::default(),
    )
}

/// The router-to-router channel from `src` to `dst` coordinates.
fn key_between(net: &Network, grid: &Grid, src: Coord, dst: Coord) -> ChannelKey {
    let (s, d) = (grid.router(src), grid.router(dst));
    net.spec()
        .channels
        .iter()
        .find(|c| c.src.router == s && c.dst.router == d)
        .map(|c| c.key())
        .expect("adjacent routers share a channel")
}

/// Runs the simulation with the controller in the loop. `inject` is called
/// each cycle before stepping and returns packets to offer. Stops once
/// `quiet_after` passed, the network drained, and the controller settled
/// (or `max_cycles` elapsed).
fn drive(
    net: &mut Network,
    ctl: &mut FaultController,
    max_cycles: u64,
    quiet_after: u64,
    mut inject: impl FnMut(u64) -> Vec<Packet>,
) {
    for _ in 0..max_cycles {
        let now = net.now();
        for p in inject(now) {
            net.inject(p).unwrap();
        }
        net.step();
        ctl.tick(net).unwrap();
        if now >= quiet_after && net.in_flight() == 0 && ctl.settled() {
            break;
        }
    }
}

/// Deterministic closed-loop workload: every node sends to its
/// stride-partner every `period` cycles while `from <= now < until`
/// (absolute simulation cycles).
fn stride_workload(
    from: u64,
    until: u64,
    period: u64,
    skip: impl Fn(NodeId) -> bool + Clone,
) -> impl FnMut(u64) -> Vec<Packet> {
    let mut next_id = 1u64;
    move |now| {
        if now < from || now >= until || now % period != 0 {
            return Vec::new();
        }
        let mut out = Vec::new();
        for i in 0..16u16 {
            let (src, dst) = (NodeId(i), NodeId((i + 5) % 16));
            if skip(src) || skip(dst) {
                continue;
            }
            out.push(Packet::request(next_id, src, dst, 0));
            next_id += 1;
        }
        out
    }
}

fn totals(net: &mut Network) -> NetStats {
    net.totals().stats
}

#[test]
fn transient_fault_delivers_every_packet() {
    let (mut net, grid) = mesh_net();
    // Cut a central link while traffic crosses it; it heals after 60.
    let key = key_between(&net, &grid, Coord::new(1, 1), Coord::new(2, 1));
    let schedule = FaultSchedule::new(vec![FaultEvent {
        at: 40,
        kind: FaultKind::TransientLink { key, duration: 60 },
    }]);
    let mut ctl = controller(&net, grid, schedule);
    // Background stride traffic plus a dedicated every-cycle stream across
    // the doomed link, so flits are on the wire at the strike instant.
    let mut stride = stride_workload(0, 120, 4, |_| false);
    let (a, b) = (grid.node(Coord::new(1, 1)), grid.node(Coord::new(2, 1)));
    let mut next_stream_id = 1_000_000u64;
    drive(&mut net, &mut ctl, 5_000, 150, |now| {
        let mut out = stride(now);
        if (20..80).contains(&now) {
            out.push(Packet::request(next_stream_id, a, b, 0));
            next_stream_id += 1;
        }
        out
    });

    assert!(ctl.settled(), "controller still busy");
    assert_eq!(net.in_flight(), 0, "network failed to drain");
    let s = totals(&mut net);
    assert_eq!(ctl.stats().transients_fired, 1);
    assert!(s.nacks > 0, "fault caught no in-flight packet");
    assert_eq!(s.drops, 0);
    assert_eq!(
        s.packets, s.packets_offered,
        "every offered packet delivered"
    );
    assert!((s.delivery_ratio() - 1.0).abs() < 1e-12);
    assert!(!net.channel_faulted(key), "link healed");
}

#[test]
fn permanent_link_fault_recovers_within_an_epoch() {
    let (mut net, grid) = mesh_net();
    let key = key_between(&net, &grid, Coord::new(1, 1), Coord::new(2, 1));
    let schedule = FaultSchedule::new(vec![FaultEvent {
        at: 200,
        kind: FaultKind::PermanentLink { key },
    }]);
    let mut ctl = controller(&net, grid, schedule);

    // Pre-fault baseline latency on the healthy mesh.
    drive(
        &mut net,
        &mut ctl,
        180,
        100,
        stride_workload(0, 100, 8, |_| false),
    );
    let pre = net.take_epoch().stats;
    assert!(pre.packets > 0 && pre.drops == 0);
    let baseline = pre.avg_packet_latency();

    // Strike and recover under light load.
    drive(
        &mut net,
        &mut ctl,
        2_000,
        400,
        stride_workload(0, 400, 8, |_| false),
    );
    assert!(ctl.settled());
    assert_eq!(ctl.stats().permanent_links_fired, 1);
    let recoveries = &ctl.stats().recoveries;
    assert_eq!(recoveries.len(), 1, "exactly one recovery ran");
    let r = &recoveries[0];
    assert_eq!(r.fault_at, 200);
    assert!(r.disconnected.is_empty(), "mesh stays connected");
    assert!(r.reversed.is_empty(), "mesh links have no adaptable twin");
    assert!(
        r.time_to_recover() <= 200,
        "recovery took {} cycles",
        r.time_to_recover()
    );
    // The degraded tables are live and the dead channel is gone.
    assert!(
        !net.spec().channels.iter().any(|c| c.key() == key),
        "faulted channel removed from the active spec"
    );
    let mid = net.take_epoch().stats;
    assert_eq!(mid.drops, 0);
    assert_eq!(mid.packets, mid.packets_offered);

    // Post-recovery traffic still flows, within 2x the pre-fault latency.
    let s = net.now();
    drive(
        &mut net,
        &mut ctl,
        2_000,
        s + 200,
        stride_workload(s, s + 200, 8, |_| false),
    );
    let post = net.take_epoch().stats;
    assert!(post.packets > 0 && post.drops == 0);
    assert_eq!(post.packets, post.packets_offered);
    assert!(
        post.avg_packet_latency() <= 2.0 * baseline,
        "post-recovery latency {:.2} vs baseline {:.2}",
        post.avg_packet_latency(),
        baseline
    );
}

#[test]
fn router_fault_disconnects_one_node_and_spares_the_rest() {
    let (mut net, grid) = mesh_net();
    let victim_router = grid.router(Coord::new(1, 1));
    let victim = grid.node(Coord::new(1, 1));
    let schedule = FaultSchedule::new(vec![FaultEvent {
        at: 100,
        kind: FaultKind::PermanentRouter {
            router: victim_router,
        },
    }]);
    let mut ctl = controller(&net, grid, schedule);

    // Survivors talk throughout; the victim neither sends nor receives.
    let skip = move |n: NodeId| n == victim;
    drive(
        &mut net,
        &mut ctl,
        3_000,
        300,
        stride_workload(0, 300, 6, skip),
    );

    assert!(ctl.settled());
    assert_eq!(ctl.stats().routers_fired, 1);
    assert_eq!(ctl.disconnected(), vec![victim]);
    assert_eq!(ctl.stats().recoveries.len(), 1);
    assert_eq!(ctl.stats().recoveries[0].disconnected, vec![victim]);
    assert!(net.router_failed(victim_router));

    let s = totals(&mut net);
    assert_eq!(s.drops, 0, "no survivor traffic lost");
    assert_eq!(s.packets, s.packets_offered);
    assert!((s.delivery_ratio() - 1.0).abs() < 1e-12);
}

#[test]
fn packet_to_dead_node_is_dropped_not_stuck() {
    let (mut net, grid) = mesh_net();
    let victim_router = grid.router(Coord::new(3, 3));
    let victim = grid.node(Coord::new(3, 3));
    let schedule = FaultSchedule::new(vec![FaultEvent {
        at: 50,
        kind: FaultKind::PermanentRouter {
            router: victim_router,
        },
    }]);
    let mut ctl = controller(&net, grid, schedule);

    // One packet leaves for the victim right before the router dies.
    let mut fired = false;
    drive(&mut net, &mut ctl, 3_000, 60, move |now| {
        if now == 49 && !fired {
            fired = true;
            vec![Packet::request(1, NodeId(0), victim, 0)]
        } else {
            Vec::new()
        }
    });

    assert!(ctl.settled());
    assert_eq!(net.in_flight(), 0, "doomed packet must not pin the network");
    let s = totals(&mut net);
    assert_eq!(s.packets, 0);
    assert_eq!(s.drops, 1, "packet for the dead node dropped");
    assert_eq!(ctl.stats().dropped, 1);
}

#[test]
fn random_campaign_is_deterministic() {
    let run = |seed: u64| -> (NetStats, u64, u64, u64) {
        let (mut net, grid) = mesh_net();
        let params = ScheduleParams {
            transients: 2,
            permanent_links: 1,
            router_faults: 0,
            window_start: 50,
            window_end: 300,
            min_duration: 20,
            max_duration: 80,
        };
        let schedule =
            FaultSchedule::random(net.spec(), &grid, Rect::new(0, 0, 4, 4), &params, seed);
        let mut ctl = controller(&net, grid, schedule);
        drive(
            &mut net,
            &mut ctl,
            6_000,
            400,
            stride_workload(0, 400, 5, |_| false),
        );
        assert!(ctl.settled(), "campaign (seed {seed}) did not settle");
        let st = ctl.stats();
        (
            totals(&mut net),
            st.retries_queued,
            st.dropped,
            st.recoveries.len() as u64,
        )
    };
    let a = run(11);
    let b = run(11);
    assert_eq!(a, b, "same seed must give identical metrics");
    assert_eq!(a.3, 1, "the permanent link fault triggered one recovery");
}

//! Property test: any single permanent link fault in a mesh or torus
//! region is survivable — the recomputed tables validate (deadlock-free,
//! connected) and closed-loop traffic delivers every packet.
//!
//! The mesh case is exhaustive over every router-to-router channel; the
//! torus case draws seeded random faults (deterministic across runs).

use adaptnoc_faults::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::health::{Watchdog, WatchdogConfig};
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::network::Network;
use adaptnoc_sim::rng::Rng;
use adaptnoc_sim::spec::{ChannelKey, NetworkSpec};
use adaptnoc_topology::prelude::*;

fn rect() -> Rect {
    Rect::new(0, 0, 4, 4)
}

/// Closed loop: stride traffic over the fault window, then drain. Panics
/// (via `unwrap`) if the degraded tables fail validation inside the
/// controller.
fn survives_single_fault(spec: NetworkSpec, grid: Grid, key: ChannelKey) -> (u64, u64, u64) {
    let cfg = SimConfig::baseline();
    let mut net = Network::new(spec, cfg.clone()).unwrap();
    let schedule = FaultSchedule::new(vec![FaultEvent {
        at: 60,
        kind: FaultKind::PermanentLink { key },
    }]);
    let mut ctl = FaultController::new(
        schedule,
        RetryPolicy::default(),
        grid,
        rect(),
        cfg,
        ReconfigTiming::default(),
    );

    // The watchdog replaces a fixed iteration bound: recovery may take as
    // long as it needs, but a wedge fails fast with a stall diagnosis.
    let mut watchdog = Watchdog::new(WatchdogConfig::default());
    let mut next_id = 1u64;
    loop {
        let now = net.now();
        if now < 200 && now.is_multiple_of(8) {
            for i in 0..16u16 {
                net.inject(Packet::request(next_id, NodeId(i), NodeId((i + 5) % 16), 0))
                    .unwrap();
                next_id += 1;
            }
        }
        net.step();
        ctl.tick(&mut net).unwrap();
        if now >= 200 && net.in_flight() == 0 && ctl.settled() {
            break;
        }
        if let Some(report) = watchdog.observe(&net) {
            panic!("recovery wedged for fault {key:?}:\n{report}");
        }
        // The watchdog resets while the network is empty, so a controller
        // that never settles needs its own (generous) backstop.
        assert!(now < 100_000, "controller did not settle for fault {key:?}");
    }
    assert_eq!(
        ctl.stats().recoveries.len(),
        1,
        "exactly one recovery for fault {key:?}"
    );
    assert!(
        ctl.disconnected().is_empty(),
        "single link fault must not disconnect anyone: {key:?}"
    );
    let s = net.totals().stats;
    (s.packets, s.packets_offered, s.drops)
}

fn region_keys(spec: &NetworkSpec, grid: &Grid) -> Vec<ChannelKey> {
    spec.channels
        .iter()
        .filter(|c| {
            let coord = |r: adaptnoc_sim::ids::RouterId| {
                Coord::new(
                    (r.0 % grid.width as u16) as u8,
                    (r.0 / grid.width as u16) as u8,
                )
            };
            rect().contains(coord(c.src.router)) && rect().contains(coord(c.dst.router))
        })
        .map(|c| c.key())
        .collect()
}

#[test]
fn every_single_mesh_link_fault_is_survivable_closed_loop() {
    let grid = Grid::new(4, 4);
    let cfg = SimConfig::baseline();
    let base = mesh_chip(grid, &cfg).unwrap();
    let keys = region_keys(&base, &grid);
    assert_eq!(keys.len(), 48, "4x4 mesh has 48 directed links");
    for key in keys {
        let (packets, offered, drops) = survives_single_fault(base.clone(), grid, key);
        assert_eq!(drops, 0, "no drops for fault {key:?}");
        assert_eq!(
            packets, offered,
            "all packets must deliver around fault {key:?}"
        );
    }
}

#[test]
fn random_torus_link_faults_are_survivable_closed_loop() {
    let grid = Grid::new(4, 4);
    let cfg = SimConfig::adapt_noc();
    let regions = [RegionTopology::new(rect(), TopologyKind::Torus)];
    let base = build_chip_spec(grid, &regions, &cfg).unwrap();
    let keys = region_keys(&base, &grid);
    assert!(
        keys.len() > 48,
        "torus adds wrap links to the region ({} found)",
        keys.len()
    );

    let mut rng = Rng::seed_from_u64(2026);
    let mut pool = keys.clone();
    for _ in 0..10 {
        let key = pool.swap_remove(rng.random_below(pool.len()));
        let cfg = SimConfig::adapt_noc();
        let mut net = Network::new(base.clone(), cfg.clone()).unwrap();
        let schedule = FaultSchedule::new(vec![FaultEvent {
            at: 60,
            kind: FaultKind::PermanentLink { key },
        }]);
        let mut ctl = FaultController::new(
            schedule,
            RetryPolicy::default(),
            grid,
            rect(),
            cfg,
            ReconfigTiming::default(),
        );
        let mut watchdog = Watchdog::new(WatchdogConfig::default());
        let mut next_id = 1u64;
        loop {
            let now = net.now();
            if now < 200 && now.is_multiple_of(8) {
                for i in 0..16u16 {
                    net.inject(Packet::request(next_id, NodeId(i), NodeId((i + 3) % 16), 0))
                        .unwrap();
                    next_id += 1;
                }
            }
            net.step();
            ctl.tick(&mut net).unwrap();
            if now >= 200 && net.in_flight() == 0 && ctl.settled() {
                break;
            }
            if let Some(report) = watchdog.observe(&net) {
                panic!("recovery wedged for fault {key:?}:\n{report}");
            }
            assert!(now < 100_000, "controller did not settle for fault {key:?}");
        }
        assert!(ctl.disconnected().is_empty(), "{key:?} disconnected nodes");
        let s = net.totals().stats;
        assert_eq!(s.drops, 0, "no drops for fault {key:?}");
        assert_eq!(s.packets, s.packets_offered, "all deliver around {key:?}");
    }
}

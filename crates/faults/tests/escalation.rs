//! Acceptance tests for the self-healing escalation ladder.
//!
//! Three seeded end-to-end scenarios:
//!
//! 1. A permanent channel fault wedges a cmesh slow-path drain (the
//!    region's NIs are paused, blocked traffic can never quiesce); the
//!    watchdog detects the stall and rung 2's purge-and-retry unwedges the
//!    drain with zero lost packets.
//! 2. A slow-path drain is started and then abandoned (as if the
//!    controller driving it crashed); rung 3 unpauses the region's NIs
//!    and rolls back to the last known-good spec, again losing nothing.
//! 3. A failed router with traffic committed toward it defeats every
//!    rung (the blocked packets sit on healthy channels, invisible to
//!    purging, and rollback cannot revive a dead router); the guard
//!    declares the stall unrecoverable and renders a flight-recorder
//!    dump.

use adaptnoc_core::reconfig::RegionReconfig;
use adaptnoc_faults::prelude::*;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::flit::Packet;
use adaptnoc_sim::health::WatchdogConfig;
use adaptnoc_sim::ids::{NodeId, RouterId};
use adaptnoc_sim::network::Network;
use adaptnoc_sim::spec::{ChannelKey, NetworkSpec};
use adaptnoc_topology::prelude::*;

fn rect() -> Rect {
    Rect::new(0, 0, 4, 4)
}

fn chip(kind: TopologyKind) -> (NetworkSpec, Grid) {
    let grid = Grid::new(4, 4);
    let spec = build_chip_spec(
        grid,
        &[RegionTopology::new(rect(), kind)],
        &SimConfig::adapt_noc(),
    )
    .unwrap();
    (spec, grid)
}

fn channel_between(spec: &NetworkSpec, src: RouterId, dst: RouterId) -> ChannelKey {
    spec.channels
        .iter()
        .find(|c| c.src.router == src && c.dst.router == dst)
        .map(|c| c.key())
        .expect("channel exists")
}

/// A fast-reacting guard configuration so the tests stay short.
fn guard_config(window: u64, grace: u64, max_rounds: u32) -> GuardConfig {
    GuardConfig {
        watchdog: WatchdogConfig {
            window,
            check_interval: 32,
            max_packet_age: None,
        },
        grace,
        max_rounds,
        recorder_capacity: 128,
    }
}

/// Scenario 1: permanent fault during a cmesh slow-path drain. The drain
/// pauses the region's NIs and waits for full quiescence, which the
/// blocked packets behind the faulted channel can never provide. Rung 1
/// (re-route) is harmless but useless — the fallback is the same mesh
/// routing function — and rung 2's purge reaps the blocked packets into
/// the controller's NACK/retry machinery, letting the drain finish and
/// the queued traffic (including every retry) deliver over the cmesh.
#[test]
fn wedged_cmesh_drain_is_recovered_by_purge_and_retry() {
    let (mesh, grid) = chip(TopologyKind::Mesh);
    let (cmesh, _) = chip(TopologyKind::Cmesh);
    let cfg = SimConfig::adapt_noc();
    let timing = ReconfigTiming::default();
    let mut net = Network::new(mesh.clone(), cfg.clone()).unwrap();
    let guard = HealthGuard::new(
        &mut net,
        rect(),
        timing,
        mesh.tables.clone(),
        guard_config(400, 250, 2),
    );
    let mut ctl = FaultController::new(
        FaultSchedule::new(vec![]),
        RetryPolicy::default(),
        grid,
        rect(),
        cfg,
        timing,
    );
    ctl.attach_guard(guard);

    // The wedge: an eastbound row-1 channel that the N4 -> N7 stream
    // crosses under XY routing, and that the cmesh target does not keep.
    let key = channel_between(&mesh, RouterId(5), RouterId(6));

    let mut rc: Option<RegionReconfig> = None;
    let mut next_id = 1u64;
    for _ in 0..8_000u64 {
        let now = net.now();
        if now < 100 && now.is_multiple_of(3) {
            net.inject(Packet::request(next_id, NodeId(4), NodeId(7), 0))
                .unwrap();
            next_id += 1;
        }
        if now == 40 {
            // Packets mid-allocation across the channel come back NACKed;
            // hand them straight to the retry path so nothing is lost.
            for p in net.set_channel_fault(key, true).unwrap() {
                net.inject_retry(p, 1).unwrap();
            }
        }
        if now == 60 {
            rc = Some(RegionReconfig::start(
                &net,
                &grid,
                rect(),
                cmesh.clone(),
                None,
                timing,
            ));
        }
        net.step();
        if let Some(r) = &mut rc {
            if r.tick(&mut net, &grid).unwrap() {
                rc = None;
            }
        }
        ctl.tick(&mut net).unwrap();
        if now > 500 && rc.is_none() && net.in_flight() == 0 && ctl.settled() {
            break;
        }
    }

    assert!(rc.is_none(), "the wedged drain must complete");
    assert_eq!(net.in_flight(), 0, "everything must drain");
    let s = net.totals().stats;
    assert_eq!(s.drops, 0, "zero lost packets");
    assert_eq!(
        s.packets, s.packets_offered,
        "every offered packet delivers"
    );
    assert_eq!(s.packets, next_id - 1);
    assert!(s.nacks > 0, "the purge NACKed the blocked packets");
    let g = ctl.stats().guard;
    assert_eq!(g.watchdog_fires, 1, "one stall episode");
    assert_eq!(g.reroutes, 1, "rung 1 engaged once");
    assert!(g.purged_packets >= 1, "rung 2 reaped the wedge");
    assert_eq!(g.rollbacks, 0, "rung 3 never needed");
    assert_eq!(g.recoveries, 1, "the episode ended in recovery");
    // The cmesh actually went live (its concentration gates 12 routers).
    assert_eq!(net.spec().active_routers(), 4);
}

/// Scenario 2: a slow-path drain started and abandoned mid-flight leaves
/// the region's NIs paused with traffic queued behind them. Purging can't
/// help (nothing is blocked on a faulted channel), so the ladder reaches
/// rung 3: unpause the NIs and roll back to the last known-good spec.
#[test]
fn abandoned_drain_is_recovered_by_rollback() {
    let (mesh, grid) = chip(TopologyKind::Mesh);
    let (cmesh, _) = chip(TopologyKind::Cmesh);
    let cfg = SimConfig::adapt_noc();
    let timing = ReconfigTiming::default();
    let mut net = Network::new(mesh.clone(), cfg).unwrap();
    let mut guard = HealthGuard::new(
        &mut net,
        rect(),
        timing,
        mesh.tables.clone(),
        guard_config(300, 200, 2),
    );

    // Twelve two-flit replies per node: the NI queues (24 flits deep, one
    // flit streamed per cycle) are still well stocked when the drain
    // pauses them at cycle 18, so traffic is provably trapped behind the
    // abandoned reconfiguration.
    let mut next_id = 1u64;
    for i in 0..16u16 {
        for _ in 0..12 {
            net.inject(Packet::reply(next_id, NodeId(i), NodeId((i + 5) % 16), 0))
                .unwrap();
            next_id += 1;
        }
    }
    let mut rc = Some(RegionReconfig::start(
        &net,
        &grid,
        rect(),
        cmesh,
        None,
        timing,
    ));

    let mut cycles = 0u64;
    loop {
        net.step();
        // Drive the reconfiguration just past its notification stage (the
        // NIs are now paused), then abandon it — the controller "crashed".
        if net.now() < 25 {
            if let Some(r) = &mut rc {
                r.tick(&mut net, &grid).unwrap();
            }
        } else {
            rc = None;
        }
        for p in guard.tick(&mut net, &grid).unwrap() {
            net.inject_retry(p, 1).unwrap();
        }
        if net.in_flight() == 0 && guard.rung() == 0 && net.now() > 100 {
            break;
        }
        cycles += 1;
        assert!(cycles < 20_000, "recovery must complete");
    }

    let s = net.totals().stats;
    assert_eq!(s.drops, 0, "zero lost packets");
    assert_eq!(s.packets, s.packets_offered);
    assert_eq!(s.packets, next_id - 1);
    let g = *guard.stats();
    assert_eq!(g.watchdog_fires, 1);
    assert_eq!(g.rollbacks, 1, "rung 3 rolled the region back");
    assert_eq!(g.recoveries, 1);
    assert!(!guard.unrecoverable());
}

/// Scenario 3: traffic committed toward a failed router sits on healthy
/// channels — invisible to rung 2's purge — and no table swap or rollback
/// revives a dead router, so every rung fails. The guard must declare the
/// stall unrecoverable and render a post-mortem dump.
#[test]
fn dead_router_exhausts_the_ladder_and_dumps() {
    let (mesh, grid) = chip(TopologyKind::Mesh);
    let cfg = SimConfig::adapt_noc();
    let timing = ReconfigTiming::default();
    let mut net = Network::new(mesh.clone(), cfg).unwrap();
    let mut guard = HealthGuard::new(
        &mut net,
        rect(),
        timing,
        mesh.tables.clone(),
        guard_config(200, 150, 1),
    );

    // R5 dies before any traffic exists, so nothing is purged here; the
    // N1 -> N9 stream then wedges at R1 trying to route north through it.
    let purged = net.fail_router(RouterId(5));
    assert!(purged.is_empty());
    for i in 0..4u64 {
        net.inject(Packet::request(i + 1, NodeId(1), NodeId(9), 0))
            .unwrap();
    }

    let mut cycles = 0u64;
    while !guard.unrecoverable() {
        net.step();
        for p in guard.tick(&mut net, &grid).unwrap() {
            net.inject_retry(p, 1).unwrap();
        }
        cycles += 1;
        assert!(cycles < 20_000, "the ladder must exhaust");
    }

    let g = *guard.stats();
    assert_eq!(g.watchdog_fires, 1);
    assert_eq!(g.reroutes, 1, "rung 1 was tried");
    assert_eq!(g.rollbacks, 1, "rung 3 was tried");
    assert_eq!(g.recoveries, 0, "nothing recovered");
    assert_eq!(g.dumps, 1, "one post-mortem dump");
    let dump = guard.last_dump().expect("dump rendered");
    let reason = dump.get("reason").and_then(|v| v.as_str()).unwrap();
    assert!(
        reason.contains("unrecoverable"),
        "dump explains itself: {reason}"
    );
    assert!(dump.get("snapshot").is_some(), "dump embeds the snapshot");
    assert!(dump.get("recent_events").is_some());
    // The wedged packets are still accounted for — stood down, not lost.
    assert!(net.in_flight() > 0);
    assert_eq!(net.totals().stats.drops, 0);
}

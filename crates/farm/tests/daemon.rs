//! End-to-end daemon tests: real `adaptnoc-farmd` processes, real
//! sockets, real signals.
//!
//! The acceptance bar (docs/FARM.md): a daemon killed with SIGKILL
//! mid-job must, after restart, finish the job from its checkpoint and
//! produce results byte-identical to an uninterrupted run; a SIGTERM
//! under load must exit 0 with every job either completed or persisted
//! and resumable.

use adaptnoc_bench::jsonrows::rows_json;
use adaptnoc_bench::prelude::scenario_sweep_par;
use adaptnoc_bench::submit::FarmClient;
use adaptnoc_sim::json::Value;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// 12 quick points on the small mesh: big enough to kill mid-campaign,
/// small enough to finish in test time.
const CKPT_SCN: &str = "grid 4 4; seed 3; warmup 2K; duration 100K; epoch 50K;\n\
                        sweep load 0.02 to 0.13 step 0.01;\n\
                        t=0 uniform load sweep poisson;\n";

/// A single point that runs effectively forever (cancel/deadline prey).
const ENDLESS_SCN: &str = "grid 4 4; seed 5; warmup 1K; duration 500M; epoch 1M;\n\
                           t=0 uniform load 0.05 poisson;\n";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adaptnoc-farmd-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Kills the daemon on drop so an assertion failure cannot leak a
/// process (a leaked child would also hold the test harness's output
/// pipe open and hang `cargo test` itself).
struct Farmd(Child);

impl Drop for Farmd {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_farmd(data_dir: &Path) -> Farmd {
    // A restart must not let `wait_endpoint` race against the stale
    // endpoint file a SIGKILLed predecessor left behind.
    let _ = std::fs::remove_file(data_dir.join("endpoint"));
    Farmd(
        Command::new(env!("CARGO_BIN_EXE_adaptnoc-farmd"))
            .args([
                "--listen",
                "127.0.0.1:0",
                "--data-dir",
                data_dir.to_str().unwrap(),
                "--workers",
                "2",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn adaptnoc-farmd"),
    )
}

fn wait_endpoint(data_dir: &Path) -> String {
    let path = data_dir.join("endpoint");
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(text) = std::fs::read_to_string(&path) {
            if !text.trim().is_empty() {
                return text.trim().to_string();
            }
        }
        assert!(
            Instant::now() < deadline,
            "farmd never advertised an endpoint"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn snapshot(client: &mut FarmClient, id: u64) -> Value {
    let resp = client
        .request(&Value::Object(vec![
            ("op".to_string(), Value::String("status".to_string())),
            ("id".to_string(), Value::Number(id as f64)),
        ]))
        .expect("status request");
    resp.get("jobs")
        .and_then(Value::as_array)
        .and_then(|j| j.first())
        .cloned()
        .expect("status carries the job")
}

fn state_of(snap: &Value) -> String {
    snap.get("state")
        .and_then(Value::as_str)
        .unwrap_or("?")
        .to_string()
}

fn points_done(snap: &Value) -> u64 {
    snap.get("points_done").and_then(Value::as_u64).unwrap_or(0)
}

#[test]
fn sigkill_mid_job_then_restart_produces_byte_identical_results() {
    let dir = scratch("sigkill");
    let mut child = spawn_farmd(&dir);
    let addr = wait_endpoint(&dir);

    let mut client = FarmClient::connect(&addr).unwrap();
    let id = client.submit_scenario("ckpt", CKPT_SCN).unwrap();

    // Let it make progress, then kill it the hard way.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let snap = snapshot(&mut client, id);
        if points_done(&snap) >= 1 {
            break;
        }
        assert_ne!(state_of(&snap), "failed", "{snap:?}");
        assert!(Instant::now() < deadline, "no progress before kill");
        std::thread::sleep(Duration::from_millis(20));
    }
    child.0.kill().expect("SIGKILL farmd");
    let _ = child.0.wait();
    drop(client);

    // The journal remembers the job as non-terminal.
    let replay = adaptnoc_farm::journal::replay(&dir).unwrap();
    assert_eq!(replay.jobs.len(), 1);
    assert!(
        !replay.jobs[0].state.is_terminal(),
        "SIGKILL left {:?}",
        replay.jobs[0].state
    );

    // Restart: the daemon requeues and resumes from the point journal.
    let child2 = spawn_farmd(&dir);
    let addr2 = wait_endpoint(&dir);
    let mut client2 = FarmClient::connect(&addr2).unwrap();
    let snap = client2.wait(id, Duration::from_millis(100)).unwrap();
    assert_eq!(state_of(&snap), "completed", "{snap:?}");

    let rows = client2.result_rows(id).unwrap();
    let expected = scenario_sweep_par("ckpt", CKPT_SCN, 1).unwrap();
    assert_eq!(
        rows_json(&rows).to_string_compact(),
        rows_json(&expected).to_string_compact(),
        "resumed campaign must be byte-identical to an uninterrupted one"
    );

    drop(child2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sigterm_under_load_exits_cleanly_and_the_restart_finishes_everything() {
    let dir = scratch("sigterm");
    let mut child = spawn_farmd(&dir);
    let addr = wait_endpoint(&dir);

    let mut client = FarmClient::connect(&addr).unwrap();
    let running = client.submit_scenario("ckpt", CKPT_SCN).unwrap();
    let queued_a = client.submit_scenario("ckpt", CKPT_SCN).unwrap();
    let queued_b = client.submit_scenario("ckpt", CKPT_SCN).unwrap();

    // Wait for the first job to be visibly running, then SIGTERM.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let snap = snapshot(&mut client, running);
        if state_of(&snap) == "running" && points_done(&snap) >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "first job never ran");
        std::thread::sleep(Duration::from_millis(20));
    }
    let status = Command::new("kill")
        .arg(child.0.id().to_string())
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let exit = child.0.wait().expect("farmd exit status");
    assert!(
        exit.success(),
        "graceful shutdown must exit 0, got {exit:?}"
    );
    drop(client);

    // Everything is persisted: nothing terminal-failed, nothing lost.
    let replay = adaptnoc_farm::journal::replay(&dir).unwrap();
    assert_eq!(replay.jobs.len(), 3);
    for job in &replay.jobs {
        assert!(
            !matches!(job.state, adaptnoc_farm::job::JobState::Failed),
            "shutdown failed job {}: {:?}",
            job.id,
            job.state
        );
    }

    // The restarted daemon drains the backlog to completion.
    let child2 = spawn_farmd(&dir);
    let addr2 = wait_endpoint(&dir);
    let mut client2 = FarmClient::connect(&addr2).unwrap();
    for id in [running, queued_a, queued_b] {
        let snap = client2.wait(id, Duration::from_millis(100)).unwrap();
        assert_eq!(state_of(&snap), "completed", "job {id}: {snap:?}");
    }

    drop(child2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn farmctl_submits_watches_cancels_and_reports() {
    let dir = scratch("farmctl");
    let child = spawn_farmd(&dir);
    let addr = wait_endpoint(&dir);
    let farmctl = env!("CARGO_BIN_EXE_farmctl");

    // Submit an endless scenario from a file, farmctl-style.
    let scn_path = dir.join("endless.scn");
    std::fs::write(&scn_path, ENDLESS_SCN).unwrap();
    let out = Command::new(farmctl)
        .args([
            "--addr",
            &addr,
            "submit",
            scn_path.to_str().unwrap(),
            "--name",
            "endless",
        ])
        .output()
        .expect("farmctl submit");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let id: u64 = String::from_utf8_lossy(&out.stdout).trim().parse().unwrap();

    // Cancel it mid-flight; status must converge to cancelled.
    let mut client = FarmClient::connect(&addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if state_of(&snapshot(&mut client, id)) == "running" {
            break;
        }
        assert!(Instant::now() < deadline, "job never started");
        std::thread::sleep(Duration::from_millis(20));
    }
    let out = Command::new(farmctl)
        .args(["--addr", &addr, "cancel", &id.to_string()])
        .output()
        .expect("farmctl cancel");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let snap = snapshot(&mut client, id);
        if state_of(&snap) == "cancelled" {
            break;
        }
        assert!(Instant::now() < deadline, "cancel never landed: {snap:?}");
        std::thread::sleep(Duration::from_millis(20));
    }

    // status renders the cancelled job; ping answers.
    let out = Command::new(farmctl)
        .args(["--addr", &addr, "status"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("cancelled"));
    let out = Command::new(farmctl)
        .args(["--addr", &addr, "ping"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("pong"));

    // Malformed requests get an error frame, not a dead daemon.
    let mut raw = FarmClient::connect(&addr).unwrap();
    let resp = raw
        .request(&Value::Object(vec![(
            "op".to_string(),
            Value::String("warp".to_string()),
        )]))
        .unwrap();
    assert_eq!(resp.get("type").and_then(Value::as_str), Some("error"));
    let resp = raw
        .request(&Value::Object(vec![(
            "op".to_string(),
            Value::String("ping".to_string()),
        )]))
        .unwrap();
    assert_eq!(
        resp.get("type").and_then(Value::as_str),
        Some("pong"),
        "the connection survives a bad request"
    );

    drop(child);
    let _ = std::fs::remove_dir_all(&dir);
}

//! The bounded admission queue: three strict priority lanes behind one
//! capacity, so a flood of background submissions sheds load instead of
//! exhausting memory, and an interactive job still jumps the line.

use crate::job::{JobId, Priority};
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later.
    Full,
    /// The queue stopped admitting (drain or shutdown).
    Closed,
}

/// What a blocking pop observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pop {
    /// A job to run.
    Job(JobId),
    /// Nothing arrived within the timeout; poll again.
    Empty,
    /// The queue is closed — workers should exit.
    Closed,
}

#[derive(Debug, Default)]
struct Lanes {
    lanes: [VecDeque<JobId>; 3],
    closed: bool,
}

impl Lanes {
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }
}

/// A bounded, closeable, three-lane FIFO.
#[derive(Debug)]
pub struct AdmissionQueue {
    inner: Mutex<Lanes>,
    cv: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    /// An empty queue admitting at most `capacity` jobs at once.
    #[must_use]
    pub fn new(capacity: usize) -> AdmissionQueue {
        AdmissionQueue {
            inner: Mutex::new(Lanes::default()),
            cv: Condvar::new(),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lanes> {
        // A panic while holding the lock poisons it; the queue's state is
        // a plain VecDeque set that is valid at every step, so recover.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Admits a job, or refuses with [`PushError`].
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close).
    pub fn push(&self, id: JobId, priority: Priority) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.len() >= self.capacity {
            return Err(PushError::Full);
        }
        inner.lanes[priority.lane()].push_back(id);
        drop(inner);
        self.cv.notify_one();
        Ok(())
    }

    /// Waits up to `timeout` for a job, draining lanes high-to-low.
    pub fn pop_timeout(&self, timeout: Duration) -> Pop {
        let mut inner = self.lock();
        loop {
            for lane in &mut inner.lanes {
                if let Some(id) = lane.pop_front() {
                    return Pop::Job(id);
                }
            }
            if inner.closed {
                return Pop::Closed;
            }
            let (guard, wait) = self
                .cv
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() {
                // One last drain so a notify racing the timeout is not lost.
                for lane in &mut inner.lanes {
                    if let Some(id) = lane.pop_front() {
                        return Pop::Job(id);
                    }
                }
                return if inner.closed {
                    Pop::Closed
                } else {
                    Pop::Empty
                };
            }
        }
    }

    /// Removes a queued job (cancel before a worker takes it). Returns
    /// whether it was still queued.
    pub fn remove(&self, id: JobId) -> bool {
        let mut inner = self.lock();
        for lane in &mut inner.lanes {
            if let Some(pos) = lane.iter().position(|&q| q == id) {
                lane.remove(pos);
                return true;
            }
        }
        false
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stops admission and wakes every waiting worker. Queued entries
    /// stay poppable; [`pop_timeout`](Self::pop_timeout) reports
    /// [`Pop::Closed`] only once the lanes are dry — except that a
    /// shutdown wants workers to exit *without* draining, which callers
    /// get by checking their own shutdown flag before popping.
    pub fn close(&self) {
        self.lock().closed = true;
        self.cv.notify_all();
    }

    /// Whether [`close`](Self::close) happened.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_drain_high_to_low_within_capacity() {
        let q = AdmissionQueue::new(4);
        q.push(1, Priority::Low).unwrap();
        q.push(2, Priority::Normal).unwrap();
        q.push(3, Priority::High).unwrap();
        q.push(4, Priority::Normal).unwrap();
        assert_eq!(q.push(5, Priority::High), Err(PushError::Full));
        let order: Vec<_> = (0..4)
            .map(|_| q.pop_timeout(Duration::from_millis(10)))
            .collect();
        assert_eq!(
            order,
            vec![Pop::Job(3), Pop::Job(2), Pop::Job(4), Pop::Job(1)]
        );
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Empty);
    }

    #[test]
    fn close_refuses_pushes_and_drains_then_reports_closed() {
        let q = AdmissionQueue::new(4);
        q.push(1, Priority::Normal).unwrap();
        q.close();
        assert_eq!(q.push(2, Priority::Normal), Err(PushError::Closed));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Job(1));
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Closed);
    }

    #[test]
    fn remove_unqueues_a_pending_job() {
        let q = AdmissionQueue::new(4);
        q.push(1, Priority::Normal).unwrap();
        q.push(2, Priority::Normal).unwrap();
        assert!(q.remove(1));
        assert!(!q.remove(1), "already gone");
        assert_eq!(q.pop_timeout(Duration::from_millis(1)), Pop::Job(2));
    }

    #[test]
    fn blocked_pop_wakes_on_push_from_another_thread() {
        let q = std::sync::Arc::new(AdmissionQueue::new(4));
        let q2 = q.clone();
        let t = std::thread::spawn(move || q2.pop_timeout(Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(7, Priority::Normal).unwrap();
        assert_eq!(t.join().unwrap(), Pop::Job(7));
    }
}

//! The daemon: listener, connection handlers, worker/reaper threads,
//! and the graceful-shutdown choreography.
//!
//! On `SIGTERM`/`SIGINT` the daemon stops admitting, fires every running
//! job's cancel token with the `Shutdown` cause (workers checkpoint at
//! the next epoch boundary and journal `interrupted`), waits up to
//! `drain_grace_secs` for the workers, flushes telemetry, and exits 0.
//! A restarted daemon replays the job journal, requeues everything
//! non-terminal, and each re-run resumes from its per-job checkpoint —
//! so even `kill -9` loses at most the points in flight.

use crate::config::FarmConfig;
use crate::job::JobState;
use crate::proto::{self, Request};
use crate::worker::{worker_loop, FarmState, ScenarioRunner};
use adaptnoc_bench::prelude::atomic_write;
use adaptnoc_bench::submit::write_frame;
use adaptnoc_sim::json::Value;
use std::io::{self, Read, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Unix signal handling: a raw `signal(2)` registration that flips an
/// atomic — the only unsafe code in the workspace, kept to the smallest
/// possible surface because the standard library offers no signal API.
#[cfg(unix)]
pub mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Set by `SIGINT`/`SIGTERM`; polled by the accept loop.
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    /// Installs the handlers (SIGINT = 2, SIGTERM = 15).
    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(2, handler);
            signal(15, handler);
        }
    }
}

enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener, PathBuf),
}

enum Conn {
    Tcp(std::net::TcpStream),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

impl Listener {
    fn bind(listen: &str) -> io::Result<(Listener, String)> {
        if let Some(path) = listen.strip_prefix("unix:") {
            #[cfg(unix)]
            {
                let path = PathBuf::from(path);
                // A previous unclean death leaves the socket file behind.
                let _ = std::fs::remove_file(&path);
                let l = std::os::unix::net::UnixListener::bind(&path)?;
                l.set_nonblocking(true)?;
                let endpoint = format!("unix:{}", path.display());
                return Ok((Listener::Unix(l, path), endpoint));
            }
            #[cfg(not(unix))]
            {
                let _ = path;
                return Err(io::Error::new(
                    io::ErrorKind::Unsupported,
                    "unix sockets are unavailable on this platform",
                ));
            }
        }
        let hostport = listen.strip_prefix("tcp://").unwrap_or(listen);
        let l = TcpListener::bind(hostport)?;
        l.set_nonblocking(true)?;
        let endpoint = format!("tcp://{}", l.local_addr()?);
        Ok((Listener::Tcp(l), endpoint))
    }

    fn accept(&self) -> io::Result<Option<Conn>> {
        let conn = match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => Conn::Tcp(s),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
            #[cfg(unix)]
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => Conn::Unix(s),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) => return Err(e),
            },
        };
        Ok(Some(conn))
    }

    fn cleanup(&self) {
        #[cfg(unix)]
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Conn {
    fn set_read_timeout(&self, d: Duration) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(Some(d)),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(Some(d)),
        }
    }
}

/// A bound, replayed, ready-to-run daemon.
pub struct Server {
    state: Arc<FarmState>,
    listener: Listener,
    endpoint: String,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("endpoint", &self.endpoint)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Binds the listener, replays the job journal (requeueing
    /// non-terminal jobs), and advertises the resolved endpoint in
    /// `<data_dir>/endpoint`.
    ///
    /// # Errors
    ///
    /// Bind, journal, or data-directory I/O errors.
    pub fn start(cfg: FarmConfig) -> io::Result<Server> {
        let state = FarmState::new(cfg)?;
        let (listener, endpoint) = Listener::bind(&state.cfg.listen)?;
        atomic_write(&state.cfg.data_dir.join("endpoint"), &endpoint)?;
        Ok(Server {
            state,
            listener,
            endpoint,
        })
    }

    /// The advertised address (`tcp://127.0.0.1:PORT` or `unix:PATH`).
    #[must_use]
    pub fn endpoint(&self) -> &str {
        &self.endpoint
    }

    /// The shared state (tests poke it directly).
    #[must_use]
    pub fn state(&self) -> &Arc<FarmState> {
        &self.state
    }

    /// Runs until `stop` turns true (normally wired to
    /// [`signals::SHUTDOWN`]), then performs the graceful shutdown.
    ///
    /// # Errors
    ///
    /// Fatal accept-loop I/O errors; a clean shutdown returns `Ok`.
    pub fn run(self, stop: &'static AtomicBool) -> io::Result<()> {
        let state = &self.state;
        let workers: Vec<_> = (0..state.cfg.workers)
            .map(|i| {
                let st = state.clone();
                std::thread::Builder::new()
                    .name(format!("farm-worker-{i}"))
                    .spawn(move || worker_loop(&st, &ScenarioRunner))
                    .expect("spawn worker thread")
            })
            .collect();
        let reaper = {
            let st = state.clone();
            std::thread::Builder::new()
                .name("farm-reaper".to_string())
                .spawn(move || {
                    while !st.shutdown.load(Ordering::Acquire) {
                        st.reap_deadlines();
                        std::thread::sleep(Duration::from_millis(100));
                    }
                })
                .expect("spawn reaper thread")
        };

        while !stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok(Some(conn)) => {
                    let st = state.clone();
                    let _ = std::thread::Builder::new()
                        .name("farm-conn".to_string())
                        .spawn(move || handle_conn(&st, conn, stop));
                }
                Ok(None) => std::thread::sleep(Duration::from_millis(20)),
                Err(e) => {
                    self.listener.cleanup();
                    return Err(e);
                }
            }
        }

        // Graceful shutdown: stop admitting, checkpoint, persist, exit.
        state.begin_shutdown();
        let grace = Duration::from_secs(state.cfg.drain_grace_secs.max(1));
        let deadline = Instant::now() + grace;
        for w in workers {
            let budget = deadline.saturating_duration_since(Instant::now());
            if wait_join(&w, budget) {
                let _ = w.join();
            }
            // A worker that outlives the grace dies with the process;
            // its job's last journaled state is `running`, which the
            // next daemon treats exactly like `interrupted`.
        }
        let _ = reaper.join();
        state.write_daemon_telemetry();
        let _ = std::fs::remove_file(state.cfg.data_dir.join("endpoint"));
        self.listener.cleanup();
        Ok(())
    }
}

/// Polls a join handle for up to `budget`. Returns whether it finished.
fn wait_join<T>(handle: &std::thread::JoinHandle<T>, budget: Duration) -> bool {
    let deadline = Instant::now() + budget;
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    true
}

/// One connection's request loop. Every error path answers with an
/// `error` frame where possible — a malformed client must never take
/// the daemon down.
fn handle_conn(state: &Arc<FarmState>, mut conn: Conn, stop: &AtomicBool) {
    if conn.set_read_timeout(Duration::from_millis(250)).is_err() {
        return;
    }
    let stopped = || stop.load(Ordering::SeqCst) || state.shutdown.load(Ordering::Acquire);
    loop {
        let frame = match proto::read_frame_patient(&mut conn, &stopped) {
            Ok(Some(v)) => v,
            Ok(None) => return,
            Err(e) => {
                let _ = write_frame(&mut conn, &proto::error(&format!("bad frame: {e}")));
                return;
            }
        };
        let req = match Request::parse(&frame) {
            Ok(r) => r,
            Err(msg) => {
                if write_frame(&mut conn, &proto::error(&msg)).is_err() {
                    return;
                }
                continue;
            }
        };
        let ok = match req {
            Request::Watch(id) => stream_watch(state, &mut conn, id, &stopped),
            req => {
                let resp = dispatch(state, req, &stopped);
                write_frame(&mut conn, &resp).is_ok()
            }
        };
        if !ok {
            return;
        }
    }
}

fn dispatch(state: &Arc<FarmState>, req: Request, stopped: &dyn Fn() -> bool) -> Value {
    match req {
        Request::Ping => {
            let mut fields = vec![("type".to_string(), Value::String("pong".to_string()))];
            fields.extend(state.stats());
            Value::Object(fields)
        }
        Request::Submit {
            name,
            scenario,
            priority,
            deadline_secs,
            threads,
        } => {
            let spec = crate::job::JobSpec {
                name,
                scenario,
                priority,
                deadline_secs,
                threads,
            };
            match state.submit(spec) {
                Ok(id) => proto::accepted(id),
                Err((reason, retry_after_ms)) => proto::rejected(&reason, retry_after_ms),
            }
        }
        Request::Status(Some(id)) => match state.snapshot(id) {
            Some(s) => proto::status(vec![s.to_json()]),
            None => proto::error(&format!("no such job {id}")),
        },
        Request::Status(None) => proto::status(
            state
                .snapshot_all()
                .iter()
                .map(crate::job::JobSnapshot::to_json)
                .collect(),
        ),
        Request::Cancel(id) => match state.cancel(id) {
            Ok(()) => proto::done(),
            Err(msg) => proto::error(&msg),
        },
        Request::Drain => {
            state.draining.store(true, Ordering::Release);
            while !state.settled() && !stopped() {
                std::thread::sleep(Duration::from_millis(50));
            }
            proto::done()
        }
        Request::Result(id) => fetch_result(state, id),
        Request::Watch(_) => unreachable!("watch is handled by stream_watch"),
    }
}

/// Serves `result` from disk, so completed jobs survive daemon
/// restarts: the record may be a journal replay, but `result.json` is
/// the artifact.
fn fetch_result(state: &Arc<FarmState>, id: u64) -> Value {
    match state.snapshot(id) {
        None => return proto::error(&format!("no such job {id}")),
        Some(s) if s.state != JobState::Completed => {
            return proto::error(&format!("job {id} is {}, not completed", s.state.as_str()))
        }
        Some(_) => {}
    }
    let path = state.job_dir(id).join("result.json");
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => return proto::error(&format!("result file: {e}")),
    };
    match adaptnoc_sim::json::parse(&text) {
        Ok(v) => match v.get("rows") {
            Some(rows) => proto::result(id, rows.clone()),
            None => proto::error("result file has no rows"),
        },
        Err(e) => proto::error(&format!("result file: {e}")),
    }
}

/// Streams a job's events until it reaches a terminal state; ends with
/// a `done` frame. Returns whether the connection is still usable.
fn stream_watch(
    state: &Arc<FarmState>,
    conn: &mut Conn,
    id: u64,
    stopped: &dyn Fn() -> bool,
) -> bool {
    let (rx, terminal) = match state.subscribe(id) {
        Ok(x) => x,
        Err(msg) => return write_frame(conn, &proto::error(&msg)).is_ok(),
    };
    // Lead with a status snapshot so late watchers see where things are.
    let snap = match state.snapshot(id) {
        Some(s) => s,
        None => return write_frame(conn, &proto::error(&format!("no such job {id}"))).is_ok(),
    };
    if write_frame(conn, &proto::status(vec![snap.to_json()])).is_err() {
        return false;
    }
    if terminal {
        return write_frame(conn, &proto::done()).is_ok();
    }
    loop {
        if stopped() {
            return write_frame(conn, &proto::done()).is_ok();
        }
        match rx.recv_timeout(Duration::from_millis(250)) {
            Ok(frame) => {
                let ends = frame
                    .get("kind")
                    .and_then(Value::as_str)
                    .is_some_and(|k| k == "state")
                    && frame
                        .get("state")
                        .and_then(Value::as_str)
                        .and_then(JobState::parse)
                        .is_some_and(JobState::is_terminal);
                if write_frame(conn, &frame).is_err() {
                    return false;
                }
                if ends {
                    return write_frame(conn, &proto::done()).is_ok();
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                // The subscription may have raced the terminal event.
                if state
                    .snapshot(id)
                    .is_some_and(|s| s.state.is_terminal() || s.state == JobState::Interrupted)
                {
                    return write_frame(conn, &proto::done()).is_ok();
                }
            }
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
                return write_frame(conn, &proto::done()).is_ok();
            }
        }
    }
}

//! The logic behind `farmctl`: endpoint resolution, argument parsing,
//! and one function per verb — separated from the binary so the whole
//! CLI is unit-testable against an in-process daemon.
//!
//! Endpoint resolution order: `--addr`, then `$ADAPTNOC_FARM_ADDR`,
//! then the `endpoint` file a running daemon writes in its data
//! directory (`--data-dir`, `$ADAPTNOC__FARM__DATA_DIR`, or the default
//! `farm-data`).

use adaptnoc_bench::submit::FarmClient;
use adaptnoc_sim::json::Value;
use std::io::{self, Write};
use std::path::PathBuf;
use std::time::Duration;

const USAGE: &str = "usage: farmctl [--addr ADDR | --data-dir DIR] VERB ...
verbs:
  submit (FILE | --campaign NAME) [--name N] [--priority high|normal|low]
         [--deadline-secs S] [--threads T]   submit a job, print its id
  status [ID]                                one job or all jobs
  watch ID                                   stream events until terminal
  cancel ID                                  cancel a queued/running job
  drain                                      stop admission, wait for idle
  result ID                                  print a completed job's rows
  ping                                       daemon liveness and stats";

/// Resolves the daemon address (see module docs for the order).
///
/// # Errors
///
/// When no address is given and no endpoint file exists.
pub fn resolve_addr(explicit: Option<&str>, data_dir: Option<&str>) -> io::Result<String> {
    if let Some(a) = explicit {
        return Ok(a.to_string());
    }
    if let Ok(a) = std::env::var("ADAPTNOC_FARM_ADDR") {
        if !a.is_empty() {
            return Ok(a);
        }
    }
    let dir = data_dir
        .map(PathBuf::from)
        .or_else(|| {
            std::env::var("ADAPTNOC__FARM__DATA_DIR")
                .ok()
                .map(PathBuf::from)
        })
        .unwrap_or_else(|| PathBuf::from("farm-data"));
    let path = dir.join("endpoint");
    let text = std::fs::read_to_string(&path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!(
                "no daemon address: give --addr, set ADAPTNOC_FARM_ADDR, \
                 or point --data-dir at a running daemon ({}: {e})",
                path.display()
            ),
        )
    })?;
    Ok(text.trim().to_string())
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .map(|v| Some(v.as_str()))
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn positional(args: &[String]) -> Vec<&String> {
    let mut out = Vec::new();
    let mut skip = false;
    for a in args {
        if skip {
            skip = false;
            continue;
        }
        if a.starts_with("--") {
            skip = true;
            continue;
        }
        out.push(a);
    }
    out
}

/// Runs one `farmctl` invocation. Returns the process exit code.
pub fn run_cli(args: &[String], out: &mut dyn Write) -> i32 {
    match cli(args, out) {
        Ok(()) => 0,
        Err(msg) => {
            let _ = writeln!(out, "farmctl: {msg}");
            1
        }
    }
}

fn cli(args: &[String], out: &mut dyn Write) -> Result<(), String> {
    let addr_flag = flag_value(args, "--addr")?;
    let data_dir = flag_value(args, "--data-dir")?;
    let pos = positional(args);
    let Some(verb) = pos.first() else {
        return Err(format!("no verb\n{USAGE}"));
    };
    let addr = resolve_addr(addr_flag, data_dir).map_err(|e| e.to_string())?;
    let mut client = FarmClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;

    let need_id = || -> Result<u64, String> {
        pos.get(1)
            .ok_or_else(|| format!("{verb} needs a job id"))?
            .parse()
            .map_err(|_| format!("job id must be a number, got `{}`", pos[1]))
    };

    match verb.as_str() {
        "submit" => {
            let mut req = vec![("op".to_string(), Value::String("submit".to_string()))];
            if let Some(c) = flag_value(args, "--campaign")? {
                req.push(("campaign".to_string(), Value::String(c.to_string())));
            } else {
                let file = pos
                    .get(1)
                    .ok_or("submit needs a scenario FILE or --campaign NAME")?;
                let src =
                    std::fs::read_to_string(file).map_err(|e| format!("reading {file}: {e}"))?;
                let name = flag_value(args, "--name")?
                    .map(str::to_string)
                    .unwrap_or_else(|| {
                        PathBuf::from(file)
                            .file_stem()
                            .map_or_else(|| "job".to_string(), |s| s.to_string_lossy().into_owned())
                    });
                req.push(("name".to_string(), Value::String(name)));
                req.push(("scenario".to_string(), Value::String(src)));
            }
            if let Some(n) = flag_value(args, "--name")? {
                if !req.iter().any(|(k, _)| k == "name") {
                    req.push(("name".to_string(), Value::String(n.to_string())));
                }
            }
            if let Some(p) = flag_value(args, "--priority")? {
                req.push(("priority".to_string(), Value::String(p.to_string())));
            }
            if let Some(d) = flag_value(args, "--deadline-secs")? {
                let d: u64 = d.parse().map_err(|_| "--deadline-secs must be a number")?;
                req.push(("deadline_secs".to_string(), Value::Number(d as f64)));
            }
            if let Some(t) = flag_value(args, "--threads")? {
                let t: u64 = t.parse().map_err(|_| "--threads must be a number")?;
                req.push(("threads".to_string(), Value::Number(t as f64)));
            }
            let resp = client
                .request(&Value::Object(req))
                .map_err(|e| e.to_string())?;
            match resp.get("type").and_then(Value::as_str) {
                Some("accepted") => {
                    let id = resp.get("id").and_then(Value::as_u64).unwrap_or(0);
                    let _ = writeln!(out, "{id}");
                    Ok(())
                }
                Some("rejected") => Err(format!(
                    "rejected: {} (retry after {} ms)",
                    resp.get("reason").and_then(Value::as_str).unwrap_or("?"),
                    resp.get("retry_after_ms")
                        .and_then(Value::as_u64)
                        .unwrap_or(0)
                )),
                _ => Err(describe_error(&resp)),
            }
        }
        "status" => {
            let mut req = vec![("op".to_string(), Value::String("status".to_string()))];
            if let Some(id) = pos.get(1) {
                let id: u64 = id.parse().map_err(|_| "job id must be a number")?;
                req.push(("id".to_string(), Value::Number(id as f64)));
            }
            let resp = client
                .request(&Value::Object(req))
                .map_err(|e| e.to_string())?;
            let jobs = resp
                .get("jobs")
                .and_then(Value::as_array)
                .ok_or_else(|| describe_error(&resp))?;
            for j in jobs {
                let _ = writeln!(out, "{}", render_snapshot(j));
            }
            Ok(())
        }
        "watch" => {
            let id = need_id()?;
            client
                .send(&Value::Object(vec![
                    ("op".to_string(), Value::String("watch".to_string())),
                    ("id".to_string(), Value::Number(id as f64)),
                ]))
                .map_err(|e| e.to_string())?;
            loop {
                match client.recv().map_err(|e| e.to_string())? {
                    None => return Ok(()),
                    Some(frame) => match frame.get("type").and_then(Value::as_str) {
                        Some("done") => return Ok(()),
                        Some("error") => return Err(describe_error(&frame)),
                        _ => {
                            let _ = writeln!(out, "{}", frame.to_string_compact());
                        }
                    },
                }
            }
        }
        "cancel" => {
            let id = need_id()?;
            let resp = client
                .request(&Value::Object(vec![
                    ("op".to_string(), Value::String("cancel".to_string())),
                    ("id".to_string(), Value::Number(id as f64)),
                ]))
                .map_err(|e| e.to_string())?;
            match resp.get("type").and_then(Value::as_str) {
                Some("done") => Ok(()),
                _ => Err(describe_error(&resp)),
            }
        }
        "drain" => {
            let resp = client
                .request(&Value::Object(vec![(
                    "op".to_string(),
                    Value::String("drain".to_string()),
                )]))
                .map_err(|e| e.to_string())?;
            match resp.get("type").and_then(Value::as_str) {
                Some("done") => {
                    let _ = writeln!(out, "drained");
                    Ok(())
                }
                _ => Err(describe_error(&resp)),
            }
        }
        "result" => {
            let id = need_id()?;
            let resp = client
                .request(&Value::Object(vec![
                    ("op".to_string(), Value::String("result".to_string())),
                    ("id".to_string(), Value::Number(id as f64)),
                ]))
                .map_err(|e| e.to_string())?;
            match resp.get("type").and_then(Value::as_str) {
                Some("result") => {
                    let rows = resp.get("rows").cloned().unwrap_or(Value::Array(vec![]));
                    let _ = writeln!(out, "{}", rows.to_string_pretty());
                    Ok(())
                }
                _ => Err(describe_error(&resp)),
            }
        }
        "ping" => {
            let resp = client
                .request(&Value::Object(vec![(
                    "op".to_string(),
                    Value::String("ping".to_string()),
                )]))
                .map_err(|e| e.to_string())?;
            match resp.get("type").and_then(Value::as_str) {
                Some("pong") => {
                    let _ = writeln!(out, "{}", resp.to_string_compact());
                    Ok(())
                }
                _ => Err(describe_error(&resp)),
            }
        }
        "wait" => {
            // Undocumented helper for scripts: block until terminal.
            let id = need_id()?;
            let snap = client
                .wait(id, Duration::from_millis(250))
                .map_err(|e| e.to_string())?;
            let _ = writeln!(out, "{}", render_snapshot(&snap));
            match snap.get("state").and_then(Value::as_str) {
                Some("completed") => Ok(()),
                other => Err(format!("job {id} ended {}", other.unwrap_or("?"))),
            }
        }
        other => Err(format!("unknown verb `{other}`\n{USAGE}")),
    }
}

fn describe_error(resp: &Value) -> String {
    resp.get("msg").and_then(Value::as_str).map_or_else(
        || format!("unexpected response {}", resp.to_string_compact()),
        str::to_string,
    )
}

fn render_snapshot(j: &Value) -> String {
    let g = |k: &str| {
        j.get(k).map_or_else(String::new, |v| match v {
            Value::String(s) => s.clone(),
            other => other.to_string_compact(),
        })
    };
    format!(
        "job {:>4}  {:<10} {:<9} attempt {}  points {}/{}  {} {}",
        g("id"),
        g("state"),
        g("priority"),
        g("attempt"),
        g("points_done"),
        g("points_total"),
        g("name"),
        g("detail"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_parsing_and_positionals() {
        let args: Vec<String> = ["--addr", "tcp://h:1", "status", "7"]
            .iter()
            .map(|s| (*s).to_string())
            .collect();
        assert_eq!(flag_value(&args, "--addr").unwrap(), Some("tcp://h:1"));
        assert_eq!(flag_value(&args, "--name").unwrap(), None);
        let pos = positional(&args);
        assert_eq!(pos, ["status", "7"]);
        let dangling: Vec<String> = vec!["--addr".to_string()];
        assert!(flag_value(&dangling, "--addr").is_err());
    }

    #[test]
    fn unknown_verbs_and_missing_args_fail_with_usage() {
        let mut out = Vec::new();
        let code = run_cli(
            &["--addr".to_string(), "tcp://127.0.0.1:1".to_string()],
            &mut out,
        );
        assert_eq!(code, 1);
        assert!(String::from_utf8_lossy(&out).contains("usage"));
    }

    #[test]
    fn resolve_prefers_explicit_addr() {
        assert_eq!(resolve_addr(Some("tcp://x:1"), None).unwrap(), "tcp://x:1");
        let missing = resolve_addr(None, Some("/definitely/not/a/dir"));
        assert!(missing.is_err());
        assert!(missing.unwrap_err().to_string().contains("--addr"));
    }
}

//! The server side of the farm wire protocol.
//!
//! Framing (4-byte big-endian length + UTF-8 JSON) is shared with the
//! independent client implementation in `adaptnoc_bench::submit`; this
//! module adds typed request parsing — defensive, because a malformed
//! payload must produce an `error` response, never a daemon panic — and
//! the response constructors, plus a shutdown-aware frame reader for
//! handler threads sitting on nonblocking sockets.

use crate::job::{JobId, Priority};
use adaptnoc_bench::submit::MAX_FRAME;
use adaptnoc_sim::json::{self, Value};
use std::io::{self, Read};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness / daemon stats probe.
    Ping,
    /// Submit a job: inline scenario source or a named campaign.
    Submit {
        /// Campaign label.
        name: String,
        /// Inline `.scn` source (already resolved for named campaigns).
        scenario: String,
        /// Admission lane.
        priority: Priority,
        /// Per-attempt wall-clock budget override.
        deadline_secs: Option<u64>,
        /// Sweep fan-out override.
        threads: Option<usize>,
    },
    /// Snapshot one job (`Some(id)`) or all jobs (`None`).
    Status(Option<JobId>),
    /// Stream a job's events until it reaches a terminal state.
    Watch(JobId),
    /// Cancel a queued or running job.
    Cancel(JobId),
    /// Stop admitting and block until all work has settled.
    Drain,
    /// Fetch a completed job's result rows.
    Result(JobId),
}

impl Request {
    /// Parses a request frame.
    ///
    /// # Errors
    ///
    /// A human-readable diagnostic (sent back as an `error` response)
    /// for unknown ops, missing fields, or mistyped values.
    pub fn parse(v: &Value) -> Result<Request, String> {
        let op = v
            .get("op")
            .and_then(Value::as_str)
            .ok_or("request has no string `op` field")?;
        let id = || {
            v.get("id")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("op `{op}` needs a numeric `id`"))
        };
        match op {
            "ping" => Ok(Request::Ping),
            "submit" => {
                let scenario = match (v.get("scenario"), v.get("campaign")) {
                    (Some(s), None) => s.as_str().ok_or("`scenario` must be a string")?.to_string(),
                    (None, Some(c)) => {
                        let name = c.as_str().ok_or("`campaign` must be a string")?;
                        crate::corpus::campaign(name)
                            .ok_or_else(|| {
                                format!(
                                    "unknown campaign `{name}` (have: {})",
                                    crate::corpus::names().join(", ")
                                )
                            })?
                            .to_string()
                    }
                    (Some(_), Some(_)) => {
                        return Err("give `scenario` or `campaign`, not both".to_string())
                    }
                    (None, None) => {
                        return Err(
                            "submit needs `scenario` source or a `campaign` name".to_string()
                        )
                    }
                };
                let name = v
                    .get("name")
                    .map(|n| n.as_str().ok_or("`name` must be a string"))
                    .transpose()?
                    .unwrap_or_else(|| v.get("campaign").and_then(Value::as_str).unwrap_or("job"))
                    .to_string();
                let priority = match v.get("priority") {
                    None => Priority::Normal,
                    Some(p) => {
                        let p = p.as_str().ok_or("`priority` must be a string")?;
                        Priority::parse(p)
                            .ok_or_else(|| format!("unknown priority `{p}` (high/normal/low)"))?
                    }
                };
                let deadline_secs = v
                    .get("deadline_secs")
                    .map(|d| d.as_u64().ok_or("`deadline_secs` must be a number"))
                    .transpose()?;
                let threads = v
                    .get("threads")
                    .map(|t| {
                        t.as_u64()
                            .map(|t| t as usize)
                            .ok_or("`threads` must be a number")
                    })
                    .transpose()?;
                Ok(Request::Submit {
                    name,
                    scenario,
                    priority,
                    deadline_secs,
                    threads,
                })
            }
            "status" => match v.get("id") {
                None => Ok(Request::Status(None)),
                Some(_) => Ok(Request::Status(Some(id()?))),
            },
            "watch" => Ok(Request::Watch(id()?)),
            "cancel" => Ok(Request::Cancel(id()?)),
            "drain" => Ok(Request::Drain),
            "result" => Ok(Request::Result(id()?)),
            other => Err(format!("unknown op `{other}`")),
        }
    }
}

/// `{"type":"accepted","id":N}`
#[must_use]
pub fn accepted(id: JobId) -> Value {
    Value::Object(vec![
        ("type".to_string(), Value::String("accepted".to_string())),
        ("id".to_string(), Value::Number(id as f64)),
    ])
}

/// `{"type":"rejected","reason":...,"retry_after_ms":N}`
#[must_use]
pub fn rejected(reason: &str, retry_after_ms: u64) -> Value {
    Value::Object(vec![
        ("type".to_string(), Value::String("rejected".to_string())),
        ("reason".to_string(), Value::String(reason.to_string())),
        (
            "retry_after_ms".to_string(),
            Value::Number(retry_after_ms as f64),
        ),
    ])
}

/// `{"type":"status","jobs":[...]}`
#[must_use]
pub fn status(jobs: Vec<Value>) -> Value {
    Value::Object(vec![
        ("type".to_string(), Value::String("status".to_string())),
        ("jobs".to_string(), Value::Array(jobs)),
    ])
}

/// `{"type":"event",...}` — one watch-stream entry.
#[must_use]
pub fn event(body: &Value) -> Value {
    let mut obj = vec![("type".to_string(), Value::String("event".to_string()))];
    if let Value::Object(fields) = body {
        obj.extend(fields.iter().cloned());
    }
    Value::Object(obj)
}

/// `{"type":"done"}` — end of a watch stream or a finished drain.
#[must_use]
pub fn done() -> Value {
    Value::Object(vec![(
        "type".to_string(),
        Value::String("done".to_string()),
    )])
}

/// `{"type":"error","msg":...}`
#[must_use]
pub fn error(msg: &str) -> Value {
    Value::Object(vec![
        ("type".to_string(), Value::String("error".to_string())),
        ("msg".to_string(), Value::String(msg.to_string())),
    ])
}

/// `{"type":"result","id":N,"rows":[...]}`
#[must_use]
pub fn result(id: JobId, rows: Value) -> Value {
    Value::Object(vec![
        ("type".to_string(), Value::String("result".to_string())),
        ("id".to_string(), Value::Number(id as f64)),
        ("rows".to_string(), rows),
    ])
}

/// Reads one frame from a stream whose reads time out, retrying
/// `WouldBlock`/`TimedOut` (and preserving partial progress, so a frame
/// split across timeout windows still assembles) until a full frame
/// arrives, the peer closes, or `stop` turns true.
///
/// Returns `Ok(None)` on a clean close *or* on stop — either way the
/// handler is done with this connection.
///
/// # Errors
///
/// Torn frames (EOF mid-frame), oversized headers, non-UTF-8 or
/// unparseable JSON, and genuine I/O errors.
pub fn read_frame_patient<R: Read>(
    r: &mut R,
    stop: &dyn Fn() -> bool,
) -> io::Result<Option<Value>> {
    let mut header = [0u8; 4];
    if !fill(r, &mut header, true, stop)? {
        return Ok(None);
    }
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame header claims {len} bytes (max {MAX_FRAME})"),
        ));
    }
    let mut body = vec![0u8; len];
    if !fill(r, &mut body, false, stop)? {
        return Ok(None);
    }
    let text = String::from_utf8(body)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("non-UTF-8 frame: {e}")))?;
    json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad frame JSON: {e}")))
}

/// Fills `buf`, tolerating timeouts. Returns `Ok(false)` when stopped,
/// or on clean EOF if `eof_ok` and no bytes were read yet.
fn fill<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    eof_ok: bool,
    stop: &dyn Fn() -> bool,
) -> io::Result<bool> {
    let mut at = 0;
    while at < buf.len() {
        if stop() {
            return Ok(false);
        }
        match r.read(&mut buf[at..]) {
            Ok(0) => {
                if eof_ok && at == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                ));
            }
            Ok(n) => at += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_req(text: &str) -> Result<Request, String> {
        Request::parse(&json::parse(text).unwrap())
    }

    #[test]
    fn requests_parse_and_malformed_ones_diagnose() {
        assert_eq!(parse_req("{\"op\":\"ping\"}"), Ok(Request::Ping));
        assert_eq!(parse_req("{\"op\":\"status\"}"), Ok(Request::Status(None)));
        assert_eq!(
            parse_req("{\"op\":\"cancel\",\"id\":4}"),
            Ok(Request::Cancel(4))
        );
        match parse_req(
            "{\"op\":\"submit\",\"name\":\"x\",\"scenario\":\"grid 4 4;\",\"priority\":\"high\"}",
        ) {
            Ok(Request::Submit { name, priority, .. }) => {
                assert_eq!(name, "x");
                assert_eq!(priority, Priority::High);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse_req("{\"op\":\"submit\"}")
            .unwrap_err()
            .contains("scenario"));
        assert!(parse_req("{\"op\":\"watch\"}").unwrap_err().contains("id"));
        assert!(parse_req("{\"op\":\"warp\"}")
            .unwrap_err()
            .contains("unknown op"));
        assert!(parse_req("{}").unwrap_err().contains("op"));
        assert!(parse_req("{\"op\":\"submit\",\"campaign\":\"nope\"}")
            .unwrap_err()
            .contains("unknown campaign"));
    }

    #[test]
    fn named_campaigns_resolve_to_corpus_source() {
        match parse_req("{\"op\":\"submit\",\"campaign\":\"latency_throughput\"}") {
            Ok(Request::Submit { name, scenario, .. }) => {
                assert_eq!(name, "latency_throughput");
                assert!(scenario.contains("sweep load"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn patient_reader_assembles_frames_split_by_timeouts() {
        // A reader that yields WouldBlock between every byte.
        struct Trickle {
            data: Vec<u8>,
            at: usize,
            parched: bool,
        }
        impl Read for Trickle {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.at >= self.data.len() {
                    return Ok(0);
                }
                if self.parched {
                    self.parched = false;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "wait"));
                }
                self.parched = true;
                buf[0] = self.data[self.at];
                self.at += 1;
                Ok(1)
            }
        }
        let v = accepted(9);
        let mut data = Vec::new();
        adaptnoc_bench::submit::write_frame(&mut data, &v).unwrap();
        let mut r = Trickle {
            data,
            at: 0,
            parched: false,
        };
        let got = read_frame_patient(&mut r, &|| false).unwrap().unwrap();
        assert_eq!(got, v);
        assert!(read_frame_patient(&mut r, &|| false).unwrap().is_none());
    }

    #[test]
    fn patient_reader_stops_when_told() {
        struct Starve;
        impl Read for Starve {
            fn read(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::new(io::ErrorKind::WouldBlock, "nothing"))
            }
        }
        assert!(read_frame_patient(&mut Starve, &|| true).unwrap().is_none());
    }
}

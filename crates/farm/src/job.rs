//! The job model: what a client submits, how it is prioritized, the
//! lifecycle it moves through, and the events it emits along the way.
//!
//! The lifecycle state machine (documented in `docs/FARM.md`):
//!
//! ```text
//! queued ──▶ running ──▶ completed
//!   │           │  ├───▶ failed       (bad payload, or retries exhausted)
//!   │           │  ├───▶ cancelled    (farmctl cancel)
//!   │           │  └───▶ interrupted  (graceful shutdown; requeued on restart)
//!   └──────────▶ cancelled
//! ```
//!
//! `completed` / `failed` / `cancelled` are terminal; `interrupted` is
//! deliberately *not* — it is what a gracefully stopped daemon journals
//! for in-flight work so the restarted daemon puts it back in the queue.

use adaptnoc_sim::json::Value;

/// A job's identifier, unique per data directory (monotonic across
/// daemon restarts via the job journal).
pub type JobId = u64;

/// Admission priority: three strict lanes, drained high-to-low.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Jump the queue (interactive experiments).
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Background backfill.
    Low,
}

impl Priority {
    /// Lane index, 0 = drained first.
    #[must_use]
    pub fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Low => "low",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "low" => Some(Priority::Low),
            _ => None,
        }
    }
}

/// What a client asked the farm to run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Campaign label (becomes the `scenario` column of result rows).
    pub name: String,
    /// Inline `.scn` scenario source.
    pub scenario: String,
    /// Admission lane.
    pub priority: Priority,
    /// Per-attempt wall-clock budget; `None` uses the daemon default.
    pub deadline_secs: Option<u64>,
    /// Sweep fan-out threads; `None` uses the daemon default.
    pub threads: Option<usize>,
}

impl JobSpec {
    /// Encodes the spec for the job journal / wire.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            ("name".to_string(), Value::String(self.name.clone())),
            ("scenario".to_string(), Value::String(self.scenario.clone())),
            (
                "priority".to_string(),
                Value::String(self.priority.as_str().to_string()),
            ),
        ];
        if let Some(d) = self.deadline_secs {
            fields.push(("deadline_secs".to_string(), Value::Number(d as f64)));
        }
        if let Some(t) = self.threads {
            fields.push(("threads".to_string(), Value::Number(t as f64)));
        }
        Value::Object(fields)
    }

    /// Decodes a journaled/wire spec; `None` when required fields are
    /// missing or mistyped.
    #[must_use]
    pub fn from_json(v: &Value) -> Option<JobSpec> {
        Some(JobSpec {
            name: v.get("name")?.as_str()?.to_string(),
            scenario: v.get("scenario")?.as_str()?.to_string(),
            priority: match v.get("priority") {
                None => Priority::Normal,
                Some(p) => Priority::parse(p.as_str()?)?,
            },
            deadline_secs: match v.get("deadline_secs") {
                None => None,
                Some(d) => Some(d.as_u64()?),
            },
            threads: match v.get("threads") {
                None => None,
                Some(t) => Some(t.as_u64()? as usize),
            },
        })
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a worker.
    Queued,
    /// On a worker (possibly between retry attempts).
    Running,
    /// Finished; results are on disk. Terminal.
    Completed,
    /// Bad payload or retries exhausted; flight recorder on disk.
    /// Terminal.
    Failed,
    /// Cancelled by a client. Terminal.
    Cancelled,
    /// Checkpointed and persisted by a graceful shutdown; the restarted
    /// daemon requeues it. Not terminal.
    Interrupted,
}

impl JobState {
    /// Wire name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Completed => "completed",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
            JobState::Interrupted => "interrupted",
        }
    }

    /// Parses a wire name.
    #[must_use]
    pub fn parse(s: &str) -> Option<JobState> {
        match s {
            "queued" => Some(JobState::Queued),
            "running" => Some(JobState::Running),
            "completed" => Some(JobState::Completed),
            "failed" => Some(JobState::Failed),
            "cancelled" => Some(JobState::Cancelled),
            "interrupted" => Some(JobState::Interrupted),
            _ => None,
        }
    }

    /// Whether the job can never run again.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Completed | JobState::Failed | JobState::Cancelled
        )
    }
}

/// A point-in-time view of a job, as returned by `status`.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// Job id.
    pub id: JobId,
    /// Campaign label.
    pub name: String,
    /// Admission lane.
    pub priority: Priority,
    /// Lifecycle state.
    pub state: JobState,
    /// Current (or final) attempt number, 1-based; 0 before the first.
    pub attempt: u32,
    /// Sweep points finished so far (checkpointed ones count).
    pub points_done: usize,
    /// Total sweep points (0 until the scenario is loaded).
    pub points_total: usize,
    /// Human-readable detail: failure reason, cancel note, etc.
    pub detail: String,
}

impl JobSnapshot {
    /// Encodes the snapshot for `status` responses.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), Value::Number(self.id as f64)),
            ("name".to_string(), Value::String(self.name.clone())),
            (
                "priority".to_string(),
                Value::String(self.priority.as_str().to_string()),
            ),
            (
                "state".to_string(),
                Value::String(self.state.as_str().to_string()),
            ),
            (
                "attempt".to_string(),
                Value::Number(f64::from(self.attempt)),
            ),
            (
                "points_done".to_string(),
                Value::Number(self.points_done as f64),
            ),
            (
                "points_total".to_string(),
                Value::Number(self.points_total as f64),
            ),
            ("detail".to_string(), Value::String(self.detail.clone())),
        ])
    }
}

/// One entry in a job's flight recorder, also streamed to `watch`ers.
#[derive(Debug, Clone, PartialEq)]
pub struct JobEvent {
    /// The job it belongs to.
    pub job: JobId,
    /// Event kind: `state`, `point`, `retry`, `deadline`, ...
    pub kind: String,
    /// Sorted key/value detail.
    pub fields: Vec<(String, String)>,
}

impl JobEvent {
    /// Builds an event with sorted fields.
    #[must_use]
    pub fn new(job: JobId, kind: &str, fields: &[(&str, &str)]) -> JobEvent {
        let mut fields: Vec<(String, String)> = fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        fields.sort();
        JobEvent {
            job,
            kind: kind.to_string(),
            fields,
        }
    }

    /// Encodes the event for `watch` frames and flight-recorder dumps.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut obj = vec![
            ("job".to_string(), Value::Number(self.job as f64)),
            ("kind".to_string(), Value::String(self.kind.clone())),
        ];
        for (k, v) in &self.fields {
            obj.push((k.clone(), Value::String(v.clone())));
        }
        Value::Object(obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_through_json() {
        let spec = JobSpec {
            name: "lt".to_string(),
            scenario: "grid 4 4;".to_string(),
            priority: Priority::High,
            deadline_secs: Some(30),
            threads: Some(2),
        };
        assert_eq!(JobSpec::from_json(&spec.to_json()), Some(spec));
        let minimal = JobSpec {
            name: "m".to_string(),
            scenario: "grid 4 4;".to_string(),
            priority: Priority::Normal,
            deadline_secs: None,
            threads: None,
        };
        assert_eq!(JobSpec::from_json(&minimal.to_json()), Some(minimal));
    }

    #[test]
    fn states_classify_terminality() {
        for s in [JobState::Queued, JobState::Running, JobState::Interrupted] {
            assert!(!s.is_terminal(), "{s:?}");
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        for s in [JobState::Completed, JobState::Failed, JobState::Cancelled] {
            assert!(s.is_terminal(), "{s:?}");
            assert_eq!(JobState::parse(s.as_str()), Some(s));
        }
        assert_eq!(JobState::parse("exploded"), None);
    }

    #[test]
    fn priorities_order_their_lanes() {
        assert!(Priority::High.lane() < Priority::Normal.lane());
        assert!(Priority::Normal.lane() < Priority::Low.lane());
        assert_eq!(Priority::parse("high"), Some(Priority::High));
        assert_eq!(Priority::parse("urgent"), None);
    }
}

//! The embedded campaign corpus: every checked-in `scenarios/*.scn`
//! file, addressable by name so clients can submit
//! `{"op":"submit","campaign":"fault_recovery"}` without shipping the
//! source.

/// `(name, scenario source)` for every checked-in campaign.
pub const CAMPAIGNS: &[(&str, &str)] = &[
    (
        "diurnal_ramp",
        include_str!("../../../scenarios/diurnal_ramp.scn"),
    ),
    (
        "fault_recovery",
        include_str!("../../../scenarios/fault_recovery.scn"),
    ),
    (
        "hotspot_storm",
        include_str!("../../../scenarios/hotspot_storm.scn"),
    ),
    (
        "latency_throughput",
        include_str!("../../../scenarios/latency_throughput.scn"),
    ),
    (
        "reconfigure_region",
        include_str!("../../../scenarios/reconfigure_region.scn"),
    ),
];

/// The scenario source for a named campaign.
#[must_use]
pub fn campaign(name: &str) -> Option<&'static str> {
    CAMPAIGNS
        .iter()
        .find(|(n, _)| *n == name)
        .map(|(_, src)| *src)
}

/// All campaign names, in corpus order.
#[must_use]
pub fn names() -> Vec<&'static str> {
    CAMPAIGNS.iter().map(|(n, _)| *n).collect()
}

#[cfg(test)]
mod tests {
    #[test]
    fn every_embedded_campaign_loads() {
        for (name, src) in super::CAMPAIGNS {
            assert!(
                adaptnoc_bench::scenarios::load_scenario(src).is_ok(),
                "{name} must parse and compile"
            );
        }
        assert!(super::campaign("latency_throughput").is_some());
        assert!(super::campaign("nope").is_none());
    }
}

//! The persistent job journal: `<data_dir>/jobs.jsonl`.
//!
//! Every admission and every state transition appends one JSON line, so
//! the queue itself survives any kind of daemon death:
//!
//! ```text
//! {"t":"submit","id":3,"spec":{"name":"lt","scenario":"...","priority":"normal"}}
//! {"t":"state","id":3,"state":"running","attempt":1,"detail":""}
//! {"t":"state","id":3,"state":"completed","attempt":1,"detail":""}
//! ```
//!
//! Replay is two-pass (collect `submit` records, then apply `state`
//! records in order) because a worker can journal `running` concurrently
//! with the submitter journaling `submit` — append order between the two
//! is not guaranteed. Like the checkpoint journals, a torn final line
//! (SIGKILL mid-append) is ignored, and any job whose *last* state is
//! non-terminal (`queued`, `running`, `interrupted`) is requeued by the
//! restarted daemon; its per-job checkpoint journal makes the re-run
//! resume instead of restart.

use crate::job::{JobId, JobSpec, JobState};
use adaptnoc_sim::json::{self, Value};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// The journal file name under the data directory.
pub const JOURNAL_FILE: &str = "jobs.jsonl";

/// An open journal appender.
#[derive(Debug)]
pub struct Journal {
    file: File,
}

impl Journal {
    /// Opens (creating if needed) the journal under `data_dir`.
    ///
    /// # Errors
    ///
    /// Propagates file-open errors.
    pub fn open(data_dir: &Path) -> io::Result<Journal> {
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(data_dir.join(JOURNAL_FILE))?;
        Ok(Journal { file })
    }

    /// Appends a `submit` record.
    ///
    /// # Errors
    ///
    /// Propagates write errors — admission must not be acknowledged if
    /// it could not be persisted.
    pub fn submit(&mut self, id: JobId, spec: &JobSpec) -> io::Result<()> {
        self.append(&Value::Object(vec![
            ("t".to_string(), Value::String("submit".to_string())),
            ("id".to_string(), Value::Number(id as f64)),
            ("spec".to_string(), spec.to_json()),
        ]))
    }

    /// Appends a `state` record.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn state(
        &mut self,
        id: JobId,
        state: JobState,
        attempt: u32,
        detail: &str,
    ) -> io::Result<()> {
        self.append(&Value::Object(vec![
            ("t".to_string(), Value::String("state".to_string())),
            ("id".to_string(), Value::Number(id as f64)),
            (
                "state".to_string(),
                Value::String(state.as_str().to_string()),
            ),
            ("attempt".to_string(), Value::Number(f64::from(attempt))),
            ("detail".to_string(), Value::String(detail.to_string())),
        ]))
    }

    fn append(&mut self, v: &Value) -> io::Result<()> {
        writeln!(self.file, "{}", v.to_string_compact())?;
        self.file.flush()
    }
}

/// One journaled job as reconstructed by [`replay`].
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedJob {
    /// Job id.
    pub id: JobId,
    /// The submitted spec.
    pub spec: JobSpec,
    /// Last journaled state (`Queued` if only the submit record exists).
    pub state: JobState,
    /// Last journaled attempt number.
    pub attempt: u32,
    /// Last journaled detail.
    pub detail: String,
}

/// Everything [`replay`] recovered.
#[derive(Debug, Clone)]
pub struct Replay {
    /// One entry per journaled job, ascending id.
    pub jobs: Vec<ReplayedJob>,
    /// The next id the daemon may allocate.
    pub next_id: JobId,
}

impl Default for Replay {
    fn default() -> Self {
        Replay {
            jobs: Vec::new(),
            next_id: 1,
        }
    }
}

/// Replays the journal under `data_dir`. A missing journal yields an
/// empty [`Replay`]; malformed or torn lines are skipped (crash
/// tolerance beats strictness here — the checkpoint journals carry the
/// actual results).
///
/// # Errors
///
/// Propagates read errors other than the file not existing.
pub fn replay(data_dir: &Path) -> io::Result<Replay> {
    let text = match std::fs::read_to_string(data_dir.join(JOURNAL_FILE)) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Replay::default()),
        Err(e) => return Err(e),
    };
    let lines: Vec<Value> = text.lines().filter_map(|l| json::parse(l).ok()).collect();

    // Pass 1: submits establish the job set.
    let mut jobs: BTreeMap<JobId, ReplayedJob> = BTreeMap::new();
    for v in &lines {
        if v.get("t").and_then(Value::as_str) != Some("submit") {
            continue;
        }
        let Some(id) = v.get("id").and_then(Value::as_u64) else {
            continue;
        };
        let Some(spec) = v.get("spec").and_then(JobSpec::from_json) else {
            continue;
        };
        jobs.insert(
            id,
            ReplayedJob {
                id,
                spec,
                state: JobState::Queued,
                attempt: 0,
                detail: String::new(),
            },
        );
    }

    // Pass 2: states apply in append order; the last one wins.
    for v in &lines {
        if v.get("t").and_then(Value::as_str) != Some("state") {
            continue;
        }
        let Some(job) = v
            .get("id")
            .and_then(Value::as_u64)
            .and_then(|id| jobs.get_mut(&id))
        else {
            continue;
        };
        let Some(state) = v
            .get("state")
            .and_then(Value::as_str)
            .and_then(JobState::parse)
        else {
            continue;
        };
        job.state = state;
        job.attempt = v.get("attempt").and_then(Value::as_u64).unwrap_or(0) as u32;
        job.detail = v
            .get("detail")
            .and_then(Value::as_str)
            .unwrap_or("")
            .to_string();
    }

    let next_id = jobs.keys().next_back().map_or(1, |max| max + 1);
    Ok(Replay {
        jobs: jobs.into_values().collect(),
        next_id,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            scenario: "grid 4 4;".to_string(),
            priority: Priority::Normal,
            deadline_secs: None,
            threads: None,
        }
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "adaptnoc-farm-journal-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn replay_recovers_states_and_next_id() {
        let dir = scratch_dir("basic");
        let mut j = Journal::open(&dir).unwrap();
        j.submit(1, &spec("a")).unwrap();
        j.state(1, JobState::Running, 1, "").unwrap();
        j.state(1, JobState::Completed, 1, "").unwrap();
        j.submit(2, &spec("b")).unwrap();
        j.state(2, JobState::Running, 1, "").unwrap();
        j.submit(3, &spec("c")).unwrap();
        drop(j);

        let r = replay(&dir).unwrap();
        assert_eq!(r.next_id, 4);
        assert_eq!(r.jobs.len(), 3);
        assert_eq!(r.jobs[0].state, JobState::Completed);
        assert_eq!(r.jobs[1].state, JobState::Running, "non-terminal: requeue");
        assert_eq!(r.jobs[2].state, JobState::Queued);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_tolerates_torn_tail_and_out_of_order_state() {
        let dir = scratch_dir("torn");
        let mut j = Journal::open(&dir).unwrap();
        // A worker's `running` record can land before the `submit` line.
        j.state(1, JobState::Running, 1, "").unwrap();
        j.submit(1, &spec("a")).unwrap();
        drop(j);
        // SIGKILL mid-append leaves a torn line.
        use std::io::Write as _;
        let mut f = OpenOptions::new()
            .append(true)
            .open(dir.join(JOURNAL_FILE))
            .unwrap();
        write!(f, "{{\"t\":\"state\",\"id\":1,\"sta").unwrap();
        drop(f);

        let r = replay(&dir).unwrap();
        assert_eq!(r.jobs.len(), 1);
        assert_eq!(r.jobs[0].state, JobState::Running);
        assert_eq!(r.next_id, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_is_an_empty_replay() {
        let dir = scratch_dir("missing");
        let r = replay(&dir).unwrap();
        assert!(r.jobs.is_empty());
        assert_eq!(r.next_id, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

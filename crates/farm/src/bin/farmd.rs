//! `adaptnoc-farmd` — the NoC simulation farm daemon.
//!
//! ```text
//! adaptnoc-farmd [--config FILE] [--listen ADDR] [--data-dir DIR] [--workers N]
//! ```
//!
//! Precedence: command line > `ADAPTNOC__FARM__*` environment > config
//! file > defaults. The resolved endpoint is printed on stdout and
//! advertised in `<data-dir>/endpoint`. `SIGINT`/`SIGTERM` trigger the
//! graceful shutdown documented in `docs/FARM.md`.

use adaptnoc_farm::config::{FarmConfig, RawConfig};
use adaptnoc_farm::server::Server;
use std::process::ExitCode;

fn parse_config(args: &[String]) -> Result<FarmConfig, String> {
    let flag = |name: &str| -> Result<Option<&str>, String> {
        match args.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => args
                .get(i + 1)
                .map(|v| Some(v.as_str()))
                .ok_or_else(|| format!("{name} needs a value")),
        }
    };
    let mut raw = match flag("--config")? {
        Some(path) => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            RawConfig::parse_toml(&text, path).map_err(|e| e.to_string())?
        }
        None => RawConfig::default(),
    };
    raw.apply_env(std::env::vars());
    for (name, key) in [
        ("--listen", "farm.listen"),
        ("--data-dir", "farm.data_dir"),
        ("--workers", "farm.workers"),
    ] {
        if let Some(v) = flag(name)? {
            raw.set(key, v, &format!("flag {name}"));
        }
    }
    FarmConfig::from_raw(&raw).map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: adaptnoc-farmd [--config FILE] [--listen ADDR] [--data-dir DIR] [--workers N]"
        );
        return ExitCode::SUCCESS;
    }
    let cfg = match parse_config(&args) {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("adaptnoc-farmd: {msg}");
            return ExitCode::FAILURE;
        }
    };

    #[cfg(unix)]
    adaptnoc_farm::server::signals::install();
    #[cfg(unix)]
    let stop = &adaptnoc_farm::server::signals::SHUTDOWN;
    #[cfg(not(unix))]
    let stop = {
        static NEVER: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        &NEVER
    };

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("adaptnoc-farmd: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", server.endpoint());
    match server.run(stop) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("adaptnoc-farmd: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `farmctl` — the thin client for `adaptnoc-farmd`.
//!
//! See `farmctl` with no arguments (or `docs/FARM.md`) for the verbs.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out = std::io::stdout();
    match u8::try_from(adaptnoc_farm::client::run_cli(&args, &mut out)) {
        Ok(code) => ExitCode::from(code),
        Err(_) => ExitCode::FAILURE,
    }
}

//! Daemon configuration: a minimal TOML subset plus environment
//! overrides.
//!
//! The daemon reads an optional TOML file (`farmd --config farm.toml`)
//! and then applies environment variables of the form
//! `ADAPTNOC__SECTION__KEY` — a double underscore separates nesting
//! levels, so `ADAPTNOC__FARM__QUEUE_CAPACITY=256` overrides
//! `queue_capacity` in the `[farm]` section. Every value remembers where
//! it came from, so a bad value reports *which* file line or env var to
//! fix instead of a bare parse error.
//!
//! The TOML subset is what the config needs and nothing more:
//! `[section]` headers, `key = value` lines with string / integer /
//! float / boolean values, `#` comments, and blank lines. No arrays,
//! no nested tables, no multi-line strings.

use std::collections::BTreeMap;
use std::fmt;
use std::path::PathBuf;

/// A configuration error with enough context to fix the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Human-readable diagnostic (includes provenance).
    pub msg: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for ConfigError {}

fn err(msg: impl Into<String>) -> ConfigError {
    ConfigError { msg: msg.into() }
}

/// Parsed-but-untyped configuration: dotted lowercase paths
/// (`farm.workers`) mapped to raw string values plus the provenance of
/// each (file line or env var name).
#[derive(Debug, Clone, Default)]
pub struct RawConfig {
    values: BTreeMap<String, (String, String)>,
}

impl RawConfig {
    /// Parses the supported TOML subset.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the offending line for unknown
    /// syntax, unterminated strings, or keys outside a section.
    pub fn parse_toml(text: &str, origin: &str) -> Result<RawConfig, ConfigError> {
        let mut cfg = RawConfig::default();
        let mut section = String::new();
        for (lineno, raw_line) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = strip_comment(raw_line).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name
                    .strip_suffix(']')
                    .ok_or_else(|| err(format!("{origin}:{lineno}: unterminated [section]")))?;
                section = name.trim().to_lowercase();
                if section.is_empty() {
                    return Err(err(format!("{origin}:{lineno}: empty section name")));
                }
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(format!("{origin}:{lineno}: expected `key = value`")))?;
            let key = key.trim().to_lowercase();
            if key.is_empty() {
                return Err(err(format!("{origin}:{lineno}: empty key")));
            }
            if section.is_empty() {
                return Err(err(format!(
                    "{origin}:{lineno}: key `{key}` outside any [section]"
                )));
            }
            let value =
                parse_value(value.trim()).map_err(|e| err(format!("{origin}:{lineno}: {e}")))?;
            cfg.values.insert(
                format!("{section}.{key}"),
                (format!("{origin}:{lineno}"), value),
            );
        }
        Ok(cfg)
    }

    /// Applies `ADAPTNOC__SECTION__KEY`-style overrides from an iterator
    /// of environment pairs. Double underscores separate nesting levels;
    /// names are lowercased, so `ADAPTNOC__FARM__MAX_ATTEMPTS=5` sets
    /// `farm.max_attempts`. Later overrides win over both earlier ones
    /// and file values.
    pub fn apply_env<I>(&mut self, vars: I)
    where
        I: IntoIterator<Item = (String, String)>,
    {
        for (name, value) in vars {
            let Some(rest) = name.strip_prefix("ADAPTNOC__") else {
                continue;
            };
            let path: Vec<&str> = rest.split("__").filter(|p| !p.is_empty()).collect();
            if path.len() < 2 {
                continue;
            }
            let dotted = path.join(".").to_lowercase();
            self.values.insert(dotted, (format!("env {name}"), value));
        }
    }

    /// Sets one dotted path directly (used for command-line overrides,
    /// which outrank both the file and the environment).
    pub fn set(&mut self, dotted: &str, value: &str, origin: &str) {
        self.values.insert(
            dotted.to_lowercase(),
            (origin.to_string(), value.to_string()),
        );
    }

    /// Raw string lookup.
    #[must_use]
    pub fn get_str(&self, dotted: &str) -> Option<&str> {
        self.values.get(dotted).map(|(_, v)| v.as_str())
    }

    fn get_parsed<T: std::str::FromStr>(
        &self,
        dotted: &str,
        what: &str,
    ) -> Result<Option<T>, ConfigError> {
        match self.values.get(dotted) {
            None => Ok(None),
            Some((origin, v)) => v
                .parse()
                .map(Some)
                .map_err(|_| err(format!("{dotted}: invalid {what} `{v}` (from {origin})"))),
        }
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(v: &str) -> Result<String, String> {
    if let Some(body) = v.strip_prefix('"') {
        let body = body
            .strip_suffix('"')
            .ok_or_else(|| format!("unterminated string {v}"))?;
        if body.contains('"') {
            return Err(format!("embedded quote in {v}"));
        }
        return Ok(body.to_string());
    }
    if v.is_empty() {
        return Err("empty value".to_string());
    }
    // Bare scalars: booleans, integers, floats. Anything else is a
    // syntax error — unquoted strings are not valid TOML and accepting
    // them would mask typos like `listen = 127.0.0.1:4511`.
    if v == "true" || v == "false" || v.parse::<i64>().is_ok() || v.parse::<f64>().is_ok() {
        return Ok(v.to_string());
    }
    Err(format!("unrecognized value `{v}` (quote strings)"))
}

/// The daemon's typed configuration (section `[farm]`).
#[derive(Debug, Clone, PartialEq)]
pub struct FarmConfig {
    /// Listen address: `HOST:PORT`, `tcp://HOST:PORT`, or `unix:PATH`.
    /// Port 0 asks the OS for a free port; the daemon advertises the
    /// resolved address in `<data_dir>/endpoint`.
    pub listen: String,
    /// Where the job journal, per-job checkpoints, results, and the
    /// endpoint file live.
    pub data_dir: PathBuf,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Admission queue capacity across all priority lanes; submissions
    /// beyond it are shed with `rejected`.
    pub queue_capacity: usize,
    /// Attempts per job before it is declared failed (1 = no retries).
    pub max_attempts: u32,
    /// First retry backoff; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling.
    pub backoff_cap_ms: u64,
    /// Deadline applied to jobs that do not carry their own (0 = none).
    pub default_deadline_secs: u64,
    /// How long graceful shutdown waits for workers to checkpoint.
    pub drain_grace_secs: u64,
    /// Threads each job's sweep fans out over.
    pub threads_per_job: usize,
    /// The `retry_after_ms` hint returned with `rejected` responses.
    pub retry_after_ms: u64,
}

impl Default for FarmConfig {
    fn default() -> Self {
        FarmConfig {
            listen: "127.0.0.1:0".to_string(),
            data_dir: PathBuf::from("farm-data"),
            workers: 2,
            queue_capacity: 64,
            max_attempts: 3,
            backoff_base_ms: 250,
            backoff_cap_ms: 10_000,
            default_deadline_secs: 0,
            drain_grace_secs: 20,
            threads_per_job: 1,
            retry_after_ms: 1_000,
        }
    }
}

impl FarmConfig {
    /// Types the `[farm]` section of a raw config, filling defaults for
    /// absent keys.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] naming the value's provenance when a
    /// key does not parse or is out of range.
    pub fn from_raw(raw: &RawConfig) -> Result<FarmConfig, ConfigError> {
        let d = FarmConfig::default();
        let cfg = FarmConfig {
            listen: raw.get_str("farm.listen").map_or(d.listen, str::to_string),
            data_dir: raw
                .get_str("farm.data_dir")
                .map_or(d.data_dir, PathBuf::from),
            workers: raw
                .get_parsed("farm.workers", "integer")?
                .unwrap_or(d.workers),
            queue_capacity: raw
                .get_parsed("farm.queue_capacity", "integer")?
                .unwrap_or(d.queue_capacity),
            max_attempts: raw
                .get_parsed("farm.max_attempts", "integer")?
                .unwrap_or(d.max_attempts),
            backoff_base_ms: raw
                .get_parsed("farm.backoff_base_ms", "integer")?
                .unwrap_or(d.backoff_base_ms),
            backoff_cap_ms: raw
                .get_parsed("farm.backoff_cap_ms", "integer")?
                .unwrap_or(d.backoff_cap_ms),
            default_deadline_secs: raw
                .get_parsed("farm.default_deadline_secs", "integer")?
                .unwrap_or(d.default_deadline_secs),
            drain_grace_secs: raw
                .get_parsed("farm.drain_grace_secs", "integer")?
                .unwrap_or(d.drain_grace_secs),
            threads_per_job: raw
                .get_parsed("farm.threads_per_job", "integer")?
                .unwrap_or(d.threads_per_job),
            retry_after_ms: raw
                .get_parsed("farm.retry_after_ms", "integer")?
                .unwrap_or(d.retry_after_ms),
        };
        if cfg.workers == 0 {
            return Err(err("farm.workers: must be at least 1"));
        }
        if cfg.queue_capacity == 0 {
            return Err(err("farm.queue_capacity: must be at least 1"));
        }
        if cfg.max_attempts == 0 {
            return Err(err("farm.max_attempts: must be at least 1"));
        }
        Ok(cfg)
    }

    /// Loads configuration with the standard precedence: defaults, then
    /// the TOML file (if given), then `ADAPTNOC__` environment
    /// overrides from the process environment.
    ///
    /// # Errors
    ///
    /// I/O errors reading an explicitly named file, or any
    /// [`ConfigError`] from parsing/typing.
    pub fn load(path: Option<&std::path::Path>) -> Result<FarmConfig, ConfigError> {
        let mut raw = match path {
            Some(p) => {
                let text =
                    std::fs::read_to_string(p).map_err(|e| err(format!("{}: {e}", p.display())))?;
                RawConfig::parse_toml(&text, &p.display().to_string())?
            }
            None => RawConfig::default(),
        };
        raw.apply_env(std::env::vars());
        FarmConfig::from_raw(&raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_subset_parses_sections_values_and_comments() {
        let raw = RawConfig::parse_toml(
            "# top comment\n[farm]\nworkers = 4  # trailing\nlisten = \"unix:/tmp/f.sock\" \n\
             queue_capacity = 8\n\n[other]\nflag = true\nratio = 0.5\n",
            "test.toml",
        )
        .unwrap();
        assert_eq!(raw.get_str("farm.workers"), Some("4"));
        assert_eq!(raw.get_str("farm.listen"), Some("unix:/tmp/f.sock"));
        assert_eq!(raw.get_str("other.flag"), Some("true"));
        assert_eq!(raw.get_str("other.ratio"), Some("0.5"));
        let cfg = FarmConfig::from_raw(&raw).unwrap();
        assert_eq!(cfg.workers, 4);
        assert_eq!(cfg.queue_capacity, 8);
        assert_eq!(cfg.max_attempts, FarmConfig::default().max_attempts);
    }

    #[test]
    fn syntax_errors_name_the_line() {
        let e = RawConfig::parse_toml("[farm]\nworkers 4\n", "f.toml").unwrap_err();
        assert!(e.msg.contains("f.toml:2"), "{e}");
        let e = RawConfig::parse_toml("workers = 4\n", "f.toml").unwrap_err();
        assert!(e.msg.contains("outside any [section]"), "{e}");
        let e = RawConfig::parse_toml("[farm]\nlisten = 127.0.0.1:0\n", "f.toml").unwrap_err();
        assert!(e.msg.contains("quote strings"), "{e}");
    }

    #[test]
    fn env_overrides_nest_with_double_underscores_and_win() {
        let mut raw = RawConfig::parse_toml("[farm]\nworkers = 4\n", "f.toml").unwrap();
        raw.apply_env([
            ("ADAPTNOC__FARM__WORKERS".to_string(), "9".to_string()),
            (
                "ADAPTNOC__FARM__BACKOFF_BASE_MS".to_string(),
                "5".to_string(),
            ),
            ("ADAPTNOC_WATCHDOG_SECS".to_string(), "60".to_string()), // not ours
            ("PATH".to_string(), "/usr/bin".to_string()),
        ]);
        let cfg = FarmConfig::from_raw(&raw).unwrap();
        assert_eq!(cfg.workers, 9);
        assert_eq!(cfg.backoff_base_ms, 5);
    }

    #[test]
    fn bad_values_report_their_provenance() {
        let mut raw = RawConfig::default();
        raw.apply_env([("ADAPTNOC__FARM__WORKERS".to_string(), "lots".to_string())]);
        let e = FarmConfig::from_raw(&raw).unwrap_err();
        assert!(
            e.msg.contains("env ADAPTNOC__FARM__WORKERS"),
            "provenance in {e}"
        );
        let raw = RawConfig::parse_toml("[farm]\nmax_attempts = 0\n", "f.toml").unwrap();
        assert!(FarmConfig::from_raw(&raw)
            .unwrap_err()
            .msg
            .contains("at least 1"));
    }
}

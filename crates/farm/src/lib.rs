//! # adaptnoc-farm
//!
//! A crash-tolerant, long-running simulation service: the
//! `adaptnoc-farmd` daemon accepts scenario jobs over a local TCP or
//! Unix socket (length-prefixed JSON frames, spec in `docs/FARM.md`),
//! runs them on supervised worker threads, and survives panics, runaway
//! jobs, `SIGTERM`, and even `SIGKILL` without losing work:
//!
//! * [`config`] — TOML config with `ADAPTNOC__SECTION__KEY` env
//!   overrides.
//! * [`proto`] — the framed JSON wire protocol (server side; the
//!   independent client lives in `adaptnoc_bench::submit`).
//! * [`job`] — job specs, priorities, lifecycle states, and events.
//! * [`journal`] — the append-only on-disk job journal that makes the
//!   queue itself persistent across daemon restarts.
//! * [`queue`] — the bounded three-lane admission queue.
//! * [`worker`] — supervised execution: `catch_unwind` isolation,
//!   bounded exponential-backoff retries, deadline enforcement, and a
//!   per-job flight recorder.
//! * [`server`] — the accept loop, signal handling, and graceful
//!   shutdown (checkpoint, persist, exit).
//! * [`client`] — the logic behind the `farmctl` binary.
//! * [`corpus`] — the embedded named campaigns (`scenarios/*.scn`).
//!
//! Every job's sweep points go through the same checkpoint journal as
//! `gen-figures --checkpoint`, so a job interrupted at *any* moment —
//! graceful or not — resumes from its completed points and still
//! produces byte-identical results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod client;
pub mod config;
pub mod corpus;
pub mod job;
pub mod journal;
pub mod proto;
pub mod queue;
pub mod server;
pub mod worker;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::config::FarmConfig;
    pub use crate::job::{JobId, JobSnapshot, JobSpec, JobState, Priority};
    pub use crate::server::Server;
}

//! Supervised job execution: the shared daemon state, the worker loop,
//! and the per-attempt supervisor that contains panics, enforces
//! deadlines, retries with bounded exponential backoff, and writes a
//! flight-recorder dump when a job finally fails.
//!
//! The execution engine is abstracted behind [`JobRunner`] so the
//! containment logic is unit-testable with runners that panic, hang, or
//! reject their payload on demand; the real engine
//! ([`ScenarioRunner`]) runs the scenario sweep through the same
//! checkpoint journal as `gen-figures --checkpoint`, which is what makes
//! an interrupted job resume byte-identically.

use crate::config::FarmConfig;
use crate::job::{JobEvent, JobId, JobSnapshot, JobSpec, JobState};
use crate::journal::{self, Journal};
use crate::queue::{AdmissionQueue, Pop, PushError};
use adaptnoc_bench::jsonrows::{rows_json, ToJson};
use adaptnoc_bench::prelude::{
    atomic_write, campaign_loads, load_scenario, run_checkpointed_observed, scenario_point,
    ScenarioRow,
};
use adaptnoc_bench::scenarios::scenario_row_from_json;
use adaptnoc_scenario::prelude::{CancelToken, RunError};
use adaptnoc_sim::json::{self, Value};
use adaptnoc_telemetry::{json_lines, CounterId, Registry, TelemetryMode};
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Flight-recorder ring capacity per job.
const EVENT_RING: usize = 256;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Why a job's cancel token fired. Decides the terminal state when an
/// attempt comes back stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CancelCause {
    /// Token has not fired.
    #[default]
    None,
    /// A client asked (`farmctl cancel`) — terminal `cancelled`.
    User,
    /// The per-attempt deadline reaper fired — retried, then `failed`.
    Deadline,
    /// Graceful shutdown — journaled `interrupted`, requeued on restart.
    Shutdown,
}

/// One job's live record.
#[derive(Debug)]
pub struct JobRecord {
    /// The submitted spec.
    pub spec: JobSpec,
    /// Lifecycle state.
    pub state: JobState,
    /// Human-readable detail (failure reason etc.).
    pub detail: String,
    /// Current attempt, 1-based.
    pub attempt: u32,
    /// Fires to stop the current attempt.
    pub cancel: CancelToken,
    /// Why the token fired (if it did).
    pub cause: CancelCause,
    /// Sweep points finished (checkpointed included).
    pub points_done: usize,
    /// Total sweep points (0 until the plan is loaded).
    pub points_total: usize,
    /// When the current attempt started.
    pub attempt_started: Option<Instant>,
    /// Flight recorder: the last `EVENT_RING` events.
    pub events: VecDeque<JobEvent>,
    /// Per-job telemetry registry.
    pub registry: Registry,
}

impl JobRecord {
    fn new(spec: JobSpec, state: JobState, detail: String) -> JobRecord {
        JobRecord {
            spec,
            state,
            detail,
            attempt: 0,
            cancel: CancelToken::new(),
            cause: CancelCause::None,
            points_done: 0,
            points_total: 0,
            attempt_started: None,
            events: VecDeque::new(),
            registry: Registry::new(TelemetryMode::Strict),
        }
    }

    fn snapshot(&self, id: JobId) -> JobSnapshot {
        JobSnapshot {
            id,
            name: self.spec.name.clone(),
            priority: self.spec.priority,
            state: self.state,
            attempt: self.attempt,
            points_done: self.points_done,
            points_total: self.points_total,
            detail: self.detail.clone(),
        }
    }
}

/// Daemon-level counter ids in the shared registry.
#[derive(Debug, Clone, Copy)]
struct DaemonCounters {
    submitted: CounterId,
    rejected: CounterId,
    completed: CounterId,
    failed: CounterId,
    cancelled: CounterId,
    requeued: CounterId,
    retries: CounterId,
    panics: CounterId,
    deadlines: CounterId,
}

/// Everything the daemon's threads share.
#[derive(Debug)]
pub struct FarmState {
    /// Typed configuration.
    pub cfg: FarmConfig,
    /// The bounded admission queue.
    pub queue: AdmissionQueue,
    /// Set by signal handlers / tests: stop everything, persist, exit.
    pub shutdown: AtomicBool,
    /// Set by `drain`: stop admitting, let the backlog finish.
    pub draining: AtomicBool,
    jobs: Mutex<BTreeMap<JobId, JobRecord>>,
    journal: Mutex<Journal>,
    watchers: Mutex<Vec<(JobId, mpsc::Sender<Value>)>>,
    registry: Mutex<Registry>,
    counters: DaemonCounters,
    next_id: AtomicU64,
}

impl FarmState {
    /// Creates the data directory, replays the job journal, and requeues
    /// every non-terminal job it finds (the crash/SIGTERM recovery
    /// path).
    ///
    /// # Errors
    ///
    /// I/O errors creating the data directory or opening the journal.
    pub fn new(cfg: FarmConfig) -> io::Result<Arc<FarmState>> {
        std::fs::create_dir_all(cfg.data_dir.join("jobs"))?;
        let replayed = journal::replay(&cfg.data_dir)?;
        let journal = Journal::open(&cfg.data_dir)?;

        let mut registry = Registry::new(TelemetryMode::Strict);
        let c = |r: &mut Registry, name: &str, help: &str| {
            r.counter(
                &format!("adaptnoc_farm_jobs_{name}_total"),
                help,
                "jobs",
                &[],
            )
        };
        let counters = DaemonCounters {
            submitted: c(&mut registry, "submitted", "jobs admitted"),
            rejected: c(
                &mut registry,
                "rejected",
                "submissions shed by the bounded queue",
            ),
            completed: c(&mut registry, "completed", "jobs finished with results"),
            failed: c(
                &mut registry,
                "failed",
                "jobs failed after retries or bad payloads",
            ),
            cancelled: c(&mut registry, "cancelled", "jobs cancelled by clients"),
            requeued: c(
                &mut registry,
                "requeued",
                "jobs recovered from the journal at startup",
            ),
            retries: c(&mut registry, "retries", "attempt retries across all jobs"),
            panics: c(
                &mut registry,
                "panics",
                "attempts contained by catch_unwind",
            ),
            deadlines: c(
                &mut registry,
                "deadlines",
                "attempts stopped by the deadline reaper",
            ),
        };

        let state = Arc::new(FarmState {
            queue: AdmissionQueue::new(cfg.queue_capacity),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            jobs: Mutex::new(BTreeMap::new()),
            journal: Mutex::new(journal),
            watchers: Mutex::new(Vec::new()),
            registry: Mutex::new(registry),
            counters,
            next_id: AtomicU64::new(replayed.next_id),
            cfg,
        });

        for job in replayed.jobs {
            if job.state.is_terminal() {
                let mut rec = JobRecord::new(job.spec, job.state, job.detail);
                rec.attempt = job.attempt;
                lock(&state.jobs).insert(job.id, rec);
                continue;
            }
            // queued / running / interrupted: back into the queue. The
            // per-job checkpoint journal turns the re-run into a resume.
            let detail = format!("requeued after restart (was {})", job.state.as_str());
            let priority = job.spec.priority;
            lock(&state.jobs).insert(
                job.id,
                JobRecord::new(job.spec, JobState::Queued, detail.clone()),
            );
            let _ = lock(&state.journal).state(job.id, JobState::Queued, 0, &detail);
            // Capacity cannot be exceeded here unless the config shrank
            // across the restart; shed the overflow like any other load.
            if state.queue.push(job.id, priority).is_err() {
                state.finalize(
                    job.id,
                    JobState::Failed,
                    0,
                    "requeue overflowed the admission queue",
                );
                continue;
            }
            state.count(state.counters.requeued);
        }
        Ok(state)
    }

    fn count(&self, id: CounterId) {
        lock(&self.registry).inc(id);
    }

    /// Allocates ids monotonically across restarts.
    fn allocate_id(&self) -> JobId {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    /// The per-job scratch directory (checkpoints, results, dumps).
    #[must_use]
    pub fn job_dir(&self, id: JobId) -> PathBuf {
        self.cfg.data_dir.join("jobs").join(id.to_string())
    }

    /// Admits a job: record, journal, queue — in an order that never
    /// acknowledges unpersisted work (the journal line is written before
    /// the caller sees the id).
    ///
    /// # Errors
    ///
    /// A `(reason, retry_after_ms)` rejection when draining, at
    /// capacity, or when the journal cannot be written.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, (String, u64)> {
        let retry = self.cfg.retry_after_ms;
        if self.shutdown.load(Ordering::Acquire) || self.draining.load(Ordering::Acquire) {
            self.count(self.counters.rejected);
            return Err(("daemon is draining".to_string(), retry));
        }
        let id = self.allocate_id();
        let priority = spec.priority;
        lock(&self.jobs).insert(
            id,
            JobRecord::new(spec.clone(), JobState::Queued, String::new()),
        );
        match self.queue.push(id, priority) {
            Ok(()) => {}
            Err(e) => {
                lock(&self.jobs).remove(&id);
                self.count(self.counters.rejected);
                let reason = match e {
                    PushError::Full => "queue is full",
                    PushError::Closed => "daemon is draining",
                };
                return Err((reason.to_string(), retry));
            }
        }
        if let Err(e) = lock(&self.journal).submit(id, &spec) {
            lock(&self.jobs).remove(&id);
            self.queue.remove(id);
            return Err((format!("job journal write failed: {e}"), retry));
        }
        self.count(self.counters.submitted);
        self.emit(id, "state", &[("state", "queued")]);
        Ok(id)
    }

    /// Cancels a queued or running job.
    ///
    /// # Errors
    ///
    /// A diagnostic for unknown or already-terminal jobs.
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        let mut jobs = lock(&self.jobs);
        let Some(rec) = jobs.get_mut(&id) else {
            return Err(format!("no such job {id}"));
        };
        match rec.state {
            JobState::Queued => {
                drop(jobs);
                self.queue.remove(id);
                self.finalize(id, JobState::Cancelled, 0, "cancelled while queued");
                Ok(())
            }
            JobState::Running => {
                rec.cause = CancelCause::User;
                rec.cancel.cancel();
                drop(jobs);
                self.emit(id, "cancel_requested", &[]);
                Ok(())
            }
            s => Err(format!("job {id} is already {}", s.as_str())),
        }
    }

    /// Snapshot of one job.
    #[must_use]
    pub fn snapshot(&self, id: JobId) -> Option<JobSnapshot> {
        lock(&self.jobs).get(&id).map(|r| r.snapshot(id))
    }

    /// Snapshots of every known job, ascending id.
    #[must_use]
    pub fn snapshot_all(&self) -> Vec<JobSnapshot> {
        lock(&self.jobs)
            .iter()
            .map(|(&id, r)| r.snapshot(id))
            .collect()
    }

    /// Whether no job is queued or running (the drain condition).
    #[must_use]
    pub fn settled(&self) -> bool {
        self.queue.is_empty()
            && lock(&self.jobs)
                .values()
                .all(|r| !matches!(r.state, JobState::Queued | JobState::Running))
    }

    /// Subscribes to a job's event stream. Returns the receiver and
    /// whether the job is already terminal (in which case no more events
    /// will arrive).
    ///
    /// # Errors
    ///
    /// A diagnostic for unknown jobs.
    pub fn subscribe(&self, id: JobId) -> Result<(mpsc::Receiver<Value>, bool), String> {
        let jobs = lock(&self.jobs);
        let Some(rec) = jobs.get(&id) else {
            return Err(format!("no such job {id}"));
        };
        let terminal = rec.state.is_terminal();
        drop(jobs);
        let (tx, rx) = mpsc::channel();
        lock(&self.watchers).push((id, tx));
        Ok((rx, terminal))
    }

    /// Emits a job event: flight recorder, per-job registry, watchers.
    pub fn emit(&self, id: JobId, kind: &str, fields: &[(&str, &str)]) {
        let ev = JobEvent::new(id, kind, fields);
        {
            let mut jobs = lock(&self.jobs);
            if let Some(rec) = jobs.get_mut(&id) {
                if rec.events.len() >= EVENT_RING {
                    rec.events.pop_front();
                }
                rec.events.push_back(ev.clone());
                rec.registry.event(kind, 0, fields);
            }
        }
        let frame = crate::proto::event(&ev.to_json());
        let mut watchers = lock(&self.watchers);
        watchers.retain(|(wid, tx)| *wid != id || tx.send(frame.clone()).is_ok());
    }

    /// Journals and broadcasts a state transition.
    fn set_state(&self, id: JobId, state: JobState, attempt: u32, detail: &str) {
        {
            let mut jobs = lock(&self.jobs);
            if let Some(rec) = jobs.get_mut(&id) {
                rec.state = state;
                rec.attempt = attempt;
                rec.detail = detail.to_string();
            }
        }
        let _ = lock(&self.journal).state(id, state, attempt, detail);
        let attempt_s = attempt.to_string();
        self.emit(
            id,
            "state",
            &[
                ("state", state.as_str()),
                ("attempt", &attempt_s),
                ("detail", detail),
            ],
        );
    }

    /// Moves a job to its final (or, for `Interrupted`, persisted) state
    /// and flushes its telemetry.
    pub fn finalize(&self, id: JobId, state: JobState, attempt: u32, detail: &str) {
        self.set_state(id, state, attempt, detail);
        match state {
            JobState::Completed => self.count(self.counters.completed),
            JobState::Failed => self.count(self.counters.failed),
            JobState::Cancelled => self.count(self.counters.cancelled),
            _ => {}
        }
        if state == JobState::Failed {
            self.write_dump(id, detail);
        }
        self.write_job_telemetry(id);
        self.write_daemon_telemetry();
    }

    /// Writes the flight-recorder dump for a failed job.
    fn write_dump(&self, id: JobId, reason: &str) {
        let jobs = lock(&self.jobs);
        let Some(rec) = jobs.get(&id) else { return };
        let dump = Value::Object(vec![
            ("id".to_string(), Value::Number(id as f64)),
            ("name".to_string(), Value::String(rec.spec.name.clone())),
            ("reason".to_string(), Value::String(reason.to_string())),
            (
                "attempts".to_string(),
                Value::Number(f64::from(rec.attempt)),
            ),
            (
                "events".to_string(),
                Value::Array(rec.events.iter().map(JobEvent::to_json).collect()),
            ),
        ]);
        drop(jobs);
        let dir = self.job_dir(id);
        let _ = std::fs::create_dir_all(&dir);
        let _ = atomic_write(&dir.join("dump.json"), &dump.to_string_pretty());
    }

    fn write_job_telemetry(&self, id: JobId) {
        let jobs = lock(&self.jobs);
        let Some(rec) = jobs.get(&id) else { return };
        let text = json_lines(&rec.registry);
        drop(jobs);
        let dir = self.job_dir(id);
        let _ = std::fs::create_dir_all(&dir);
        let _ = atomic_write(&dir.join("telemetry.jsonl"), &text);
    }

    /// Flushes the daemon-level registry (atomic, so scrapers never see
    /// a torn file).
    pub fn write_daemon_telemetry(&self) {
        let text = json_lines(&lock(&self.registry));
        let _ = atomic_write(&self.cfg.data_dir.join("telemetry.jsonl"), &text);
    }

    /// Daemon stats for `ping` responses.
    #[must_use]
    pub fn stats(&self) -> Vec<(String, Value)> {
        let jobs = lock(&self.jobs);
        let running = jobs
            .values()
            .filter(|r| r.state == JobState::Running)
            .count();
        let total = jobs.len();
        drop(jobs);
        vec![
            ("queued".to_string(), Value::Number(self.queue.len() as f64)),
            ("running".to_string(), Value::Number(running as f64)),
            ("jobs".to_string(), Value::Number(total as f64)),
            (
                "draining".to_string(),
                Value::Bool(self.draining.load(Ordering::Acquire)),
            ),
        ]
    }

    /// One deadline-reaper sweep: fires the cancel token of any running
    /// job whose current attempt has outlived its wall-clock budget.
    /// Returns how many tokens fired.
    pub fn reap_deadlines(&self) -> usize {
        let default = self.cfg.default_deadline_secs;
        let mut fired = Vec::new();
        {
            let mut jobs = lock(&self.jobs);
            for (&id, rec) in jobs.iter_mut() {
                if rec.state != JobState::Running || rec.cause != CancelCause::None {
                    continue;
                }
                let budget =
                    rec.spec
                        .deadline_secs
                        .or(if default > 0 { Some(default) } else { None });
                let (Some(budget), Some(started)) = (budget, rec.attempt_started) else {
                    continue;
                };
                if started.elapsed() >= Duration::from_secs(budget) {
                    rec.cause = CancelCause::Deadline;
                    rec.cancel.cancel();
                    fired.push((id, budget));
                }
            }
        }
        for &(id, budget) in &fired {
            self.count(self.counters.deadlines);
            let budget_s = budget.to_string();
            self.emit(id, "deadline", &[("budget_secs", &budget_s)]);
        }
        fired.len()
    }

    /// Flips into shutdown: stop admitting, close the queue, and fire
    /// every running job's token with [`CancelCause::Shutdown`] so
    /// workers checkpoint and journal `interrupted`.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.draining.store(true, Ordering::Release);
        self.queue.close();
        let mut jobs = lock(&self.jobs);
        for rec in jobs.values_mut() {
            if rec.state == JobState::Running && rec.cause == CancelCause::None {
                rec.cause = CancelCause::Shutdown;
                rec.cancel.cancel();
            }
        }
    }
}

/// Campaign progress reported by a [`JobRunner`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Progress {
    /// The plan loaded: total points, and how many the checkpoint
    /// journal already holds (resume).
    Campaign {
        /// Sweep points in the plan.
        total: usize,
        /// Points replayed from the checkpoint journal.
        resumed: usize,
    },
    /// One fresh point finished (and was journaled).
    Point {
        /// Sweep index.
        index: usize,
        /// The point's load.
        load: f64,
        /// The point's mean packet latency.
        avg_latency: f64,
    },
}

/// Everything one attempt may touch.
pub struct AttemptCtx<'a> {
    /// The job's spec.
    pub spec: &'a JobSpec,
    /// Fires when the attempt must stop (cancel/deadline/shutdown).
    pub cancel: &'a CancelToken,
    /// The job's scratch directory.
    pub dir: &'a Path,
    /// Sweep fan-out threads.
    pub threads: usize,
    /// Progress sink (updates the record, feeds watchers).
    pub observe: &'a (dyn Fn(Progress) + Sync),
}

impl std::fmt::Debug for AttemptCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttemptCtx")
            .field("spec", &self.spec)
            .field("dir", &self.dir)
            .field("threads", &self.threads)
            .finish_non_exhaustive()
    }
}

/// Why an attempt did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttemptError {
    /// The payload can never run (parse/compile error): fail
    /// immediately, no retries.
    BadPayload(String),
    /// Infrastructure or runtime failure: retry with backoff.
    Retryable(String),
}

/// An execution engine the supervisor can drive.
pub trait JobRunner: Sync {
    /// Runs one attempt. `Ok(Some(rows))` = completed with a JSON rows
    /// array; `Ok(None)` = stopped by the cancel token (the supervisor
    /// classifies by cause). Panics are caught and treated as
    /// [`AttemptError::Retryable`].
    ///
    /// # Errors
    ///
    /// [`AttemptError`] as above.
    fn run_attempt(&self, ctx: &AttemptCtx<'_>) -> Result<Option<Value>, AttemptError>;
}

/// The real engine: checkpointed scenario sweeps.
#[derive(Debug, Default)]
pub struct ScenarioRunner;

impl JobRunner for ScenarioRunner {
    fn run_attempt(&self, ctx: &AttemptCtx<'_>) -> Result<Option<Value>, AttemptError> {
        let plan = load_scenario(&ctx.spec.scenario)
            .map_err(|e| AttemptError::BadPayload(e.to_string()))?;
        let loads = campaign_loads(&plan);
        let path = ctx.dir.join("points.jsonl");
        (ctx.observe)(Progress::Campaign {
            total: loads.len(),
            resumed: count_checkpointed(&path, loads.len()),
        });

        // A runtime error inside a point cannot cross the closure
        // boundary (holes mean "stopped"), so the first one is parked
        // here and re-raised as a retryable attempt error.
        let first_err: Mutex<Option<String>> = Mutex::new(None);
        let partial = run_checkpointed_observed(
            loads.len(),
            ctx.threads.max(1),
            &path,
            ScenarioRow::to_json,
            scenario_row_from_json,
            |i, row: &ScenarioRow| {
                (ctx.observe)(Progress::Point {
                    index: i,
                    load: row.load,
                    avg_latency: row.avg_latency,
                });
            },
            |i| {
                if ctx.cancel.is_cancelled() {
                    return None;
                }
                match scenario_point(&ctx.spec.name, &plan, loads[i], ctx.cancel) {
                    Ok(row) => Some(row),
                    Err(RunError::Cancelled) => None,
                    Err(e) => {
                        lock(&first_err).get_or_insert_with(|| format!("point {i}: {e}"));
                        None
                    }
                }
            },
        )
        .map_err(|e| AttemptError::Retryable(format!("points journal: {e}")))?;

        if let Some(msg) = lock(&first_err).take() {
            return Err(AttemptError::Retryable(msg));
        }
        Ok(partial.into_complete().map(|rows| rows_json(&rows)))
    }
}

/// Distinct completed indexes already in a checkpoint journal.
fn count_checkpointed(path: &Path, n: usize) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    let mut seen = vec![false; n];
    for line in text.lines() {
        if let Ok(v) = json::parse(line) {
            if let Some(i) = v.get("i").and_then(Value::as_u64) {
                if (i as usize) < n && v.get("v").is_some() {
                    seen[i as usize] = true;
                }
            }
        }
    }
    seen.iter().filter(|&&s| s).count()
}

/// The worker thread body: pop, run, repeat — until shutdown or the
/// queue closes.
pub fn worker_loop(state: &Arc<FarmState>, runner: &dyn JobRunner) {
    loop {
        if state.shutdown.load(Ordering::Acquire) {
            return;
        }
        match state.queue.pop_timeout(Duration::from_millis(200)) {
            Pop::Job(id) => run_job(state, runner, id),
            Pop::Empty => {}
            Pop::Closed => return,
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one job to a persisted state: completed, failed (with dump),
/// cancelled, or interrupted. Every attempt runs under `catch_unwind`,
/// so a panicking scenario never takes the worker (or a neighbor's job)
/// down with it.
pub fn run_job(state: &Arc<FarmState>, runner: &dyn JobRunner, id: JobId) {
    // Claim: the job may have been cancelled while queued.
    let spec = {
        let mut jobs = lock(&state.jobs);
        let Some(rec) = jobs.get_mut(&id) else { return };
        if rec.state != JobState::Queued {
            return;
        }
        rec.state = JobState::Running;
        rec.spec.clone()
    };
    let threads = spec.threads.unwrap_or(state.cfg.threads_per_job);
    let dir = state.job_dir(id);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        state.finalize(id, JobState::Failed, 1, &format!("job dir: {e}"));
        return;
    }

    let mut attempt: u32 = 1;
    loop {
        // Fresh token + clock per attempt; deadlines are per attempt.
        let cancel = {
            let mut jobs = lock(&state.jobs);
            let Some(rec) = jobs.get_mut(&id) else { return };
            rec.cancel = CancelToken::new();
            rec.cause = CancelCause::None;
            rec.attempt_started = Some(Instant::now());
            rec.cancel.clone()
        };
        state.set_state(id, JobState::Running, attempt, "");

        let observe = |p: Progress| match p {
            Progress::Campaign { total, resumed } => {
                {
                    let mut jobs = lock(&state.jobs);
                    if let Some(rec) = jobs.get_mut(&id) {
                        rec.points_total = total;
                        rec.points_done = resumed;
                    }
                }
                let (t, r) = (total.to_string(), resumed.to_string());
                state.emit(id, "campaign", &[("total", &t), ("resumed", &r)]);
            }
            Progress::Point {
                index,
                load,
                avg_latency,
            } => {
                {
                    let mut jobs = lock(&state.jobs);
                    if let Some(rec) = jobs.get_mut(&id) {
                        rec.points_done += 1;
                    }
                }
                let (i, l, a) = (
                    index.to_string(),
                    format!("{load:.4}"),
                    format!("{avg_latency:.2}"),
                );
                state.emit(
                    id,
                    "point",
                    &[("index", &i), ("load", &l), ("avg_latency", &a)],
                );
            }
        };
        let ctx = AttemptCtx {
            spec: &spec,
            cancel: &cancel,
            dir: &dir,
            threads,
            observe: &observe,
        };

        let outcome = catch_unwind(AssertUnwindSafe(|| runner.run_attempt(&ctx)));

        let cause = lock(&state.jobs)
            .get(&id)
            .map_or(CancelCause::None, |r| r.cause);
        let failure = match outcome {
            Ok(Ok(Some(rows))) => {
                let result = Value::Object(vec![
                    ("id".to_string(), Value::Number(id as f64)),
                    ("name".to_string(), Value::String(spec.name.clone())),
                    ("rows".to_string(), rows),
                ]);
                match atomic_write(&dir.join("result.json"), &result.to_string_pretty()) {
                    Ok(()) => {
                        state.finalize(id, JobState::Completed, attempt, "");
                        return;
                    }
                    Err(e) => format!("writing result.json: {e}"),
                }
            }
            Ok(Ok(None)) => match cause {
                CancelCause::User => {
                    state.finalize(id, JobState::Cancelled, attempt, "cancelled by client");
                    return;
                }
                CancelCause::Shutdown => {
                    state.finalize(
                        id,
                        JobState::Interrupted,
                        attempt,
                        "checkpointed for shutdown",
                    );
                    return;
                }
                CancelCause::Deadline => "attempt deadline exceeded".to_string(),
                CancelCause::None => "attempt stopped without a cause".to_string(),
            },
            Ok(Err(AttemptError::BadPayload(msg))) => {
                state.finalize(
                    id,
                    JobState::Failed,
                    attempt,
                    &format!("bad payload: {msg}"),
                );
                return;
            }
            Ok(Err(AttemptError::Retryable(msg))) => msg,
            Err(panic) => {
                state.count(state.counters.panics);
                format!("attempt panicked: {}", panic_message(panic.as_ref()))
            }
        };

        // Retry path: bounded exponential backoff, then fail with dump.
        if attempt >= state.cfg.max_attempts {
            state.finalize(
                id,
                JobState::Failed,
                attempt,
                &format!("{failure} (gave up after {attempt} attempts)"),
            );
            return;
        }
        let backoff = state
            .cfg
            .backoff_cap_ms
            .min(state.cfg.backoff_base_ms.saturating_mul(1 << (attempt - 1)));
        state.count(state.counters.retries);
        let backoff_s = backoff.to_string();
        state.emit(
            id,
            "retry",
            &[("reason", &failure), ("backoff_ms", &backoff_s)],
        );
        attempt += 1;

        // Interruptible backoff sleep.
        let wake = Instant::now() + Duration::from_millis(backoff);
        while Instant::now() < wake {
            if state.shutdown.load(Ordering::Acquire) {
                state.finalize(
                    id,
                    JobState::Interrupted,
                    attempt,
                    "shutdown during backoff",
                );
                return;
            }
            let cause = lock(&state.jobs)
                .get(&id)
                .map_or(CancelCause::None, |r| r.cause);
            if cause == CancelCause::User {
                state.finalize(id, JobState::Cancelled, attempt, "cancelled by client");
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::Priority;

    fn test_cfg(tag: &str) -> FarmConfig {
        let dir =
            std::env::temp_dir().join(format!("adaptnoc-farm-worker-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        FarmConfig {
            data_dir: dir,
            max_attempts: 3,
            backoff_base_ms: 1,
            backoff_cap_ms: 4,
            ..FarmConfig::default()
        }
    }

    fn spec(name: &str) -> JobSpec {
        JobSpec {
            name: name.to_string(),
            scenario: "grid 4 4; seed 1; warmup 1K; duration 2K; t=0 uniform load 0.05 poisson;"
                .to_string(),
            priority: Priority::Normal,
            deadline_secs: None,
            threads: None,
        }
    }

    /// Panics `fuse` times, then completes.
    struct FlakyRunner {
        fuse: std::sync::atomic::AtomicU32,
    }
    impl JobRunner for FlakyRunner {
        fn run_attempt(&self, _ctx: &AttemptCtx<'_>) -> Result<Option<Value>, AttemptError> {
            if self
                .fuse
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |f| f.checked_sub(1))
                .is_ok()
            {
                panic!("transient explosion");
            }
            Ok(Some(Value::Array(vec![])))
        }
    }

    /// Spins until its token fires, then reports stopped.
    struct ObedientRunner;
    impl JobRunner for ObedientRunner {
        fn run_attempt(&self, ctx: &AttemptCtx<'_>) -> Result<Option<Value>, AttemptError> {
            while !ctx.cancel.is_cancelled() {
                std::thread::sleep(Duration::from_millis(5));
            }
            Ok(None)
        }
    }

    struct BadPayloadRunner;
    impl JobRunner for BadPayloadRunner {
        fn run_attempt(&self, _ctx: &AttemptCtx<'_>) -> Result<Option<Value>, AttemptError> {
            Err(AttemptError::BadPayload("no such directive".to_string()))
        }
    }

    fn submit_and_run(state: &Arc<FarmState>, runner: &dyn JobRunner, name: &str) -> JobId {
        let id = state.submit(spec(name)).unwrap();
        assert_eq!(
            state.queue.pop_timeout(Duration::from_millis(50)),
            Pop::Job(id)
        );
        run_job(state, runner, id);
        id
    }

    #[test]
    fn panicking_attempts_retry_then_succeed() {
        let state = FarmState::new(test_cfg("flaky")).unwrap();
        let runner = FlakyRunner {
            fuse: std::sync::atomic::AtomicU32::new(2),
        };
        let id = submit_and_run(&state, &runner, "flaky");
        let snap = state.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Completed);
        assert_eq!(snap.attempt, 3, "two panics contained, third attempt won");
        assert!(state.job_dir(id).join("result.json").exists());
        let _ = std::fs::remove_dir_all(&state.cfg.data_dir);
    }

    #[test]
    fn exhausted_retries_fail_with_a_flight_recorder_dump() {
        let state = FarmState::new(test_cfg("dump")).unwrap();
        let runner = FlakyRunner {
            fuse: std::sync::atomic::AtomicU32::new(u32::MAX),
        };
        let id = submit_and_run(&state, &runner, "doomed");
        let snap = state.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Failed);
        assert!(
            snap.detail.contains("gave up after 3 attempts"),
            "{}",
            snap.detail
        );
        let dump = std::fs::read_to_string(state.job_dir(id).join("dump.json")).unwrap();
        assert!(
            dump.contains("transient explosion"),
            "dump carries the panic"
        );
        assert!(dump.contains("retry"), "dump carries the retry events");
        let _ = std::fs::remove_dir_all(&state.cfg.data_dir);
    }

    #[test]
    fn bad_payloads_fail_immediately_without_retries() {
        let state = FarmState::new(test_cfg("payload")).unwrap();
        let id = submit_and_run(&state, &BadPayloadRunner, "bad");
        let snap = state.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Failed);
        assert_eq!(
            snap.attempt, 1,
            "no retries for a payload that can never run"
        );
        assert!(snap.detail.contains("bad payload"));
        let _ = std::fs::remove_dir_all(&state.cfg.data_dir);
    }

    #[test]
    fn deadline_reaper_stops_runaway_attempts_until_they_fail() {
        let state = FarmState::new(test_cfg("deadline")).unwrap();
        let mut s = spec("runaway");
        s.deadline_secs = Some(0); // every attempt is instantly over budget
        let id = state.submit(s).unwrap();
        assert_eq!(
            state.queue.pop_timeout(Duration::from_millis(50)),
            Pop::Job(id)
        );
        let reaper_state = state.clone();
        let reaper = std::thread::spawn(move || {
            while reaper_state
                .snapshot(id)
                .is_some_and(|s| !s.state.is_terminal())
            {
                reaper_state.reap_deadlines();
                std::thread::sleep(Duration::from_millis(5));
            }
        });
        run_job(&state, &ObedientRunner, id);
        reaper.join().unwrap();
        let snap = state.snapshot(id).unwrap();
        assert_eq!(snap.state, JobState::Failed);
        assert!(snap.detail.contains("deadline exceeded"), "{}", snap.detail);
        assert!(state.job_dir(id).join("dump.json").exists());
        let _ = std::fs::remove_dir_all(&state.cfg.data_dir);
    }

    #[test]
    fn user_cancel_is_terminal_and_shutdown_is_not() {
        let state = FarmState::new(test_cfg("cancel")).unwrap();

        // Cancelled mid-run.
        let a = state.submit(spec("a")).unwrap();
        assert_eq!(
            state.queue.pop_timeout(Duration::from_millis(50)),
            Pop::Job(a)
        );
        let st = state.clone();
        let canceller = std::thread::spawn(move || {
            while st.snapshot(a).is_some_and(|s| s.state != JobState::Running) {
                std::thread::sleep(Duration::from_millis(2));
            }
            st.cancel(a).unwrap();
        });
        run_job(&state, &ObedientRunner, a);
        canceller.join().unwrap();
        assert_eq!(state.snapshot(a).unwrap().state, JobState::Cancelled);

        // Interrupted by shutdown.
        let b = state.submit(spec("b")).unwrap();
        assert_eq!(
            state.queue.pop_timeout(Duration::from_millis(50)),
            Pop::Job(b)
        );
        let st = state.clone();
        let stopper = std::thread::spawn(move || {
            while st.snapshot(b).is_some_and(|s| s.state != JobState::Running) {
                std::thread::sleep(Duration::from_millis(2));
            }
            st.begin_shutdown();
        });
        run_job(&state, &ObedientRunner, b);
        stopper.join().unwrap();
        assert_eq!(state.snapshot(b).unwrap().state, JobState::Interrupted);

        // A restarted daemon requeues b (and only b).
        let state2 = FarmState::new(FarmConfig {
            data_dir: state.cfg.data_dir.clone(),
            ..FarmConfig::default()
        })
        .unwrap();
        assert_eq!(state2.snapshot(a).unwrap().state, JobState::Cancelled);
        assert_eq!(state2.snapshot(b).unwrap().state, JobState::Queued);
        assert_eq!(state2.queue.len(), 1);
        let _ = std::fs::remove_dir_all(&state.cfg.data_dir);
    }

    #[test]
    fn a_panicking_job_does_not_disturb_a_concurrent_neighbor() {
        let state = FarmState::new(test_cfg("isolation")).unwrap();
        let doomed = state.submit(spec("doomed")).unwrap();
        let fine = state.submit(spec("fine")).unwrap();
        let st = state.clone();
        let chaos = std::thread::spawn(move || {
            let runner = FlakyRunner {
                fuse: std::sync::atomic::AtomicU32::new(u32::MAX),
            };
            run_job(&st, &runner, doomed);
        });
        run_job(&state, &ScenarioRunner, fine);
        chaos.join().unwrap();
        assert_eq!(state.snapshot(doomed).unwrap().state, JobState::Failed);
        let snap = state.snapshot(fine).unwrap();
        assert_eq!(snap.state, JobState::Completed, "{}", snap.detail);
        assert!(snap.points_done >= 1);
        let _ = std::fs::remove_dir_all(&state.cfg.data_dir);
    }

    #[test]
    fn bounded_queue_sheds_and_draining_rejects() {
        let state = FarmState::new(FarmConfig {
            queue_capacity: 2,
            ..test_cfg("shed")
        })
        .unwrap();
        state.submit(spec("a")).unwrap();
        state.submit(spec("b")).unwrap();
        let (reason, retry) = state.submit(spec("c")).unwrap_err();
        assert!(reason.contains("full"), "{reason}");
        assert_eq!(retry, state.cfg.retry_after_ms);
        state.draining.store(true, Ordering::Release);
        let (reason, _) = state.submit(spec("d")).unwrap_err();
        assert!(reason.contains("draining"), "{reason}");
        let _ = std::fs::remove_dir_all(&state.cfg.data_dir);
    }
}

//! Event-based energy model (the DSENT methodology of Sec. IV-A).
//!
//! The simulator counts buffer writes/reads, crossbar traversals, VA/SA
//! grants, link flit-millimeters, mux traversals and RL inferences
//! ([`EventCounts`]); static power integrates resource-on cycles
//! ([`StaticCycles`]) with per-resource power draws, so power gating shows
//! up directly as saved static energy.

use crate::params as p;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::events::{EventCounts, StaticCycles};
use adaptnoc_sim::stats::EpochReport;

/// Energy decomposition in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Activity-driven energy.
    pub dynamic_j: f64,
    /// Leakage/idle energy of powered resources.
    pub static_j: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total_j(&self) -> f64 {
        self.dynamic_j + self.static_j
    }

    /// Sums another breakdown into this one.
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.dynamic_j += other.dynamic_j;
        self.static_j += other.static_j;
    }
}

/// The energy model, specialized to a simulator configuration (buffer
/// depths enter the static model).
#[derive(Debug, Clone)]
pub struct EnergyModel {
    flits_per_port: f64,
}

impl EnergyModel {
    /// Builds a model for the given simulator configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        EnergyModel {
            flits_per_port: cfg.port_buffer_flits() as f64,
        }
    }

    /// Dynamic energy of an event window, joules.
    pub fn dynamic_energy_j(&self, ev: &EventCounts) -> f64 {
        let pj = ev.buffer_writes as f64 * p::BUFFER_WRITE_PJ
            + ev.buffer_reads as f64 * p::BUFFER_READ_PJ
            + ev.crossbar_traversals as f64 * p::CROSSBAR_PJ
            + ev.va_grants as f64 * p::VA_PJ
            + ev.sa_grants as f64 * p::SA_PJ
            + ev.link_flit_mm * p::LINK_PJ_PER_MM
            + ev.mux_traversals as f64 * p::MUX_PJ
            + ev.interchip_crossings as f64 * p::INTERCHIP_SERDES_PJ_PER_FLIT
            + ev.ni_injections as f64 * p::NI_PJ
            + ev.rl_inferences as f64 * p::RL_INFERENCE_PJ;
        pj * 1e-12
    }

    /// Static energy of a resource-on window, joules.
    pub fn static_energy_j(&self, sc: &StaticCycles) -> f64 {
        let ns = p::NS_PER_CYCLE;
        let router_mw = sc.router_on_cycles as f64 * p::ROUTER_BASE_STATIC_MW
            + sc.port_on_cycles as f64
                * (p::PORT_LOGIC_STATIC_MW + self.flits_per_port * p::BUFFER_STATIC_MW_PER_FLIT);
        let link_mw = sc.mesh_link_mm_cycles * p::MESH_LINK_STATIC_MW_PER_MM
            + sc.adapt_link_mm_cycles * (p::ADAPT_LINK_STATIC_MW / p::ADAPT_LINK_FULL_MM)
            + sc.conc_link_mm_cycles * p::CONC_LINK_STATIC_MW_PER_MM
            + sc.interchip_link_mm_cycles * p::INTERCHIP_LINK_STATIC_MW_PER_MM;
        // mW * cycles * ns/cycle = pJ.
        (router_mw + link_mw) * ns * 1e-12 * 1e9 * 1e-9
    }

    /// Full breakdown for an epoch report.
    pub fn energy(&self, report: &EpochReport) -> EnergyBreakdown {
        EnergyBreakdown {
            dynamic_j: self.dynamic_energy_j(&report.events),
            static_j: self.static_energy_j(&report.static_cycles),
        }
    }

    /// Mean power over the report window, watts.
    pub fn avg_power_w(&self, report: &EpochReport) -> f64 {
        let cycles = report.static_cycles.cycles.max(1) as f64;
        self.energy(report).total_j() / (cycles * p::NS_PER_CYCLE * 1e-9)
    }

    /// Energy-delay product (J·s) over `execution_cycles`.
    pub fn edp(&self, energy: &EnergyBreakdown, execution_cycles: u64) -> f64 {
        energy.total_j() * execution_cycles as f64 * p::NS_PER_CYCLE * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(&SimConfig::baseline())
    }

    #[test]
    fn dynamic_energy_scales_with_events() {
        let m = model();
        let ev1 = EventCounts {
            buffer_writes: 1000,
            buffer_reads: 1000,
            crossbar_traversals: 1000,
            link_flit_mm: 1000.0,
            ..Default::default()
        };
        let mut ev2 = ev1;
        ev2.buffer_writes *= 2;
        ev2.buffer_reads *= 2;
        ev2.crossbar_traversals *= 2;
        ev2.link_flit_mm *= 2.0;
        assert!((m.dynamic_energy_j(&ev2) - 2.0 * m.dynamic_energy_j(&ev1)).abs() < 1e-15);
    }

    #[test]
    fn static_energy_scales_with_gating() {
        let m = model();
        let all_on = StaticCycles {
            cycles: 1000,
            router_on_cycles: 64_000,
            port_on_cycles: 64_000 * 5,
            mesh_link_mm_cycles: 224_000.0,
            ..Default::default()
        };
        let half_gated = StaticCycles {
            router_on_cycles: 32_000,
            port_on_cycles: 32_000 * 5,
            router_off_cycles: 32_000,
            ..all_on
        };
        assert!(m.static_energy_j(&half_gated) < m.static_energy_j(&all_on));
    }

    #[test]
    fn baseline_router_static_power_plausible() {
        // One baseline router fully on for 1M cycles (1 ms at 1 GHz).
        let m = model();
        let sc = StaticCycles {
            cycles: 1_000_000,
            router_on_cycles: 1_000_000,
            port_on_cycles: 5_000_000,
            ..Default::default()
        };
        let watts = m.static_energy_j(&sc) / 1e-3;
        // ~1 + 5*(0.4 + 24*0.08) = 12.6 mW.
        assert!((watts - 12.6e-3).abs() < 1e-4, "router static {watts} W");
    }

    #[test]
    fn adapt_link_static_matches_paper_constant() {
        let m = model();
        // A full 7 mm adaptable link on for 1M cycles should draw 11.5 mW.
        let sc = StaticCycles {
            cycles: 1_000_000,
            adapt_link_mm_cycles: 7.0 * 1e6,
            ..Default::default()
        };
        let watts = m.static_energy_j(&sc) / 1e-3;
        assert!((watts - 11.5e-3).abs() < 1e-6, "got {watts}");
    }

    #[test]
    fn fewer_vcs_cut_buffer_leakage() {
        let base = EnergyModel::new(&SimConfig::baseline());
        let adapt = EnergyModel::new(&SimConfig::adapt_noc());
        let sc = StaticCycles {
            cycles: 1000,
            router_on_cycles: 1000,
            port_on_cycles: 5000,
            ..Default::default()
        };
        assert!(adapt.static_energy_j(&sc) < base.static_energy_j(&sc));
    }

    #[test]
    fn avg_power_and_edp() {
        let m = model();
        let mut report = EpochReport::default();
        report.static_cycles.cycles = 1000;
        report.static_cycles.router_on_cycles = 1000;
        report.static_cycles.port_on_cycles = 5000;
        report.events.buffer_writes = 500;
        let e = m.energy(&report);
        assert!(e.total_j() > 0.0);
        let p = m.avg_power_w(&report);
        assert!(p > 0.0);
        let edp1 = m.edp(&e, 1000);
        let edp2 = m.edp(&e, 2000);
        assert!((edp2 / edp1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_accumulate() {
        let mut a = EnergyBreakdown {
            dynamic_j: 1.0,
            static_j: 2.0,
        };
        a.accumulate(&EnergyBreakdown {
            dynamic_j: 0.5,
            static_j: 0.25,
        });
        assert_eq!(a.dynamic_j, 1.5);
        assert_eq!(a.static_j, 2.25);
        assert_eq!(a.total_j(), 3.75);
    }
}

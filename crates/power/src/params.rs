//! 45 nm technology and microarchitecture constants.
//!
//! Every value published in the paper (Sec. IV-A and V-B) is used verbatim;
//! values the paper does not publish (per-event switching energies, static
//! power densities) are calibrated to be consistent with the published
//! component areas and the DSENT methodology, and are documented as such.
//! Absolute energy numbers therefore carry a calibration caveat, but all
//! evaluation figures are *normalized to the baseline*, which the shared
//! constants cancel out of.

/// Clock frequency in GHz (1 GHz; the paper's stage delays, 370 ps worst,
/// comfortably meet this).
pub const FREQ_GHZ: f64 = 1.0;

/// Nanoseconds per cycle.
pub const NS_PER_CYCLE: f64 = 1.0 / FREQ_GHZ;

/// Link width in bits (Sec. IV-A).
pub const LINK_WIDTH_BITS: u32 = 256;

/// Tile size in mm (1 mm² tiles, Sec. V-B2, following SlimNoC \\[46\\]).
pub const TILE_MM: f64 = 1.0;

// ---------------------------------------------------------------------
// Component areas (µm², Synopsys DC at 45 nm — Sec. V-B1, verbatim).
// ---------------------------------------------------------------------

/// Crossbar area of the baseline 5x5 router.
pub const CROSSBAR_AREA_UM2: f64 = 17_806.0;

/// Switch-allocator area.
pub const SWITCH_ALLOC_AREA_UM2: f64 = 4_589.0;

/// Virtual-channel-allocator area.
pub const VC_ALLOC_AREA_UM2: f64 = 1_062.0;

/// Buffer area of the baseline router (3 VCs/vnet x 2 vnets x 4 flits x
/// 5 ports at 256 bits).
pub const BUFFER_AREA_UM2: f64 = 246_472.0;

/// Total RL-controller area for the 8 controllers (one per 2x4 subNoC).
pub const RL_CONTROLLERS_AREA_UM2: f64 = 100_232.0;

/// Arbiter + muxes + additional links of Adapt-NoC.
pub const MUX_LINK_AREA_UM2: f64 = 107_123.0;

/// Additional peripheral-router port area of Adapt-NoC (mm²).
pub const ADAPT_EXTRA_PORT_AREA_MM2: f64 = 1.46;

/// Published total 8x8 mesh NoC area (mm²) — the model must reproduce it.
pub const PAPER_MESH_8X8_AREA_MM2: f64 = 17.27;

// ---------------------------------------------------------------------
// Router stage timing (ps, Synopsys DC — Sec. V-B3, verbatim).
// ---------------------------------------------------------------------

/// Route-computation stage delay.
pub const RC_PS: f64 = 164.0;

/// VC-allocation stage delay (the critical stage).
pub const VA_PS: f64 = 370.0;

/// Switch-allocation stage delay.
pub const SA_PS: f64 = 243.0;

/// Switch-traversal stage delay.
pub const ST_PS: f64 = 256.0;

/// Adaptable-router mux delay.
pub const MUX_PS: f64 = 102.0;

/// Published merged RC+mux delay (the mux logic is folded into RC).
pub const MERGED_RC_PS: f64 = 266.0;

/// Published merged ST+mux delay (partial overlap with crossbar setup).
pub const MERGED_ST_PS: f64 = 350.0;

/// Extra critical delay of a reversed quad-state repeater (transmission
/// gates), ps.
pub const REVERSED_REPEATER_PS: f64 = 45.0;

// ---------------------------------------------------------------------
// Wires (Sec. V-B2/V-B3, Intel 45 nm metal stack [45], verbatim).
// ---------------------------------------------------------------------

/// Copper resistivity, µΩ·cm.
pub const COPPER_RESISTIVITY_UOHM_CM: f64 = 1.7;

/// Wire capacitance, pF/mm.
pub const WIRE_CAP_PF_PER_MM: f64 = 0.2;

/// Wire delay on high metal layers (M7-M8), ps/mm.
pub const HIGH_METAL_PS_PER_MM: f64 = 42.0;

/// Wire delay on intermediate metal layers (M4-M6), ps/mm.
pub const INTERMEDIATE_METAL_PS_PER_MM: f64 = 200.0;

/// High-metal wire pitch, nm.
pub const HIGH_METAL_PITCH_NM: f64 = 560.0;

/// Intermediate-metal wire pitch, nm.
pub const INTERMEDIATE_METAL_PITCH_NM: f64 = 280.0;

/// Number of high metal layers usable for NoC routing (M7-M8).
pub const HIGH_METAL_LAYERS: u32 = 2;

/// Number of intermediate metal layers usable (M4-M6).
pub const INTERMEDIATE_METAL_LAYERS: u32 = 3;

/// Fraction of wiring resources available to the NoC. The paper says
/// "typically half"; a third reproduces its published per-tile-edge link
/// counts (2 high-metal + 7 intermediate 256-bit bidirectional links)
/// exactly, so we calibrate to a third and note the discrepancy.
pub const ROUTING_FRACTION: f64 = 1.0 / 3.0;

/// Cycles per 4 mm on high metal (Sec. IV-A: "1-cycle delay per 4mm").
pub const HIGH_METAL_MM_PER_CYCLE: f64 = 4.0;

// ---------------------------------------------------------------------
// Static power (calibrated; the 11.5 mW/link figure is the paper's).
// ---------------------------------------------------------------------

/// Static power of one active adaptable link (Sec. V-A3, verbatim:
/// "11.5 mW/link"), for a full-length (7 mm in 8x8) link.
pub const ADAPT_LINK_STATIC_MW: f64 = 11.5;

/// Full adaptable-link length in an 8x8 chip, mm (spans 7 tile hops).
pub const ADAPT_LINK_FULL_MM: f64 = 7.0;

/// Router control/base static power, mW (calibrated).
pub const ROUTER_BASE_STATIC_MW: f64 = 1.0;

/// Port logic static power, mW per wired port (calibrated).
pub const PORT_LOGIC_STATIC_MW: f64 = 0.4;

/// Buffer static power, mW per flit-slot of a wired port (calibrated so a
/// baseline 5-port router with 24 flits/port lands near 12-13 mW, in line
/// with 45 nm router leakage reports).
pub const BUFFER_STATIC_MW_PER_FLIT: f64 = 0.08;

/// Mesh/express link static power, mW/mm (repeaters; calibrated).
pub const MESH_LINK_STATIC_MW_PER_MM: f64 = 0.5;

/// Concentration link static power, mW/mm (calibrated).
pub const CONC_LINK_STATIC_MW_PER_MM: f64 = 0.5;

// ---------------------------------------------------------------------
// Inter-chip (chiplet) links: serialized SerDes lanes over package
// substrate wires. Calibrated against published ground-referenced
// signaling surveys (~1-2 pJ/bit, always-on lane leakage); the chiplet
// fabric is an extension beyond the paper, so these carry the same
// calibration caveat as the other unpublished constants.
// ---------------------------------------------------------------------

/// Static power of an inter-chip link per mm of substrate trace, mW/mm
/// (SerDes lanes idle at a higher floor than on-chip repeaters).
pub const INTERCHIP_LINK_STATIC_MW_PER_MM: f64 = 1.5;

/// Energy per flit crossing an inter-chip SerDes boundary (256 bits at
/// ~1.5 pJ/bit serialization + deserialization), pJ.
pub const INTERCHIP_SERDES_PJ_PER_FLIT: f64 = 384.0;

/// Bidirectional SerDes lanes available per chip-boundary tile edge
/// (package substrate escape-routing limit; calibrated).
pub const INTERCHIP_LANES_PER_CHIP_EDGE: u32 = 4;

// ---------------------------------------------------------------------
// Dynamic event energies (pJ; DSENT-style, calibrated at 45 nm, 256-bit).
// ---------------------------------------------------------------------

/// Energy per flit written into an input buffer (256-bit register file
/// write at 45 nm).
pub const BUFFER_WRITE_PJ: f64 = 4.8;

/// Energy per flit read from an input buffer.
pub const BUFFER_READ_PJ: f64 = 3.6;

/// Energy per flit crossing the 5x5 crossbar (256-bit datapath).
pub const CROSSBAR_PJ: f64 = 6.4;

/// Energy per VC-allocation grant.
pub const VA_PJ: f64 = 0.20;

/// Energy per switch-allocation grant.
pub const SA_PJ: f64 = 0.30;

/// Energy per flit per mm of link traversal (256 bits, ~30% switching
/// activity on 0.2 pF/mm wires at nominal Vdd).
pub const LINK_PJ_PER_MM: f64 = 4.0;

/// Energy per flit through an adaptable/concentration mux.
pub const MUX_PJ: f64 = 0.15;

/// Energy per flit injected at an NI.
pub const NI_PJ: f64 = 1.0;

/// Energy per DQN inference (465 MACs on one adder + one multiplier).
pub const RL_INFERENCE_PJ: f64 = 930.0;

/// The paper's DQN inference latency with minimal hardware (Sec. V-B3,
/// verbatim): 486 ns.
pub const RL_INFERENCE_NS: f64 = 486.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_router_area_sums_to_paper_total() {
        let per_router =
            CROSSBAR_AREA_UM2 + SWITCH_ALLOC_AREA_UM2 + VC_ALLOC_AREA_UM2 + BUFFER_AREA_UM2;
        let total_mm2 = per_router * 64.0 / 1e6;
        assert!(
            (total_mm2 - PAPER_MESH_8X8_AREA_MM2).abs() < 0.02,
            "model {total_mm2} vs paper {PAPER_MESH_8X8_AREA_MM2}"
        );
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn merged_stage_delays_meet_va_critical_path() {
        // Sec. V-B3: merged RC and ST stay under the VA stage delay.
        assert!(MERGED_RC_PS < VA_PS);
        assert!(MERGED_ST_PS < VA_PS);
        assert_eq!(MERGED_RC_PS, RC_PS + MUX_PS);
    }

    #[test]
    fn stage_delays_fit_the_cycle() {
        let cycle_ps = 1000.0 / FREQ_GHZ;
        for d in [RC_PS, VA_PS, SA_PS, ST_PS, MERGED_RC_PS, MERGED_ST_PS] {
            assert!(d < cycle_ps);
        }
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn four_mm_of_high_metal_fits_a_cycle() {
        assert!(HIGH_METAL_PS_PER_MM * HIGH_METAL_MM_PER_CYCLE < 1000.0 / FREQ_GHZ);
    }
}

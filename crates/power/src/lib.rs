//! # adaptnoc-power
//!
//! 45 nm power, energy, area, timing, and wiring models for the Adapt-NoC
//! reproduction (paper Secs. IV-A and V-B).
//!
//! * [`energy`] — DSENT-style event-based dynamic energy plus
//!   resource-on-cycle static energy (power gating aware).
//! * [`area`] — reproduces the paper's component-level area accounting
//!   (17.27 mm² baseline 8x8 mesh; Adapt-NoC smaller despite its extras).
//! * [`timing`] — router stage delays with the mux-merge optimization,
//!   wire RC delays per metal layer, DQN inference latency.
//! * [`wiring`] — per-tile-edge link budget from the Intel 45 nm metal
//!   stack and spec usage analysis.
//!
//! ```
//! use adaptnoc_power::prelude::*;
//! use adaptnoc_sim::prelude::*;
//!
//! let model = EnergyModel::new(&SimConfig::baseline());
//! let report = EpochReport::default();
//! let energy = model.energy(&report);
//! assert_eq!(energy.total_j(), 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod area;
pub mod energy;
pub mod params;
pub mod timing;
pub mod wiring;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::area::{
        adapt_8x8_area, adapt_area_saving_fraction, baseline_8x8_area, noc_area, AreaReport,
    };
    pub use crate::energy::{EnergyBreakdown, EnergyModel};
    pub use crate::timing::{
        dqn_latency_ns, link_cycles, paper_dqn_latency_ns, wire_delay_ps, MetalLayer, RouterTiming,
    };
    pub use crate::wiring::{analyze_wiring, paper_budget, WiringBudget, WiringUsage};
}

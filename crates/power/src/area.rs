//! Area model (Sec. V-B1).
//!
//! Reproduces the paper's area accounting: the baseline 8x8 mesh totals
//! 17.27 mm²; Adapt-NoC adds peripheral ports, RL controllers, and
//! mux/link logic but trades away a third of its buffers (2 VCs/vnet vs 3),
//! coming out *smaller* than the baseline.

use crate::params as p;
use adaptnoc_sim::config::SimConfig;

/// Area report for one NoC design, mm².
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaReport {
    /// Crossbars.
    pub crossbars_mm2: f64,
    /// Switch allocators.
    pub switch_allocs_mm2: f64,
    /// VC allocators.
    pub vc_allocs_mm2: f64,
    /// Input buffers.
    pub buffers_mm2: f64,
    /// Adapt-NoC extras: peripheral ports, RL controllers, muxes and links.
    pub extras_mm2: f64,
}

impl AreaReport {
    /// Total area.
    pub fn total_mm2(&self) -> f64 {
        self.crossbars_mm2
            + self.switch_allocs_mm2
            + self.vc_allocs_mm2
            + self.buffers_mm2
            + self.extras_mm2
    }
}

/// Area of a `routers`-router NoC with the given VC configuration, assuming
/// the paper's baseline router as the reference point (buffer area scales
/// with the per-port buffer capacity).
pub fn noc_area(routers: usize, cfg: &SimConfig, adapt_extras: bool) -> AreaReport {
    let n = routers as f64;
    let baseline_flits_per_port = SimConfig::baseline().port_buffer_flits() as f64;
    let buffer_scale = cfg.port_buffer_flits() as f64 / baseline_flits_per_port;
    let extras = if adapt_extras {
        p::ADAPT_EXTRA_PORT_AREA_MM2 + (p::RL_CONTROLLERS_AREA_UM2 + p::MUX_LINK_AREA_UM2) / 1e6
    } else {
        0.0
    };
    AreaReport {
        crossbars_mm2: n * p::CROSSBAR_AREA_UM2 / 1e6,
        switch_allocs_mm2: n * p::SWITCH_ALLOC_AREA_UM2 / 1e6,
        vc_allocs_mm2: n * p::VC_ALLOC_AREA_UM2 / 1e6,
        buffers_mm2: n * p::BUFFER_AREA_UM2 * buffer_scale / 1e6,
        extras_mm2: extras,
    }
}

/// The baseline 8x8 mesh area (must reproduce the paper's 17.27 mm²).
pub fn baseline_8x8_area() -> AreaReport {
    noc_area(64, &SimConfig::baseline(), false)
}

/// The Adapt-NoC 8x8 area (fewer buffers + extras).
pub fn adapt_8x8_area() -> AreaReport {
    noc_area(64, &SimConfig::adapt_noc(), true)
}

/// Adapt-NoC area saving relative to the baseline (the paper reports 14%
/// less area; the model, using only the published component numbers, lands
/// in the same regime).
pub fn adapt_area_saving_fraction() -> f64 {
    let base = baseline_8x8_area().total_mm2();
    let adapt = adapt_8x8_area().total_mm2();
    1.0 - adapt / base
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_area_matches_paper() {
        let a = baseline_8x8_area();
        assert!(
            (a.total_mm2() - p::PAPER_MESH_8X8_AREA_MM2).abs() < 0.02,
            "got {}",
            a.total_mm2()
        );
        assert_eq!(a.extras_mm2, 0.0);
    }

    #[test]
    fn buffers_dominate_router_area() {
        let a = baseline_8x8_area();
        assert!(a.buffers_mm2 > a.crossbars_mm2 + a.switch_allocs_mm2 + a.vc_allocs_mm2);
    }

    #[test]
    fn adapt_is_smaller_despite_extras() {
        let saving = adapt_area_saving_fraction();
        // Paper: 14% less. Component math with the published numbers gives
        // a saving in the 10-25% band.
        assert!(
            (0.10..=0.25).contains(&saving),
            "saving {saving} outside the paper's regime"
        );
    }

    #[test]
    fn extras_match_published_components() {
        let a = adapt_8x8_area();
        let expected = p::ADAPT_EXTRA_PORT_AREA_MM2
            + (p::RL_CONTROLLERS_AREA_UM2 + p::MUX_LINK_AREA_UM2) / 1e6;
        assert!((a.extras_mm2 - expected).abs() < 1e-12);
        // ~1.67 mm² of extras.
        assert!((a.extras_mm2 - 1.667).abs() < 0.01);
    }

    #[test]
    fn ftby_uses_fewer_bigger_routers() {
        // 16 routers with 4 VCs/vnet: less total buffer area than 64
        // baseline routers even with more VCs each.
        let ftby = noc_area(16, &SimConfig::flattened_butterfly(), false);
        let base = baseline_8x8_area();
        assert!(ftby.total_mm2() < base.total_mm2());
    }
}

//! Router, link, and RL timing analysis (Sec. V-B3).

use crate::params as p;

/// Router pipeline-stage delays with the Adapt-NoC mux merge applied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterTiming {
    /// Route computation (+ input mux when merged), ps.
    pub rc_ps: f64,
    /// VC allocation, ps — the critical stage.
    pub va_ps: f64,
    /// Switch allocation, ps.
    pub sa_ps: f64,
    /// Switch traversal (+ output mux when merged), ps.
    pub st_ps: f64,
}

impl RouterTiming {
    /// The conventional 5x5 router (no muxes).
    pub fn conventional() -> Self {
        RouterTiming {
            rc_ps: p::RC_PS,
            va_ps: p::VA_PS,
            sa_ps: p::SA_PS,
            st_ps: p::ST_PS,
        }
    }

    /// The adaptable router with mux logic merged into RC and ST
    /// (the paper's optimization: both merged stages stay under VA).
    pub fn adaptable_merged() -> Self {
        RouterTiming {
            rc_ps: p::MERGED_RC_PS,
            va_ps: p::VA_PS,
            sa_ps: p::SA_PS,
            st_ps: p::MERGED_ST_PS,
        }
    }

    /// The critical (slowest) stage delay.
    pub fn critical_ps(&self) -> f64 {
        self.rc_ps.max(self.va_ps).max(self.sa_ps).max(self.st_ps)
    }

    /// Maximum frequency in GHz given the critical stage.
    pub fn max_freq_ghz(&self) -> f64 {
        1000.0 / self.critical_ps()
    }

    /// Whether the design meets the target frequency.
    pub fn meets_frequency(&self, ghz: f64) -> bool {
        self.max_freq_ghz() >= ghz
    }
}

/// Metal layer classes for wire-delay computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetalLayer {
    /// M7-M8: wide/thick, 42 ps/mm.
    High,
    /// M4-M6: 200 ps/mm.
    Intermediate,
}

/// Wire delay over `mm` on the given layer, ps; reversed adaptable-link
/// segments pay the extra transmission-gate delay of their quad-state
/// repeaters.
pub fn wire_delay_ps(mm: f64, layer: MetalLayer, reversed: bool) -> f64 {
    let per_mm = match layer {
        MetalLayer::High => p::HIGH_METAL_PS_PER_MM,
        MetalLayer::Intermediate => p::INTERMEDIATE_METAL_PS_PER_MM,
    };
    mm * per_mm
        + if reversed {
            p::REVERSED_REPEATER_PS
        } else {
            0.0
        }
}

/// Link latency in cycles for an express/adaptable segment of `mm` on high
/// metal (the simulator's `T_l` model: 1 cycle per 4 mm).
pub fn link_cycles(mm: f64) -> u64 {
    ((mm / p::HIGH_METAL_MM_PER_CYCLE).ceil() as u64).max(1)
}

/// DQN inference latency in ns given the network shape and the paper's
/// minimal hardware assumption (one adder + one multiplier: one MAC per
/// cycle at 1 GHz, plus activation overhead).
pub fn dqn_latency_ns(layers: &[usize]) -> f64 {
    let macs: usize = layers.windows(2).map(|w| w[0] * w[1]).sum();
    let activations: usize = layers[1..].iter().sum();
    (macs + activations) as f64 * p::NS_PER_CYCLE
}

/// The paper's DQN (12-15-15-4) inference latency.
pub fn paper_dqn_latency_ns() -> f64 {
    dqn_latency_ns(&[12, 15, 15, 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conventional_router_critical_stage_is_va() {
        let t = RouterTiming::conventional();
        assert_eq!(t.critical_ps(), p::VA_PS);
        assert!(t.meets_frequency(1.0));
    }

    #[test]
    fn mux_merge_does_not_slow_the_router() {
        // The paper's key timing claim: merged RC (266 ps) and merged ST
        // (350 ps) stay below VA (370 ps), so the adaptable router runs at
        // the same frequency as the conventional one.
        let conv = RouterTiming::conventional();
        let adapt = RouterTiming::adaptable_merged();
        assert_eq!(adapt.critical_ps(), conv.critical_ps());
        assert_eq!(adapt.max_freq_ghz(), conv.max_freq_ghz());
        assert!(adapt.rc_ps < adapt.va_ps);
        assert!(adapt.st_ps < adapt.va_ps);
    }

    #[test]
    fn high_metal_is_much_faster() {
        assert!(
            wire_delay_ps(4.0, MetalLayer::High, false)
                < wire_delay_ps(1.0, MetalLayer::Intermediate, false)
        );
        // 4 mm on high metal fits well within a 1 GHz cycle.
        assert!(wire_delay_ps(4.0, MetalLayer::High, false) < 1000.0);
    }

    #[test]
    fn reversed_repeaters_add_delay() {
        let fwd = wire_delay_ps(3.0, MetalLayer::High, false);
        let rev = wire_delay_ps(3.0, MetalLayer::High, true);
        assert!((rev - fwd - p::REVERSED_REPEATER_PS).abs() < 1e-12);
    }

    #[test]
    fn link_cycles_match_sim_model() {
        assert_eq!(link_cycles(1.0), 1);
        assert_eq!(link_cycles(4.0), 1);
        assert_eq!(link_cycles(5.0), 2);
        assert_eq!(link_cycles(7.0), 2);
    }

    #[test]
    fn dqn_latency_near_paper_value() {
        // 12*15 + 15*15 + 15*4 = 465 MACs + 34 activations = 499 ns;
        // the paper reports 486 ns — same regime, within ~5%.
        let ns = paper_dqn_latency_ns();
        assert!(
            (ns - p::RL_INFERENCE_NS).abs() / p::RL_INFERENCE_NS < 0.05,
            "model {ns} vs paper {}",
            p::RL_INFERENCE_NS
        );
    }

    #[test]
    fn dqn_latency_fits_in_epoch() {
        // The inference hides inside the 50K-cycle (50 µs) epoch.
        assert!(paper_dqn_latency_ns() < 50_000.0 * p::NS_PER_CYCLE);
    }
}

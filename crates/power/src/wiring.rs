//! Wiring-density analysis (Sec. V-B2).
//!
//! Computes the per-tile-edge link budget from the Intel 45 nm metal stack
//! and checks a built [`NetworkSpec`] against it: the maximum number of
//! 256-bit bidirectional links crossing any tile edge must stay within
//! what the metal layers provide.

use crate::params as p;
use adaptnoc_sim::spec::{ChannelKind, NetworkSpec};
use std::collections::HashMap;

/// Per-tile-edge link budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WiringBudget {
    /// 256-bit bidirectional links per tile edge on high metal (M7-M8).
    pub high_metal_links: u32,
    /// 256-bit bidirectional links per tile edge on intermediate metal
    /// (M4-M6).
    pub intermediate_links: u32,
}

impl WiringBudget {
    /// Total links per tile edge.
    pub fn total(&self) -> u32 {
        self.high_metal_links + self.intermediate_links
    }
}

/// Links per tile edge a metal class can provide.
fn links_per_edge(pitch_nm: f64, layers: u32) -> u32 {
    let wires_per_mm = p::TILE_MM * 1e6 / pitch_nm;
    let usable = wires_per_mm * layers as f64 * p::ROUTING_FRACTION;
    // A bidirectional link needs 2 x LINK_WIDTH wires.
    (usable / (2.0 * p::LINK_WIDTH_BITS as f64)).round() as u32
}

/// The 45 nm budget (the paper: 2 high-metal + 7 intermediate).
pub fn paper_budget() -> WiringBudget {
    WiringBudget {
        high_metal_links: links_per_edge(p::HIGH_METAL_PITCH_NM, p::HIGH_METAL_LAYERS),
        intermediate_links: links_per_edge(
            p::INTERMEDIATE_METAL_PITCH_NM,
            p::INTERMEDIATE_METAL_LAYERS,
        ),
    }
}

/// Wiring usage of a spec: the maximum number of unidirectional 256-bit
/// channels crossing any tile edge, split by wire class. A bidirectional
/// link counts as two unidirectional channels. Adaptable-link segments are
/// pinned to the high metal layers (the paper places them there for the
/// 42 ps/mm delay); other channels may use any layer.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WiringUsage {
    /// Max unidirectional channels over any horizontal tile edge.
    pub max_channels_per_edge: u32,
    /// Same, counting only adaptable-link (high-metal) channels.
    pub max_express_channels_per_edge: u32,
    /// Max unidirectional inter-chip (chiplet) channels over any chip
    /// boundary edge. These ride SerDes lanes on the package substrate,
    /// not on-chip metal, so they have their own budget
    /// ([`crate::params::INTERCHIP_LANES_PER_CHIP_EDGE`]).
    pub max_interchip_channels_per_edge: u32,
}

impl WiringUsage {
    /// Whether the usage fits the budget (unidirectional channels vs
    /// 2x bidirectional link counts). Inter-chip channels are checked
    /// against the package SerDes lane budget instead of on-chip metal.
    pub fn fits(&self, budget: &WiringBudget) -> bool {
        self.max_express_channels_per_edge <= budget.high_metal_links * 2
            && self.max_channels_per_edge <= budget.total() * 2
            && self.max_interchip_channels_per_edge <= p::INTERCHIP_LANES_PER_CHIP_EDGE * 2
    }
}

/// Analyzes a spec's wiring against the tile grid (`width` x `height`
/// tiles, router id = y*width + x). Concentration NI links are counted on
/// the edges they cross (routed on intermediate metal).
pub fn analyze_wiring(spec: &NetworkSpec, width: u8, height: u8) -> WiringUsage {
    // Edge id: horizontal edge between (x,y)-(x+1,y): ('h', x, y);
    // vertical edge between (x,y)-(x,y+1): ('v', x, y).
    let mut all: HashMap<(char, u8, u8), u32> = HashMap::new();
    let mut express: HashMap<(char, u8, u8), u32> = HashMap::new();

    let coord = |r: u16| -> (u8, u8) { ((r % width as u16) as u8, (r / width as u16) as u8) };

    let mut add_span = |a: (u8, u8), b: (u8, u8), is_express: bool| {
        // Route dimension-ordered: x first, then y (matches physical wires).
        let (ax, ay) = a;
        let (bx, by) = b;
        let (x0, x1) = (ax.min(bx), ax.max(bx));
        for x in x0..x1 {
            let e = ('h', x, ay);
            *all.entry(e).or_insert(0) += 1;
            if is_express {
                *express.entry(e).or_insert(0) += 1;
            }
        }
        let (y0, y1) = (ay.min(by), ay.max(by));
        for y in y0..y1 {
            let e = ('v', bx, y);
            *all.entry(e).or_insert(0) += 1;
            if is_express {
                *express.entry(e).or_insert(0) += 1;
            }
        }
    };

    let mut interchip: HashMap<(char, u8, u8), u32> = HashMap::new();
    for ch in &spec.channels {
        let a = coord(ch.src.router.0);
        let b = coord(ch.dst.router.0);
        if ch.kind == ChannelKind::InterChip {
            // Substrate SerDes lanes, not on-chip metal: count the chip
            // boundary edge between the two gateway routers separately.
            let e = if a.1 == b.1 {
                ('h', a.0.min(b.0), a.1)
            } else {
                ('v', a.0, a.1.min(b.1))
            };
            *interchip.entry(e).or_insert(0) += 1;
            continue;
        }
        let is_express = ch.kind.is_adaptable();
        add_span(a, b, is_express);
    }
    for ni in &spec.nis {
        if ni.concentration {
            let node = coord(ni.node.0);
            let router = coord(ni.router.0);
            add_span(node, router, false);
        }
    }

    let _ = height;
    WiringUsage {
        max_channels_per_edge: all.values().copied().max().unwrap_or(0),
        max_express_channels_per_edge: express.values().copied().max().unwrap_or(0),
        max_interchip_channels_per_edge: interchip.values().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_matches_paper() {
        let b = paper_budget();
        assert_eq!(b.high_metal_links, 2, "paper: two high-metal links/edge");
        assert_eq!(
            b.intermediate_links, 7,
            "paper: seven intermediate links/edge"
        );
        assert_eq!(b.total(), 9);
    }

    #[test]
    fn empty_spec_has_zero_usage() {
        let spec = NetworkSpec::new(4, 4, 2);
        let u = analyze_wiring(&spec, 2, 2);
        assert_eq!(u.max_channels_per_edge, 0);
        assert!(u.fits(&paper_budget()));
    }

    #[test]
    fn usage_counts_spanning_channels() {
        use adaptnoc_sim::ids::{PortId, RouterId};
        use adaptnoc_sim::spec::{ChannelKind, ChannelSpec, PortRef};
        // 4x1 grid; an express channel 0 -> 3 crosses 3 edges.
        let mut spec = NetworkSpec::new(4, 4, 2);
        spec.add_channel(ChannelSpec {
            src: PortRef::new(RouterId(0), PortId(0)),
            dst: PortRef::new(RouterId(3), PortId(1)),
            latency: 1,
            length_mm: 3.0,
            dateline: false,
            dim_y: false,
            kind: ChannelKind::Adaptable,
        });
        let u = analyze_wiring(&spec, 4, 1);
        assert_eq!(u.max_channels_per_edge, 1);
        assert_eq!(u.max_express_channels_per_edge, 1);
    }
}

//! Property tests over the *generated* topology families: every sparse
//! Hamming design point and every chiplet fabric drawn from the seeded
//! PRNG must be connected (all-pairs routes terminate), deadlock-free
//! (acyclic channel dependency graph per vnet), and wiring-feasible
//! under the generalized per-edge budget. 240 seeded cases — rerunning
//! is byte-for-byte the same draw, so a failure names a reproducible
//! design point.

use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::rng::Rng;
use adaptnoc_sim::spec::NetworkSpec;
use adaptnoc_topology::prelude::*;

/// Connectivity + deadlock freedom + wiring feasibility in one pass.
/// Returns the observed max hops so callers can sanity-bound diameter.
fn check(name: &str, spec: &NetworkSpec, grid: Grid) -> usize {
    let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
    let stats = check_routes_and_deadlock(spec, &all_pairs(&nodes))
        .unwrap_or_else(|e| panic!("{name}: {e}"));
    assert_eq!(
        stats.routes,
        2 * nodes.len() * (nodes.len() - 1),
        "{name}: every ordered pair must route on both vnets"
    );
    let report = wiring_feasible(spec, &grid, &WiringLimits::paper());
    assert!(report.fits, "{name}: wiring budget exceeded ({report:?})");
    stats.max_hops
}

#[test]
fn random_chiplet_fabrics_are_connected_deadlock_free_and_wirable() {
    let cfg = SimConfig::baseline();
    let mut rng = Rng::seed_from_u64(0xC417FAB);
    for case in 0..120 {
        let mut cc = ChipletConfig::new(
            rng.random_range(1, 3) as u8,
            rng.random_range(1, 3) as u8,
            rng.random_range(3, 5) as u8,
            rng.random_range(3, 5) as u8,
        );
        cc.link_latency = rng.random_range(1, 9) as u8;
        cc.links_per_edge = rng.random_range(1, 1 + cc.chip_w.min(cc.chip_h).min(3) as usize) as u8;
        let name = format!(
            "case {case}: chiplet {}x{} chips of {}x{}, {} links @ {} cycles",
            cc.chips_x, cc.chips_y, cc.chip_w, cc.chip_h, cc.links_per_edge, cc.link_latency
        );
        let spec = chiplet_chip(&cc, &cfg).unwrap_or_else(|e| panic!("{name}: build: {e}"));
        let max_hops = check(&name, &spec, cc.grid());
        // Up*/down* through the chip tree is bounded by a full traversal
        // of the chip graph plus intra-chip meshes.
        let bound = (cc.grid().width as usize + cc.grid().height as usize)
            * (cc.chips_x as usize * cc.chips_y as usize);
        assert!(max_hops <= bound, "{name}: max hops {max_hops} > {bound}");
    }
}

#[test]
fn random_sparse_hamming_points_are_connected_deadlock_free_and_wirable() {
    let cfg = SimConfig::baseline();
    let mut rng = Rng::seed_from_u64(0x5BA125E);
    for case in 0..120 {
        let (w, h) = (rng.random_range(4, 10) as u8, rng.random_range(4, 10) as u8);
        // Strictly increasing offsets >= 2, each < dimension, at most 3
        // per axis — valid by construction.
        let mut ladder = |dim: u8| {
            let mut v = Vec::new();
            let mut o = 2u8;
            while v.len() < 3 && o < dim {
                if rng.random_bool(0.7) {
                    v.push(o);
                }
                o += 1 + rng.random_range(0, 3) as u8;
            }
            v
        };
        let params = SparseHammingParams {
            row_offsets: ladder(w),
            col_offsets: ladder(h),
        };
        let name = format!(
            "case {case}: sparse {w}x{h} rows {:?} cols {:?}",
            params.row_offsets, params.col_offsets
        );
        let grid = Grid::new(w, h);
        let spec = sparse_hamming_chip(grid, &params, &cfg)
            .unwrap_or_else(|e| panic!("{name}: build: {e}"));
        let max_hops = check(&name, &spec, grid);
        // Skip links only ever shorten routes: the mesh diameter bounds
        // every sparse design point.
        let mesh_diameter = (w - 1) as usize + (h - 1) as usize;
        assert!(
            max_hops <= mesh_diameter,
            "{name}: max hops {max_hops} exceeds the mesh diameter {mesh_diameter}"
        );
    }
}

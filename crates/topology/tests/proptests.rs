//! Property tests: any valid region assignment must produce a spec whose
//! routes terminate and whose channel dependency graph is acyclic.

use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::NodeId;
use adaptnoc_topology::prelude::*;
use proptest::prelude::*;

fn kind_strategy() -> impl Strategy<Value = TopologyKind> {
    prop_oneof![
        Just(TopologyKind::Mesh),
        Just(TopologyKind::Cmesh),
        Just(TopologyKind::Torus),
        Just(TopologyKind::Tree),
        Just(TopologyKind::TorusTree),
    ]
}

/// Random even-dimension rect inside the 8x8 grid (even so cmesh always
/// applies).
fn rect_strategy() -> impl Strategy<Value = Rect> {
    (0u8..4, 0u8..4, 1u8..5, 1u8..5).prop_map(|(hx, hy, hw, hh)| {
        let (x, y, w, h) = (hx * 2, hy * 2, hw * 2, hh * 2);
        let w = w.min(8 - x);
        let h = h.min(8 - y);
        Rect::new(x, y, w, h)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Single random region: builds, routes terminate, CDG acyclic.
    #[test]
    fn random_region_is_sound(rect in rect_strategy(), kind in kind_strategy()) {
        let cfg = SimConfig::adapt_noc();
        let grid = Grid::paper();
        let spec = build_chip_spec(grid, &[RegionTopology::new(rect, kind)], &cfg)
            .unwrap_or_else(|e| panic!("{kind} {rect}: {e}"));
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        let stats = check_routes_and_deadlock(&spec, &all_pairs(&nodes))
            .unwrap_or_else(|e| panic!("{kind} {rect}: {e}"));
        if nodes.len() > 1 {
            prop_assert!(stats.routes > 0);
            // Minimality-ish bound: no route longer than the full perimeter.
            prop_assert!(stats.max_hops <= (rect.w as usize + rect.h as usize) * 2);
        }
    }

    /// Random tree root placement inside the region.
    #[test]
    fn random_tree_root_is_sound(
        rect in rect_strategy(),
        rx in 0u8..8,
        ry in 0u8..8,
    ) {
        let grid = Grid::paper();
        let root = Coord::new(rect.x + rx % rect.w, rect.y + ry % rect.h);
        let cfg = SimConfig::adapt_noc();
        let region = RegionTopology::new(rect, TopologyKind::Tree).with_root(grid.node(root));
        let spec = build_chip_spec(grid, &[region], &cfg).unwrap();
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
    }

    /// Two disjoint random regions coexist soundly.
    #[test]
    fn split_chip_is_sound(
        split in 2u8..7,
        vertical in prop::bool::ANY,
        k1 in kind_strategy(),
        k2 in kind_strategy(),
    ) {
        let split = split & !1; // even for cmesh
        prop_assume!((2..=6).contains(&split));
        let grid = Grid::paper();
        let (r1, r2) = if vertical {
            (Rect::new(0, 0, split, 8), Rect::new(split, 0, 8 - split, 8))
        } else {
            (Rect::new(0, 0, 8, split), Rect::new(0, split, 8, 8 - split))
        };
        let cfg = SimConfig::adapt_noc();
        let spec = build_chip_spec(
            grid,
            &[RegionTopology::new(r1, k1), RegionTopology::new(r2, k2)],
            &cfg,
        )
        .unwrap_or_else(|e| panic!("{k1}/{k2} {r1} {r2}: {e}"));
        for rect in [r1, r2] {
            let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
            check_routes_and_deadlock(&spec, &all_pairs(&nodes))
                .unwrap_or_else(|e| panic!("{rect}: {e}"));
        }
    }
}

//! Randomized property tests: any valid region assignment must produce a
//! spec whose routes terminate and whose channel dependency graph is
//! acyclic. Cases come from the in-tree seeded PRNG for reproducibility.

use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::NodeId;
use adaptnoc_sim::rng::Rng;
use adaptnoc_topology::prelude::*;

const KINDS: [TopologyKind; 5] = [
    TopologyKind::Mesh,
    TopologyKind::Cmesh,
    TopologyKind::Torus,
    TopologyKind::Tree,
    TopologyKind::TorusTree,
];

fn random_kind(rng: &mut Rng) -> TopologyKind {
    KINDS[rng.random_below(KINDS.len())]
}

/// Random even-dimension rect inside the 8x8 grid (even so cmesh always
/// applies).
fn random_rect(rng: &mut Rng) -> Rect {
    let x = rng.random_below(4) as u8 * 2;
    let y = rng.random_below(4) as u8 * 2;
    let w = (rng.random_range(1, 5) as u8 * 2).min(8 - x);
    let h = (rng.random_range(1, 5) as u8 * 2).min(8 - y);
    Rect::new(x, y, w, h)
}

/// Single random region: builds, routes terminate, CDG acyclic.
#[test]
fn random_region_is_sound() {
    let mut rng = Rng::seed_from_u64(0x7090);
    for _case in 0..48 {
        let rect = random_rect(&mut rng);
        let kind = random_kind(&mut rng);
        let cfg = SimConfig::adapt_noc();
        let grid = Grid::paper();
        let spec = build_chip_spec(grid, &[RegionTopology::new(rect, kind)], &cfg)
            .unwrap_or_else(|e| panic!("{kind} {rect}: {e}"));
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        let stats = check_routes_and_deadlock(&spec, &all_pairs(&nodes))
            .unwrap_or_else(|e| panic!("{kind} {rect}: {e}"));
        if nodes.len() > 1 {
            assert!(stats.routes > 0);
            // Minimality-ish bound: no route longer than the full perimeter.
            assert!(stats.max_hops <= (rect.w as usize + rect.h as usize) * 2);
        }
    }
}

/// Random tree root placement inside the region.
#[test]
fn random_tree_root_is_sound() {
    let mut rng = Rng::seed_from_u64(0x7EE);
    for _case in 0..48 {
        let rect = random_rect(&mut rng);
        let rx = rng.random_below(8) as u8;
        let ry = rng.random_below(8) as u8;
        let grid = Grid::paper();
        let root = Coord::new(rect.x + rx % rect.w, rect.y + ry % rect.h);
        let cfg = SimConfig::adapt_noc();
        let region = RegionTopology::new(rect, TopologyKind::Tree).with_root(grid.node(root));
        let spec = build_chip_spec(grid, &[region], &cfg).unwrap();
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
    }
}

/// Two disjoint random regions coexist soundly.
#[test]
fn split_chip_is_sound() {
    let mut rng = Rng::seed_from_u64(0x5711);
    let mut cases = 0;
    while cases < 48 {
        let split = rng.random_range(2, 7) as u8 & !1; // even for cmesh
        if !(2..=6).contains(&split) {
            continue;
        }
        cases += 1;
        let vertical = rng.random_bool(0.5);
        let k1 = random_kind(&mut rng);
        let k2 = random_kind(&mut rng);
        let grid = Grid::paper();
        let (r1, r2) = if vertical {
            (Rect::new(0, 0, split, 8), Rect::new(split, 0, 8 - split, 8))
        } else {
            (Rect::new(0, 0, 8, split), Rect::new(0, split, 8, 8 - split))
        };
        let cfg = SimConfig::adapt_noc();
        let spec = build_chip_spec(
            grid,
            &[RegionTopology::new(r1, k1), RegionTopology::new(r2, k2)],
            &cfg,
        )
        .unwrap_or_else(|e| panic!("{k1}/{k2} {r1} {r2}: {e}"));
        for rect in [r1, r2] {
            let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
            check_routes_and_deadlock(&spec, &all_pairs(&nodes))
                .unwrap_or_else(|e| panic!("{rect}: {e}"));
        }
    }
}

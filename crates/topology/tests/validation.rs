//! Cross-topology validation: every composed topology must produce
//! terminating routes, an acyclic channel-dependency graph, and deliver
//! real traffic end-to-end in the simulator.

use adaptnoc_sim::prelude::*;
use adaptnoc_topology::prelude::*;

fn region_nodes(grid: &Grid, rect: Rect) -> Vec<NodeId> {
    rect.iter().map(|c| grid.node(c)).collect()
}

/// Builds a single-region chip and returns (spec, region nodes).
fn single_region(
    rect: Rect,
    kind: TopologyKind,
    cfg: &SimConfig,
) -> (adaptnoc_sim::spec::NetworkSpec, Vec<NodeId>) {
    let grid = Grid::paper();
    let spec = build_chip_spec(grid, &[RegionTopology::new(rect, kind)], cfg).unwrap();
    (spec, region_nodes(&grid, rect))
}

fn exercise(spec: adaptnoc_sim::spec::NetworkSpec, nodes: &[NodeId], cfg: SimConfig) {
    // Static validation.
    let stats = check_routes_and_deadlock(&spec, &all_pairs(nodes)).unwrap();
    assert!(stats.routes > 0);

    // Dynamic: all-pairs traffic drains with no loss.
    let mut net = Network::new(spec, cfg).unwrap();
    let mut id = 0u64;
    for &s in nodes {
        for &d in nodes {
            if s != d {
                id += 1;
                net.inject(Packet::request(id, s, d, 0)).unwrap();
                id += 1;
                net.inject(Packet::reply(id, d, s, 0)).unwrap();
            }
        }
    }
    let mut cycles = 0u64;
    while net.in_flight() > 0 && cycles < 400_000 {
        net.step();
        cycles += 1;
    }
    assert_eq!(net.in_flight(), 0, "network failed to drain");
    assert_eq!(net.drain_delivered().len(), id as usize);
    assert_eq!(net.unroutable_events(), 0);
}

#[test]
fn mesh_region_4x4_is_sound() {
    let cfg = SimConfig::adapt_noc();
    let (spec, nodes) = single_region(Rect::new(0, 0, 4, 4), TopologyKind::Mesh, &cfg);
    exercise(spec, &nodes, cfg);
}

#[test]
fn cmesh_region_4x4_is_sound() {
    let cfg = SimConfig::adapt_noc();
    let (spec, nodes) = single_region(Rect::new(0, 0, 4, 4), TopologyKind::Cmesh, &cfg);
    exercise(spec, &nodes, cfg);
}

#[test]
fn torus_region_4x4_is_sound() {
    let cfg = SimConfig::adapt_noc();
    let (spec, nodes) = single_region(Rect::new(0, 0, 4, 4), TopologyKind::Torus, &cfg);
    exercise(spec, &nodes, cfg);
}

#[test]
fn tree_region_4x4_is_sound() {
    let cfg = SimConfig::adapt_noc();
    let (spec, nodes) = single_region(Rect::new(0, 0, 4, 4), TopologyKind::Tree, &cfg);
    exercise(spec, &nodes, cfg);
}

#[test]
fn torus_tree_region_4x4_is_sound() {
    let cfg = SimConfig::adapt_noc();
    let (spec, nodes) = single_region(Rect::new(0, 0, 4, 4), TopologyKind::TorusTree, &cfg);
    exercise(spec, &nodes, cfg);
}

#[test]
fn all_topologies_sound_in_offset_regions() {
    // Regions not at the grid origin, including non-square shapes.
    let cfg = SimConfig::adapt_noc();
    let grid = Grid::paper();
    for kind in [
        TopologyKind::Mesh,
        TopologyKind::Cmesh,
        TopologyKind::Torus,
        TopologyKind::Tree,
    ] {
        for rect in [
            Rect::new(4, 4, 4, 4),
            Rect::new(0, 4, 4, 2),
            Rect::new(2, 0, 4, 8),
            Rect::new(0, 0, 8, 2),
        ] {
            let spec = build_chip_spec(grid, &[RegionTopology::new(rect, kind)], &cfg).unwrap();
            let nodes = region_nodes(&grid, rect);
            let stats = check_routes_and_deadlock(&spec, &all_pairs(&nodes))
                .unwrap_or_else(|e| panic!("{kind} in {rect}: {e}"));
            assert!(stats.routes > 0, "{kind} in {rect}");
        }
    }
}

#[test]
fn multi_region_chip_is_sound_per_region() {
    // The paper's mixed-workload layout: three apps in disjoint subNoCs.
    let cfg = SimConfig::adapt_noc();
    let grid = Grid::paper();
    let r1 = Rect::new(0, 0, 4, 4);
    let r2 = Rect::new(4, 0, 4, 4);
    let r3 = Rect::new(0, 4, 8, 4);
    let regions = [
        RegionTopology::new(r1, TopologyKind::Cmesh),
        RegionTopology::new(r2, TopologyKind::Torus),
        RegionTopology::new(r3, TopologyKind::Tree).with_root(grid.node(Coord::new(0, 4))),
    ];
    let spec = build_chip_spec(grid, &regions, &cfg).unwrap();
    for rect in [r1, r2, r3] {
        let nodes = region_nodes(&grid, rect);
        check_routes_and_deadlock(&spec, &all_pairs(&nodes))
            .unwrap_or_else(|e| panic!("region {rect}: {e}"));
    }
}

#[test]
fn ftby_chip_is_sound() {
    let cfg = SimConfig::flattened_butterfly();
    let grid = Grid::paper();
    let spec = ftby_chip(grid, &cfg).unwrap();
    let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
    let stats = check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
    // FTBY: at most 1 row hop + 1 column hop.
    assert!(stats.max_hops <= 2, "max hops {}", stats.max_hops);

    // Dynamic spot check on a subset (full all-pairs is covered above).
    let mut net = Network::new(spec, cfg).unwrap();
    let mut id = 0;
    for &s in nodes.iter().step_by(7) {
        for &d in nodes.iter().step_by(5) {
            if s != d {
                id += 1;
                net.inject(Packet::reply(id, s, d, 0)).unwrap();
            }
        }
    }
    net.run(20_000);
    assert_eq!(net.in_flight(), 0);
    assert_eq!(net.drain_delivered().len(), id as usize);
}

#[test]
fn shortcut_chip_is_sound() {
    let cfg = SimConfig::baseline();
    let grid = Grid::paper();
    let links = [
        (Coord::new(0, 0), Coord::new(7, 0)),
        (Coord::new(0, 7), Coord::new(7, 7)),
        (Coord::new(0, 1), Coord::new(0, 6)),
        (Coord::new(7, 1), Coord::new(7, 6)),
    ];
    let spec = shortcut_chip(grid, &links, &cfg).unwrap();
    let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
    check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
}

#[test]
fn tree_cuts_reply_hops_from_root() {
    // The tree's purpose: replies from the MC reach leaves in fewer hops
    // than the mesh.
    let cfg = SimConfig::adapt_noc();
    let grid = Grid::paper();
    let rect = Rect::new(0, 0, 4, 4);
    let root = grid.node(Coord::new(0, 0));

    let hops = |kind: TopologyKind| -> f64 {
        let spec = build_chip_spec(
            grid,
            &[RegionTopology::new(rect, kind).with_root(root)],
            &cfg,
        )
        .unwrap();
        let pairs: Vec<(NodeId, NodeId)> = region_nodes(&grid, rect)
            .into_iter()
            .filter(|&n| n != root)
            .map(|n| (root, n))
            .collect();
        let mut total = 0usize;
        for &(s, d) in &pairs {
            total += walk_route(&spec, Vnet::REPLY, s, d).unwrap().hops;
        }
        total as f64 / pairs.len() as f64
    };

    let mesh = hops(TopologyKind::Mesh);
    let tree = hops(TopologyKind::Tree);
    assert!(
        tree < mesh,
        "tree reply hops {tree} should beat mesh {mesh}"
    );
}

#[test]
fn torus_cuts_cross_region_hops() {
    let cfg = SimConfig::adapt_noc();
    let grid = Grid::paper();
    let rect = Rect::new(0, 0, 4, 8);
    let avg = |kind: TopologyKind| -> f64 {
        let spec = build_chip_spec(grid, &[RegionTopology::new(rect, kind)], &cfg).unwrap();
        let nodes = region_nodes(&grid, rect);
        check_routes_and_deadlock(&spec, &all_pairs(&nodes))
            .unwrap()
            .avg_hops()
    };
    let mesh = avg(TopologyKind::Mesh);
    let torus = avg(TopologyKind::Torus);
    assert!(
        torus < mesh,
        "torus avg hops {torus} should beat mesh {mesh}"
    );
}

#[test]
fn cmesh_cuts_hops_via_concentration() {
    let cfg = SimConfig::adapt_noc();
    let grid = Grid::paper();
    let rect = Rect::new(0, 0, 4, 4);
    let avg = |kind: TopologyKind| -> f64 {
        let spec = build_chip_spec(grid, &[RegionTopology::new(rect, kind)], &cfg).unwrap();
        let nodes = region_nodes(&grid, rect);
        check_routes_and_deadlock(&spec, &all_pairs(&nodes))
            .unwrap()
            .avg_hops()
    };
    let mesh = avg(TopologyKind::Mesh);
    let cmesh = avg(TopologyKind::Cmesh);
    assert!(
        cmesh < mesh,
        "cmesh avg hops {cmesh} should beat mesh {mesh}"
    );
}

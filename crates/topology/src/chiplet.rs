//! Hierarchical chiplet fabrics: subNoC chips joined by serialized
//! inter-chip links.
//!
//! Beyond single-chip scaling, heterogeneous manycores increasingly split
//! the die into chiplets on a package substrate. This module composes a
//! `chips_x x chips_y` array of mesh chips, each `chip_w x chip_h` tiles,
//! joined along chip boundaries by [`ChannelKind::InterChip`] links —
//! serialized SerDes lanes whose latency and static/dynamic power are
//! modeled separately from on-chip wires (`adaptnoc-power`).
//!
//! Routing is two-level:
//!
//! * **Intra-chip**: the generalized dimension-ordered scheme of
//!   [`crate::dor`] (plain XY on the chip mesh), both for chip-local
//!   traffic and for the leg towards/after a gateway router.
//! * **Inter-chip**: **up\*/down\*** over the chip-level graph, from a BFS
//!   spanning tree rooted at chip (0,0) — the same discipline the
//!   irregular-topology extension uses at tile level, lifted to chip
//!   granularity.
//!
//! Up-before-down orders the inter-chip channels and XY keeps every
//! intra-chip leg acyclic, but that alone is *not* sufficient: two
//! parallel links on the same chip boundary couple through the shared
//! boundary-row mesh channels (traffic that just entered a chip heading
//! away from one gateway shares row channels with traffic converging on
//! the other gateway), which can chain a down-dependency back into an
//! up-dependency and close a cycle. Inter-chip links are therefore
//! *dateline* channels: the first chip crossing bumps a packet into the
//! sticky escape class (`adaptnoc_sim::spec::CLASS_INTERCHIP`, reserved
//! at every router via `vc_split` and — unlike the per-dimension torus
//! class — never reset by a turn), splitting the channel-dependency
//! graph between pre- and post-crossing legs. Class 0 is per-chip XY
//! (acyclic); escape-class legs are post-crossing route suffixes whose
//! inter-chip dependencies follow the up\*/down\* order and whose
//! intra-chip legs are again XY, so neither class can host a cycle —
//! verified by [`crate::validate::check_routes_and_deadlock`] in the
//! tests.
//!
//! Parallel links between adjacent chips are spread over distinct boundary
//! rows/columns and selected per destination node (`node % links`), which
//! load-balances without reordering any single flow.

use crate::dor::{fill_dor_tables, nodes_of, routers_of};
use crate::geom::{Coord, Grid, Rect};
use crate::plan::{BuildError, ChipPlan};
use crate::regions::mesh_fabric_public as mesh_fabric;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{ChannelId, Direction, PortId, RouterId, Vnet};
use adaptnoc_sim::spec::{ChannelKind, ChannelSpec, NetworkSpec, PortRef};
use std::collections::{HashMap, VecDeque};

/// Geometry and link parameters of a chiplet fabric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChipletConfig {
    /// Chips per row of the package.
    pub chips_x: u8,
    /// Chips per column of the package.
    pub chips_y: u8,
    /// Tiles per chip row.
    pub chip_w: u8,
    /// Tiles per chip column.
    pub chip_h: u8,
    /// Latency of one inter-chip link traversal in cycles (serialization,
    /// substrate flight and deserialization; the SerDes is pipelined so
    /// sustained bandwidth stays one flit per cycle).
    pub link_latency: u8,
    /// Parallel bidirectional links per adjacent chip pair.
    pub links_per_edge: u8,
    /// Substrate trace length per inter-chip link, mm (enters the static
    /// power model).
    pub link_mm: f32,
}

impl ChipletConfig {
    /// A chiplet fabric with default link parameters: 4-cycle links
    /// (~2 cycles of SerDes each way at 1 GHz), 2 parallel links per chip
    /// boundary, 2 mm substrate traces.
    pub fn new(chips_x: u8, chips_y: u8, chip_w: u8, chip_h: u8) -> Self {
        ChipletConfig {
            chips_x,
            chips_y,
            chip_w,
            chip_h,
            link_latency: 4,
            links_per_edge: 2,
            link_mm: 2.0,
        }
    }

    /// The global tile grid covering all chips.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid; call [`ChipletConfig::validate`]
    /// first.
    pub fn grid(&self) -> Grid {
        Grid::new(self.chips_x * self.chip_w, self.chips_y * self.chip_h)
    }

    /// The tile footprint of chip `(cx, cy)`.
    pub fn chip_rect(&self, cx: u8, cy: u8) -> Rect {
        Rect::new(cx * self.chip_w, cy * self.chip_h, self.chip_w, self.chip_h)
    }

    /// The chip coordinates owning tile `c`.
    pub fn chip_of(&self, c: Coord) -> (u8, u8) {
        (c.x / self.chip_w, c.y / self.chip_h)
    }

    /// Checks the geometry: positive dimensions, global grid within the
    /// `u8` coordinate space, and enough boundary rows/columns for the
    /// requested parallel links.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Region`] on an infeasible configuration.
    pub fn validate(&self) -> Result<(), BuildError> {
        if self.chips_x == 0 || self.chips_y == 0 || self.chip_w == 0 || self.chip_h == 0 {
            return Err(BuildError::Region(
                "chiplet dimensions must be positive".into(),
            ));
        }
        if self.chips_x as u16 * self.chip_w as u16 > 255
            || self.chips_y as u16 * self.chip_h as u16 > 255
        {
            return Err(BuildError::Region(
                "chiplet fabric exceeds the 255-tile coordinate space".into(),
            ));
        }
        if self.links_per_edge == 0 {
            return Err(BuildError::Region(
                "chiplet fabrics need at least one link per chip boundary".into(),
            ));
        }
        if self.links_per_edge > self.chip_w || self.links_per_edge > self.chip_h {
            return Err(BuildError::Region(format!(
                "{} links per edge need distinct boundary rows on {}x{} chips",
                self.links_per_edge, self.chip_w, self.chip_h
            )));
        }
        Ok(())
    }
}

/// Evenly spread positions for `links` gateways along a boundary of `dim`
/// tiles: the midpoints of `links` equal spans.
fn gateway_positions(dim: u8, links: u8) -> impl Iterator<Item = u8> {
    (0..links).map(move |k| ((2 * k as u16 + 1) * dim as u16 / (2 * links as u16)) as u8)
}

/// Builds a chiplet fabric: per-chip meshes, inter-chip SerDes links and
/// the two-level routing tables.
///
/// # Errors
///
/// Returns [`BuildError`] on an invalid configuration or wiring conflict.
pub fn chiplet_chip(cc: &ChipletConfig, cfg: &SimConfig) -> Result<NetworkSpec, BuildError> {
    cc.validate()?;
    let grid = cc.grid();
    let mut plan = ChipPlan::new(grid, cfg);

    // Per-chip mesh fabric and intra-chip XY tables.
    for cy in 0..cc.chips_y {
        for cx in 0..cc.chips_x {
            let rect = cc.chip_rect(cx, cy);
            mesh_fabric(&mut plan, rect)?;
            let routers = routers_of(&grid, rect.iter());
            let nodes = nodes_of(&grid, rect.iter());
            for v in 0..cfg.vnets {
                fill_dor_tables(&mut plan.spec, &grid, Vnet(v), &routers, &nodes, false)?;
            }
        }
    }

    // Dateline escape class: crossing an inter-chip link bumps packets to
    // the reserved VC class (see the module docs), so every router must
    // split its VC pool — same mechanism as the torus dateline.
    if cc.chips_x > 1 || cc.chips_y > 1 {
        let split = cfg.vcs_per_vnet - 1;
        if split >= 1 {
            for c in grid.iter() {
                plan.set_vc_split(c, split);
            }
        }
    }

    // Inter-chip links. Boundary routers' outward-facing direction ports
    // are unused by the chip mesh, so each gateway keeps the standard
    // 5-port radix. `gateways[(from_chip, to_chip)]` lists the (router,
    // out-port) pairs in deterministic spread order.
    type ChipPair = ((u8, u8), (u8, u8));
    let mut gateways: HashMap<ChipPair, Vec<(RouterId, PortId)>> = HashMap::new();
    let link = |plan: &mut ChipPlan, a: Coord, b: Coord, dir: Direction| {
        let (ra, rb) = (grid.router(a), grid.router(b));
        let fwd = ChannelSpec {
            src: PortRef::new(ra, dir.port()),
            dst: PortRef::new(rb, dir.opposite().port()),
            latency: cc.link_latency,
            length_mm: cc.link_mm,
            dateline: true,
            dim_y: !dir.is_x(),
            kind: ChannelKind::InterChip,
        };
        let rev = ChannelSpec {
            src: PortRef::new(rb, dir.opposite().port()),
            dst: PortRef::new(ra, dir.port()),
            ..fwd
        };
        plan.add_channel(fwd)?;
        plan.add_channel(rev)?;
        Ok::<((RouterId, PortId), (RouterId, PortId)), BuildError>((
            (ra, dir.port()),
            (rb, dir.opposite().port()),
        ))
    };
    for cy in 0..cc.chips_y {
        for cx in 0..cc.chips_x {
            let rect = cc.chip_rect(cx, cy);
            if cx + 1 < cc.chips_x {
                for dy in gateway_positions(cc.chip_h, cc.links_per_edge) {
                    let a = Coord::new(rect.x_end() - 1, rect.y + dy);
                    let b = Coord::new(rect.x_end(), rect.y + dy);
                    let (out_ab, out_ba) = link(&mut plan, a, b, Direction::East)?;
                    gateways
                        .entry(((cx, cy), (cx + 1, cy)))
                        .or_default()
                        .push(out_ab);
                    gateways
                        .entry(((cx + 1, cy), (cx, cy)))
                        .or_default()
                        .push(out_ba);
                }
            }
            if cy + 1 < cc.chips_y {
                for dx in gateway_positions(cc.chip_w, cc.links_per_edge) {
                    let a = Coord::new(rect.x + dx, rect.y_end() - 1);
                    let b = Coord::new(rect.x + dx, rect.y_end());
                    let (out_ab, out_ba) = link(&mut plan, a, b, Direction::North)?;
                    gateways
                        .entry(((cx, cy), (cx, cy + 1)))
                        .or_default()
                        .push(out_ab);
                    gateways
                        .entry(((cx, cy + 1), (cx, cy)))
                        .or_default()
                        .push(out_ba);
                }
            }
        }
    }

    // Chip-level up*/down* spanning tree from chip (0,0): BFS over the
    // chip array (every adjacent pair is bidirectionally linked).
    let mut parent: HashMap<(u8, u8), (u8, u8)> = HashMap::new();
    let mut visited = vec![(0u8, 0u8)];
    let mut q = VecDeque::from([(0u8, 0u8)]);
    while let Some((cx, cy)) = q.pop_front() {
        let mut nbrs = Vec::new();
        if cx + 1 < cc.chips_x {
            nbrs.push((cx + 1, cy));
        }
        if cx > 0 {
            nbrs.push((cx - 1, cy));
        }
        if cy + 1 < cc.chips_y {
            nbrs.push((cx, cy + 1));
        }
        if cy > 0 {
            nbrs.push((cx, cy - 1));
        }
        for n in nbrs {
            if !visited.contains(&n) {
                parent.insert(n, (cx, cy));
                visited.push(n);
                q.push_back(n);
            }
        }
    }
    let chain = |mut c: (u8, u8)| -> Vec<(u8, u8)> {
        let mut v = vec![c];
        while let Some(&p) = parent.get(&c) {
            v.push(p);
            c = p;
        }
        v
    };
    // Next chip from `from` towards `to` along the up*/down* route: climb
    // to the LCA, then descend the target's ancestor chain.
    let next_chip = |from: (u8, u8), to: (u8, u8)| -> (u8, u8) {
        let to_chain = chain(to);
        if let Some(pos) = to_chain.iter().position(|&c| c == from) {
            to_chain[pos - 1]
        } else {
            parent[&from]
        }
    };

    // Remote-destination table entries: every router of chip C sends a
    // packet for a node in chip D to the gateway of the next chip on the
    // up*/down* route (XY towards the gateway, then the SerDes port).
    for dcy in 0..cc.chips_y {
        for dcx in 0..cc.chips_x {
            let drect = cc.chip_rect(dcx, dcy);
            for dc in drect.iter() {
                let d = grid.node(dc);
                for cy in 0..cc.chips_y {
                    for cx in 0..cc.chips_x {
                        if (cx, cy) == (dcx, dcy) {
                            continue;
                        }
                        let n = next_chip((cx, cy), (dcx, dcy));
                        let gws = &gateways[&((cx, cy), n)];
                        let (gw_r, gw_p) = gws[d.0 as usize % gws.len()];
                        let gw_c = grid.coord(gw_r);
                        for rc in cc.chip_rect(cx, cy).iter() {
                            let r = grid.router(rc);
                            let port = if r == gw_r {
                                gw_p
                            } else if rc.x != gw_c.x {
                                if gw_c.x > rc.x {
                                    Direction::East.port()
                                } else {
                                    Direction::West.port()
                                }
                            } else if gw_c.y > rc.y {
                                Direction::North.port()
                            } else {
                                Direction::South.port()
                            };
                            for v in 0..cfg.vnets {
                                plan.spec.tables.set(Vnet(v), r, d, port);
                            }
                        }
                    }
                }
            }
        }
    }

    plan.finish()
}

/// The ids of all inter-chip channels of a spec, in construction order —
/// the fault-injection surface of a chiplet fabric.
pub fn interchip_channels(spec: &NetworkSpec) -> Vec<ChannelId> {
    spec.channels
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind == ChannelKind::InterChip)
        .map(|(i, _)| ChannelId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{all_pairs, check_routes_and_deadlock, wiring_feasible, WiringLimits};
    use adaptnoc_sim::ids::NodeId;

    #[test]
    fn config_validation() {
        assert!(ChipletConfig::new(2, 2, 4, 4).validate().is_ok());
        assert!(ChipletConfig::new(0, 2, 4, 4).validate().is_err());
        let mut c = ChipletConfig::new(2, 2, 4, 4);
        c.links_per_edge = 0;
        assert!(c.validate().is_err());
        c.links_per_edge = 5;
        assert!(c.validate().is_err());
        assert!(ChipletConfig::new(16, 1, 16, 4).validate().is_err());
    }

    #[test]
    fn two_by_two_fabric_routes_and_fits_wiring() {
        let cc = ChipletConfig::new(2, 2, 4, 4);
        let cfg = SimConfig::baseline();
        let spec = chiplet_chip(&cc, &cfg).unwrap();
        let grid = cc.grid();
        // 4 chips x 48 mesh channels + 4 boundaries x 2 links x 2 dirs.
        assert_eq!(spec.channels.len(), 4 * 48 + 4 * 2 * 2);
        assert_eq!(interchip_channels(&spec).len(), 16);
        let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
        let stats = check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
        assert!(stats.routes > 0);
        let report = wiring_feasible(&spec, &grid, &WiringLimits::paper());
        assert!(report.fits, "wiring report {report:?}");
        assert!(report.max_interchip_channels_per_edge > 0);
    }

    #[test]
    fn asymmetric_fabric_is_deadlock_free() {
        let cc = ChipletConfig {
            links_per_edge: 1,
            ..ChipletConfig::new(3, 2, 4, 3)
        };
        let cfg = SimConfig::baseline();
        let spec = chiplet_chip(&cc, &cfg).unwrap();
        let grid = cc.grid();
        let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
        check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
    }

    #[test]
    fn interchip_links_add_latency() {
        let cc = ChipletConfig::new(2, 1, 4, 4);
        let cfg = SimConfig::baseline();
        let spec = chiplet_chip(&cc, &cfg).unwrap();
        let grid = cc.grid();
        // A cross-chip route pays the SerDes latency on its boundary hop.
        let path = crate::validate::walk_route(
            &spec,
            Vnet(0),
            grid.node(Coord::new(0, 0)),
            grid.node(Coord::new(7, 3)),
        )
        .unwrap();
        let serdes_hops = path
            .channels
            .iter()
            .filter(|&&c| spec.channels[c.0 as usize].kind == ChannelKind::InterChip)
            .count();
        assert_eq!(serdes_hops, 1);
        assert!(path.wire_latency >= (path.hops as u32 - 1) + cc.link_latency as u32);
    }

    #[test]
    fn parallel_links_balance_by_destination() {
        let cc = ChipletConfig::new(2, 1, 4, 4);
        let cfg = SimConfig::baseline();
        let spec = chiplet_chip(&cc, &cfg).unwrap();
        let grid = cc.grid();
        let src = grid.node(Coord::new(0, 0));
        let mut used = std::collections::HashSet::new();
        for dc in cc.chip_rect(1, 0).iter() {
            let path = crate::validate::walk_route(&spec, Vnet(0), src, grid.node(dc)).unwrap();
            for c in path.channels {
                if spec.channels[c.0 as usize].kind == ChannelKind::InterChip {
                    used.insert(c);
                }
            }
        }
        assert_eq!(used.len(), 2, "both parallel links carry traffic");
    }

    #[test]
    fn single_chip_degenerates_to_mesh() {
        let cc = ChipletConfig::new(1, 1, 4, 4);
        let cfg = SimConfig::baseline();
        let spec = chiplet_chip(&cc, &cfg).unwrap();
        assert!(interchip_channels(&spec).is_empty());
        assert_eq!(spec.channels.len(), 48);
    }

    #[test]
    fn gateway_positions_spread() {
        assert_eq!(gateway_positions(4, 2).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(gateway_positions(4, 1).collect::<Vec<_>>(), vec![2]);
        assert_eq!(
            gateway_positions(8, 4).collect::<Vec<_>>(),
            vec![1, 3, 5, 7]
        );
    }
}

//! Chip geometry: grids, coordinates, rectangular regions.

use adaptnoc_sim::ids::{Direction, NodeId, RouterId};

/// A 2D tile coordinate (x grows east, y grows north).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Column index.
    pub x: u8,
    /// Row index.
    pub y: u8,
}

impl Coord {
    /// Creates a coordinate.
    pub fn new(x: u8, y: u8) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(self, other: Coord) -> u16 {
        (self.x as i16 - other.x as i16).unsigned_abs()
            + (self.y as i16 - other.y as i16).unsigned_abs()
    }

    /// The direction from `self` towards `other` along one dimension, if
    /// they share a row or column and differ.
    pub fn direction_to(self, other: Coord) -> Option<Direction> {
        if self == other {
            None
        } else if self.y == other.y {
            Some(if other.x > self.x {
                Direction::East
            } else {
                Direction::West
            })
        } else if self.x == other.x {
            Some(if other.y > self.y {
                Direction::North
            } else {
                Direction::South
            })
        } else {
            None
        }
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

/// A `width x height` grid of tiles. Each tile hosts one router and one
/// endpoint node with the same dense index (`id = y * width + x`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grid {
    /// Number of columns.
    pub width: u8,
    /// Number of rows.
    pub height: u8,
}

impl Grid {
    /// Creates a grid.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: u8, height: u8) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be positive");
        Grid { width, height }
    }

    /// The paper's 8x8 evaluation grid.
    pub fn paper() -> Self {
        Grid::new(8, 8)
    }

    /// Number of tiles (= routers = nodes).
    pub fn tiles(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// The router on tile `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the grid.
    pub fn router(&self, c: Coord) -> RouterId {
        assert!(self.contains(c), "coordinate {c} outside grid");
        RouterId(c.y as u16 * self.width as u16 + c.x as u16)
    }

    /// The node on tile `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is outside the grid.
    pub fn node(&self, c: Coord) -> NodeId {
        NodeId(self.router(c).0)
    }

    /// The coordinate of a router.
    ///
    /// # Panics
    ///
    /// Panics if the router id is out of range.
    pub fn coord(&self, r: RouterId) -> Coord {
        assert!((r.0 as usize) < self.tiles(), "router {r} out of range");
        Coord {
            x: (r.0 % self.width as u16) as u8,
            y: (r.0 / self.width as u16) as u8,
        }
    }

    /// The coordinate of a node.
    pub fn node_coord(&self, n: NodeId) -> Coord {
        self.coord(RouterId(n.0))
    }

    /// Whether the coordinate lies inside the grid.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// The neighbouring coordinate in `dir`, if inside the grid.
    pub fn neighbor(&self, c: Coord, dir: Direction) -> Option<Coord> {
        let (dx, dy): (i16, i16) = match dir {
            Direction::East => (1, 0),
            Direction::West => (-1, 0),
            Direction::North => (0, 1),
            Direction::South => (0, -1),
        };
        let nx = c.x as i16 + dx;
        let ny = c.y as i16 + dy;
        if nx < 0 || ny < 0 {
            return None;
        }
        let n = Coord::new(nx as u8, ny as u8);
        self.contains(n).then_some(n)
    }

    /// Iterates over all coordinates, row-major.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let (w, h) = (self.width, self.height);
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }
}

/// A rectangular region of tiles (a subNoC footprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rect {
    /// Leftmost column.
    pub x: u8,
    /// Bottom row.
    pub y: u8,
    /// Width in tiles.
    pub w: u8,
    /// Height in tiles.
    pub h: u8,
}

impl Rect {
    /// Creates a rectangle.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(x: u8, y: u8, w: u8, h: u8) -> Self {
        assert!(w > 0 && h > 0, "rect dimensions must be positive");
        Rect { x, y, w, h }
    }

    /// Number of tiles covered.
    pub fn tiles(&self) -> usize {
        self.w as usize * self.h as usize
    }

    /// Exclusive right edge.
    pub fn x_end(&self) -> u8 {
        self.x + self.w
    }

    /// Exclusive top edge.
    pub fn y_end(&self) -> u8 {
        self.y + self.h
    }

    /// Whether `c` lies inside the rectangle.
    pub fn contains(&self, c: Coord) -> bool {
        c.x >= self.x && c.x < self.x_end() && c.y >= self.y && c.y < self.y_end()
    }

    /// Whether the rectangle fits inside the grid.
    pub fn fits(&self, grid: &Grid) -> bool {
        self.x_end() <= grid.width && self.y_end() <= grid.height
    }

    /// Whether two rectangles overlap.
    pub fn overlaps(&self, other: &Rect) -> bool {
        self.x < other.x_end()
            && other.x < self.x_end()
            && self.y < other.y_end()
            && other.y < self.y_end()
    }

    /// Whether two rectangles share an edge (are adjacent without
    /// overlapping); used by the memory-controller sharing design.
    pub fn adjacent(&self, other: &Rect) -> bool {
        if self.overlaps(other) {
            return false;
        }
        let x_touch = self.x_end() == other.x || other.x_end() == self.x;
        let y_touch = self.y_end() == other.y || other.y_end() == self.y;
        let x_overlap = self.x < other.x_end() && other.x < self.x_end();
        let y_overlap = self.y < other.y_end() && other.y < self.y_end();
        (x_touch && y_overlap) || (y_touch && x_overlap)
    }

    /// Iterates over the covered coordinates, row-major.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let r = *self;
        (r.y..r.y_end()).flat_map(move |y| (r.x..r.x_end()).map(move |x| Coord::new(x, y)))
    }

    /// The corner with the smallest coordinates.
    pub fn origin(&self) -> Coord {
        Coord::new(self.x, self.y)
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}@({},{})", self.w, self.h, self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_and_coord_roundtrip() {
        let g = Grid::paper();
        for c in g.iter() {
            assert_eq!(g.coord(g.router(c)), c);
        }
        assert_eq!(g.router(Coord::new(0, 0)), RouterId(0));
        assert_eq!(g.router(Coord::new(7, 0)), RouterId(7));
        assert_eq!(g.router(Coord::new(0, 1)), RouterId(8));
    }

    #[test]
    fn manhattan_distance() {
        assert_eq!(Coord::new(0, 0).manhattan(Coord::new(3, 4)), 7);
        assert_eq!(Coord::new(5, 2).manhattan(Coord::new(5, 2)), 0);
        assert_eq!(Coord::new(5, 2).manhattan(Coord::new(2, 5)), 6);
    }

    #[test]
    fn direction_to_same_row_or_column() {
        let a = Coord::new(2, 2);
        assert_eq!(a.direction_to(Coord::new(5, 2)), Some(Direction::East));
        assert_eq!(a.direction_to(Coord::new(0, 2)), Some(Direction::West));
        assert_eq!(a.direction_to(Coord::new(2, 5)), Some(Direction::North));
        assert_eq!(a.direction_to(Coord::new(2, 0)), Some(Direction::South));
        assert_eq!(a.direction_to(Coord::new(3, 3)), None);
        assert_eq!(a.direction_to(a), None);
    }

    #[test]
    fn neighbors_respect_boundaries() {
        let g = Grid::new(3, 3);
        assert_eq!(g.neighbor(Coord::new(0, 0), Direction::West), None);
        assert_eq!(g.neighbor(Coord::new(0, 0), Direction::South), None);
        assert_eq!(
            g.neighbor(Coord::new(0, 0), Direction::East),
            Some(Coord::new(1, 0))
        );
        assert_eq!(
            g.neighbor(Coord::new(0, 0), Direction::North),
            Some(Coord::new(0, 1))
        );
        assert_eq!(g.neighbor(Coord::new(2, 2), Direction::East), None);
        assert_eq!(g.neighbor(Coord::new(2, 2), Direction::North), None);
    }

    #[test]
    fn grid_iter_covers_all_tiles_once() {
        let g = Grid::new(4, 3);
        let coords: Vec<Coord> = g.iter().collect();
        assert_eq!(coords.len(), 12);
        let mut set = std::collections::HashSet::new();
        for c in coords {
            assert!(g.contains(c));
            assert!(set.insert(c));
        }
    }

    #[test]
    fn rect_contains_and_iter() {
        let r = Rect::new(2, 1, 3, 2);
        assert_eq!(r.tiles(), 6);
        assert_eq!(r.iter().count(), 6);
        assert!(r.contains(Coord::new(2, 1)));
        assert!(r.contains(Coord::new(4, 2)));
        assert!(!r.contains(Coord::new(5, 2)));
        assert!(!r.contains(Coord::new(2, 3)));
        assert!(!r.contains(Coord::new(1, 1)));
    }

    #[test]
    fn rect_overlap_detection() {
        let a = Rect::new(0, 0, 4, 4);
        assert!(a.overlaps(&Rect::new(3, 3, 2, 2)));
        assert!(!a.overlaps(&Rect::new(4, 0, 4, 4)));
        assert!(!a.overlaps(&Rect::new(0, 4, 4, 4)));
        assert!(a.overlaps(&a));
    }

    #[test]
    fn rect_adjacency() {
        let a = Rect::new(0, 0, 4, 4);
        assert!(a.adjacent(&Rect::new(4, 0, 4, 4)));
        assert!(a.adjacent(&Rect::new(0, 4, 4, 4)));
        assert!(a.adjacent(&Rect::new(4, 2, 2, 4)));
        // Diagonal corner touch is not adjacency.
        assert!(!a.adjacent(&Rect::new(4, 4, 4, 4)));
        // Distant rects are not adjacent.
        assert!(!a.adjacent(&Rect::new(5, 0, 2, 2)));
        // Overlapping rects are not "adjacent".
        assert!(!a.adjacent(&Rect::new(2, 2, 4, 4)));
    }

    #[test]
    fn rect_fits_grid() {
        let g = Grid::paper();
        assert!(Rect::new(0, 0, 8, 8).fits(&g));
        assert!(Rect::new(4, 4, 4, 4).fits(&g));
        assert!(!Rect::new(4, 4, 5, 4).fits(&g));
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn router_outside_grid_panics() {
        Grid::new(2, 2).router(Coord::new(2, 0));
    }
}

//! Whole-chip spec assembly from region assignments.

use crate::geom::{Coord, Grid, Rect};
use crate::plan::{BuildError, ChipPlan};
use crate::regions::{build_region, RegionTopology, TopologyKind};
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{Direction, Vnet};
use adaptnoc_sim::spec::NetworkSpec;

/// Builds a complete chip spec from disjoint region assignments.
///
/// Tiles not covered by any region are wired as a best-effort mesh among
/// themselves (they host no experiment traffic).
///
/// # Errors
///
/// Returns [`BuildError`] if regions overlap, exceed the grid, or a region
/// builder fails.
pub fn build_chip_spec(
    grid: Grid,
    regions: &[RegionTopology],
    cfg: &SimConfig,
) -> Result<NetworkSpec, BuildError> {
    for (i, a) in regions.iter().enumerate() {
        if !a.rect.fits(&grid) {
            return Err(BuildError::Region(format!(
                "region {} exceeds the grid",
                a.rect
            )));
        }
        for b in &regions[i + 1..] {
            if a.rect.overlaps(&b.rect) {
                return Err(BuildError::Region(format!(
                    "regions {} and {} overlap",
                    a.rect, b.rect
                )));
            }
        }
    }

    let mut plan = ChipPlan::new(grid, cfg);
    for region in regions {
        build_region(&mut plan, region, cfg)?;
    }

    // Leftover tiles: wire a best-effort mesh so the spec stays valid.
    let leftover: Vec<Coord> = grid
        .iter()
        .filter(|c| !regions.iter().any(|r| r.rect.contains(*c)))
        .collect();
    if !leftover.is_empty() {
        for &c in &leftover {
            plan.add_local_ni(c);
            for dir in [Direction::East, Direction::North] {
                if let Some(n) = plan.grid.neighbor(c, dir) {
                    if leftover.contains(&n) {
                        plan.add_mesh_link(c, n)?;
                    }
                }
            }
        }
        let routers: Vec<_> = leftover.iter().map(|&c| grid.router(c)).collect();
        let nodes: Vec<_> = leftover.iter().map(|&c| grid.node(c)).collect();
        for v in 0..cfg.vnets {
            crate::dor::fill_dor_tables(&mut plan.spec, &grid, Vnet(v), &routers, &nodes, true)?;
        }
    }

    plan.finish()
}

/// The whole-chip mesh baseline.
///
/// # Errors
///
/// Propagates [`BuildError`] (cannot fail for a valid grid).
pub fn mesh_chip(grid: Grid, cfg: &SimConfig) -> Result<NetworkSpec, BuildError> {
    build_chip_spec(
        grid,
        &[RegionTopology::new(
            Rect::new(0, 0, grid.width, grid.height),
            TopologyKind::Mesh,
        )],
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptnoc_sim::ids::NodeId;

    #[test]
    fn mesh_chip_8x8_has_expected_shape() {
        let spec = mesh_chip(Grid::paper(), &SimConfig::baseline()).unwrap();
        assert_eq!(spec.routers.len(), 64);
        assert_eq!(spec.nis.len(), 64);
        // 2 * (7*8 + 7*8) = 224 unidirectional channels.
        assert_eq!(spec.channels.len(), 224);
        assert_eq!(spec.active_routers(), 64);
    }

    #[test]
    fn overlapping_regions_rejected() {
        let regions = [
            RegionTopology::new(Rect::new(0, 0, 4, 4), TopologyKind::Mesh),
            RegionTopology::new(Rect::new(2, 2, 4, 4), TopologyKind::Mesh),
        ];
        let err = build_chip_spec(Grid::paper(), &regions, &SimConfig::baseline());
        assert!(matches!(err, Err(BuildError::Region(_))));
    }

    #[test]
    fn oversized_region_rejected() {
        let regions = [RegionTopology::new(
            Rect::new(4, 4, 8, 4),
            TopologyKind::Mesh,
        )];
        let err = build_chip_spec(Grid::paper(), &regions, &SimConfig::baseline());
        assert!(matches!(err, Err(BuildError::Region(_))));
    }

    #[test]
    fn multi_region_chip_builds() {
        let cfg = SimConfig::adapt_noc();
        let regions = [
            RegionTopology::new(Rect::new(0, 0, 4, 4), TopologyKind::Cmesh),
            RegionTopology::new(Rect::new(4, 0, 4, 4), TopologyKind::Torus),
            RegionTopology::new(Rect::new(0, 4, 8, 4), TopologyKind::Tree).with_root(NodeId(32)),
        ];
        let spec = build_chip_spec(Grid::paper(), &regions, &cfg).unwrap();
        assert_eq!(spec.nis.len(), 64);
        // The cmesh region gated 12 routers.
        assert_eq!(spec.active_routers(), 64 - 12);
    }

    #[test]
    fn leftover_tiles_get_best_effort_mesh() {
        let cfg = SimConfig::baseline();
        let regions = [RegionTopology::new(
            Rect::new(0, 0, 4, 8),
            TopologyKind::Mesh,
        )];
        let spec = build_chip_spec(Grid::paper(), &regions, &cfg).unwrap();
        assert_eq!(spec.nis.len(), 64, "leftover tiles still get NIs");
        // Leftover right half is a connected mesh: 2*(3*8 + 4*7) = 104
        // channels, plus the region's 2*(3*8+4*7) = same.
        assert_eq!(spec.channels.len(), 208);
    }
}

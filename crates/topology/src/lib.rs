//! # adaptnoc-topology
//!
//! Topology construction for the Adapt-NoC reproduction: the four subNoC
//! topologies of the paper (mesh, cmesh, torus, tree — Sec. II-B), the
//! combined torus+tree extension (Sec. II-B4), the Flattened Butterfly and
//! Shortcut baselines, dimension-ordered routing-table generation over
//! arbitrary channel graphs, and route/deadlock validation.
//!
//! Builders compile topologies into [`adaptnoc_sim::spec::NetworkSpec`]s that
//! the simulator executes; the Adapt-NoC control layer (`adaptnoc-core`)
//! switches between such specs at runtime.
//!
//! ```
//! use adaptnoc_topology::prelude::*;
//! use adaptnoc_sim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // An 8x8 chip split into two subNoCs: a cmesh and a torus.
//! let grid = Grid::paper();
//! let regions = [
//!     RegionTopology::new(Rect::new(0, 0, 4, 8), TopologyKind::Cmesh),
//!     RegionTopology::new(Rect::new(4, 0, 4, 8), TopologyKind::Torus),
//! ];
//! let spec = build_chip_spec(grid, &regions, &SimConfig::adapt_noc())?;
//! let mut net = Network::new(spec, SimConfig::adapt_noc())?;
//! net.run(100);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chip;
pub mod chiplet;
pub mod degraded;
pub mod dor;
pub mod ftby;
pub mod geom;
pub mod irregular;
pub mod plan;
pub mod regions;
pub mod shortcut;
pub mod sparse;
pub mod validate;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::chip::{build_chip_spec, mesh_chip};
    pub use crate::chiplet::{chiplet_chip, interchip_channels, ChipletConfig};
    pub use crate::degraded::{degrade_region, surviving_nodes, DegradedPlan};
    pub use crate::dor::{fill_dor_tables, fill_dor_tables_monotone};
    pub use crate::ftby::ftby_chip;
    pub use crate::geom::{Coord, Grid, Rect};
    pub use crate::irregular::irregular_region;
    pub use crate::plan::{express_latency, BuildError, ChipPlan};
    pub use crate::regions::{RegionTopology, TopologyKind};
    pub use crate::shortcut::{choose_shortcut_links, shortcut_chip, TrafficWeight};
    pub use crate::sparse::{sparse_hamming_chip, sparse_hamming_region, SparseHammingParams};
    pub use crate::validate::{
        all_pairs, check_routes_and_deadlock, walk_route, wiring_feasible, RouteStats,
        ValidateError, WiringLimits, WiringReport,
    };
}

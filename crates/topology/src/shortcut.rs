//! Shortcut baseline (Ogras & Marculescu, ICCAD'05; paper baseline 3):
//! a mesh augmented with a limited number of application-specific
//! long-range express links.
//!
//! The adaptable router has no spare ports, so express links can only attach
//! where direction ports are free — the outward-facing ports of boundary
//! routers. This matches the paper's observation that "the shortcut can only
//! provide a limited number of express links".

use crate::geom::{Coord, Grid, Rect};
use crate::plan::{BuildError, ChipPlan};
use crate::regions::mesh_region;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{NodeId, Vnet};
use adaptnoc_sim::spec::{ChannelKind, NetworkSpec, PortRef};
use std::collections::HashSet;

/// A weighted traffic flow used to choose express-link placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficWeight {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Relative communication volume.
    pub weight: f64,
}

/// Builds the shortcut chip: a full mesh plus bidirectional express links
/// between the given same-row/same-column router pairs. Links whose ports
/// are unavailable are skipped (the design degrades toward the mesh).
///
/// # Errors
///
/// Returns [`BuildError`] for invalid link endpoints.
pub fn shortcut_chip(
    grid: Grid,
    links: &[(Coord, Coord)],
    cfg: &SimConfig,
) -> Result<NetworkSpec, BuildError> {
    let mut plan = ChipPlan::new(grid, cfg);
    mesh_region(&mut plan, Rect::new(0, 0, grid.width, grid.height), cfg)?;

    for &(a, b) in links {
        if a.x != b.x && a.y != b.y {
            return Err(BuildError::Region(format!(
                "express link {a}-{b} must be row- or column-aligned"
            )));
        }
        if a.manhattan(b) < 2 {
            return Err(BuildError::Region(format!(
                "express link {a}-{b} must span at least 2 tiles"
            )));
        }
        let ra = grid.router(a);
        let rb = grid.router(b);
        let mm = a.manhattan(b) as f32;
        let is_y = a.x == b.x;
        // Forward direction.
        if let (Some(po), Some(pi)) = (plan.free_out_port(ra), plan.free_in_port(rb)) {
            plan.add_express(
                PortRef::new(ra, po),
                PortRef::new(rb, pi),
                mm,
                ChannelKind::Express,
                false,
                is_y,
            )?;
        }
        // Reverse direction.
        if let (Some(po), Some(pi)) = (plan.free_out_port(rb), plan.free_in_port(ra)) {
            plan.add_express(
                PortRef::new(rb, po),
                PortRef::new(ra, pi),
                mm,
                ChannelKind::Express,
                false,
                is_y,
            )?;
        }
    }

    // Rebuild tables over the augmented graph.
    let routers: Vec<_> = grid.iter().map(|c| grid.router(c)).collect();
    let nodes: Vec<_> = grid.iter().map(|c| grid.node(c)).collect();
    for v in 0..cfg.vnets {
        crate::dor::fill_dor_tables(&mut plan.spec, &grid, Vnet(v), &routers, &nodes, false)?;
    }
    plan.finish()
}

/// Greedily chooses up to `max_links` express-link placements maximizing
/// traffic-weighted hop savings, restricted to feasible (boundary-line)
/// pairs with each boundary router used at most once per role.
pub fn choose_shortcut_links(
    grid: &Grid,
    traffic: &[TrafficWeight],
    max_links: usize,
) -> Vec<(Coord, Coord)> {
    // Feasible candidates: pairs on the four boundary lines.
    let mut candidates: Vec<(Coord, Coord)> = Vec::new();
    let lines: Vec<Vec<Coord>> = vec![
        (0..grid.width).map(|x| Coord::new(x, 0)).collect(),
        (0..grid.width)
            .map(|x| Coord::new(x, grid.height - 1))
            .collect(),
        (0..grid.height).map(|y| Coord::new(0, y)).collect(),
        (0..grid.height)
            .map(|y| Coord::new(grid.width - 1, y))
            .collect(),
    ];
    for line in &lines {
        for i in 0..line.len() {
            for j in i + 2..line.len() {
                candidates.push((line[i], line[j]));
            }
        }
    }

    // Score: traffic between the link's endpoint neighbourhoods, times the
    // hops it would save.
    let score = |a: Coord, b: Coord| -> f64 {
        let near = |p: Coord, q: Coord| p.manhattan(q) <= 2;
        let saved = (a.manhattan(b) - 1) as f64;
        traffic
            .iter()
            .filter(|t| {
                let sc = grid.node_coord(t.src);
                let dc = grid.node_coord(t.dst);
                (near(sc, a) && near(dc, b)) || (near(sc, b) && near(dc, a))
            })
            .map(|t| t.weight * saved)
            .sum()
    };

    let mut scored: Vec<(f64, (Coord, Coord))> = candidates
        .into_iter()
        .map(|c| (score(c.0, c.1), c))
        .collect();
    scored.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| (a.1).cmp(&b.1))
    });

    let mut used: HashSet<Coord> = HashSet::new();
    let mut picked = Vec::new();
    for (s, (a, b)) in scored {
        if picked.len() >= max_links {
            break;
        }
        if s <= 0.0 {
            break;
        }
        if used.contains(&a) || used.contains(&b) {
            continue;
        }
        used.insert(a);
        used.insert(b);
        picked.push((a, b));
    }
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shortcut_adds_express_channels() {
        let grid = Grid::paper();
        let links = [(Coord::new(0, 0), Coord::new(7, 0))];
        let spec = shortcut_chip(grid, &links, &SimConfig::baseline()).unwrap();
        let express: Vec<_> = spec
            .channels
            .iter()
            .filter(|c| c.kind == ChannelKind::Express)
            .collect();
        assert_eq!(express.len(), 2, "both directions");
        assert_eq!(express[0].length_mm, 7.0);
        assert_eq!(express[0].latency, 2, "7 mm on high metal = 2 cycles");
    }

    #[test]
    fn diagonal_link_rejected() {
        let err = shortcut_chip(
            Grid::paper(),
            &[(Coord::new(0, 0), Coord::new(3, 3))],
            &SimConfig::baseline(),
        );
        assert!(matches!(err, Err(BuildError::Region(_))));
    }

    #[test]
    fn short_link_rejected() {
        let err = shortcut_chip(
            Grid::paper(),
            &[(Coord::new(0, 0), Coord::new(1, 0))],
            &SimConfig::baseline(),
        );
        assert!(matches!(err, Err(BuildError::Region(_))));
    }

    #[test]
    fn infeasible_interior_link_degrades_to_mesh() {
        // Interior routers have no free ports: link silently skipped.
        let spec = shortcut_chip(
            Grid::paper(),
            &[(Coord::new(1, 1), Coord::new(5, 1))],
            &SimConfig::baseline(),
        )
        .unwrap();
        assert!(spec.channels.iter().all(|c| c.kind != ChannelKind::Express));
    }

    #[test]
    fn choose_links_prefers_heavy_flows() {
        let grid = Grid::paper();
        let a = grid.node(Coord::new(0, 0));
        let b = grid.node(Coord::new(7, 0));
        let traffic = [TrafficWeight {
            src: a,
            dst: b,
            weight: 10.0,
        }];
        let links = choose_shortcut_links(&grid, &traffic, 4);
        assert!(!links.is_empty());
        assert_eq!(links[0], (Coord::new(0, 0), Coord::new(7, 0)));
    }

    #[test]
    fn choose_links_respects_budget_and_reuse() {
        let grid = Grid::paper();
        // Heavy uniform boundary traffic.
        let mut traffic = Vec::new();
        for x in 0..8u8 {
            for x2 in 0..8u8 {
                if x2 > x + 1 {
                    traffic.push(TrafficWeight {
                        src: grid.node(Coord::new(x, 0)),
                        dst: grid.node(Coord::new(x2, 0)),
                        weight: 1.0,
                    });
                }
            }
        }
        let links = choose_shortcut_links(&grid, &traffic, 2);
        assert!(links.len() <= 2);
        // No endpoint reused.
        let mut ends = HashSet::new();
        for (a, b) in links {
            assert!(ends.insert(a));
            assert!(ends.insert(b));
        }
    }

    #[test]
    fn zero_traffic_yields_no_links() {
        assert!(choose_shortcut_links(&Grid::paper(), &[], 4).is_empty());
    }
}

//! Degraded-graph recovery routing (fault resilience).
//!
//! When a link or router inside a subNoC fails permanently, the region's
//! routing tables must be recomputed over whatever channel graph survives.
//! This module produces that degraded configuration:
//!
//! * **Adaptable-link reversal**: if a faulted channel's reverse twin
//!   survives and is an adaptable link (the reconfigurable interconnect of
//!   Sec. II-A), the surviving wire is *segmented* — time-multiplexed
//!   between both directions at half bandwidth, modeled as doubled channel
//!   latency — restoring bidirectionality. Fixed mesh wires are never
//!   reversible; traffic routes around them instead.
//! * **up\*/down\* recompute**: a BFS spanning tree is built over the
//!   *bidirectionally* surviving pairs among the region's live routers and
//!   every region-internal route climbs toward the LCA and descends — the
//!   same destination-consistent discipline [`crate::irregular`] uses,
//!   deadlock-free on any connected graph.
//! * **Disconnection reporting**: nodes whose router failed or became
//!   unreachable are reported, and every routing entry toward them (at any
//!   router) is cleared so the simulator counts them as unroutable instead
//!   of looping.
//!
//! The resulting [`NetworkSpec`] is intended to be applied through the
//! staged reconfiguration protocol (`adaptnoc-core`'s `RegionReconfig`)
//! and validated with [`crate::validate::check_routes_and_deadlock`] over
//! the surviving node pairs.
//!
//! Scope: recovery is region-internal. Routes from region routers to
//! nodes outside `rect` are left untouched; callers injecting through-
//! traffic across a faulted region must purge packets that can no longer
//! make progress (the simulator's `purge_blocked`).

use crate::geom::{Coord, Grid, Rect};
use crate::plan::BuildError;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{NodeId, PortId, RouterId, Vnet};
use adaptnoc_sim::spec::{ChannelKey, ChannelKind, NetworkSpec};
use std::collections::{HashMap, HashSet, VecDeque};

/// A degraded configuration computed by [`degrade_region`].
#[derive(Debug, Clone)]
pub struct DegradedPlan {
    /// The surviving spec with recomputed region tables.
    pub spec: NetworkSpec,
    /// Faulted channel keys that were re-established by segmenting their
    /// surviving adaptable twin (both directions now run at half
    /// bandwidth). The fault controller must heal these keys in the
    /// simulator before applying the spec — the logical channel works
    /// again, carried by the twin wire.
    pub reversed: Vec<ChannelKey>,
    /// Nodes no longer reachable (router failed or stranded by the
    /// faults), ascending. Routing entries toward them are cleared
    /// everywhere.
    pub disconnected: Vec<NodeId>,
}

/// Recomputes a region's configuration after permanent faults.
///
/// `faulted` lists dead channels, `failed` lists dead routers (all their
/// channels are dead too, whether listed or not). Surviving adaptable
/// twins of faulted channels are segmented to restore bidirectionality
/// where possible; the region's internal routes are refilled with
/// up\*/down\* over the surviving graph rooted at `root` (region origin by
/// default; a failed root falls back to the first live region router).
///
/// # Errors
///
/// Returns [`BuildError::Spec`] if the degraded spec fails validation
/// (indicating an inconsistent input spec, not a fault pattern — any
/// fault pattern is representable, up to full disconnection).
pub fn degrade_region(
    base: &NetworkSpec,
    grid: &Grid,
    rect: Rect,
    faulted: &[ChannelKey],
    failed: &[RouterId],
    root: Option<Coord>,
    cfg: &SimConfig,
) -> Result<DegradedPlan, BuildError> {
    let mut spec = base.clone();
    let failed_set: HashSet<RouterId> = failed.iter().copied().collect();
    let mut dead: HashSet<ChannelKey> = faulted.iter().copied().collect();
    for c in &base.channels {
        if failed_set.contains(&c.src.router) || failed_set.contains(&c.dst.router) {
            dead.insert(c.key());
        }
    }

    // Adaptable-link reversal: a dead channel whose reverse twin survives
    // as an adaptable link is re-established by segmenting the twin wire —
    // both directions keep their ports but run at doubled latency.
    let mut reversed: Vec<ChannelKey> = Vec::new();
    for &k in faulted {
        if failed_set.contains(&k.src.router) || failed_set.contains(&k.dst.router) {
            continue;
        }
        let twin = base.channels.iter().find(|c| {
            c.src.router == k.dst.router
                && c.dst.router == k.src.router
                && !dead.contains(&c.key())
                && c.kind.is_adaptable()
        });
        let Some(twin_key) = twin.map(|c| c.key()) else {
            continue;
        };
        for c in spec.channels.iter_mut() {
            if c.key() == k || c.key() == twin_key {
                c.latency = c.latency.saturating_mul(2);
                c.kind = ChannelKind::AdaptableReversed;
            }
        }
        dead.remove(&k);
        reversed.push(k);
    }
    spec.channels.retain(|c| !dead.contains(&c.key()));

    // BFS spanning tree over bidirectionally surviving pairs among the
    // region's live routers.
    let routers: Vec<RouterId> = rect
        .iter()
        .map(|c| grid.router(c))
        .filter(|r| !failed_set.contains(r))
        .collect();
    let in_region: HashSet<RouterId> = routers.iter().copied().collect();
    let mut adj: HashMap<RouterId, Vec<(RouterId, PortId)>> = HashMap::new();
    for ch in &spec.channels {
        if in_region.contains(&ch.src.router) && in_region.contains(&ch.dst.router) {
            adj.entry(ch.src.router)
                .or_default()
                .push((ch.dst.router, ch.src.port));
        }
    }
    // Undirected surviving adjacency: a pair counts only if both
    // directions survive (up and down traffic each need a channel).
    // Built in spec channel order so the tree is deterministic.
    let mut undirected: HashMap<RouterId, Vec<(RouterId, PortId)>> = HashMap::new();
    for ch in &spec.channels {
        let (u, v) = (ch.src.router, ch.dst.router);
        if !in_region.contains(&u) || !in_region.contains(&v) {
            continue;
        }
        let back = adj.get(&v).is_some_and(|l| l.iter().any(|(w, _)| *w == u));
        if back {
            undirected.entry(u).or_default().push((v, ch.src.port));
        }
    }

    // The network survives as the largest bidirectionally connected
    // component; smaller islands are stranded. Ties go to the component
    // holding the earliest router (BFS seeds iterate in region order).
    let mut comp_of: HashMap<RouterId, usize> = HashMap::new();
    let mut comps: Vec<Vec<RouterId>> = Vec::new();
    for &seed in &routers {
        if comp_of.contains_key(&seed) {
            continue;
        }
        let id = comps.len();
        let mut comp = vec![seed];
        comp_of.insert(seed, id);
        let mut q = VecDeque::from([seed]);
        while let Some(u) = q.pop_front() {
            for &(v, _) in undirected.get(&u).into_iter().flatten() {
                if let std::collections::hash_map::Entry::Vacant(e) = comp_of.entry(v) {
                    e.insert(id);
                    comp.push(v);
                    q.push_back(v);
                }
            }
        }
        comps.push(comp);
    }
    let main = comps
        .iter()
        .enumerate()
        .max_by_key(|(i, c)| (c.len(), usize::MAX - i))
        .map(|(i, _)| i);
    let reached: HashSet<RouterId> = main
        .map(|i| comps[i].iter().copied().collect())
        .unwrap_or_default();

    // Spanning tree rooted in the surviving component: the requested root
    // if it survived, else the component's seed.
    let root_r = root
        .map(|c| grid.router(c))
        .filter(|r| reached.contains(r))
        .or_else(|| main.map(|i| comps[i][0]));
    let mut parent: HashMap<RouterId, (RouterId, PortId)> = HashMap::new();
    let mut children: HashMap<RouterId, Vec<(RouterId, PortId)>> = HashMap::new();
    if let Some(root_r) = root_r {
        let mut visited: HashSet<RouterId> = HashSet::from([root_r]);
        let mut q = VecDeque::from([root_r]);
        while let Some(u) = q.pop_front() {
            let nbrs = undirected.get(&u).cloned().unwrap_or_default();
            for (v, port_uv) in nbrs {
                if !visited.insert(v) {
                    continue;
                }
                let &(_, port_vu) = undirected[&v]
                    .iter()
                    .find(|(w, _)| *w == u)
                    .expect("undirected edges are symmetric");
                parent.insert(v, (u, port_vu));
                children.entry(u).or_default().push((v, port_uv));
                q.push_back(v);
            }
        }
    }

    // Disconnected nodes: attached to a failed or unreached region router.
    let mut disconnected: Vec<NodeId> = spec
        .nis
        .iter()
        .filter(|ni| {
            let r = ni.router;
            (failed_set.contains(&r) || (rect.contains_router(grid, r) && !reached.contains(&r)))
                && rect.contains_router(grid, r)
        })
        .map(|ni| ni.node)
        .collect();
    disconnected.sort_unstable();

    // Refill region-internal routes over the tree.
    let attach: HashMap<NodeId, (RouterId, PortId)> = spec
        .nis
        .iter()
        .map(|ni| (ni.node, (ni.router, ni.port)))
        .collect();
    let chain = |mut r: RouterId| -> Vec<RouterId> {
        let mut c = vec![r];
        while let Some(&(p, _)) = parent.get(&r) {
            c.push(p);
            r = p;
        }
        c
    };
    let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
    for &r in &routers {
        if !reached.contains(&r) {
            continue;
        }
        for &d in &nodes {
            let Some(&(t_router, t_port)) = attach.get(&d) else {
                continue;
            };
            if !reached.contains(&t_router) {
                continue; // cleared below
            }
            let port = if r == t_router {
                t_port
            } else {
                let t_chain = chain(t_router);
                if let Some(pos) = t_chain.iter().position(|x| *x == r) {
                    children[&r]
                        .iter()
                        .find(|(c, _)| *c == t_chain[pos - 1])
                        .expect("tree child on descent path")
                        .1
                } else {
                    parent[&r].1
                }
            };
            for v in 0..cfg.vnets {
                spec.tables.set(Vnet(v), r, d, port);
            }
        }
    }

    // Clear entries toward disconnected nodes everywhere, then sweep any
    // entry left pointing at a port whose channel was removed (failed
    // routers' own entries, boundary entries into dead links).
    let dead_nodes: HashSet<NodeId> = disconnected.iter().copied().collect();
    let out_ports: HashSet<(RouterId, PortId)> = spec
        .channels
        .iter()
        .map(|c| (c.src.router, c.src.port))
        .collect();
    let ni_ports: HashSet<(RouterId, PortId)> =
        spec.nis.iter().map(|ni| (ni.router, ni.port)).collect();
    let stale: Vec<(Vnet, RouterId, NodeId)> = spec
        .tables
        .iter()
        .filter(|&(_, router, dst, port)| {
            dead_nodes.contains(&dst)
                || (!out_ports.contains(&(router, port)) && !ni_ports.contains(&(router, port)))
        })
        .map(|(vnet, router, dst, _)| (vnet, router, dst))
        .collect();
    for (vnet, router, dst) in stale {
        spec.tables.clear(vnet, router, dst);
    }

    spec.validate()?;
    Ok(DegradedPlan {
        spec,
        reversed,
        disconnected,
    })
}

/// The region's surviving (reachable) nodes under a degraded plan —
/// the pairs over which routes should be validated and traffic offered.
pub fn surviving_nodes(plan: &DegradedPlan, grid: &Grid, rect: Rect) -> Vec<NodeId> {
    let dead: HashSet<NodeId> = plan.disconnected.iter().copied().collect();
    rect.iter()
        .map(|c| grid.node(c))
        .filter(|n| !dead.contains(n))
        .collect()
}

trait RectExt {
    fn contains_router(&self, grid: &Grid, r: RouterId) -> bool;
}

impl RectExt for Rect {
    fn contains_router(&self, grid: &Grid, r: RouterId) -> bool {
        let x = (r.0 % grid.width as u16) as u8;
        let y = (r.0 / grid.width as u16) as u8;
        self.contains(Coord::new(x, y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::mesh_chip;
    use crate::validate::{all_pairs, check_routes_and_deadlock};
    use adaptnoc_sim::ids::Direction;

    fn mesh_4x4() -> (Grid, NetworkSpec, SimConfig) {
        let grid = Grid::new(4, 4);
        let cfg = SimConfig::baseline();
        let spec = mesh_chip(grid, &cfg).unwrap();
        (grid, spec, cfg)
    }

    fn key_between(spec: &NetworkSpec, grid: &Grid, a: Coord, b: Coord) -> ChannelKey {
        let (ra, rb) = (grid.router(a), grid.router(b));
        spec.channels
            .iter()
            .find(|c| c.src.router == ra && c.dst.router == rb)
            .map(|c| c.key())
            .expect("adjacent mesh channel")
    }

    #[test]
    fn single_link_fault_routes_around() {
        let (grid, spec, cfg) = mesh_4x4();
        let rect = Rect::new(0, 0, 4, 4);
        let key = key_between(&spec, &grid, Coord::new(1, 1), Coord::new(2, 1));
        let plan = degrade_region(&spec, &grid, rect, &[key], &[], None, &cfg).unwrap();
        // Mesh wires are not reversible; everyone stays connected anyway.
        assert!(plan.reversed.is_empty());
        assert!(plan.disconnected.is_empty());
        // The dead channel is gone and no route uses its port.
        assert!(plan.spec.channels.iter().all(|c| c.key() != key));
        let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
        check_routes_and_deadlock(&plan.spec, &all_pairs(&nodes)).unwrap();
    }

    #[test]
    fn router_fault_disconnects_its_node_only() {
        let (grid, spec, cfg) = mesh_4x4();
        let rect = Rect::new(0, 0, 4, 4);
        let dead = grid.router(Coord::new(2, 2));
        let plan = degrade_region(&spec, &grid, rect, &[], &[dead], None, &cfg).unwrap();
        assert_eq!(plan.disconnected, vec![NodeId(dead.0)]);
        let pairs = all_pairs(&surviving_nodes(&plan, &grid, rect));
        let stats = check_routes_and_deadlock(&plan.spec, &pairs).unwrap();
        assert_eq!(stats.routes, 2 * 15 * 14);
        // Routes toward the dead node are cleared, not looping.
        for v in 0..cfg.vnets {
            for c in grid.iter() {
                let r = grid.router(c);
                if r != dead {
                    assert!(plan
                        .spec
                        .tables
                        .lookup(Vnet(v), r, NodeId(dead.0))
                        .is_none());
                }
            }
        }
    }

    #[test]
    fn corner_cut_strands_the_corner() {
        // Cutting both links of corner (0,0) strands exactly that node.
        let (grid, spec, cfg) = mesh_4x4();
        let rect = Rect::new(0, 0, 4, 4);
        let keys = [
            key_between(&spec, &grid, Coord::new(0, 0), Coord::new(1, 0)),
            key_between(&spec, &grid, Coord::new(0, 0), Coord::new(0, 1)),
        ];
        let plan = degrade_region(&spec, &grid, rect, &keys, &[], None, &cfg).unwrap();
        assert_eq!(plan.disconnected, vec![grid.node(Coord::new(0, 0))]);
        // Default root (the stranded origin) fell back to a live router.
        let pairs = all_pairs(&surviving_nodes(&plan, &grid, rect));
        check_routes_and_deadlock(&plan.spec, &pairs).unwrap();
    }

    #[test]
    fn adaptable_twin_is_segmented() {
        // Build a region with an adaptable express pair, fault one
        // direction: the twin is segmented instead of routed around.
        let grid = Grid::paper();
        let cfg = SimConfig::adapt_noc();
        let rect = Rect::new(0, 0, 4, 4);
        let mut plan_b = crate::plan::ChipPlan::new(grid, &cfg);
        crate::irregular::irregular_region(
            &mut plan_b,
            rect,
            &[(Coord::new(0, 0), Coord::new(3, 0))],
            None,
            &cfg,
        )
        .unwrap();
        for c in grid.iter() {
            if !rect.contains(c) {
                plan_b.add_local_ni(c);
            }
        }
        let spec = plan_b.finish().unwrap();
        let (ra, rb) = (grid.router(Coord::new(0, 0)), grid.router(Coord::new(3, 0)));
        let fwd = spec
            .channels
            .iter()
            .find(|c| c.src.router == ra && c.dst.router == rb && c.kind.is_adaptable())
            .unwrap();
        let (fwd_key, fwd_lat) = (fwd.key(), fwd.latency);
        let plan = degrade_region(&spec, &grid, rect, &[fwd_key], &[], None, &cfg).unwrap();
        assert_eq!(plan.reversed, vec![fwd_key]);
        assert!(plan.disconnected.is_empty());
        let seg = plan
            .spec
            .channels
            .iter()
            .find(|c| c.key() == fwd_key)
            .expect("re-established by segmentation");
        assert_eq!(seg.latency, fwd_lat * 2);
        assert_eq!(seg.kind, ChannelKind::AdaptableReversed);
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        check_routes_and_deadlock(&plan.spec, &all_pairs(&nodes)).unwrap();
    }

    #[test]
    fn mesh_link_is_never_reversed() {
        let (grid, spec, cfg) = mesh_4x4();
        let key = key_between(&spec, &grid, Coord::new(0, 0), Coord::new(1, 0));
        let plan =
            degrade_region(&spec, &grid, Rect::new(0, 0, 4, 4), &[key], &[], None, &cfg).unwrap();
        assert!(plan.reversed.is_empty());
        assert!(plan.spec.channels.iter().all(|c| c.key() != key));
        // The surviving twin keeps its original latency and kind.
        let twin = plan
            .spec
            .channels
            .iter()
            .find(|c| {
                c.src.router == grid.router(Coord::new(1, 0))
                    && c.dst.router == grid.router(Coord::new(0, 0))
            })
            .unwrap();
        assert_eq!(twin.kind, ChannelKind::Mesh);
        assert_eq!(twin.latency, 1);
    }

    #[test]
    fn every_single_mesh_link_fault_recovers() {
        // Exhaustive: any one dead mesh link leaves the 4x4 fully
        // connected with valid, deadlock-free tables.
        let (grid, spec, cfg) = mesh_4x4();
        let rect = Rect::new(0, 0, 4, 4);
        let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
        let pairs = all_pairs(&nodes);
        for ch in &spec.channels {
            let plan = degrade_region(&spec, &grid, rect, &[ch.key()], &[], None, &cfg).unwrap();
            assert!(plan.disconnected.is_empty(), "{:?}", ch.key());
            check_routes_and_deadlock(&plan.spec, &pairs)
                .unwrap_or_else(|e| panic!("{:?}: {e}", ch.key()));
        }
    }

    #[test]
    fn direction_ports_exist_on_mesh() {
        // Guard: key_between relies on mesh channels using direction ports.
        let (grid, spec, _) = mesh_4x4();
        let k = key_between(&spec, &grid, Coord::new(0, 0), Coord::new(1, 0));
        assert_eq!(k.src.port, Direction::East.port());
    }
}

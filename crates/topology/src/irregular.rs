//! Irregular subNoC topologies (the Sec. II-C3 extension).
//!
//! "Some routing algorithms such as static bubble can be implemented to
//! prevent deadlock in irregular topologies." This module supports
//! *arbitrary* extra express links over a region's mesh by switching the
//! region to **up\*/down\*** routing: a BFS spanning tree is built over the
//! full channel graph (mesh + extras), every route climbs toward the
//! lowest common ancestor and then descends — a destination-only-consistent
//! discipline that is deadlock-free on any connected graph.

use crate::dor::nodes_of;
#[cfg(test)]
use crate::geom::Grid;
use crate::geom::{Coord, Rect};
use crate::plan::{BuildError, ChipPlan};
use crate::regions::mesh_fabric_public as mesh_fabric;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{NodeId, PortId, RouterId, Vnet};
use adaptnoc_sim::spec::{ChannelKind, PortRef};
use std::collections::{HashMap, VecDeque};

/// Builds an irregular subNoC: the region mesh plus arbitrary extra
/// express links (row/column aligned, attached to whatever ports are
/// free), routed with up*/down* from `root` (defaults to the region
/// origin).
///
/// # Errors
///
/// Returns [`BuildError`] on wiring conflicts or a disconnected region.
pub fn irregular_region(
    plan: &mut ChipPlan,
    rect: Rect,
    extra_links: &[(Coord, Coord)],
    root: Option<Coord>,
    cfg: &SimConfig,
) -> Result<(), BuildError> {
    mesh_fabric(plan, rect)?;
    let grid = plan.grid;

    // Extra links, best effort on free ports (both directions).
    for &(a, b) in extra_links {
        if a.x != b.x && a.y != b.y {
            return Err(BuildError::Region(format!(
                "irregular link {a}-{b} must be row- or column-aligned"
            )));
        }
        if !rect.contains(a) || !rect.contains(b) || a == b {
            return Err(BuildError::Region(format!(
                "irregular link {a}-{b} outside region {rect}"
            )));
        }
        let (ra, rb) = (grid.router(a), grid.router(b));
        let mm = a.manhattan(b) as f32;
        let dim_y = a.x == b.x;
        if let (Some(po), Some(pi)) = (plan.free_out_port(ra), plan.free_in_port(rb)) {
            plan.add_express(
                PortRef::new(ra, po),
                PortRef::new(rb, pi),
                mm,
                ChannelKind::Adaptable,
                false,
                dim_y,
            )?;
        }
        if let (Some(po), Some(pi)) = (plan.free_out_port(rb), plan.free_in_port(ra)) {
            plan.add_express(
                PortRef::new(rb, po),
                PortRef::new(ra, pi),
                mm,
                ChannelKind::AdaptableReversed,
                false,
                dim_y,
            )?;
        }
    }

    fill_updown_tables(plan, rect, root.unwrap_or_else(|| rect.origin()), cfg)
}

/// Fills the region's routing tables with up*/down* routes over the
/// current channel graph.
fn fill_updown_tables(
    plan: &mut ChipPlan,
    rect: Rect,
    root: Coord,
    cfg: &SimConfig,
) -> Result<(), BuildError> {
    let grid = plan.grid;
    let routers: Vec<RouterId> = rect.iter().map(|c| grid.router(c)).collect();
    let in_region: HashMap<RouterId, usize> =
        routers.iter().enumerate().map(|(i, &r)| (r, i)).collect();

    // Directed adjacency with ports, restricted to the region.
    let mut adj: HashMap<RouterId, Vec<(RouterId, PortId)>> = HashMap::new();
    for ch in &plan.spec.channels {
        if in_region.contains_key(&ch.src.router) && in_region.contains_key(&ch.dst.router) {
            adj.entry(ch.src.router)
                .or_default()
                .push((ch.dst.router, ch.src.port));
        }
    }

    // BFS spanning tree from the root over *bidirectionally* connected
    // pairs (both directions must exist to be a tree edge, so up and down
    // traffic both have channels).
    let root_r = grid.router(root);
    let mut parent: HashMap<RouterId, (RouterId, PortId)> = HashMap::new(); // child -> (parent, child's uplink port)
    let mut children: HashMap<RouterId, Vec<(RouterId, PortId)>> = HashMap::new(); // parent -> (child, downlink port)
    let mut visited: Vec<RouterId> = vec![root_r];
    let mut q = VecDeque::from([root_r]);
    while let Some(u) = q.pop_front() {
        let nbrs = adj.get(&u).cloned().unwrap_or_default();
        for (v, port_uv) in nbrs {
            if visited.contains(&v) {
                continue;
            }
            // Need the reverse channel v -> u for the uplink.
            let Some(&(_, port_vu)) = adj.get(&v).and_then(|l| l.iter().find(|(w, _)| *w == u))
            else {
                continue;
            };
            parent.insert(v, (u, port_vu));
            children.entry(u).or_default().push((v, port_uv));
            visited.push(v);
            q.push_back(v);
        }
    }
    if visited.len() != routers.len() {
        return Err(BuildError::Region(format!(
            "irregular region {rect} is not bidirectionally connected"
        )));
    }

    // Ancestor chains for LCA routing.
    let chain = |mut r: RouterId| -> Vec<RouterId> {
        let mut c = vec![r];
        while let Some(&(p, _)) = parent.get(&r) {
            c.push(p);
            r = p;
        }
        c
    };

    let nodes: Vec<NodeId> = nodes_of(&grid, rect.iter());
    let attach: HashMap<NodeId, (RouterId, PortId)> = plan
        .spec
        .nis
        .iter()
        .map(|ni| (ni.node, (ni.router, ni.port)))
        .collect();

    for &r in &routers {
        let r_chain = chain(r);
        for &d in &nodes {
            let Some(&(t_router, t_port)) = attach.get(&d) else {
                continue;
            };
            let port = if r == t_router {
                t_port
            } else {
                let t_chain = chain(t_router);
                if let Some(pos) = t_chain.iter().position(|x| *x == r) {
                    // r is an ancestor of the target: go down one step.
                    let child_on_path = t_chain[pos - 1];
                    children[&r]
                        .iter()
                        .find(|(c, _)| *c == child_on_path)
                        .expect("tree child")
                        .1
                } else {
                    // Climb towards the LCA.
                    parent[&r].1
                }
            };
            let _ = r_chain;
            for v in 0..cfg.vnets {
                plan.spec.tables.set(Vnet(v), r, d, port);
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::{all_pairs, check_routes_and_deadlock};
    use adaptnoc_sim::network::Network;
    use adaptnoc_sim::prelude::Packet;

    fn build(extra: &[(Coord, Coord)]) -> adaptnoc_sim::spec::NetworkSpec {
        let cfg = SimConfig::adapt_noc();
        let mut plan = ChipPlan::new(Grid::paper(), &cfg);
        irregular_region(&mut plan, Rect::new(0, 0, 4, 4), extra, None, &cfg).unwrap();
        // Cover leftover tiles so the spec validates.
        let grid = plan.grid;
        for c in grid.iter() {
            if !Rect::new(0, 0, 4, 4).contains(c) {
                plan.add_local_ni(c);
            }
        }
        plan.finish().unwrap()
    }

    fn region_nodes() -> Vec<NodeId> {
        let grid = Grid::paper();
        Rect::new(0, 0, 4, 4).iter().map(|c| grid.node(c)).collect()
    }

    #[test]
    fn plain_updown_mesh_is_deadlock_free() {
        let spec = build(&[]);
        let stats = check_routes_and_deadlock(&spec, &all_pairs(&region_nodes())).unwrap();
        assert!(stats.routes > 0);
        // Tree routing inflates hops vs XY but stays bounded.
        assert!(stats.max_hops <= 12, "max {}", stats.max_hops);
    }

    #[test]
    fn irregular_express_links_are_deadlock_free_and_used() {
        let spec = build(&[
            (Coord::new(0, 0), Coord::new(3, 0)),
            (Coord::new(0, 0), Coord::new(0, 3)),
            (Coord::new(3, 1), Coord::new(3, 3)),
        ]);
        let stats = check_routes_and_deadlock(&spec, &all_pairs(&region_nodes())).unwrap();
        assert!(stats.routes > 0);
        assert!(spec
            .channels
            .iter()
            .any(|c| c.kind == ChannelKind::Adaptable && c.length_mm >= 2.0));
    }

    #[test]
    fn irregular_network_carries_traffic() {
        let spec = build(&[(Coord::new(0, 0), Coord::new(3, 0))]);
        let cfg = SimConfig::adapt_noc();
        let mut net = Network::new(spec, cfg).unwrap();
        let nodes = region_nodes();
        let mut id = 0;
        for &s in &nodes {
            for &d in &nodes {
                if s != d {
                    id += 1;
                    net.inject(Packet::request(id, s, d, 0)).unwrap();
                }
            }
        }
        net.run(20_000);
        assert_eq!(net.in_flight(), 0);
        assert_eq!(net.drain_delivered().len(), id as usize);
        assert_eq!(net.unroutable_events(), 0);
    }

    #[test]
    fn diagonal_or_external_links_rejected() {
        let cfg = SimConfig::adapt_noc();
        let mut plan = ChipPlan::new(Grid::paper(), &cfg);
        let err = irregular_region(
            &mut plan,
            Rect::new(0, 0, 4, 4),
            &[(Coord::new(0, 0), Coord::new(2, 2))],
            None,
            &cfg,
        );
        assert!(matches!(err, Err(BuildError::Region(_))));

        let mut plan = ChipPlan::new(Grid::paper(), &cfg);
        let err = irregular_region(
            &mut plan,
            Rect::new(0, 0, 4, 4),
            &[(Coord::new(0, 0), Coord::new(7, 0))],
            None,
            &cfg,
        );
        assert!(matches!(err, Err(BuildError::Region(_))));
    }

    #[test]
    fn custom_root_changes_tree_shape() {
        let cfg = SimConfig::adapt_noc();
        let build_with_root = |root: Coord| {
            let mut plan = ChipPlan::new(Grid::paper(), &cfg);
            irregular_region(&mut plan, Rect::new(0, 0, 4, 4), &[], Some(root), &cfg).unwrap();
            for c in Grid::paper().iter() {
                if !Rect::new(0, 0, 4, 4).contains(c) {
                    plan.add_local_ni(c);
                }
            }
            plan.finish().unwrap()
        };
        let corner = build_with_root(Coord::new(0, 0));
        let center = build_with_root(Coord::new(1, 1));
        let pairs = all_pairs(&region_nodes());
        let s1 = check_routes_and_deadlock(&corner, &pairs).unwrap();
        let s2 = check_routes_and_deadlock(&center, &pairs).unwrap();
        // A central root shortens worst-case up*/down* routes.
        assert!(s2.avg_hops() <= s1.avg_hops());
    }
}

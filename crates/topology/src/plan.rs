//! Incremental chip-spec construction with port bookkeeping.
//!
//! A [`ChipPlan`] wraps a growing [`NetworkSpec`] and tracks which router
//! ports are already wired, mirroring the physical constraint of the
//! adaptable router (Sec. II-A1): each input/output port mux selects exactly
//! one link, so no port may carry two channels.

use crate::geom::{Coord, Grid};
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{ChannelId, Direction, NodeId, PortId, RouterId, LOCAL_PORT};
use adaptnoc_sim::spec::{ChannelKind, ChannelSpec, NetworkSpec, NiSpec, PortRef, SpecError};
use std::collections::HashSet;

/// Cycles a flit needs to traverse `mm` millimeters of high-metal wiring
/// (1 cycle per 4 mm, Sec. IV-A), minimum one cycle.
pub fn express_latency(mm: f32) -> u8 {
    ((mm / 4.0).ceil() as u8).max(1)
}

/// Errors during topology construction.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// A port was requested twice.
    PortInUse(PortRef),
    /// No free direction port remained on a router that needed one.
    NoFreePort(RouterId),
    /// Two tiles expected to be adjacent are not.
    NotAdjacent(Coord, Coord),
    /// A region constraint failed (dimensions, alignment, fit).
    Region(String),
    /// A destination is unreachable from a router during table fill.
    Unreachable {
        /// The stranded router.
        router: RouterId,
        /// The unreachable destination.
        dst: NodeId,
    },
    /// The finished spec failed validation.
    Spec(SpecError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::PortInUse(p) => write!(f, "port {} of {} already wired", p.port, p.router),
            BuildError::NoFreePort(r) => write!(f, "no free direction port on {r}"),
            BuildError::NotAdjacent(a, b) => write!(f, "tiles {a} and {b} are not adjacent"),
            BuildError::Region(m) => write!(f, "region constraint: {m}"),
            BuildError::Unreachable { router, dst } => {
                write!(f, "no route from {router} to {dst}")
            }
            BuildError::Spec(e) => write!(f, "spec validation failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<SpecError> for BuildError {
    fn from(e: SpecError) -> Self {
        BuildError::Spec(e)
    }
}

/// A chip spec under construction.
#[derive(Debug, Clone)]
pub struct ChipPlan {
    /// The chip grid.
    pub grid: Grid,
    /// The spec being built.
    pub spec: NetworkSpec,
    out_used: HashSet<PortRef>,
    in_used: HashSet<PortRef>,
    ni_ports: HashSet<PortRef>,
}

impl ChipPlan {
    /// Starts a plan: one default 5-port router and one node per tile,
    /// everything unwired.
    pub fn new(grid: Grid, cfg: &SimConfig) -> Self {
        ChipPlan {
            grid,
            spec: NetworkSpec::new(grid.tiles(), grid.tiles(), cfg.vnets as usize),
            out_used: HashSet::new(),
            in_used: HashSet::new(),
            ni_ports: HashSet::new(),
        }
    }

    /// Whether an output port is still free.
    pub fn out_free(&self, p: PortRef) -> bool {
        !self.out_used.contains(&p) && !self.ni_ports.contains(&p)
    }

    /// Whether an input port is still free.
    pub fn in_free(&self, p: PortRef) -> bool {
        !self.in_used.contains(&p) && !self.ni_ports.contains(&p)
    }

    /// First free direction (non-local) output port of `r`, if any.
    pub fn free_out_port(&self, r: RouterId) -> Option<PortId> {
        (0..4u8)
            .map(PortId)
            .find(|&p| self.out_free(PortRef::new(r, p)))
    }

    /// First free direction (non-local) input port of `r`, if any.
    pub fn free_in_port(&self, r: RouterId) -> Option<PortId> {
        (0..4u8)
            .map(PortId)
            .find(|&p| self.in_free(PortRef::new(r, p)))
    }

    /// Adds a channel, enforcing port exclusivity.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::PortInUse`] on a port conflict.
    pub fn add_channel(&mut self, ch: ChannelSpec) -> Result<ChannelId, BuildError> {
        if !self.out_free(ch.src) {
            return Err(BuildError::PortInUse(ch.src));
        }
        if !self.in_free(ch.dst) {
            return Err(BuildError::PortInUse(ch.dst));
        }
        self.out_used.insert(ch.src);
        self.in_used.insert(ch.dst);
        Ok(self.spec.add_channel(ch))
    }

    /// Adds the bidirectional mesh link pair between two adjacent tiles,
    /// using the conventional direction ports.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NotAdjacent`] for non-adjacent tiles or
    /// [`BuildError::PortInUse`] on a port conflict.
    pub fn add_mesh_link(&mut self, a: Coord, b: Coord) -> Result<(), BuildError> {
        if a.manhattan(b) != 1 {
            return Err(BuildError::NotAdjacent(a, b));
        }
        let dir = a.direction_to(b).expect("adjacent tiles share a dimension");
        let ra = self.grid.router(a);
        let rb = self.grid.router(b);
        let fwd = ChannelSpec {
            src: PortRef::new(ra, dir.port()),
            dst: PortRef::new(rb, dir.opposite().port()),
            latency: 1,
            length_mm: 1.0,
            dateline: false,
            dim_y: !dir.is_x(),
            kind: ChannelKind::Mesh,
        };
        let rev = ChannelSpec {
            src: PortRef::new(rb, dir.opposite().port()),
            dst: PortRef::new(ra, dir.port()),
            ..fwd
        };
        self.add_channel(fwd)?;
        self.add_channel(rev)?;
        Ok(())
    }

    /// Adds an express/adaptable channel between two routers in the same row
    /// or column, attaching to explicitly chosen ports.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::PortInUse`] on a port conflict.
    pub fn add_express(
        &mut self,
        src: PortRef,
        dst: PortRef,
        length_mm: f32,
        kind: ChannelKind,
        dateline: bool,
        dim_y: bool,
    ) -> Result<ChannelId, BuildError> {
        self.add_channel(ChannelSpec {
            src,
            dst,
            latency: express_latency(length_mm),
            length_mm,
            dateline,
            dim_y,
            kind,
        })
    }

    /// Attaches the node of tile `c` to its own router's local port.
    pub fn add_local_ni(&mut self, c: Coord) {
        let r = self.grid.router(c);
        self.spec
            .add_ni(NiSpec::local(self.grid.node(c), r, LOCAL_PORT));
        self.ni_ports.insert(PortRef::new(r, LOCAL_PORT));
    }

    /// Attaches the node of tile `node_tile` to the router of `router_tile`
    /// through a concentration link (external concentration, Sec. II-B1).
    pub fn add_concentrated_ni(&mut self, node_tile: Coord, router_tile: Coord) {
        let r = self.grid.router(router_tile);
        let dist = node_tile.manhattan(router_tile) as f32;
        self.spec.add_ni(NiSpec::concentrated(
            self.grid.node(node_tile),
            r,
            LOCAL_PORT,
            dist,
        ));
        self.ni_ports.insert(PortRef::new(r, LOCAL_PORT));
    }

    /// Powers off the router of tile `c` (cmesh idle routers).
    pub fn deactivate(&mut self, c: Coord) {
        self.spec.routers[self.grid.router(c).index()].active = false;
    }

    /// Sets the dateline VC split on the router of tile `c` (torus regions).
    pub fn set_vc_split(&mut self, c: Coord, split: u8) {
        self.spec.routers[self.grid.router(c).index()].vc_split = Some(split);
    }

    /// The attachment point (router, port) of a node, if any.
    pub fn attach_of(&self, node: NodeId) -> Option<(RouterId, PortId)> {
        self.spec.ni_of(node).map(|ni| (ni.router, ni.port))
    }

    /// Validates and returns the finished spec.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Spec`] if validation fails.
    pub fn finish(self) -> Result<NetworkSpec, BuildError> {
        self.spec.validate()?;
        Ok(self.spec)
    }

    /// The direction port of `r` facing `dir` (convention helper).
    pub fn dir_port(r: RouterId, dir: Direction) -> PortRef {
        PortRef::new(r, dir.port())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ChipPlan {
        ChipPlan::new(Grid::new(4, 4), &SimConfig::baseline())
    }

    #[test]
    fn express_latency_per_4mm() {
        assert_eq!(express_latency(1.0), 1);
        assert_eq!(express_latency(4.0), 1);
        assert_eq!(express_latency(5.0), 2);
        assert_eq!(express_latency(7.0), 2);
        assert_eq!(express_latency(8.0), 2);
        assert_eq!(express_latency(9.0), 3);
        assert_eq!(express_latency(0.5), 1);
    }

    #[test]
    fn mesh_link_uses_conventional_ports() {
        let mut p = plan();
        p.add_mesh_link(Coord::new(0, 0), Coord::new(1, 0)).unwrap();
        let ch = &p.spec.channels[0];
        assert_eq!(ch.src.router, RouterId(0));
        assert_eq!(ch.src.port, Direction::East.port());
        assert_eq!(ch.dst.router, RouterId(1));
        assert_eq!(ch.dst.port, Direction::West.port());
        assert!(!ch.dim_y, "x links are dimension 0");
        let mut p = plan();
        p.add_mesh_link(Coord::new(0, 0), Coord::new(0, 1)).unwrap();
        assert!(p.spec.channels[0].dim_y, "y links are dimension 1");
    }

    #[test]
    fn port_conflicts_detected() {
        let mut p = plan();
        p.add_mesh_link(Coord::new(0, 0), Coord::new(1, 0)).unwrap();
        let err = p.add_express(
            PortRef::new(RouterId(0), Direction::East.port()),
            PortRef::new(RouterId(2), Direction::West.port()),
            2.0,
            ChannelKind::Adaptable,
            false,
            false,
        );
        assert!(matches!(err, Err(BuildError::PortInUse(_))));
    }

    #[test]
    fn non_adjacent_mesh_link_rejected() {
        let mut p = plan();
        let err = p.add_mesh_link(Coord::new(0, 0), Coord::new(2, 0));
        assert!(matches!(err, Err(BuildError::NotAdjacent(_, _))));
        let err = p.add_mesh_link(Coord::new(0, 0), Coord::new(1, 1));
        assert!(matches!(err, Err(BuildError::NotAdjacent(_, _))));
    }

    #[test]
    fn free_port_scan_skips_used() {
        let mut p = plan();
        // Corner router 0: after wiring east and north mesh links, no
        // further free out ports should exist among the used ones.
        p.add_mesh_link(Coord::new(0, 0), Coord::new(1, 0)).unwrap();
        assert_eq!(p.free_out_port(RouterId(0)), Some(Direction::West.port()));
        p.add_mesh_link(Coord::new(0, 0), Coord::new(0, 1)).unwrap();
        // East and North used; West and South still free.
        let f = p.free_out_port(RouterId(0)).unwrap();
        assert!(f == Direction::West.port() || f == Direction::South.port());
    }

    #[test]
    fn ni_port_blocks_channels() {
        let mut p = plan();
        p.add_local_ni(Coord::new(0, 0));
        let err = p.add_express(
            PortRef::new(RouterId(0), LOCAL_PORT),
            PortRef::new(RouterId(1), Direction::West.port()),
            1.0,
            ChannelKind::Express,
            false,
            false,
        );
        assert!(matches!(err, Err(BuildError::PortInUse(_))));
    }

    #[test]
    fn build_error_display_nonempty() {
        let errs: Vec<BuildError> = vec![
            BuildError::PortInUse(PortRef::new(RouterId(0), PortId(0))),
            BuildError::NoFreePort(RouterId(1)),
            BuildError::NotAdjacent(Coord::new(0, 0), Coord::new(2, 2)),
            BuildError::Region("too small".into()),
            BuildError::Unreachable {
                router: RouterId(0),
                dst: NodeId(1),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}

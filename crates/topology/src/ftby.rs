//! Flattened Butterfly baseline (Kim/Balfour/Dally, MICRO'07; paper
//! baseline 4, Sec. IV-A).
//!
//! Concentration factor 4: every 2x2 quad of tiles shares one high-radix
//! router with dedicated injection ports. Routers in the same coarse row or
//! coarse column are fully connected by express channels on high metal
//! layers. Routing is two-phase dimension-ordered: at most one row hop, then
//! at most one column hop.

use crate::geom::{Coord, Grid};
use crate::plan::{express_latency, BuildError, ChipPlan};
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{NodeId, PortId, RouterId, Vnet};
use adaptnoc_sim::spec::{ChannelKind, ChannelSpec, NetworkSpec, NiSpec, PortRef};

/// Coarse-grid geometry of the flattened butterfly over a tile grid.
#[derive(Debug, Clone, Copy)]
pub struct FtbyLayout {
    /// The underlying tile grid.
    pub grid: Grid,
    /// Coarse columns (`grid.width / 2`).
    pub cols: u8,
    /// Coarse rows (`grid.height / 2`).
    pub rows: u8,
}

impl FtbyLayout {
    /// Computes the layout.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Region`] if the grid dimensions are odd.
    pub fn new(grid: Grid) -> Result<Self, BuildError> {
        if !grid.width.is_multiple_of(2) || !grid.height.is_multiple_of(2) {
            return Err(BuildError::Region(
                "flattened butterfly needs even grid dimensions".into(),
            ));
        }
        Ok(FtbyLayout {
            grid,
            cols: grid.width / 2,
            rows: grid.height / 2,
        })
    }

    /// The hub tile of coarse position `(i, j)`.
    pub fn hub(&self, i: u8, j: u8) -> Coord {
        Coord::new(2 * i, 2 * j)
    }

    /// The coarse position of a tile.
    pub fn coarse(&self, c: Coord) -> (u8, u8) {
        (c.x / 2, c.y / 2)
    }

    /// Router radix: (cols-1) row links + (rows-1) column links + 4 NIs.
    pub fn radix(&self) -> u8 {
        (self.cols - 1) + (self.rows - 1) + 4
    }

    /// The output/input port used at coarse column `i` for the row link
    /// towards coarse column `k` (k != i).
    pub fn row_port(&self, i: u8, k: u8) -> PortId {
        debug_assert_ne!(i, k);
        PortId(if k < i { k } else { k - 1 })
    }

    /// The port used at coarse row `j` for the column link towards coarse
    /// row `l` (l != j).
    pub fn col_port(&self, j: u8, l: u8) -> PortId {
        debug_assert_ne!(j, l);
        PortId((self.cols - 1) + if l < j { l } else { l - 1 })
    }

    /// The dedicated injection/ejection port of quad-offset `(dx, dy)`.
    pub fn ni_port(&self, dx: u8, dy: u8) -> PortId {
        PortId((self.cols - 1) + (self.rows - 1) + dy * 2 + dx)
    }
}

/// Builds the whole-chip flattened butterfly.
///
/// # Errors
///
/// Returns [`BuildError`] for odd grids or wiring conflicts.
pub fn ftby_chip(grid: Grid, cfg: &SimConfig) -> Result<NetworkSpec, BuildError> {
    let layout = FtbyLayout::new(grid)?;
    let mut plan = ChipPlan::new(grid, cfg);

    // Configure routers: hubs get the high radix, the rest are gated.
    for c in grid.iter() {
        let (i, j) = layout.coarse(c);
        let r = grid.router(c).index();
        if c == layout.hub(i, j) {
            plan.spec.routers[r].n_ports = layout.radix();
        } else {
            plan.spec.routers[r].active = false;
        }
    }

    // NIs: each tile's node attaches to its quad hub on a dedicated port.
    for c in grid.iter() {
        let (i, j) = layout.coarse(c);
        let hub = grid.router(layout.hub(i, j));
        let (dx, dy) = (c.x % 2, c.y % 2);
        let dist = c.manhattan(layout.hub(i, j)) as f32;
        plan.spec.add_ni(NiSpec {
            node: grid.node(c),
            router: hub,
            port: layout.ni_port(dx, dy),
            concentration: dist > 0.0,
            link_mm: dist.max(0.5),
        });
    }

    // Row channels: full connectivity within each coarse row.
    for j in 0..layout.rows {
        for i1 in 0..layout.cols {
            for i2 in 0..layout.cols {
                if i1 == i2 {
                    continue;
                }
                let src = grid.router(layout.hub(i1, j));
                let dst = grid.router(layout.hub(i2, j));
                let mm = (2 * (i1 as i16 - i2 as i16).unsigned_abs()) as f32;
                plan.add_channel(ChannelSpec {
                    src: PortRef::new(src, layout.row_port(i1, i2)),
                    dst: PortRef::new(dst, layout.row_port(i2, i1)),
                    latency: express_latency(mm),
                    length_mm: mm,
                    dateline: false,
                    dim_y: false,
                    kind: ChannelKind::Express,
                })?;
            }
        }
    }
    // Column channels.
    for i in 0..layout.cols {
        for j1 in 0..layout.rows {
            for j2 in 0..layout.rows {
                if j1 == j2 {
                    continue;
                }
                let src = grid.router(layout.hub(i, j1));
                let dst = grid.router(layout.hub(i, j2));
                let mm = (2 * (j1 as i16 - j2 as i16).unsigned_abs()) as f32;
                plan.add_channel(ChannelSpec {
                    src: PortRef::new(src, layout.col_port(j1, j2)),
                    dst: PortRef::new(dst, layout.col_port(j2, j1)),
                    latency: express_latency(mm),
                    length_mm: mm,
                    dateline: false,
                    dim_y: true,
                    kind: ChannelKind::Express,
                })?;
            }
        }
    }

    // Two-phase DOR tables: one row hop, then one column hop.
    for v in 0..cfg.vnets {
        for cj in 0..layout.rows {
            for ci in 0..layout.cols {
                let r = grid.router(layout.hub(ci, cj));
                for d in grid.iter() {
                    let (ti, tj) = layout.coarse(d);
                    let node = grid.node(d);
                    let port = if (ci, cj) == (ti, tj) {
                        layout.ni_port(d.x % 2, d.y % 2)
                    } else if ci != ti {
                        layout.row_port(ci, ti)
                    } else {
                        layout.col_port(cj, tj)
                    };
                    plan.spec.tables.set(Vnet(v), r, node, port);
                }
            }
        }
    }

    plan.finish()
}

/// The hub router serving a node in the FTBY layout (for tests and stats).
pub fn ftby_hub_of(grid: Grid, node: NodeId) -> Result<RouterId, BuildError> {
    let layout = FtbyLayout::new(grid)?;
    let c = grid.node_coord(node);
    let (i, j) = layout.coarse(c);
    Ok(grid.router(layout.hub(i, j)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_of_paper_grid() {
        let l = FtbyLayout::new(Grid::paper()).unwrap();
        assert_eq!((l.cols, l.rows), (4, 4));
        assert_eq!(l.radix(), 10);
        assert_eq!(l.hub(0, 0), Coord::new(0, 0));
        assert_eq!(l.hub(3, 3), Coord::new(6, 6));
    }

    #[test]
    fn ports_are_disjoint() {
        let l = FtbyLayout::new(Grid::paper()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for k in 0..4u8 {
            if k != 1 {
                assert!(seen.insert(l.row_port(1, k)));
            }
        }
        for k in 0..4u8 {
            if k != 2 {
                assert!(seen.insert(l.col_port(2, k)));
            }
        }
        for dy in 0..2u8 {
            for dx in 0..2u8 {
                assert!(seen.insert(l.ni_port(dx, dy)));
            }
        }
        assert_eq!(seen.len(), 10);
        assert!(seen.iter().all(|p| p.0 < l.radix()));
    }

    #[test]
    fn odd_grid_rejected() {
        assert!(matches!(
            ftby_chip(Grid::new(7, 8), &SimConfig::flattened_butterfly()),
            Err(BuildError::Region(_))
        ));
    }

    #[test]
    fn chip_shape() {
        let spec = ftby_chip(Grid::paper(), &SimConfig::flattened_butterfly()).unwrap();
        assert_eq!(spec.active_routers(), 16);
        // Row: 4 rows * 4*3 directed pairs = 48; columns the same.
        assert_eq!(spec.channels.len(), 96);
        assert_eq!(spec.nis.len(), 64);
        // Long links exist (6 mm, 2 cycles).
        assert!(spec
            .channels
            .iter()
            .any(|c| c.length_mm == 6.0 && c.latency == 2));
    }

    #[test]
    fn hub_of_node() {
        let g = Grid::paper();
        assert_eq!(
            ftby_hub_of(g, NodeId(0)).unwrap(),
            g.router(Coord::new(0, 0))
        );
        // Node at (3,3) -> hub (2,2).
        let n = g.node(Coord::new(3, 3));
        assert_eq!(ftby_hub_of(g, n).unwrap(), g.router(Coord::new(2, 2)));
    }
}

//! Dimension-ordered routing-table construction over arbitrary channel
//! graphs.
//!
//! All composed topologies in the paper "adopt minimal, dimensional-ordering
//! routing (e.g., XY)" (Sec. II-C1). This module generalizes XY to channel
//! graphs containing express/adaptable links: a packet first travels within
//! its current *row* to the destination column (using whatever row channels
//! exist — mesh hops, cmesh coarse hops, or multi-tile express segments),
//! then within the destination *column* to the destination router.
//!
//! Within one dimension the next hop is chosen by a shortest-path
//! computation weighted by channel latency, restricted to edges that
//! *strictly decrease* the distance to the target. Overshooting express
//! segments remain usable (jumping past nearby routers still decreases
//! distance to a far target), but "move away first" paths are forbidden,
//! so every route terminates. Overshoot-then-return routes mix the two
//! travel directions of a line, which is safe for the regular express
//! spacings the torus/express builders emit but can close a channel
//! dependency cycle for arbitrary skip spacings. For those,
//! [`fill_dor_tables_monotone`] additionally forbids crossing the target:
//! monotone routes use a single travel direction per line, so each
//! direction's channels depend only on channels strictly further along —
//! acyclic for *any* skip placement (and still verified by
//! [`crate::validate`]).

use crate::geom::{Coord, Grid};
use crate::plan::BuildError;
use adaptnoc_sim::ids::{NodeId, PortId, RouterId, Vnet};
use adaptnoc_sim::spec::NetworkSpec;
use std::collections::{HashMap, HashSet};

/// One intra-dimension edge: a channel from position `from` to position
/// `to` (x positions for row graphs, y positions for column graphs).
#[derive(Debug, Clone, Copy)]
struct DimEdge {
    from: u8,
    to: u8,
    latency: u8,
    src_port: PortId,
}

const INF: u32 = u32::MAX / 2;

/// Shortest-path next-hop ports within one dimension line towards `target`,
/// indexed by position. `size` is the line length. With `monotone`,
/// target-crossing (overshooting) edges are excluded.
fn line_next_hops(
    edges: &[DimEdge],
    size: usize,
    target: u8,
    monotone: bool,
) -> Vec<Option<PortId>> {
    let usable = |e: &DimEdge| decreases(e, target) && (!monotone || !crosses(e, target));
    // Reverse Dijkstra from `target`.
    let mut dist = vec![INF; size];
    dist[target as usize] = 0;
    let mut done = vec![false; size];
    loop {
        let mut best = None;
        for i in 0..size {
            if !done[i] && dist[i] < INF && best.is_none_or(|b: usize| dist[i] < dist[b]) {
                best = Some(i);
            }
        }
        let Some(u) = best else { break };
        done[u] = true;
        // Relax reversed edges: e.from -> e.to means dist[from] can improve
        // via dist[to]. Only strictly distance-decreasing edges participate.
        for e in edges {
            if e.to as usize == u && usable(e) {
                let w = edge_cost(e);
                if dist[e.from as usize] > dist[u] + w {
                    dist[e.from as usize] = dist[u] + w;
                }
            }
        }
    }
    // Pick, per position, the outgoing edge on a shortest path.
    let mut next = vec![None; size];
    for (i, n) in next.iter_mut().enumerate() {
        if i == target as usize || dist[i] >= INF {
            continue;
        }
        let mut best: Option<(u32, u32, PortId)> = None;
        for e in edges {
            if e.from as usize != i || dist[e.to as usize] >= INF || !usable(e) {
                continue;
            }
            let cost = edge_cost(e) + dist[e.to as usize];
            if cost != dist[i] {
                continue;
            }
            // Tie-break: smallest remaining distance after the hop, then
            // port id (determinism; biases toward plain mesh ports).
            let over = (e.to as i32 - target as i32).unsigned_abs();
            let cand = (cost, over, e.src_port);
            if best.is_none_or(|b| (cand.1, cand.2 .0) < (b.1, b.2 .0)) {
                best = Some(cand);
            }
        }
        *n = best.map(|b| b.2);
    }
    next
}

fn edge_cost(e: &DimEdge) -> u32 {
    e.latency as u32 * 8 + 8
}

/// Whether traversing `e` strictly decreases the distance to `target`.
fn decreases(e: &DimEdge, target: u8) -> bool {
    (e.to as i32 - target as i32).unsigned_abs() < (e.from as i32 - target as i32).unsigned_abs()
}

/// Whether traversing `e` lands on the far side of `target` (overshoots).
fn crosses(e: &DimEdge, target: u8) -> bool {
    (e.to as i32 - target as i32) * (e.from as i32 - target as i32) < 0
}

/// Fills `spec.tables` for `vnet` with dimension-ordered routes covering
/// every (router, destination node) pair in `routers` × `nodes`.
///
/// When `best_effort` is true, unreachable pairs are skipped silently
/// (used for leftover tiles that host no traffic); otherwise they are
/// reported as [`BuildError::Unreachable`].
///
/// # Errors
///
/// Returns [`BuildError::Unreachable`] if a pair cannot be routed and
/// `best_effort` is false.
pub fn fill_dor_tables(
    spec: &mut NetworkSpec,
    grid: &Grid,
    vnet: Vnet,
    routers: &[RouterId],
    nodes: &[NodeId],
    best_effort: bool,
) -> Result<(), BuildError> {
    fill_impl(spec, grid, vnet, routers, nodes, best_effort, false)
}

/// [`fill_dor_tables`] restricted to *monotone* in-line moves: overshooting
/// (target-crossing) hops are excluded, so every route sticks to one travel
/// direction per line. Routes can be a few hops longer where an overshoot
/// shortcut existed, but each direction's channel dependencies only ever
/// point further along the line — the dependency graph is acyclic for
/// arbitrary express/skip placements, not just regularly spaced ones. Used
/// by the customizable sparse-Hamming generator.
///
/// # Errors
///
/// Returns [`BuildError::Unreachable`] if a pair cannot be routed and
/// `best_effort` is false.
pub fn fill_dor_tables_monotone(
    spec: &mut NetworkSpec,
    grid: &Grid,
    vnet: Vnet,
    routers: &[RouterId],
    nodes: &[NodeId],
    best_effort: bool,
) -> Result<(), BuildError> {
    fill_impl(spec, grid, vnet, routers, nodes, best_effort, true)
}

#[allow(clippy::too_many_arguments)]
fn fill_impl(
    spec: &mut NetworkSpec,
    grid: &Grid,
    vnet: Vnet,
    routers: &[RouterId],
    nodes: &[NodeId],
    best_effort: bool,
    monotone: bool,
) -> Result<(), BuildError> {
    let router_set: HashSet<RouterId> = routers.iter().copied().collect();

    // Node attachment points.
    let mut attach: HashMap<NodeId, (RouterId, PortId)> = HashMap::new();
    for ni in &spec.nis {
        attach.insert(ni.node, (ni.router, ni.port));
    }

    // Group channels into row and column graphs (restricted to the
    // participating routers).
    let mut row_edges: HashMap<u8, Vec<DimEdge>> = HashMap::new();
    let mut col_edges: HashMap<u8, Vec<DimEdge>> = HashMap::new();
    for ch in &spec.channels {
        if !router_set.contains(&ch.src.router) || !router_set.contains(&ch.dst.router) {
            continue;
        }
        let a = grid.coord(ch.src.router);
        let b = grid.coord(ch.dst.router);
        if a.y == b.y && a.x != b.x {
            row_edges.entry(a.y).or_default().push(DimEdge {
                from: a.x,
                to: b.x,
                latency: ch.latency,
                src_port: ch.src.port,
            });
        } else if a.x == b.x && a.y != b.y {
            col_edges.entry(a.x).or_default().push(DimEdge {
                from: a.y,
                to: b.y,
                latency: ch.latency,
                src_port: ch.src.port,
            });
        }
    }

    // Next-hop caches keyed by (line id, target position).
    let mut row_cache: HashMap<(u8, u8), Vec<Option<PortId>>> = HashMap::new();
    let mut col_cache: HashMap<(u8, u8), Vec<Option<PortId>>> = HashMap::new();

    for &r in routers {
        let rc = grid.coord(r);
        for &d in nodes {
            let Some(&(t_router, t_port)) = attach.get(&d) else {
                continue;
            };
            if r == t_router {
                spec.tables.set(vnet, r, d, t_port);
                continue;
            }
            let tc = grid.coord(t_router);
            let port = if rc.x != tc.x {
                let next = row_cache.entry((rc.y, tc.x)).or_insert_with(|| {
                    line_next_hops(
                        row_edges.get(&rc.y).map_or(&[][..], |v| v),
                        grid.width as usize,
                        tc.x,
                        monotone,
                    )
                });
                next[rc.x as usize]
            } else {
                let next = col_cache.entry((rc.x, tc.y)).or_insert_with(|| {
                    line_next_hops(
                        col_edges.get(&rc.x).map_or(&[][..], |v| v),
                        grid.height as usize,
                        tc.y,
                        monotone,
                    )
                });
                next[rc.y as usize]
            };
            match port {
                Some(p) => spec.tables.set(vnet, r, d, p),
                None if best_effort => {}
                None => return Err(BuildError::Unreachable { router: r, dst: d }),
            }
        }
    }
    Ok(())
}

/// Convenience: the routers of a coordinate iterator.
pub fn routers_of<I: IntoIterator<Item = Coord>>(grid: &Grid, coords: I) -> Vec<RouterId> {
    coords.into_iter().map(|c| grid.router(c)).collect()
}

/// Convenience: the nodes of a coordinate iterator.
pub fn nodes_of<I: IntoIterator<Item = Coord>>(grid: &Grid, coords: I) -> Vec<NodeId> {
    coords.into_iter().map(|c| grid.node(c)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_next_hops_simple_chain() {
        // 0 ->(p0) 1 ->(p0) 2, and reverse with p1.
        let edges = [
            DimEdge {
                from: 0,
                to: 1,
                latency: 1,
                src_port: PortId(0),
            },
            DimEdge {
                from: 1,
                to: 2,
                latency: 1,
                src_port: PortId(0),
            },
            DimEdge {
                from: 2,
                to: 1,
                latency: 1,
                src_port: PortId(1),
            },
            DimEdge {
                from: 1,
                to: 0,
                latency: 1,
                src_port: PortId(1),
            },
        ];
        let next = line_next_hops(&edges, 3, 2, false);
        assert_eq!(next[0], Some(PortId(0)));
        assert_eq!(next[1], Some(PortId(0)));
        assert_eq!(next[2], None);
        let next = line_next_hops(&edges, 3, 0, false);
        assert_eq!(next[2], Some(PortId(1)));
        assert_eq!(next[1], Some(PortId(1)));
    }

    #[test]
    fn line_next_hops_prefers_express_when_shorter() {
        // Chain 0-1-2-3 plus express 0 -> 3 (latency 1).
        let mut edges = vec![];
        for i in 0..3u8 {
            edges.push(DimEdge {
                from: i,
                to: i + 1,
                latency: 1,
                src_port: PortId(0),
            });
            edges.push(DimEdge {
                from: i + 1,
                to: i,
                latency: 1,
                src_port: PortId(1),
            });
        }
        edges.push(DimEdge {
            from: 0,
            to: 3,
            latency: 1,
            src_port: PortId(3),
        });
        let next = line_next_hops(&edges, 4, 3, false);
        assert_eq!(
            next[0],
            Some(PortId(3)),
            "express should win for far target"
        );
        // For target 1, the direct hop wins.
        let next = line_next_hops(&edges, 4, 1, false);
        assert_eq!(next[0], Some(PortId(0)));
    }

    #[test]
    fn line_next_hops_allows_overshoot_when_cheaper() {
        // Chain 0-1-...-5 plus express 0 -> 5; target 4: going express to 5
        // then back (2 steps) beats 4 mesh hops.
        let mut edges = vec![];
        for i in 0..5u8 {
            edges.push(DimEdge {
                from: i,
                to: i + 1,
                latency: 1,
                src_port: PortId(0),
            });
            edges.push(DimEdge {
                from: i + 1,
                to: i,
                latency: 1,
                src_port: PortId(1),
            });
        }
        edges.push(DimEdge {
            from: 0,
            to: 5,
            latency: 1,
            src_port: PortId(3),
        });
        let next = line_next_hops(&edges, 6, 4, false);
        assert_eq!(next[0], Some(PortId(3)), "overshoot path is shorter");
        assert_eq!(next[5], Some(PortId(1)), "come back from overshoot");
        // Monotone mode refuses the target-crossing express even though it
        // is cheaper: the route stays on the near side of the target.
        let next = line_next_hops(&edges, 6, 4, true);
        assert_eq!(next[0], Some(PortId(0)), "monotone must not cross");
        assert_eq!(next[1], Some(PortId(0)));
    }

    #[test]
    fn line_next_hops_unreachable_stays_none() {
        let edges = [DimEdge {
            from: 0,
            to: 1,
            latency: 1,
            src_port: PortId(0),
        }];
        let next = line_next_hops(&edges, 3, 2, false);
        assert_eq!(next[0], None);
        assert_eq!(next[1], None);
    }

    #[test]
    fn ties_prefer_monotone_paths() {
        // 0-1-2-3-4 chain and express 0->4; target 2: mesh (2 hops) vs
        // express+back (3 hops edges but higher latency?). Express latency 1:
        // express path = 1 + 2 hops back = cost 3 edges vs 2 edges -> mesh
        // wins outright. Make express reach 3: target 2 -> mesh 2 hops vs
        // express(0->3)+1 back = 2 edges: tie on edges; away penalty breaks
        // it toward mesh.
        let mut edges = vec![];
        for i in 0..4u8 {
            edges.push(DimEdge {
                from: i,
                to: i + 1,
                latency: 1,
                src_port: PortId(0),
            });
            edges.push(DimEdge {
                from: i + 1,
                to: i,
                latency: 1,
                src_port: PortId(1),
            });
        }
        edges.push(DimEdge {
            from: 0,
            to: 3,
            latency: 1,
            src_port: PortId(3),
        });
        let next = line_next_hops(&edges, 5, 2, false);
        assert_eq!(next[0], Some(PortId(0)), "monotone path should win the tie");
    }
}

//! SubNoC region topology builders (Sec. II-B): mesh, cmesh, torus, tree.
//!
//! Each builder wires one rectangular region of the chip — channels, NI
//! attachments, power states — and fills the routing tables for traffic
//! among the region's nodes. Regions are isolated from each other at the
//! link level (the defining property of Adapt-NoC subNoCs); inter-region
//! memory-controller sharing bridges are added separately by
//! `adaptnoc-core`.

use crate::dor::{fill_dor_tables, nodes_of, routers_of};
use crate::geom::{Coord, Rect};
use crate::plan::{BuildError, ChipPlan};
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::{Direction, NodeId, Vnet, LOCAL_PORT};
use adaptnoc_sim::spec::{ChannelKind, PortRef};

/// The subNoC topologies in the RL action space (Sec. III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// Plain 2D mesh.
    Mesh,
    /// Concentrated mesh: 4 nodes per hub router, idle routers gated.
    Cmesh,
    /// Mesh plus segmented wrap-around adaptable links with datelines.
    Torus,
    /// Mesh for requests plus a reply-distribution tree rooted at the MC,
    /// built from (reversed) adaptable-link segments.
    Tree,
    /// Extension (Sec. II-B4 "possible subNoC topologies"): torus wrap-around
    /// links for requests combined with the reply tree, optimizing both
    /// request and reply networks for memory-intensive phases.
    TorusTree,
    /// Extension (Sec. II-B4): "the wrap-around torus links can be
    /// segmented to several short express links to bypass routers" — the
    /// mesh plus half-span express segments on every row and column wire
    /// (an express-channel mesh; no rings, so no datelines needed).
    ExpressMesh,
    /// Extension: sparse-Hamming-graph design point — the mesh plus
    /// binary-ladder skip links along every row and column (see
    /// [`crate::sparse`]), giving logarithmic diameter within the paper's
    /// wiring budget.
    SparseHamming,
}

impl TopologyKind {
    /// The four-action space used by the RL controller in the paper.
    pub const ACTIONS: [TopologyKind; 4] = [
        TopologyKind::Mesh,
        TopologyKind::Cmesh,
        TopologyKind::Torus,
        TopologyKind::Tree,
    ];

    /// Stable index of this topology in the RL action space.
    ///
    /// # Panics
    ///
    /// Panics for extension topologies outside the paper's action space.
    pub fn action_index(self) -> usize {
        match self {
            TopologyKind::Mesh => 0,
            TopologyKind::Cmesh => 1,
            TopologyKind::Torus => 2,
            TopologyKind::Tree => 3,
            TopologyKind::TorusTree | TopologyKind::ExpressMesh | TopologyKind::SparseHamming => {
                panic!("extension topologies are not in the RL action space")
            }
        }
    }

    /// The topology for an action index.
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn from_action_index(i: usize) -> Self {
        Self::ACTIONS[i]
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            TopologyKind::Mesh => "mesh",
            TopologyKind::Cmesh => "cmesh",
            TopologyKind::Torus => "torus",
            TopologyKind::Tree => "tree",
            TopologyKind::TorusTree => "torus+tree",
            TopologyKind::ExpressMesh => "express-mesh",
            TopologyKind::SparseHamming => "sparse-hamming",
        }
    }
}

impl std::fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A region assignment: a rectangle of the chip configured as one subNoC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionTopology {
    /// Footprint of the subNoC.
    pub rect: Rect,
    /// Topology to compose.
    pub kind: TopologyKind,
    /// Tree root node (the region's primary memory controller). Defaults
    /// to the region's origin tile when `None`.
    pub root: Option<NodeId>,
    /// Additional memory controllers: the tree also maximizes their row
    /// fanout (the primary root keeps the column wires).
    pub extra_roots: Vec<NodeId>,
}

impl RegionTopology {
    /// Creates a region assignment.
    pub fn new(rect: Rect, kind: TopologyKind) -> Self {
        RegionTopology {
            rect,
            kind,
            root: None,
            extra_roots: Vec::new(),
        }
    }

    /// Sets the tree-root (primary MC) node.
    pub fn with_root(mut self, root: NodeId) -> Self {
        self.root = Some(root);
        self
    }

    /// Adds secondary MC roots (their rows get tree row expresses too).
    pub fn with_extra_roots(mut self, roots: Vec<NodeId>) -> Self {
        self.extra_roots = roots;
        self
    }
}

/// Builds one region into the plan.
///
/// # Errors
///
/// Propagates [`BuildError`] from channel wiring or table fill.
pub fn build_region(
    plan: &mut ChipPlan,
    region: &RegionTopology,
    cfg: &SimConfig,
) -> Result<(), BuildError> {
    if !region.rect.fits(&plan.grid) {
        return Err(BuildError::Region(format!(
            "region {} does not fit the {}x{} grid",
            region.rect, plan.grid.width, plan.grid.height
        )));
    }
    match region.kind {
        TopologyKind::Mesh => mesh_region(plan, region.rect, cfg),
        TopologyKind::Cmesh => cmesh_region(plan, region.rect, cfg),
        TopologyKind::Torus => torus_region(plan, region.rect, cfg, false, false),
        TopologyKind::Tree => tree_region(
            plan,
            region.rect,
            region.root,
            &region.extra_roots,
            cfg,
            false,
        ),
        TopologyKind::TorusTree => {
            torus_tree_region(plan, region.rect, region.root, &region.extra_roots, cfg)
        }
        TopologyKind::ExpressMesh => express_mesh_region(plan, region.rect, cfg),
        TopologyKind::SparseHamming => crate::sparse::sparse_hamming_region(
            plan,
            region.rect,
            &crate::sparse::SparseHammingParams::default_for(region.rect.w, region.rect.h),
            cfg,
        ),
    }
}

/// Wires the mesh links and local NIs shared by several topologies (without
/// routing tables).
fn mesh_fabric(plan: &mut ChipPlan, rect: Rect) -> Result<(), BuildError> {
    mesh_fabric_public(plan, rect)
}

/// Public variant of the mesh-fabric wiring (local NIs + region mesh
/// links) used by the irregular-topology extension.
pub fn mesh_fabric_public(plan: &mut ChipPlan, rect: Rect) -> Result<(), BuildError> {
    for c in rect.iter() {
        plan.add_local_ni(c);
        for dir in [Direction::East, Direction::North] {
            if let Some(n) = plan.grid.neighbor(c, dir) {
                if rect.contains(n) {
                    plan.add_mesh_link(c, n)?;
                }
            }
        }
    }
    Ok(())
}

/// Plain mesh subNoC: full fabric, XY routing on both vnets.
pub fn mesh_region(plan: &mut ChipPlan, rect: Rect, cfg: &SimConfig) -> Result<(), BuildError> {
    mesh_fabric(plan, rect)?;
    let routers = routers_of(&plan.grid, rect.iter());
    let nodes = nodes_of(&plan.grid, rect.iter());
    let grid = plan.grid;
    for v in 0..cfg.vnets {
        fill_dor_tables(&mut plan.spec, &grid, Vnet(v), &routers, &nodes, false)?;
    }
    Ok(())
}

/// Concentrated mesh (Sec. II-B1): one hub router per 2x2 quad via external
/// concentration, idle routers powered off, hubs bridged by adaptable-link
/// segments that bypass the gated routers.
pub fn cmesh_region(plan: &mut ChipPlan, rect: Rect, cfg: &SimConfig) -> Result<(), BuildError> {
    if !rect.w.is_multiple_of(2) || !rect.h.is_multiple_of(2) {
        return Err(BuildError::Region(format!(
            "cmesh needs even region dimensions, got {rect}"
        )));
    }
    let grid = plan.grid;
    let hubs: Vec<Coord> = (0..rect.h / 2)
        .flat_map(|qy| (0..rect.w / 2).map(move |qx| Coord::new(rect.x + 2 * qx, rect.y + 2 * qy)))
        .collect();

    // Concentrate the quad's nodes onto the hub; gate the other routers.
    for &hub in &hubs {
        for dx in 0..2u8 {
            for dy in 0..2u8 {
                let t = Coord::new(hub.x + dx, hub.y + dy);
                if t == hub {
                    plan.add_local_ni(t);
                } else {
                    plan.add_concentrated_ni(t, hub);
                    plan.deactivate(t);
                }
            }
        }
    }

    // Bridge adjacent hubs (2 tiles apart) with adaptable segments that
    // bypass the powered-off routers between them.
    for &hub in &hubs {
        let r = grid.router(hub);
        for dir in [Direction::East, Direction::North] {
            let (nx, ny) = match dir {
                Direction::East => (hub.x as i16 + 2, hub.y as i16),
                Direction::North => (hub.x as i16, hub.y as i16 + 2),
                _ => unreachable!(),
            };
            if nx < 0 || ny < 0 {
                continue;
            }
            let n = Coord::new(nx as u8, ny as u8);
            if !rect.contains(n) || !hubs.contains(&n) {
                continue;
            }
            let nr = grid.router(n);
            let is_y = !dir.is_x();
            plan.add_express(
                PortRef::new(r, dir.port()),
                PortRef::new(nr, dir.opposite().port()),
                2.0,
                ChannelKind::Adaptable,
                false,
                is_y,
            )?;
            plan.add_express(
                PortRef::new(nr, dir.opposite().port()),
                PortRef::new(r, dir.port()),
                2.0,
                ChannelKind::Adaptable,
                false,
                is_y,
            )?;
        }
    }

    let routers = routers_of(&grid, hubs.iter().copied());
    let nodes = nodes_of(&grid, rect.iter());
    for v in 0..cfg.vnets {
        fill_dor_tables(&mut plan.spec, &grid, Vnet(v), &routers, &nodes, false)?;
    }
    Ok(())
}

/// Torus subNoC (Sec. II-B2): the mesh fabric plus segmented wrap-around
/// adaptable links per row/column, with dateline VC classes for deadlock
/// freedom (Sec. II-C3).
///
/// `request_only` restricts table fill to the request vnet and
/// `row_wraps_only` leaves the column wires free — both used by the
/// combined torus+tree extension, where the reply tree takes the columns.
pub fn torus_region(
    plan: &mut ChipPlan,
    rect: Rect,
    cfg: &SimConfig,
    request_only: bool,
    row_wraps_only: bool,
) -> Result<(), BuildError> {
    mesh_fabric(plan, rect)?;
    let grid = plan.grid;

    // Wrap-around row links (only useful for >= 3 columns).
    if rect.w >= 3 {
        for y in rect.y..rect.y_end() {
            let left = grid.router(Coord::new(rect.x, y));
            let right = grid.router(Coord::new(rect.x_end() - 1, y));
            let mm = (rect.w - 1) as f32;
            // Eastward wrap: rightmost continues at leftmost.
            plan.add_express(
                PortRef::new(right, Direction::East.port()),
                PortRef::new(left, Direction::West.port()),
                mm,
                ChannelKind::Adaptable,
                true,
                false,
            )?;
            // Westward wrap.
            plan.add_express(
                PortRef::new(left, Direction::West.port()),
                PortRef::new(right, Direction::East.port()),
                mm,
                ChannelKind::Adaptable,
                true,
                false,
            )?;
        }
    }
    // Wrap-around column links.
    if rect.h >= 3 && !row_wraps_only {
        for x in rect.x..rect.x_end() {
            let bottom = grid.router(Coord::new(x, rect.y));
            let top = grid.router(Coord::new(x, rect.y_end() - 1));
            let mm = (rect.h - 1) as f32;
            plan.add_express(
                PortRef::new(top, Direction::North.port()),
                PortRef::new(bottom, Direction::South.port()),
                mm,
                ChannelKind::Adaptable,
                true,
                true,
            )?;
            plan.add_express(
                PortRef::new(bottom, Direction::South.port()),
                PortRef::new(top, Direction::North.port()),
                mm,
                ChannelKind::Adaptable,
                true,
                true,
            )?;
        }
    }

    // Dateline classes need a VC split on every region router.
    let split = cfg.vcs_per_vnet - 1;
    if split >= 1 {
        for c in rect.iter() {
            plan.set_vc_split(c, split);
        }
    }

    // Minimal modular (shortest-way-around) dimension-ordered tables.
    let vnets: Vec<u8> = if request_only {
        vec![Vnet::REQUEST.0]
    } else {
        (0..cfg.vnets).collect()
    };
    for v in vnets {
        for rc in rect.iter() {
            let r = grid.router(rc);
            for dc in rect.iter() {
                let d = grid.node(dc);
                let port = if rc == dc {
                    LOCAL_PORT
                } else if rc.x != dc.x {
                    torus_dir(rc.x - rect.x, dc.x - rect.x, rect.w, true)
                } else {
                    let eff_h = if row_wraps_only { 2 } else { rect.h };
                    torus_dir(rc.y - rect.y, dc.y - rect.y, eff_h.min(rect.h), false)
                };
                plan.spec.tables.set(Vnet(v), r, d, port);
            }
        }
    }
    Ok(())
}

/// The direction port for modular minimal routing from position `from` to
/// `to` on a ring of `len` positions (falling back to plain mesh directions
/// when the ring is too short for wraps).
fn torus_dir(from: u8, to: u8, len: u8, x_dim: bool) -> adaptnoc_sim::ids::PortId {
    let (pos_dir, neg_dir) = if x_dim {
        (Direction::East, Direction::West)
    } else {
        (Direction::North, Direction::South)
    };
    if len < 3 {
        return if to > from {
            pos_dir.port()
        } else {
            neg_dir.port()
        };
    }
    let fwd = (to as i16 - from as i16).rem_euclid(len as i16) as u8;
    let bwd = len - fwd;
    if fwd <= bwd {
        pos_dir.port()
    } else {
        neg_dir.port()
    }
}

/// Express-mesh subNoC (Sec. II-B4 extension): the full mesh plus
/// half-span express segments on every row and column — the segmented
/// form of the torus wrap-around links, bypassing intermediate routers
/// without forming rings (so plain XY routing and no datelines apply).
pub fn express_mesh_region(
    plan: &mut ChipPlan,
    rect: Rect,
    cfg: &SimConfig,
) -> Result<(), BuildError> {
    mesh_fabric(plan, rect)?;
    let grid = plan.grid;

    // Row segments: forward wire carries an eastbound half-span express
    // from the west edge to the middle and middle to east edge; the
    // reverse wire carries the westbound pair. Ports: the edge routers'
    // outward-facing ports are free; the middle router uses any free port
    // (mux-steered), skipping gracefully if none.
    let add_seg = |plan: &mut ChipPlan, from: Coord, to: Coord, kind: ChannelKind| {
        let (fr, tr) = (plan.grid.router(from), plan.grid.router(to));
        if let (Some(po), Some(pi)) = (plan.free_out_port(fr), plan.free_in_port(tr)) {
            let mm = from.manhattan(to) as f32;
            let dim_y = from.x == to.x;
            let _ = plan.add_express(
                PortRef::new(fr, po),
                PortRef::new(tr, pi),
                mm,
                kind,
                false,
                dim_y,
            );
        }
    };
    if rect.w >= 4 {
        let xm = rect.x + rect.w / 2;
        for y in rect.y..rect.y_end() {
            add_seg(
                plan,
                Coord::new(rect.x, y),
                Coord::new(xm, y),
                ChannelKind::Adaptable,
            );
            add_seg(
                plan,
                Coord::new(xm, y),
                Coord::new(rect.x_end() - 1, y),
                ChannelKind::Adaptable,
            );
            add_seg(
                plan,
                Coord::new(rect.x_end() - 1, y),
                Coord::new(xm, y),
                ChannelKind::AdaptableReversed,
            );
            add_seg(
                plan,
                Coord::new(xm, y),
                Coord::new(rect.x, y),
                ChannelKind::AdaptableReversed,
            );
        }
    }
    if rect.h >= 4 {
        let ym = rect.y + rect.h / 2;
        for x in rect.x..rect.x_end() {
            add_seg(
                plan,
                Coord::new(x, rect.y),
                Coord::new(x, ym),
                ChannelKind::Adaptable,
            );
            add_seg(
                plan,
                Coord::new(x, ym),
                Coord::new(x, rect.y_end() - 1),
                ChannelKind::Adaptable,
            );
            add_seg(
                plan,
                Coord::new(x, rect.y_end() - 1),
                Coord::new(x, ym),
                ChannelKind::AdaptableReversed,
            );
            add_seg(
                plan,
                Coord::new(x, ym),
                Coord::new(x, rect.y),
                ChannelKind::AdaptableReversed,
            );
        }
    }

    let routers = routers_of(&grid, rect.iter());
    let nodes = nodes_of(&grid, rect.iter());
    for v in 0..cfg.vnets {
        fill_dor_tables(&mut plan.spec, &grid, Vnet(v), &routers, &nodes, false)?;
    }
    Ok(())
}

/// Tree subNoC (Sec. II-B3): requests keep the mesh; replies get a
/// high-fanout distribution overlay rooted at the memory controller, built
/// from adaptable-link segments (one per row wire pair, plus one per column
/// when the root row sits on the region edge).
pub fn tree_region(
    plan: &mut ChipPlan,
    rect: Rect,
    root: Option<NodeId>,
    extra_roots: &[NodeId],
    cfg: &SimConfig,
    request_torus: bool,
) -> Result<(), BuildError> {
    let grid = plan.grid;
    let root_node = root.unwrap_or_else(|| grid.node(rect.origin()));
    let root_c = grid.node_coord(root_node);
    if !rect.contains(root_c) {
        return Err(BuildError::Region(format!(
            "tree root {root_node} at {root_c} outside region {rect}"
        )));
    }

    if request_torus {
        // Combined extension: the torus (row wraps only) handles the
        // request vnet; the column wires stay free for the reply tree.
        torus_region(plan, rect, cfg, true, true)?;
    } else {
        mesh_fabric(plan, rect)?;
        // Request vnet: plain XY over the mesh.
        let routers = routers_of(&grid, rect.iter());
        let nodes = nodes_of(&grid, rect.iter());
        fill_dor_tables(
            &mut plan.spec,
            &grid,
            Vnet::REQUEST,
            &routers,
            &nodes,
            false,
        )?;
    }

    // --- Reply overlay ---

    // Row expresses from every MC (each MC sits in its own block row, so
    // each uses its own row's wires): near-mid target on the forward wire
    // and the far corner on the reversed wire, per side. In the combined
    // torus+tree the row wires are fully occupied by the request-network
    // wrap-around segments, so the tree keeps only its column overlay.
    let mut mc_rows: Vec<Coord> = vec![root_c];
    for &mc in extra_roots {
        let c = grid.node_coord(mc);
        if rect.contains(c) && !mc_rows.iter().any(|r| r.y == c.y) {
            mc_rows.push(c);
        }
    }
    for mc_c in mc_rows {
        let mc_r = grid.router(mc_c);
        let row_extents: [(Direction, u8); 2] = [
            (Direction::East, rect.x_end() - 1 - mc_c.x),
            (Direction::West, mc_c.x - rect.x),
        ];
        for (dir, extent) in row_extents {
            if request_torus || extent < 2 {
                continue;
            }
            let step = |d: u8| -> Coord {
                let x = match dir {
                    Direction::East => mc_c.x + d,
                    Direction::West => mc_c.x - d,
                    _ => unreachable!(),
                };
                Coord::new(x, mc_c.y)
            };
            // Near-mid express (forward wire).
            let mid = (extent / 2 + 1).max(2);
            add_tree_express(plan, mc_r, step(mid), ChannelKind::Adaptable)?;
            // Far express (reversed wire) when the side is long.
            if extent >= 4 {
                add_tree_express(plan, mc_r, step(extent), ChannelKind::AdaptableReversed)?;
            }
        }
    }

    // Column expresses: from each root-row router to the far edge of its
    // column (feasible when the respective ports are free, which holds when
    // the root row is on the region edge).
    for x in rect.x..rect.x_end() {
        let from = Coord::new(x, root_c.y);
        let from_r = grid.router(from);
        for (top, extent) in [
            (Coord::new(x, rect.y_end() - 1), rect.y_end() - 1 - root_c.y),
            (Coord::new(x, rect.y), root_c.y - rect.y),
        ] {
            if extent < 2 {
                continue;
            }
            let _ = add_tree_express(plan, from_r, top, ChannelKind::Adaptable);
        }
    }

    // Reply vnet: shortest-path dimension-ordered over mesh + overlay.
    let routers = routers_of(&grid, rect.iter());
    let nodes = nodes_of(&grid, rect.iter());
    fill_dor_tables(&mut plan.spec, &grid, Vnet::REPLY, &routers, &nodes, false)?;
    Ok(())
}

/// Combined torus+tree extension (Sec. II-B4).
pub fn torus_tree_region(
    plan: &mut ChipPlan,
    rect: Rect,
    root: Option<NodeId>,
    extra_roots: &[NodeId],
    cfg: &SimConfig,
) -> Result<(), BuildError> {
    tree_region(plan, rect, root, extra_roots, cfg, true)
}

/// Adds one tree overlay express channel between two routers sharing a row
/// or column, using whatever direction ports are free on both ends. Returns
/// `Ok(false)` (skipping silently) when no ports are available — the tree
/// degrades gracefully toward the plain mesh.
fn add_tree_express(
    plan: &mut ChipPlan,
    from: adaptnoc_sim::ids::RouterId,
    to: Coord,
    kind: ChannelKind,
) -> Result<bool, BuildError> {
    let to_r = plan.grid.router(to);
    if from == to_r {
        return Ok(false);
    }
    let from_c = plan.grid.coord(from);
    let (Some(src_port), Some(dst_port)) = (plan.free_out_port(from), plan.free_in_port(to_r))
    else {
        return Ok(false);
    };
    let mm = from_c.manhattan(to) as f32;
    let is_y = from_c.x == to.x;
    plan.add_express(
        PortRef::new(from, src_port),
        PortRef::new(to_r, dst_port),
        mm,
        kind,
        false,
        is_y,
    )?;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Grid;

    fn plan44() -> ChipPlan {
        ChipPlan::new(Grid::new(4, 4), &SimConfig::adapt_noc())
    }

    #[test]
    fn action_space_roundtrip() {
        for (i, k) in TopologyKind::ACTIONS.iter().enumerate() {
            assert_eq!(k.action_index(), i);
            assert_eq!(TopologyKind::from_action_index(i), *k);
            assert!(!k.name().is_empty());
        }
    }

    #[test]
    fn mesh_region_builds_valid_spec() {
        let mut p = plan44();
        mesh_region(&mut p, Rect::new(0, 0, 4, 4), &SimConfig::adapt_noc()).unwrap();
        let spec = p.finish().unwrap();
        // 2 * (3*4 + 3*4) = 48 unidirectional mesh channels.
        assert_eq!(spec.channels.len(), 48);
        assert_eq!(spec.nis.len(), 16);
        assert_eq!(spec.active_routers(), 16);
    }

    #[test]
    fn cmesh_region_gates_three_quarters_of_routers() {
        let mut p = plan44();
        cmesh_region(&mut p, Rect::new(0, 0, 4, 4), &SimConfig::adapt_noc()).unwrap();
        let spec = p.finish().unwrap();
        assert_eq!(spec.active_routers(), 4);
        // 2x2 hubs: 2 horizontal + 2 vertical adjacent pairs = 8 channels.
        assert_eq!(spec.channels.len(), 8);
        assert!(spec
            .channels
            .iter()
            .all(|c| c.kind == ChannelKind::Adaptable));
        // 12 concentrated + 4 local NIs.
        assert_eq!(spec.nis.iter().filter(|n| n.concentration).count(), 12);
    }

    #[test]
    fn cmesh_rejects_odd_regions() {
        let mut p = plan44();
        let err = cmesh_region(&mut p, Rect::new(0, 0, 3, 4), &SimConfig::adapt_noc());
        assert!(matches!(err, Err(BuildError::Region(_))));
    }

    #[test]
    fn torus_region_adds_wraps_and_datelines() {
        let mut p = plan44();
        torus_region(
            &mut p,
            Rect::new(0, 0, 4, 4),
            &SimConfig::adapt_noc(),
            false,
            false,
        )
        .unwrap();
        let spec = p.finish().unwrap();
        let wraps: Vec<_> = spec.channels.iter().filter(|c| c.dateline).collect();
        // 2 per row * 4 rows + 2 per column * 4 columns = 16.
        assert_eq!(wraps.len(), 16);
        assert!(wraps.iter().all(|c| c.kind == ChannelKind::Adaptable));
        // All region routers have a VC split for dateline classes.
        assert!(spec.routers.iter().all(|r| r.vc_split == Some(1)));
    }

    #[test]
    fn torus_small_dimension_skips_wraps() {
        let mut p = ChipPlan::new(Grid::new(4, 2), &SimConfig::adapt_noc());
        torus_region(
            &mut p,
            Rect::new(0, 0, 4, 2),
            &SimConfig::adapt_noc(),
            false,
            false,
        )
        .unwrap();
        let spec = p.finish().unwrap();
        let wraps: Vec<_> = spec.channels.iter().filter(|c| c.dateline).collect();
        // Only row wraps (w=4 >= 3); no column wraps for h=2.
        assert_eq!(wraps.len(), 4);
    }

    #[test]
    fn torus_dir_picks_shorter_way() {
        // Ring of 4: from 0 to 3, backward (west) is 1 hop vs 3 forward.
        assert_eq!(torus_dir(0, 3, 4, true), Direction::West.port());
        assert_eq!(torus_dir(0, 1, 4, true), Direction::East.port());
        // Tie (0 -> 2 on ring of 4): forward wins.
        assert_eq!(torus_dir(0, 2, 4, true), Direction::East.port());
        // Short ring: plain mesh direction.
        assert_eq!(torus_dir(0, 1, 2, false), Direction::North.port());
        assert_eq!(torus_dir(1, 0, 2, false), Direction::South.port());
    }

    #[test]
    fn tree_region_adds_overlay_channels() {
        let mut p = plan44();
        tree_region(
            &mut p,
            Rect::new(0, 0, 4, 4),
            None,
            &[],
            &SimConfig::adapt_noc(),
            false,
        )
        .unwrap();
        let spec = p.finish().unwrap();
        let overlay: Vec<_> = spec
            .channels
            .iter()
            .filter(|c| c.kind.is_adaptable())
            .collect();
        assert!(
            !overlay.is_empty(),
            "tree must add adaptable overlay channels"
        );
        // Root at origin: row expresses east plus column expresses north.
        assert!(overlay.len() >= 3, "got {}", overlay.len());
    }

    #[test]
    fn tree_root_outside_region_rejected() {
        let mut p = ChipPlan::new(Grid::new(8, 8), &SimConfig::adapt_noc());
        let err = tree_region(
            &mut p,
            Rect::new(0, 0, 4, 4),
            Some(NodeId(63)),
            &[],
            &SimConfig::adapt_noc(),
            false,
        );
        assert!(matches!(err, Err(BuildError::Region(_))));
    }

    #[test]
    fn express_mesh_adds_segments_and_cuts_hops() {
        let mut p = ChipPlan::new(Grid::new(8, 8), &SimConfig::adapt_noc());
        express_mesh_region(&mut p, Rect::new(0, 0, 8, 8), &SimConfig::adapt_noc()).unwrap();
        let spec = p.finish().unwrap();
        let segs = spec
            .channels
            .iter()
            .filter(|c| c.kind.is_adaptable())
            .count();
        assert!(segs > 0, "express segments must exist");
        assert!(
            !spec.channels.iter().any(|c| c.dateline),
            "no rings, no datelines"
        );
        // Hop savings vs plain mesh.
        use crate::validate::{all_pairs, check_routes_and_deadlock};
        let grid = Grid::new(8, 8);
        let nodes: Vec<NodeId> = Rect::new(0, 0, 8, 8).iter().map(|c| grid.node(c)).collect();
        let em = check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();

        let mut p = ChipPlan::new(grid, &SimConfig::adapt_noc());
        mesh_region(&mut p, Rect::new(0, 0, 8, 8), &SimConfig::adapt_noc()).unwrap();
        let mesh = check_routes_and_deadlock(&p.finish().unwrap(), &all_pairs(&nodes)).unwrap();
        assert!(
            em.avg_hops() < mesh.avg_hops(),
            "express mesh {} vs mesh {}",
            em.avg_hops(),
            mesh.avg_hops()
        );
    }

    #[test]
    fn express_mesh_small_region_degrades_to_mesh() {
        let mut p = ChipPlan::new(Grid::new(4, 4), &SimConfig::adapt_noc());
        express_mesh_region(&mut p, Rect::new(0, 0, 2, 2), &SimConfig::adapt_noc()).unwrap();
        let spec = p.spec.clone();
        assert!(spec.channels.iter().all(|c| !c.kind.is_adaptable()));
    }

    #[test]
    fn torus_tree_combined_builds() {
        let mut p = plan44();
        torus_tree_region(
            &mut p,
            Rect::new(0, 0, 4, 4),
            None,
            &[],
            &SimConfig::adapt_noc(),
        )
        .unwrap();
        let spec = p.finish().unwrap();
        assert!(spec.channels.iter().any(|c| c.dateline));
        assert!(spec
            .channels
            .iter()
            .any(|c| c.kind == ChannelKind::AdaptableReversed
                || c.kind == ChannelKind::Adaptable && !c.dateline));
    }
}

//! Route and deadlock validation.
//!
//! Two checks back the deadlock-free reconfiguration story (Sec. II-C):
//!
//! * **Route termination**: walking the routing tables from any source to
//!   any destination terminates at the destination's NI (no loops, no
//!   missing entries).
//! * **Channel-dependency-graph acyclicity** (Dally/Towles): for every path
//!   the tables can produce, consecutive channel holds create dependencies;
//!   the graph over `(channel, VC class)` nodes must be acyclic per virtual
//!   network. Dateline class switches (torus wraps) are modeled exactly as
//!   the simulator applies them.

use crate::geom::{Coord, Grid};
use adaptnoc_sim::ids::{ChannelId, NodeId, PortId, RouterId, Vnet};
use adaptnoc_sim::spec::NetworkSpec;
use std::collections::{HashMap, HashSet};

/// A walked route.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RoutePath {
    /// Channels traversed, in order.
    pub channels: Vec<ChannelId>,
    /// Router-to-router hops (= `channels.len()`).
    pub hops: usize,
    /// Sum of channel latencies (a zero-load lower bound without router
    /// pipeline delays).
    pub wire_latency: u32,
}

/// Validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// A routing entry is missing.
    NoRoute {
        /// Router with the missing entry.
        router: RouterId,
        /// Destination.
        dst: NodeId,
        /// Virtual network.
        vnet: Vnet,
    },
    /// A routing entry points to a port with no channel and no matching NI.
    BadPort {
        /// Router with the bad entry.
        router: RouterId,
        /// The port.
        port: PortId,
    },
    /// The walk exceeded the hop budget (a routing loop).
    Loop {
        /// Source of the looping route.
        src: NodeId,
        /// Destination of the looping route.
        dst: NodeId,
        /// Virtual network.
        vnet: Vnet,
    },
    /// A VC-class-1 packet would be allocated at a router without a VC
    /// split (the dateline would be ineffective).
    MissingVcSplit {
        /// The offending router.
        router: RouterId,
    },
    /// The channel dependency graph contains a cycle.
    DependencyCycle {
        /// Virtual network with the cycle.
        vnet: Vnet,
        /// One channel on the cycle.
        witness: ChannelId,
    },
    /// A node has no NI.
    NoNi(NodeId),
}

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidateError::NoRoute { router, dst, vnet } => {
                write!(f, "no route at {router} towards {dst} on {vnet}")
            }
            ValidateError::BadPort { router, port } => {
                write!(f, "route at {router} points to unwired port {port}")
            }
            ValidateError::Loop { src, dst, vnet } => {
                write!(f, "routing loop from {src} to {dst} on {vnet}")
            }
            ValidateError::MissingVcSplit { router } => {
                write!(f, "dateline class used at {router} without a VC split")
            }
            ValidateError::DependencyCycle { vnet, witness } => {
                write!(f, "channel dependency cycle on {vnet} through {witness}")
            }
            ValidateError::NoNi(n) => write!(f, "node {n} has no network interface"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Walks the route from `src` to `dst` on `vnet`, mirroring the simulator's
/// per-hop table lookups and VC-class updates.
///
/// # Errors
///
/// Returns [`ValidateError`] on missing entries, unwired ports, or loops.
pub fn walk_route(
    spec: &NetworkSpec,
    vnet: Vnet,
    src: NodeId,
    dst: NodeId,
) -> Result<RoutePath, ValidateError> {
    let src_ni = spec.ni_of(src).ok_or(ValidateError::NoNi(src))?;
    let dst_ni = spec.ni_of(dst).ok_or(ValidateError::NoNi(dst))?;

    // (router, out port) -> channel index.
    let mut out_map: HashMap<(RouterId, PortId), usize> = HashMap::new();
    for (i, c) in spec.channels.iter().enumerate() {
        out_map.insert((c.src.router, c.src.port), i);
    }

    let mut cur = src_ni.router;
    let mut path = RoutePath {
        channels: Vec::new(),
        hops: 0,
        wire_latency: 0,
    };
    let budget = spec.routers.len() * 4 + 8;
    loop {
        let port = spec
            .tables
            .lookup(vnet, cur, dst)
            .ok_or(ValidateError::NoRoute {
                router: cur,
                dst,
                vnet,
            })?;
        if cur == dst_ni.router && port == dst_ni.port {
            return Ok(path);
        }
        let Some(&ci) = out_map.get(&(cur, port)) else {
            return Err(ValidateError::BadPort { router: cur, port });
        };
        let ch = &spec.channels[ci];
        path.channels.push(ChannelId(ci as u32));
        path.hops += 1;
        path.wire_latency += ch.latency as u32;
        cur = ch.dst.router;
        if path.hops > budget {
            return Err(ValidateError::Loop { src, dst, vnet });
        }
    }
}

/// Statistics over a set of validated routes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RouteStats {
    /// Number of routes walked.
    pub routes: usize,
    /// Total hops.
    pub total_hops: usize,
    /// Maximum hops on any route.
    pub max_hops: usize,
}

impl RouteStats {
    /// Mean hops per route.
    pub fn avg_hops(&self) -> f64 {
        if self.routes == 0 {
            0.0
        } else {
            self.total_hops as f64 / self.routes as f64
        }
    }
}

/// Validates every `(src, dst)` pair on every vnet: routes terminate and the
/// per-vnet channel dependency graphs (over `(channel, class)` nodes) are
/// acyclic.
///
/// # Errors
///
/// Returns the first [`ValidateError`] found.
pub fn check_routes_and_deadlock(
    spec: &NetworkSpec,
    pairs: &[(NodeId, NodeId)],
) -> Result<RouteStats, ValidateError> {
    let mut stats = RouteStats::default();
    for v in 0..spec.tables.vnets() as u8 {
        let vnet = Vnet(v);
        // Dependency edges between (channel, class) nodes.
        let mut deps: HashMap<(u32, u8), HashSet<(u32, u8)>> = HashMap::new();
        for &(src, dst) in pairs {
            if src == dst {
                continue;
            }
            let path = walk_route(spec, vnet, src, dst)?;
            stats.routes += 1;
            stats.total_hops += path.hops;
            stats.max_hops = stats.max_hops.max(path.hops);

            let mut class = 0u8;
            let mut last_dim = adaptnoc_sim::spec::DIM_NONE;
            let mut prev: Option<(u32, u8)> = None;
            for &ch_id in &path.channels {
                let ch = &spec.channels[ch_id.index()];
                class = ch.class_after(class, last_dim);
                last_dim = ch.dim();
                if class > 0 {
                    // The upstream router allocates the class-restricted VC;
                    // it must have a split configured.
                    let up = ch.src.router;
                    if spec.routers[up.index()].vc_split.is_none() {
                        return Err(ValidateError::MissingVcSplit { router: up });
                    }
                }
                let node = (ch_id.0, class);
                if let Some(p) = prev {
                    deps.entry(p).or_default().insert(node);
                }
                prev = Some(node);
            }
        }
        // Cycle detection (iterative DFS with colors).
        if let Some(witness) = find_cycle(&deps) {
            return Err(ValidateError::DependencyCycle {
                vnet,
                witness: ChannelId(witness),
            });
        }
    }
    Ok(stats)
}

/// Dependency graph between `(channel, class)` nodes.
type DepGraph = HashMap<(u32, u8), HashSet<(u32, u8)>>;

fn find_cycle(deps: &DepGraph) -> Option<u32> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<(u32, u8), Color> = HashMap::new();
    let empty: HashSet<(u32, u8)> = HashSet::new();
    for &start in deps.keys() {
        if *color.get(&start).unwrap_or(&Color::White) != Color::White {
            continue;
        }
        // Iterative DFS over (node, remaining children) frames.
        type Frame = ((u32, u8), Vec<(u32, u8)>);
        let mut stack: Vec<Frame> = vec![(
            start,
            deps.get(&start).unwrap_or(&empty).iter().copied().collect(),
        )];
        color.insert(start, Color::Gray);
        while let Some((node, children)) = stack.last_mut() {
            if let Some(child) = children.pop() {
                match *color.get(&child).unwrap_or(&Color::White) {
                    Color::Gray => return Some(child.0),
                    Color::Black => {}
                    Color::White => {
                        color.insert(child, Color::Gray);
                        let next: Vec<(u32, u8)> =
                            deps.get(&child).unwrap_or(&empty).iter().copied().collect();
                        stack.push((child, next));
                    }
                }
            } else {
                color.insert(*node, Color::Black);
                stack.pop();
            }
        }
    }
    None
}

/// Per-tile-edge wiring limits for the generalized feasibility check.
///
/// The numbers are *unidirectional channels per tile edge* and mirror the
/// 45 nm metal-stack budget derived in `adaptnoc-power::wiring` (2 high-metal
/// plus 7 intermediate bidirectional 256-bit links per edge = 18 directed
/// channels, of which 4 may ride the high metal layers reserved for
/// adaptable links), extended with a package-substrate SerDes lane budget
/// for the inter-chip links of chiplet fabrics. Keeping the check here lets
/// every generated topology be validated without depending on the power
/// crate; `adaptnoc-power::wiring::analyze_wiring` remains the authoritative
/// physical model and the two are cross-checked in the bench tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WiringLimits {
    /// Max unidirectional channels over any tile edge (all wire classes).
    pub max_channels_per_edge: u32,
    /// Max unidirectional adaptable-link channels over any tile edge
    /// (pinned to the high metal layers).
    pub max_express_channels_per_edge: u32,
    /// Max unidirectional inter-chip channels over any chip-boundary edge
    /// (package SerDes lanes, not on-chip metal).
    pub max_interchip_channels_per_edge: u32,
}

impl WiringLimits {
    /// The paper-calibrated 45 nm budget (see `adaptnoc-power::params`).
    pub fn paper() -> Self {
        WiringLimits {
            max_channels_per_edge: 18,
            max_express_channels_per_edge: 4,
            max_interchip_channels_per_edge: 8,
        }
    }
}

/// Wiring-feasibility report of a spec against [`WiringLimits`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WiringReport {
    /// Max unidirectional channels observed over any tile edge.
    pub max_channels_per_edge: u32,
    /// Max adaptable-link channels observed over any tile edge.
    pub max_express_channels_per_edge: u32,
    /// Max inter-chip channels observed over any chip-boundary edge.
    pub max_interchip_channels_per_edge: u32,
    /// Whether every observed maximum is within the limits.
    pub fits: bool,
}

/// Generalized wiring-budget feasibility check: routes every channel of the
/// spec dimension-ordered (x first, then y) over the tile edges of `grid`
/// and compares per-edge channel counts against `limits`. Concentration NI
/// links count on the edges they cross; inter-chip channels count against
/// the separate substrate-lane limit of the chip edge they cross. This is
/// the check every generated topology (sparse Hamming, chiplet fabrics,
/// custom irregular regions) must pass before it becomes a design point.
pub fn wiring_feasible(spec: &NetworkSpec, grid: &Grid, limits: &WiringLimits) -> WiringReport {
    // Edge id: ('h', x, y) between (x,y)-(x+1,y); ('v', x, y) between
    // (x,y)-(x,y+1).
    let mut all: HashMap<(char, u8, u8), u32> = HashMap::new();
    let mut express: HashMap<(char, u8, u8), u32> = HashMap::new();
    let mut interchip: HashMap<(char, u8, u8), u32> = HashMap::new();

    let mut add_span = |a: Coord, b: Coord, is_express: bool| {
        let (x0, x1) = (a.x.min(b.x), a.x.max(b.x));
        for x in x0..x1 {
            let e = ('h', x, a.y);
            *all.entry(e).or_insert(0) += 1;
            if is_express {
                *express.entry(e).or_insert(0) += 1;
            }
        }
        let (y0, y1) = (a.y.min(b.y), a.y.max(b.y));
        for y in y0..y1 {
            let e = ('v', b.x, y);
            *all.entry(e).or_insert(0) += 1;
            if is_express {
                *express.entry(e).or_insert(0) += 1;
            }
        }
    };

    for ch in &spec.channels {
        let a = grid.coord(ch.src.router);
        let b = grid.coord(ch.dst.router);
        if ch.kind == adaptnoc_sim::spec::ChannelKind::InterChip {
            let e = if a.y == b.y {
                ('h', a.x.min(b.x), a.y)
            } else {
                ('v', a.x, a.y.min(b.y))
            };
            *interchip.entry(e).or_insert(0) += 1;
            continue;
        }
        add_span(a, b, ch.kind.is_adaptable());
    }
    for ni in &spec.nis {
        if ni.concentration {
            add_span(grid.node_coord(ni.node), grid.coord(ni.router), false);
        }
    }

    let max = |m: &HashMap<(char, u8, u8), u32>| m.values().copied().max().unwrap_or(0);
    let report = WiringReport {
        max_channels_per_edge: max(&all),
        max_express_channels_per_edge: max(&express),
        max_interchip_channels_per_edge: max(&interchip),
        fits: false,
    };
    WiringReport {
        fits: report.max_channels_per_edge <= limits.max_channels_per_edge
            && report.max_express_channels_per_edge <= limits.max_express_channels_per_edge
            && report.max_interchip_channels_per_edge <= limits.max_interchip_channels_per_edge,
        ..report
    }
}

/// All ordered pairs among `nodes`.
pub fn all_pairs(nodes: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    let mut v = Vec::with_capacity(nodes.len() * nodes.len());
    for &a in nodes {
        for &b in nodes {
            if a != b {
                v.push((a, b));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::mesh_chip;
    use crate::geom::{Coord, Grid};
    use adaptnoc_sim::config::SimConfig;

    #[test]
    fn mesh_chip_routes_terminate_and_are_deadlock_free() {
        let grid = Grid::new(4, 4);
        let spec = mesh_chip(grid, &SimConfig::baseline()).unwrap();
        let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
        let stats = check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
        assert_eq!(stats.routes, 2 * 16 * 15);
        // Mesh diameter of 4x4 is 6.
        assert_eq!(stats.max_hops, 6);
        assert!((stats.avg_hops() - 8.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn walk_route_reports_hops() {
        let grid = Grid::new(4, 4);
        let spec = mesh_chip(grid, &SimConfig::baseline()).unwrap();
        let a = grid.node(Coord::new(0, 0));
        let b = grid.node(Coord::new(3, 3));
        let p = walk_route(&spec, Vnet::REQUEST, a, b).unwrap();
        assert_eq!(p.hops, 6);
        assert_eq!(p.wire_latency, 6);
    }

    #[test]
    fn broken_table_detected_as_no_route() {
        let grid = Grid::new(3, 3);
        let mut spec = mesh_chip(grid, &SimConfig::baseline()).unwrap();
        let a = grid.node(Coord::new(0, 0));
        let b = grid.node(Coord::new(2, 2));
        spec.tables
            .clear(Vnet::REQUEST, grid.router(Coord::new(1, 0)), b);
        let err = walk_route(&spec, Vnet::REQUEST, a, b);
        assert!(matches!(err, Err(ValidateError::NoRoute { .. })));
    }

    #[test]
    fn routing_loop_detected() {
        let grid = Grid::new(3, 1);
        let mut spec = mesh_chip(grid, &SimConfig::baseline()).unwrap();
        let a = grid.node(Coord::new(0, 0));
        let b = grid.node(Coord::new(2, 0));
        // Make router 1 bounce traffic back west.
        spec.tables.set(
            Vnet::REQUEST,
            grid.router(Coord::new(1, 0)),
            b,
            adaptnoc_sim::ids::Direction::West.port(),
        );
        let err = walk_route(&spec, Vnet::REQUEST, a, b);
        assert!(matches!(err, Err(ValidateError::Loop { .. })));
    }

    #[test]
    fn cycle_finder_detects_simple_cycle() {
        let mut deps: HashMap<(u32, u8), HashSet<(u32, u8)>> = HashMap::new();
        deps.entry((0, 0)).or_default().insert((1, 0));
        deps.entry((1, 0)).or_default().insert((2, 0));
        deps.entry((2, 0)).or_default().insert((0, 0));
        assert!(find_cycle(&deps).is_some());
    }

    #[test]
    fn cycle_finder_accepts_dag() {
        let mut deps: HashMap<(u32, u8), HashSet<(u32, u8)>> = HashMap::new();
        deps.entry((0, 0)).or_default().insert((1, 0));
        deps.entry((0, 0)).or_default().insert((2, 0));
        deps.entry((1, 0)).or_default().insert((2, 0));
        assert!(find_cycle(&deps).is_none());
    }

    #[test]
    fn class_split_distinguishes_nodes() {
        // Same channels, different classes: no cycle.
        let mut deps: HashMap<(u32, u8), HashSet<(u32, u8)>> = HashMap::new();
        deps.entry((0, 0)).or_default().insert((1, 0));
        deps.entry((1, 0)).or_default().insert((0, 1));
        deps.entry((0, 1)).or_default().insert((1, 1));
        assert!(find_cycle(&deps).is_none());
    }

    #[test]
    fn all_pairs_excludes_self() {
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        let pairs = all_pairs(&nodes);
        assert_eq!(pairs.len(), 6);
        assert!(pairs.iter().all(|(a, b)| a != b));
    }
}

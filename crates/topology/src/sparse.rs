//! Sparse-Hamming-Graph-style customizable topology generation.
//!
//! Hamming graphs connect every pair of routers sharing a row or column;
//! sparse Hamming graphs (Iff et al., see PAPERS.md) keep only a budgeted
//! subset of those links and beat fixed meshes/tori under a wiring budget.
//! This module generates the design-point family: the plain mesh fabric
//! plus *skip links* at configurable per-dimension offsets, placed at
//! aligned positions (`x ≡ rect.x (mod offset)`) so that every offset
//! contributes exactly one span per direction to any tile edge it crosses —
//! the per-edge wiring cost stays flat no matter how many offsets stack.
//!
//! Routing is the *monotone* dimension-ordered scheme of [`crate::dor`]
//! ([`crate::dor::fill_dor_tables_monotone`]): within a row/column the next
//! hop is shortest-path restricted to strictly distance-decreasing,
//! non-overshooting edges. Forbidding target-crossing hops means a route
//! uses one travel direction per line, so each direction's channel
//! dependencies only ever point further along — the dependency graph is
//! acyclic (deadlock-free) for *any* offset set the user configures, not
//! just the aligned binary ladders of [`SparseHammingParams::default_for`].
//! (The overshoot-permitting scheme the torus/express builders use is not
//! safe here: irregular offsets like `[3, 4, 7]` let overshoot-then-return
//! routes close a dependency cycle.)

use crate::dor::{fill_dor_tables_monotone, nodes_of, routers_of};
use crate::geom::{Coord, Rect};
use crate::plan::{express_latency, BuildError, ChipPlan};
use crate::regions::mesh_fabric_public as mesh_fabric;
use adaptnoc_sim::config::SimConfig;
use adaptnoc_sim::ids::Vnet;
use adaptnoc_sim::spec::{ChannelKind, ChannelSpec, NetworkSpec, PortRef};

/// Row/column connectivity parameters of a sparse Hamming design point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseHammingParams {
    /// Skip distances added along every row (each `o >= 2`, strictly
    /// increasing). A skip of `o` links aligned tiles `x` and `x + o`.
    pub row_offsets: Vec<u8>,
    /// Skip distances added along every column.
    pub col_offsets: Vec<u8>,
}

impl SparseHammingParams {
    /// The default design point for a `w` x `h` region: power-of-two skip
    /// hierarchies (2, 4, 8, ...) up to half of each dimension — binary
    /// skip rings giving logarithmic row/column diameter.
    pub fn default_for(w: u8, h: u8) -> Self {
        let ladder = |dim: u8| {
            let mut v = Vec::new();
            let mut o = 2u8;
            while o <= dim / 2 {
                v.push(o);
                o = o.saturating_mul(2);
            }
            v
        };
        SparseHammingParams {
            row_offsets: ladder(w),
            col_offsets: ladder(h),
        }
    }

    /// Checks that the offsets are usable in a `rect`-sized region:
    /// strictly increasing, each at least 2 and smaller than the dimension.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::Region`] on malformed offsets.
    pub fn validate(&self, rect: Rect) -> Result<(), BuildError> {
        let check = |offsets: &[u8], dim: u8, which: &str| {
            let mut last = 1u8;
            for &o in offsets {
                if o < 2 || o <= last {
                    return Err(BuildError::Region(format!(
                        "sparse-hamming {which} offsets must be strictly increasing and >= 2"
                    )));
                }
                if o >= dim {
                    return Err(BuildError::Region(format!(
                        "sparse-hamming {which} offset {o} does not fit a dimension of {dim}"
                    )));
                }
                last = o;
            }
            Ok(())
        };
        check(&self.row_offsets, rect.w, "row")?;
        check(&self.col_offsets, rect.h, "column")
    }

    /// Ports each router needs: 4 directions + local + one in/out pair per
    /// dimension-direction per offset.
    pub fn ports_needed(&self) -> u8 {
        5 + 2 * (self.row_offsets.len() + self.col_offsets.len()) as u8
    }
}

/// Builds a sparse Hamming subNoC into the plan: mesh fabric + aligned skip
/// links on dedicated high ports, DOR tables over the combined graph.
///
/// # Errors
///
/// Returns [`BuildError`] on malformed offsets or wiring conflicts.
pub fn sparse_hamming_region(
    plan: &mut ChipPlan,
    rect: Rect,
    params: &SparseHammingParams,
    cfg: &SimConfig,
) -> Result<(), BuildError> {
    params.validate(rect)?;
    mesh_fabric(plan, rect)?;
    let grid = plan.grid;

    // Raise the router radix for the skip-link ports. Port map: 0..4 are
    // the mesh directions, 4 the local NI, then one +dir/-dir port pair
    // per offset (row offsets first).
    let n_ports = params.ports_needed();
    for c in rect.iter() {
        let r = grid.router(c).index();
        plan.spec.routers[r].n_ports = plan.spec.routers[r].n_ports.max(n_ports);
    }

    // A skip pair between a and b on the offset's dedicated ports: like the
    // mesh convention, the same port id carries the outgoing link towards a
    // neighbour and the incoming link from it.
    let skip_pair =
        |plan: &mut ChipPlan, a: Coord, b: Coord, port_pos: u8, port_neg: u8, dim_y: bool| {
            let (ra, rb) = (grid.router(a), grid.router(b));
            let mm = a.manhattan(b) as f32;
            let fwd = ChannelSpec {
                src: PortRef::new(ra, adaptnoc_sim::ids::PortId(port_pos)),
                dst: PortRef::new(rb, adaptnoc_sim::ids::PortId(port_neg)),
                latency: express_latency(mm),
                length_mm: mm,
                dateline: false,
                dim_y,
                kind: ChannelKind::Express,
            };
            let rev = ChannelSpec {
                src: PortRef::new(rb, adaptnoc_sim::ids::PortId(port_neg)),
                dst: PortRef::new(ra, adaptnoc_sim::ids::PortId(port_pos)),
                ..fwd
            };
            plan.add_channel(fwd)?;
            plan.add_channel(rev)?;
            Ok::<(), BuildError>(())
        };

    for (i, &o) in params.row_offsets.iter().enumerate() {
        let (pp, pn) = (5 + 2 * i as u8, 6 + 2 * i as u8);
        for y in rect.y..rect.y_end() {
            let mut x = rect.x;
            while x + o < rect.x_end() {
                skip_pair(plan, Coord::new(x, y), Coord::new(x + o, y), pp, pn, false)?;
                x += o;
            }
        }
    }
    let base = 5 + 2 * params.row_offsets.len() as u8;
    for (j, &o) in params.col_offsets.iter().enumerate() {
        let (pp, pn) = (base + 2 * j as u8, base + 1 + 2 * j as u8);
        for x in rect.x..rect.x_end() {
            let mut y = rect.y;
            while y + o < rect.y_end() {
                skip_pair(plan, Coord::new(x, y), Coord::new(x, y + o), pp, pn, true)?;
                y += o;
            }
        }
    }

    let routers = routers_of(&grid, rect.iter());
    let nodes = nodes_of(&grid, rect.iter());
    for v in 0..cfg.vnets {
        fill_dor_tables_monotone(&mut plan.spec, &grid, Vnet(v), &routers, &nodes, false)?;
    }
    Ok(())
}

/// Builds a whole chip as one sparse Hamming network.
///
/// # Errors
///
/// Propagates [`BuildError`] from the region builder or spec validation.
pub fn sparse_hamming_chip(
    grid: crate::geom::Grid,
    params: &SparseHammingParams,
    cfg: &SimConfig,
) -> Result<NetworkSpec, BuildError> {
    let mut plan = ChipPlan::new(grid, cfg);
    sparse_hamming_region(
        &mut plan,
        Rect::new(0, 0, grid.width, grid.height),
        params,
        cfg,
    )?;
    plan.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::Grid;
    use crate::validate::{all_pairs, check_routes_and_deadlock, wiring_feasible, WiringLimits};
    use adaptnoc_sim::ids::NodeId;

    #[test]
    fn default_params_are_binary_ladders() {
        let p = SparseHammingParams::default_for(16, 16);
        assert_eq!(p.row_offsets, vec![2, 4, 8]);
        assert_eq!(p.col_offsets, vec![2, 4, 8]);
        let p = SparseHammingParams::default_for(4, 8);
        assert_eq!(p.row_offsets, vec![2]);
        assert_eq!(p.col_offsets, vec![2, 4]);
    }

    #[test]
    fn malformed_offsets_rejected() {
        let rect = Rect::new(0, 0, 8, 8);
        for bad in [vec![1], vec![4, 2], vec![2, 2], vec![8]] {
            let p = SparseHammingParams {
                row_offsets: bad,
                col_offsets: vec![],
            };
            assert!(p.validate(rect).is_err());
        }
    }

    #[test]
    fn chip_16x16_is_deadlock_free_and_fits_wiring() {
        let grid = Grid::new(16, 16);
        let cfg = SimConfig::baseline();
        let params = SparseHammingParams::default_for(16, 16);
        let spec = sparse_hamming_chip(grid, &params, &cfg).unwrap();
        // Skip links exist beyond the 2*(15*16)*2 = 960 mesh channels.
        assert!(spec.channels.len() > 960);
        let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
        let stats = check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
        // Binary skip ladder: row/column distance is logarithmic, so the
        // worst route is far below the 30-hop mesh diameter.
        assert!(stats.max_hops <= 14, "max hops {}", stats.max_hops);
        let report = wiring_feasible(&spec, &grid, &WiringLimits::paper());
        assert!(report.fits, "wiring report {report:?}");
    }

    #[test]
    fn skip_links_cut_hops_vs_mesh() {
        let grid = Grid::new(16, 16);
        let cfg = SimConfig::baseline();
        let params = SparseHammingParams::default_for(16, 16);
        let spec = sparse_hamming_chip(grid, &params, &cfg).unwrap();
        let nodes: Vec<NodeId> = grid.iter().map(|c| grid.node(c)).collect();
        let pairs = all_pairs(&nodes);
        let sparse = check_routes_and_deadlock(&spec, &pairs).unwrap();
        let mesh = crate::chip::mesh_chip(grid, &cfg).unwrap();
        let mesh = check_routes_and_deadlock(&mesh, &pairs).unwrap();
        assert!(
            sparse.avg_hops() < 0.6 * mesh.avg_hops(),
            "sparse {} vs mesh {}",
            sparse.avg_hops(),
            mesh.avg_hops()
        );
    }

    #[test]
    fn region_within_larger_chip_builds() {
        let grid = Grid::new(8, 8);
        let cfg = SimConfig::baseline();
        let mut plan = ChipPlan::new(grid, &cfg);
        let rect = Rect::new(2, 2, 4, 4);
        sparse_hamming_region(
            &mut plan,
            rect,
            &SparseHammingParams::default_for(4, 4),
            &cfg,
        )
        .unwrap();
        for c in grid.iter() {
            if !rect.contains(c) {
                plan.add_local_ni(c);
            }
        }
        let spec = plan.finish().unwrap();
        let nodes: Vec<NodeId> = rect.iter().map(|c| grid.node(c)).collect();
        check_routes_and_deadlock(&spec, &all_pairs(&nodes)).unwrap();
    }
}

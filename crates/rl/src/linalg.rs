//! Minimal dense linear algebra for the DQN (no external ML dependencies,
//! matching the paper's weight-only hardware deployment story).

use rand::Rng;

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn xavier<R: Rng>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|_| rng.random_range(-bound..bound))
                .collect(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        self.data[r * self.cols + c]
    }

    /// Mutable element access.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices.
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of range");
        &mut self.data[r * self.cols + c]
    }

    /// `y = W x` (x of length `cols`, result of length `rows`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            y[r] = row.iter().zip(x).map(|(w, v)| w * v).sum();
        }
        y
    }

    /// `y = W^T x` (x of length `rows`, result of length `cols`).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows`.
    #[allow(clippy::needless_range_loop)]
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_t dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for r in 0..self.rows {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (c, w) in row.iter().enumerate() {
                y[c] += w * x[r];
            }
        }
        y
    }

    /// `W += scale * (a ⊗ b)` (rank-1 update; a of length `rows`, b of
    /// length `cols`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[allow(clippy::needless_range_loop)]
    pub fn add_outer(&mut self, a: &[f64], b: &[f64], scale: f64) {
        assert_eq!(a.len(), self.rows, "outer rows mismatch");
        assert_eq!(b.len(), self.cols, "outer cols mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (c, w) in row.iter_mut().enumerate() {
                *w += scale * a[r] * b[c];
            }
        }
    }

    /// Elementwise `self += scale * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, scale: f64) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch"
        );
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

/// Rectified linear unit applied elementwise.
pub fn relu(x: &[f64]) -> Vec<f64> {
    x.iter().map(|&v| v.max(0.0)).collect()
}

/// Derivative mask of ReLU at the pre-activation values.
pub fn relu_grad(pre: &[f64]) -> Vec<f64> {
    pre.iter().map(|&v| if v > 0.0 { 1.0 } else { 0.0 }).collect()
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics on an empty slice.
pub fn argmax(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in x.iter().enumerate() {
        if v > x[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matvec_known_values() {
        let mut m = Matrix::zeros(2, 3);
        // [[1,2,3],[4,5,6]]
        for (i, v) in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0].iter().enumerate() {
            m.data[i] = *v;
        }
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(m.matvec_t(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_update() {
        let mut m = Matrix::zeros(2, 2);
        m.add_outer(&[1.0, 2.0], &[3.0, 4.0], 0.5);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.get(1, 1), 4.0);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Matrix::xavier(10, 20, &mut rng);
        let bound = (6.0 / 30.0f64).sqrt();
        for r in 0..10 {
            for c in 0..20 {
                assert!(m.get(r, c).abs() <= bound);
            }
        }
        assert!(m.norm() > 0.0);
    }

    #[test]
    fn relu_and_grad() {
        assert_eq!(relu(&[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 2.0]);
        assert_eq!(relu_grad(&[-1.0, 0.0, 2.0]), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn argmax_first_on_ties() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matvec_shape_checked() {
        Matrix::zeros(2, 3).matvec(&[1.0, 2.0]);
    }
}
